//! Microbench: power-law fitting throughput (weighted NLLS, §4.1).
//!
//! The iterative algorithm fits |S|·repeats curves per iteration, so fit
//! latency bounds how often curves can be refreshed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use st_curve::{fit_power_law, fit_power_law_with_floor, CurvePoint};
use std::hint::black_box;

fn points(k: usize, noise: f64) -> Vec<CurvePoint> {
    (1..=k)
        .map(|i| {
            let x = 30.0 * i as f64;
            let wiggle = 1.0 + noise * ((i as f64 * 1.7).sin());
            CurvePoint::size_weighted(x, 2.5 * x.powf(-0.35) * wiggle)
        })
        .collect()
}

fn bench_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("curve_fit");
    group.sample_size(30);
    for k in [5usize, 10, 20] {
        let pts = points(k, 0.1);
        group.bench_with_input(BenchmarkId::new("power_law", k), &pts, |b, pts| {
            b.iter(|| fit_power_law(black_box(pts)).unwrap())
        });
    }
    let pts = points(10, 0.1);
    group.bench_function("power_law_with_floor_k10", |b| {
        b.iter(|| fit_power_law_with_floor(black_box(&pts)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_fit);
criterion_main!(benches);
