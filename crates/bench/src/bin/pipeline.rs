//! End-to-end pipeline profiler: times one full estimator → fit → optimize
//! trial with a per-phase breakdown (data generation, subset trainings,
//! curve fitting, convex solver), gates the prepacked operand API against
//! per-call packing on the estimator's repeated-GEMM shape, and emits
//! machine-readable `BENCH_pipeline.json` (schema in `docs/profiling.md`).
//!
//! ```text
//! cargo run --release -p st_bench --bin pipeline
//! ```
//!
//! Knobs:
//!
//! - `ST_QUICK=1` — small dataset/budget and fewer timing reps;
//! - `ST_PIPELINE_NO_GATE=1` — emit timings and JSON but skip the ≥1.2×
//!   prepacked *speed* gate (CI's schema smoke uses this; the bit-identity
//!   cross-checks always run);
//! - `ST_BENCH_JSON` — output path (default `BENCH_pipeline.json`);
//! - `ST_KERNEL` — overrides the bench default (`sharded` on multi-core
//!   hosts, `simd` on single-core).

use slice_tuner::{PoolSource, SliceTuner, Strategy};
use st_bench::{assert_bits_identical, bench_fill as fill, best_secs, rule, FamilySetup};
use st_curve::fit_power_law;
use st_data::SlicedDataset;
use st_linalg::{GemmBackend, SimdKernel};
use std::fmt::Write as _;
use std::time::Instant;

/// One named phase timing for the report and the JSON emission.
struct Phase {
    name: &'static str,
    ms: f64,
    /// Optional count annotation (model trainings behind the phase).
    trainings: Option<usize>,
}

fn main() {
    let kernel = st_bench::init_bench_kernel();
    let quick = st_bench::quick();
    let no_gate = std::env::var("ST_PIPELINE_NO_GATE")
        .map(|v| v == "1")
        .unwrap_or(false);

    println!("Pipeline profiler — one estimator → fit → optimize trial, per phase");
    println!(
        "kernel: {} | quick: {quick} | gate: {}\n",
        kernel.name(),
        if no_gate {
            "reporting only"
        } else {
            "enforced"
        }
    );

    // ---- Trial phases ----------------------------------------------------
    //
    // The workload is one real Slice Tuner cell: generate a sliced dataset,
    // estimate per-slice learning curves (the repeated-small-training hot
    // path that dominates wall-clock), fit the measured points, and solve
    // the one-shot allocation. AdultCensus in quick mode keeps the CI smoke
    // cheap; the Fashion-MNIST analog (784-dim features) exercises the
    // kernel layer for real otherwise.
    let setup = if quick {
        FamilySetup::census()
    } else {
        FamilySetup::fashion()
    };
    let budget = setup.scaled_budget();
    let sizes = setup.equal_sizes();

    let start = Instant::now();
    let ds = SlicedDataset::generate(&setup.family, &sizes, setup.validation, 11);
    let data_gen_s = start.elapsed().as_secs_f64();

    // The shared cache lets the post-fit phases reuse the estimation below
    // without retraining (hits are bit-identical to recomputation).
    let cfg = setup.config(11).with_cache(st_bench::shared_cache());
    let mut source = PoolSource::new(setup.family.clone(), 0x9157);
    let tuner = SliceTuner::new(ds, &mut source, cfg);

    // Phase: training — every subset training the estimator schedules.
    // This is where the training GEMMs (forward + backward minibatch
    // products, prepacked per-slice evaluations) spend their time.
    let start = Instant::now();
    let detailed = tuner.estimate_curves_detailed(0);
    let training_s = start.elapsed().as_secs_f64();
    let trainings = tuner.trainings();

    // Phase: curve fit — refit the measured points exactly as the
    // estimator does after its trainings, repeated for a stable reading.
    let fit_reps = if quick { 20 } else { 50 };
    let mut fits_ok = 0usize;
    let start = Instant::now();
    for _ in 0..fit_reps {
        for e in &detailed {
            if fit_power_law(&e.points).is_ok() {
                fits_ok += 1;
            }
        }
    }
    let curve_fit_s = start.elapsed().as_secs_f64() / fit_reps as f64;

    // Phase: solver — the convex allocation on the fitted curves (the
    // curves come from the cache; no retraining happens here).
    let curves = tuner.estimate_curves(0);
    let solver_reps = if quick { 20 } else { 50 };
    let mut allocation = Vec::new();
    let start = Instant::now();
    for _ in 0..solver_reps {
        allocation = tuner.one_shot_allocation(&curves, budget);
    }
    let solver_s = start.elapsed().as_secs_f64() / solver_reps as f64;

    // Phase: full trial — a fresh end-to-end One-shot run (fresh seed, so
    // nothing is answered from the cache) including the before/after
    // evaluation trainings.
    let ds2 = SlicedDataset::generate(&setup.family, &sizes, setup.validation, 12);
    let cfg2 = setup.config(12).with_cache(st_bench::shared_cache());
    let mut source2 = PoolSource::new(setup.family.clone(), 0x9158);
    let mut tuner2 = SliceTuner::new(ds2, &mut source2, cfg2);
    let start = Instant::now();
    let result = tuner2.run(Strategy::OneShot, budget);
    let full_trial_s = start.elapsed().as_secs_f64();

    let phases = [
        Phase {
            name: "data_gen",
            ms: data_gen_s * 1e3,
            trainings: None,
        },
        Phase {
            name: "training",
            ms: training_s * 1e3,
            trainings: Some(trainings),
        },
        Phase {
            name: "curve_fit",
            ms: curve_fit_s * 1e3,
            trainings: None,
        },
        Phase {
            name: "solver",
            ms: solver_s * 1e3,
            trainings: None,
        },
        Phase {
            name: "full_trial",
            ms: full_trial_s * 1e3,
            trainings: Some(result.trainings),
        },
    ];
    let total_ms: f64 = data_gen_s * 1e3 + training_s * 1e3 + curve_fit_s * 1e3 + solver_s * 1e3;

    println!("{} (B = {budget}, {} slices)", setup.label, sizes.len());
    println!("{:<12} {:>12}  note", "phase", "ms");
    rule(56);
    for p in &phases {
        let note = match p.trainings {
            Some(t) => format!("{t} model trainings"),
            None => String::new(),
        };
        println!("{:<12} {:>12.3}  {note}", p.name, p.ms);
    }
    rule(56);
    println!(
        "{:<12} {:>12.3}  (estimate + fit + solve; {} fits, {} alloc slots)\n",
        "total",
        total_ms,
        fits_ok,
        allocation.len()
    );

    // ---- Prepacked vs per-call packing gate ------------------------------
    //
    // The estimator's GEMM profile: one fixed operand (weights) multiplied
    // by a stream of small activation batches. Shape 512×784×64 (the
    // kernels bench's "fwd" shape) consumed in 16-row minibatches — the
    // minibatch regime where per-call re-packing of the 784×64 operand is
    // a measurable fraction of each call. Measured on the single-threaded
    // simd core so the reading is host-core-count independent; bits must
    // match exactly either way.
    let (rows, k, n, mb) = (512usize, 784usize, 64usize, 16usize);
    let reps = if quick { 5 } else { 9 };
    let rounds = if quick { 3 } else { 5 };
    let a = fill(rows * k, 0xA11CE);
    let b = fill(k * n, 0xB0B);
    let simd = SimdKernel;

    let run_per_call = |out: &mut [f64]| {
        out.fill(0.0);
        for r0 in (0..rows).step_by(mb) {
            let h = mb.min(rows - r0);
            simd.gemm(
                h,
                k,
                n,
                &a[r0 * k..(r0 + h) * k],
                &b,
                &mut out[r0 * n..(r0 + h) * n],
            );
        }
    };
    let run_prepacked = |out: &mut [f64]| {
        out.fill(0.0);
        // The single pack is part of the timed body: the speedup below is
        // end-to-end, not pack-cost-hidden.
        let pb = simd.pack_b(k, n, &b);
        for r0 in (0..rows).step_by(mb) {
            let h = mb.min(rows - r0);
            simd.gemm_prepacked(
                h,
                k,
                n,
                &a[r0 * k..(r0 + h) * k],
                &pb,
                &mut out[r0 * n..(r0 + h) * n],
            );
        }
    };

    let mut per_call_out = vec![0.0; rows * n];
    let mut prepacked_out = vec![0.0; rows * n];
    run_per_call(&mut per_call_out);
    run_prepacked(&mut prepacked_out);
    assert_bits_identical("prepacked 512x784x64", &per_call_out, &prepacked_out);

    // Interleaved rounds so scheduler noise cannot land on one contender.
    let (mut t_call, mut t_pack) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..rounds {
        t_call = t_call.min(best_secs(reps, || run_per_call(&mut per_call_out)));
        t_pack = t_pack.min(best_secs(reps, || run_prepacked(&mut prepacked_out)));
    }
    let speedup = t_call / t_pack;
    println!("prepacked gate: {rows}x{k}x{n} in {mb}-row minibatches (simd core, bit-identical)");
    println!(
        "  per-call packing: {:.3} ms | prepacked: {:.3} ms | speedup {speedup:.2}x (target >= 1.2x{})",
        t_call * 1e3,
        t_pack * 1e3,
        if no_gate { ", not enforced" } else { "" }
    );

    // ---- JSON emission ---------------------------------------------------
    let path = std::env::var("ST_BENCH_JSON").unwrap_or_else(|_| "BENCH_pipeline.json".to_string());
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"pipeline\",");
    let _ = writeln!(json, "  \"schema_version\": 1,");
    let _ = writeln!(json, "  \"kernel\": \"{}\",", kernel.name());
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"family\": \"{}\",", setup.label);
    let _ = writeln!(json, "  \"budget\": {budget},");
    let _ = writeln!(json, "  \"phases\": [");
    for (i, p) in phases.iter().enumerate() {
        let comma = if i + 1 < phases.len() { "," } else { "" };
        match p.trainings {
            Some(t) => {
                let _ = writeln!(
                    json,
                    "    {{\"name\": \"{}\", \"ms\": {:.6}, \"trainings\": {t}}}{comma}",
                    p.name, p.ms
                );
            }
            None => {
                let _ = writeln!(
                    json,
                    "    {{\"name\": \"{}\", \"ms\": {:.6}}}{comma}",
                    p.name, p.ms
                );
            }
        }
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"total_ms\": {total_ms:.6},");
    let _ = writeln!(json, "  \"prepacked\": {{");
    let _ = writeln!(json, "    \"shape\": \"{rows}x{k}x{n}\",");
    let _ = writeln!(json, "    \"minibatch\": {mb},");
    let _ = writeln!(json, "    \"per_call_ms\": {:.6},", t_call * 1e3);
    let _ = writeln!(json, "    \"prepacked_ms\": {:.6},", t_pack * 1e3);
    let _ = writeln!(json, "    \"speedup\": {speedup:.4},");
    let _ = writeln!(json, "    \"target\": 1.2,");
    let _ = writeln!(json, "    \"gate_enforced\": {}", !no_gate);
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("\nwrote {path}");

    if !no_gate {
        assert!(
            speedup >= 1.2,
            "prepacked must be >= 1.2x over per-call packing on {rows}x{k}x{n} \
             ({mb}-row minibatches), got {speedup:.2}x"
        );
        println!("gate passed: prepacked >= 1.2x with bit-identical outputs");
    }
}
