//! Row-major dense matrix.
//!
//! Every dense product dispatches to the process-wide compute kernel
//! ([`crate::kernel`]), so swapping `ST_KERNEL=naive|blocked` changes the
//! execution schedule of all downstream math without changing a single
//! output bit.

use crate::kernel::{kernel, PackedB};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `f64` matrix.
///
/// The layout is a single contiguous buffer of `rows * cols` elements, which
/// keeps matrix-vector products cache friendly for the small/medium shapes
/// the training loops use (feature dimension ≤ a few dozen, batch size ≤ a
/// few hundred).
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        kernel().transpose(self.rows, self.cols, &self.data, &mut out.data);
        out
    }

    /// Reshapes `self` to an all-zero `rows × cols` matrix, reusing the
    /// existing allocation when it is large enough. The workhorse of the
    /// `*_into` methods: a cleared scratch matrix costs a memset, not a
    /// round-trip through the allocator.
    pub fn reset_to_zeros(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// [`matmul`](Self::matmul) into a reusable output matrix (resized and
    /// zeroed, allocation reused) — same kernel call, identical bits, no
    /// per-call allocation in steady state.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        out.reset_to_zeros(self.rows, rhs.cols);
        kernel().gemm(
            self.rows,
            self.cols,
            rhs.cols,
            &self.data,
            &rhs.data,
            &mut out.data,
        );
    }

    /// Matrix product `self * rhsᵀ` without materializing the transpose.
    ///
    /// This is the backward-pass shape `dZ · Wᵀ`: row `j` of `rhs` serves
    /// directly as column `j` of `rhsᵀ`, so both operands stream row-major.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_nt_into(rhs, &mut out);
        out
    }

    /// [`matmul_nt`](Self::matmul_nt) into a reusable output matrix.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_nt_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt shape mismatch: {}x{} * ({}x{})ᵀ",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        out.reset_to_zeros(self.rows, rhs.rows);
        kernel().gemm_nt(
            self.rows,
            self.cols,
            rhs.rows,
            &self.data,
            &rhs.data,
            &mut out.data,
        );
    }

    /// Matrix product `selfᵀ * rhs` without materializing the transpose.
    ///
    /// This is the gradient shape `Xᵀ · dZ`; both operands are streamed
    /// row-major as a sequence of rank-1 updates.
    ///
    /// # Panics
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_tn_into(rhs, &mut out);
        out
    }

    /// [`matmul_tn`](Self::matmul_tn) into a reusable output matrix.
    ///
    /// # Panics
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn matmul_tn_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_tn shape mismatch: ({}x{})ᵀ * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        out.reset_to_zeros(self.cols, rhs.cols);
        kernel().gemm_tn(
            self.rows,
            self.cols,
            rhs.cols,
            &self.data,
            &rhs.data,
            &mut out.data,
        );
    }

    /// Packs `self` once as the right-hand side of [`matmul`](Self::matmul)
    /// (`X · self` products) for reuse across calls; see
    /// [`crate::kernel::PackedB`] for the lifetime/invalidation contract.
    pub fn pack_as_rhs(&self) -> PackedB {
        kernel().pack_b(self.rows, self.cols, &self.data)
    }

    /// [`pack_as_rhs`](Self::pack_as_rhs) into a reusable handle
    /// (allocation reused — re-packing after a weight update is a copy).
    pub fn pack_as_rhs_into(&self, dst: &mut PackedB) {
        kernel().pack_b_into(self.rows, self.cols, &self.data, dst);
    }

    /// Packs `self` once as the (transposed) right-hand side of
    /// [`matmul_nt`](Self::matmul_nt) (`X · selfᵀ` products); the
    /// transpose is resolved at pack time.
    pub fn pack_as_rhs_t(&self) -> PackedB {
        kernel().pack_b_t(self.cols, self.rows, &self.data)
    }

    /// [`pack_as_rhs_t`](Self::pack_as_rhs_t) into a reusable handle.
    pub fn pack_as_rhs_t_into(&self, dst: &mut PackedB) {
        kernel().pack_b_t_into(self.cols, self.rows, &self.data, dst);
    }

    /// [`matmul_into`](Self::matmul_into) against a prepacked right-hand
    /// side ([`pack_as_rhs`](Self::pack_as_rhs)): same kernel arithmetic,
    /// identical bits, no per-call packing.
    ///
    /// # Panics
    /// Panics if `self.cols() != pack.k()`.
    pub fn matmul_prepacked_into(&self, pack: &PackedB, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            pack.k(),
            "matmul_prepacked shape mismatch: {}x{} * packed {}x{}",
            self.rows,
            self.cols,
            pack.k(),
            pack.n()
        );
        out.reset_to_zeros(self.rows, pack.n());
        kernel().gemm_prepacked(
            self.rows,
            self.cols,
            pack.n(),
            &self.data,
            pack,
            &mut out.data,
        );
    }

    /// The affine forward `self · W + b` in one kernel pass:
    /// [`matmul_prepacked_into`](Self::matmul_prepacked_into) with the
    /// bias broadcast fused into the packed cores' write-back instead of a
    /// second full sweep over `out` ([`add_bias_rows`](Self::add_bias_rows)).
    /// Bit-identical to the two-step sequence on every deterministic
    /// backend (the fused-bias contract, proptested).
    ///
    /// # Panics
    /// Panics if `self.cols() != pack.k()` or `bias.len() != pack.n()`.
    pub fn matmul_prepacked_bias_into(&self, pack: &PackedB, bias: &[f64], out: &mut Matrix) {
        assert_eq!(
            self.cols,
            pack.k(),
            "matmul_prepacked shape mismatch: {}x{} * packed {}x{}",
            self.rows,
            self.cols,
            pack.k(),
            pack.n()
        );
        assert_eq!(bias.len(), pack.n(), "bias length mismatch");
        out.reset_to_zeros(self.rows, pack.n());
        kernel().gemm_prepacked_bias(
            self.rows,
            self.cols,
            pack.n(),
            &self.data,
            pack,
            bias,
            &mut out.data,
        );
    }

    /// [`matmul_prepacked_bias_into`](Self::matmul_prepacked_bias_into)
    /// with the hidden-layer ReLU clamp also fused into the single packed
    /// write-back. The clamp is `v < 0.0 → 0.0` (keeps `-0.0` and NaN),
    /// bit-identical to the fused-bias call followed by a separate scalar
    /// ReLU sweep on every deterministic backend.
    ///
    /// # Panics
    /// Panics if `self.cols() != pack.k()` or `bias.len() != pack.n()`.
    pub fn matmul_prepacked_bias_relu_into(&self, pack: &PackedB, bias: &[f64], out: &mut Matrix) {
        assert_eq!(
            self.cols,
            pack.k(),
            "matmul_prepacked shape mismatch: {}x{} * packed {}x{}",
            self.rows,
            self.cols,
            pack.k(),
            pack.n()
        );
        assert_eq!(bias.len(), pack.n(), "bias length mismatch");
        out.reset_to_zeros(self.rows, pack.n());
        kernel().gemm_prepacked_bias_relu(
            self.rows,
            self.cols,
            pack.n(),
            &self.data,
            pack,
            bias,
            &mut out.data,
        );
    }

    /// [`matmul_nt_into`](Self::matmul_nt_into) against a prepacked
    /// right-hand side ([`pack_as_rhs_t`](Self::pack_as_rhs_t)).
    ///
    /// # Panics
    /// Panics if `self.cols() != pack.k()`.
    pub fn matmul_nt_prepacked_into(&self, pack: &PackedB, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            pack.k(),
            "matmul_nt_prepacked shape mismatch: {}x{} * packed ({}x{})ᵀ",
            self.rows,
            self.cols,
            pack.n(),
            pack.k()
        );
        out.reset_to_zeros(self.rows, pack.n());
        kernel().gemm_nt_prepacked(
            self.rows,
            self.cols,
            pack.n(),
            &self.data,
            pack,
            &mut out.data,
        );
    }

    /// Sparse-aware matrix product: skips zero entries of `self`.
    ///
    /// The dense [`matmul`](Self::matmul) path deliberately has no zero
    /// test — on dense data the branch mispredicts and costs more than the
    /// skipped multiply. Use this variant when `self` is known to be
    /// mostly zeros (e.g. one-hot/masked designs); the result may differ
    /// from `matmul` only in the sign of negative zeros.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul_sparse(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul_sparse shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec shape mismatch");
        let mut out = vec![0.0; self.rows];
        kernel().matvec(self.rows, self.cols, &self.data, v, &mut out);
        out
    }

    /// Transposed matrix-vector product `selfᵀ * v`.
    ///
    /// # Panics
    /// Panics if `v.len() != self.rows()`.
    pub fn matvec_t(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "matvec_t shape mismatch");
        let mut out = vec![0.0; self.cols];
        kernel().matvec_t(self.rows, self.cols, &self.data, v, &mut out);
        out
    }

    /// Per-column sums (the bias-gradient reduction of a batch).
    ///
    /// Accumulated directly in ascending row order — the same bits as a
    /// `matvec_t` against a ones vector, without allocating one in the
    /// per-minibatch gradient hot path.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.col_sums_into(&mut out);
        out
    }

    /// [`col_sums`](Self::col_sums) into a reusable vector (cleared and
    /// refilled, allocation reused).
    pub fn col_sums_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.cols, 0.0);
        for row in self.data.chunks_exact(self.cols.max(1)) {
            for (o, &x) in out.iter_mut().zip(row) {
                *o += x;
            }
        }
    }

    /// Copies the listed rows into a new matrix (minibatch gathering).
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.gather_rows_into(indices, &mut out);
        out
    }

    /// [`gather_rows`](Self::gather_rows) into a reusable matrix: the
    /// training loop gathers a fresh minibatch hundreds of times per
    /// epoch, and this keeps it allocation-free in steady state.
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn gather_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        out.rows = indices.len();
        out.cols = self.cols;
        out.data.clear();
        out.data.reserve(indices.len() * self.cols);
        for &i in indices {
            assert!(i < self.rows, "gather_rows: row {i} out of {}", self.rows);
            out.data.extend_from_slice(self.row(i));
        }
    }

    /// Appends rows from a row-major buffer, growing the matrix in place.
    ///
    /// An empty (`0 × 0`) matrix adopts `cols` from the first append. This
    /// is the grow operation behind the incremental dataset snapshot:
    /// acquired rows land below the existing stack without re-stacking it.
    ///
    /// # Panics
    /// Panics if `cols == 0`, if `data.len()` is not a multiple of `cols`,
    /// or if a non-empty matrix has a different column count.
    pub fn append_rows(&mut self, cols: usize, data: &[f64]) {
        assert!(cols > 0, "append_rows needs a positive column count");
        assert_eq!(
            data.len() % cols,
            0,
            "append_rows: buffer length {} is not a multiple of {cols}",
            data.len()
        );
        if self.rows == 0 {
            self.cols = cols;
            self.data.clear();
        }
        assert_eq!(self.cols, cols, "append_rows: column count mismatch");
        self.data.extend_from_slice(data);
        self.rows += data.len() / cols;
    }

    /// Adds `bias` to every row (the broadcast `+ b` of an affine layer).
    ///
    /// # Panics
    /// Panics if `bias.len() != self.cols()`.
    pub fn add_bias_rows(&mut self, bias: &[f64]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            for (o, &b) in self.row_mut(r).iter_mut().zip(bias) {
                *o += b;
            }
        }
    }

    /// Elementwise in-place addition `self += rhs`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "add shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// In-place scaled addition `self += alpha * rhs`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy_assign(&mut self, alpha: f64, rhs: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "axpy shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// In-place scalar multiplication.
    pub fn scale(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Fill every entry with `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// True if any entry is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

impl Default for Matrix {
    /// An empty `0 × 0` matrix (the natural seed for `*_into` scratch).
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        if self.rows > 8 {
            writeln!(f, "  ... ({} more rows)", self.rows - 8)?;
        }
        write!(f, "]")
    }
}

/// Checks that a batched operand list holds either one entry (broadcast to
/// every product) or exactly `batch` entries — the kernel-layer convention
/// ([`crate::kernel::GemmBackend::gemm_batched`]) lifted to matrices.
fn check_matrix_batched_len(what: &str, len: usize, batch: usize) {
    assert!(
        len == 1 || len == batch,
        "batched {what} operand count mismatch: {len} operands for batch {batch}"
    );
}

/// Resolves operand `i` of a batched list under the broadcast convention.
#[inline]
fn pick<'a, T: ?Sized>(xs: &[&'a T], i: usize) -> &'a T {
    if xs.len() == 1 {
        xs[0]
    } else {
        xs[i]
    }
}

/// Batched [`Matrix::matmul_tn_into`]: computes `xs[i]ᵀ * rhs[i]` for every
/// product through one kernel call. All products must share one shape (the
/// batched-GEMM contract); operand lists may hold a single broadcast entry.
/// Bit-identical to the per-product sequential calls on every deterministic
/// backend.
///
/// # Panics
/// Panics on a per-product shape mismatch, a non-uniform batch shape, or an
/// operand list whose length is neither 1 nor `outs.len()`.
pub fn matmul_batched_tn_into(xs: &[&Matrix], rhs: &[&Matrix], outs: &mut [&mut Matrix]) {
    let batch = outs.len();
    check_matrix_batched_len("A", xs.len(), batch);
    check_matrix_batched_len("B", rhs.len(), batch);
    if batch == 0 {
        return;
    }
    let (rows, cols, rcols) = (xs[0].rows, xs[0].cols, rhs[0].cols);
    for i in 0..batch {
        let (a, b) = (pick(xs, i), pick(rhs, i));
        assert_eq!(
            a.rows, b.rows,
            "matmul_tn shape mismatch: ({}x{})ᵀ * {}x{}",
            a.rows, a.cols, b.rows, b.cols
        );
        assert!(
            a.rows == rows && a.cols == cols && b.cols == rcols,
            "batched matmul_tn requires one shared shape: product {i} is ({}x{})ᵀ * {}x{}, batch is ({rows}x{cols})ᵀ * {rows}x{rcols}",
            a.rows, a.cols, b.rows, b.cols
        );
    }
    for out in outs.iter_mut() {
        out.reset_to_zeros(cols, rcols);
    }
    let a_list: Vec<&[f64]> = xs.iter().map(|m| m.data.as_slice()).collect();
    let b_list: Vec<&[f64]> = rhs.iter().map(|m| m.data.as_slice()).collect();
    let mut out_list: Vec<&mut [f64]> = outs.iter_mut().map(|m| m.data.as_mut_slice()).collect();
    kernel().gemm_batched_tn(rows, cols, rcols, &a_list, &b_list, &mut out_list);
}

/// Batched [`Matrix::matmul_nt_into`]: computes `xs[i] * rhs[i]ᵀ` for every
/// product through one kernel call. Same shape/broadcast contract as
/// [`matmul_batched_tn_into`].
///
/// # Panics
/// Panics on a per-product shape mismatch, a non-uniform batch shape, or an
/// operand list whose length is neither 1 nor `outs.len()`.
pub fn matmul_batched_nt_into(xs: &[&Matrix], rhs: &[&Matrix], outs: &mut [&mut Matrix]) {
    let batch = outs.len();
    check_matrix_batched_len("A", xs.len(), batch);
    check_matrix_batched_len("Bᵀ", rhs.len(), batch);
    if batch == 0 {
        return;
    }
    let (rows, cols, rrows) = (xs[0].rows, xs[0].cols, rhs[0].rows);
    for i in 0..batch {
        let (a, b) = (pick(xs, i), pick(rhs, i));
        assert_eq!(
            a.cols, b.cols,
            "matmul_nt shape mismatch: {}x{} * ({}x{})ᵀ",
            a.rows, a.cols, b.rows, b.cols
        );
        assert!(
            a.rows == rows && a.cols == cols && b.rows == rrows,
            "batched matmul_nt requires one shared shape: product {i} is {}x{} * ({}x{})ᵀ, batch is {rows}x{cols} * ({rrows}x{cols})ᵀ",
            a.rows, a.cols, b.rows, b.cols
        );
    }
    for out in outs.iter_mut() {
        out.reset_to_zeros(rows, rrows);
    }
    let a_list: Vec<&[f64]> = xs.iter().map(|m| m.data.as_slice()).collect();
    let b_list: Vec<&[f64]> = rhs.iter().map(|m| m.data.as_slice()).collect();
    let mut out_list: Vec<&mut [f64]> = outs.iter_mut().map(|m| m.data.as_mut_slice()).collect();
    kernel().gemm_batched_nt(rows, cols, rrows, &a_list, &b_list, &mut out_list);
}

/// Batched [`Matrix::matmul_prepacked_bias_into`]: the affine forward
/// `xs[i] · W_i + b_i` for every product through one kernel call against
/// prepacked right-hand sides. Same shape/broadcast contract as
/// [`matmul_batched_tn_into`].
///
/// # Panics
/// Panics on a per-product shape mismatch, a non-uniform batch shape, or an
/// operand list whose length is neither 1 nor `outs.len()`.
pub fn matmul_batched_prepacked_bias_into(
    xs: &[&Matrix],
    packs: &[&PackedB],
    biases: &[&[f64]],
    outs: &mut [&mut Matrix],
) {
    let (rows, k, n) = check_batched_prepacked(xs, packs, biases, outs.len());
    if outs.is_empty() {
        return;
    }
    for out in outs.iter_mut() {
        out.reset_to_zeros(rows, n);
    }
    let a_list: Vec<&[f64]> = xs.iter().map(|m| m.data.as_slice()).collect();
    let mut out_list: Vec<&mut [f64]> = outs.iter_mut().map(|m| m.data.as_mut_slice()).collect();
    kernel().gemm_batched_prepacked_bias(rows, k, n, &a_list, packs, biases, &mut out_list);
}

/// Batched [`Matrix::matmul_prepacked_bias_relu_into`]: the hidden-layer
/// forward `relu(xs[i] · W_i + b_i)` for every product through one kernel
/// call, with the `v < 0.0 → 0.0` clamp fused into the single packed
/// write-back. Same shape/broadcast contract as [`matmul_batched_tn_into`].
///
/// # Panics
/// Panics on a per-product shape mismatch, a non-uniform batch shape, or an
/// operand list whose length is neither 1 nor `outs.len()`.
pub fn matmul_batched_prepacked_bias_relu_into(
    xs: &[&Matrix],
    packs: &[&PackedB],
    biases: &[&[f64]],
    outs: &mut [&mut Matrix],
) {
    let (rows, k, n) = check_batched_prepacked(xs, packs, biases, outs.len());
    if outs.is_empty() {
        return;
    }
    for out in outs.iter_mut() {
        out.reset_to_zeros(rows, n);
    }
    let a_list: Vec<&[f64]> = xs.iter().map(|m| m.data.as_slice()).collect();
    let mut out_list: Vec<&mut [f64]> = outs.iter_mut().map(|m| m.data.as_mut_slice()).collect();
    kernel().gemm_batched_prepacked_bias_relu(rows, k, n, &a_list, packs, biases, &mut out_list);
}

/// Shared validation for the batched prepacked-affine entry points; returns
/// the batch's shared `(rows, k, n)` (zeros for an empty batch).
fn check_batched_prepacked(
    xs: &[&Matrix],
    packs: &[&PackedB],
    biases: &[&[f64]],
    batch: usize,
) -> (usize, usize, usize) {
    check_matrix_batched_len("A", xs.len(), batch);
    check_matrix_batched_len("packed B", packs.len(), batch);
    check_matrix_batched_len("bias", biases.len(), batch);
    if batch == 0 {
        return (0, 0, 0);
    }
    let (rows, k, n) = (xs[0].rows, packs[0].k(), packs[0].n());
    for i in 0..batch {
        let (a, p, bias) = (pick(xs, i), pick(packs, i), pick(biases, i));
        assert_eq!(
            a.cols,
            p.k(),
            "matmul_prepacked shape mismatch: {}x{} * packed {}x{}",
            a.rows,
            a.cols,
            p.k(),
            p.n()
        );
        assert_eq!(bias.len(), p.n(), "bias length mismatch");
        assert!(
            a.rows == rows && p.k() == k && p.n() == n,
            "batched matmul_prepacked requires one shared shape: product {i} is {}x{} * packed {}x{}, batch is {rows}x{k} * packed {k}x{n}",
            a.rows,
            a.cols,
            p.k(),
            p.n()
        );
    }
    (rows, k, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_round_trips() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m[(1, 2)], 6.0);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 5]);
    }

    #[test]
    fn append_rows_grows_in_place() {
        let mut m = Matrix::zeros(0, 0);
        m.append_rows(3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(m, Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]));
        m.append_rows(3, &[7., 8., 9.]);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.row(2), &[7., 8., 9.]);
        m.append_rows(3, &[]);
        assert_eq!(m.rows(), 3);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn append_rows_rejects_width_change() {
        let mut m = Matrix::from_vec(1, 2, vec![1., 2.]);
        m.append_rows(3, &[1., 2., 3.]);
    }

    #[test]
    fn identity_matmul_is_noop() {
        let m = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i), m);
        assert_eq!(i.matmul(&m), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_vec(2, 2, vec![58., 64., 139., 154.]));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let v = vec![1., 0., -1.];
        assert_eq!(a.matvec(&v), vec![-2., -2.]);
    }

    #[test]
    fn matvec_t_matches_transpose_matvec() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let v = vec![2., -1.];
        assert_eq!(a.matvec_t(&v), a.transpose().matvec(&v));
    }

    #[test]
    fn axpy_assign_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        let g = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        a.axpy_assign(0.5, &g);
        a.axpy_assign(0.5, &g);
        assert_eq!(a, g);
    }

    #[test]
    fn frobenius_norm_of_unit_rows() {
        let m = Matrix::from_vec(2, 2, vec![3., 0., 0., 4.]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(4, 3, (0..12).map(|i| i as f64 * 0.5 - 2.0).collect());
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1., -2., 3., 4., -5., 6.]);
        let b = Matrix::from_vec(3, 4, (0..12).map(|i| (i as f64).sin()).collect());
        assert_eq!(a.matmul_tn(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_sparse_agrees_with_dense() {
        let a = Matrix::from_vec(2, 3, vec![0., 2., 0., 4., 0., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        assert_eq!(a.matmul_sparse(&b), a.matmul(&b));
    }

    #[test]
    fn col_sums_reduce_rows() {
        let m = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m.col_sums(), vec![9., 12.]);
    }

    #[test]
    fn gather_rows_copies_in_order() {
        let m = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let g = m.gather_rows(&[2, 0, 2]);
        assert_eq!(g, Matrix::from_vec(3, 2, vec![5., 6., 1., 2., 5., 6.]));
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn gather_rows_rejects_bad_index() {
        let m = Matrix::zeros(2, 2);
        let _ = m.gather_rows(&[3]);
    }

    #[test]
    fn add_bias_rows_broadcasts() {
        let mut m = Matrix::zeros(2, 3);
        m.add_bias_rows(&[1.0, 2.0, 3.0]);
        assert_eq!(m, Matrix::from_vec(2, 3, vec![1., 2., 3., 1., 2., 3.]));
    }

    #[test]
    fn col_extracts_column() {
        let m = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m.col(1), vec![2., 4., 6.]);
    }

    #[test]
    fn into_variants_match_and_reuse_allocations() {
        let a = Matrix::from_vec(3, 4, (0..12).map(|i| i as f64 * 0.7 - 4.0).collect());
        let b = Matrix::from_vec(4, 2, (0..8).map(|i| (i as f64).cos()).collect());
        let bt = Matrix::from_vec(5, 4, (0..20).map(|i| (i as f64).sin()).collect());
        let c = Matrix::from_vec(3, 5, (0..15).map(|i| i as f64 - 7.0).collect());

        // Seed the scratch with a larger shape so reuse paths run.
        let mut out = Matrix::zeros(9, 9);
        let cap = out.data.capacity();
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
        a.matmul_nt_into(&bt, &mut out);
        assert_eq!(out, a.matmul_nt(&bt));
        a.matmul_tn_into(&c, &mut out);
        assert_eq!(out, a.matmul_tn(&c));
        a.gather_rows_into(&[2, 0], &mut out);
        assert_eq!(out, a.gather_rows(&[2, 0]));
        assert_eq!(out.data.capacity(), cap, "allocation reused");

        let mut sums = vec![1.0; 7];
        a.col_sums_into(&mut sums);
        assert_eq!(sums, a.col_sums());
    }

    #[test]
    fn prepacked_matmuls_match_plain() {
        let a = Matrix::from_vec(3, 4, (0..12).map(|i| i as f64 * 0.7 - 4.0).collect());
        let b = Matrix::from_vec(4, 2, (0..8).map(|i| (i as f64).cos()).collect());
        let bt = Matrix::from_vec(5, 4, (0..20).map(|i| (i as f64).sin()).collect());

        let pb = b.pack_as_rhs();
        let mut out = Matrix::zeros(0, 0);
        a.matmul_prepacked_into(&pb, &mut out);
        assert_eq!(out, a.matmul(&b));

        let pbt = bt.pack_as_rhs_t();
        a.matmul_nt_prepacked_into(&pbt, &mut out);
        assert_eq!(out, a.matmul_nt(&bt));

        // Fused bias == matmul_prepacked_into + add_bias_rows, bitwise.
        let bias = vec![0.25, -1.5];
        let mut want = Matrix::zeros(0, 0);
        a.matmul_prepacked_into(&pb, &mut want);
        want.add_bias_rows(&bias);
        a.matmul_prepacked_bias_into(&pb, &bias, &mut out);
        for (w, g) in want.as_slice().iter().zip(out.as_slice()) {
            assert_eq!(w.to_bits(), g.to_bits());
        }

        // Fused bias+relu == fused bias + separate scalar clamp, bitwise.
        let mut want_relu = Matrix::zeros(0, 0);
        a.matmul_prepacked_bias_into(&pb, &bias, &mut want_relu);
        for v in want_relu.as_mut_slice() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        a.matmul_prepacked_bias_relu_into(&pb, &bias, &mut out);
        for (w, g) in want_relu.as_slice().iter().zip(out.as_slice()) {
            assert_eq!(w.to_bits(), g.to_bits());
        }

        // Re-pack into the same handles after mutating the operands.
        let mut b2 = b.clone();
        b2.scale(1.5);
        let mut pb2 = pb;
        b2.pack_as_rhs_into(&mut pb2);
        a.matmul_prepacked_into(&pb2, &mut out);
        assert_eq!(out, a.matmul(&b2));
    }

    #[test]
    fn batched_matmuls_match_sequential_bitwise() {
        let batch = 4;
        let fill = |rows: usize, cols: usize, seed: u64| {
            Matrix::from_fn(rows, cols, |r, c| {
                let mut h = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((r * cols + c) as u64);
                h ^= h >> 31;
                (h % 1000) as f64 / 500.0 - 1.0
            })
        };
        let xs: Vec<Matrix> = (0..batch).map(|i| fill(5, 7, 11 + i as u64)).collect();
        let ws: Vec<Matrix> = (0..batch).map(|i| fill(7, 3, 31 + i as u64)).collect();
        let biases: Vec<Vec<f64>> = (0..batch)
            .map(|i| fill(1, 3, 61 + i as u64).as_slice().to_vec())
            .collect();
        let packs: Vec<PackedB> = ws.iter().map(|w| w.pack_as_rhs()).collect();

        let x_refs: Vec<&Matrix> = xs.iter().collect();
        let pack_refs: Vec<&PackedB> = packs.iter().collect();
        let bias_refs: Vec<&[f64]> = biases.iter().map(|b| b.as_slice()).collect();

        let assert_bits = |want: &[Matrix], got: &[Matrix]| {
            for (w, g) in want.iter().zip(got) {
                assert_eq!((w.rows(), w.cols()), (g.rows(), g.cols()));
                for (a, b) in w.as_slice().iter().zip(g.as_slice()) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        };
        let run = |f: &dyn Fn(&mut [&mut Matrix])| {
            let mut outs: Vec<Matrix> = (0..batch).map(|_| Matrix::zeros(0, 0)).collect();
            let mut out_refs: Vec<&mut Matrix> = outs.iter_mut().collect();
            f(&mut out_refs);
            outs
        };

        // tn: xsᵀ[i] * ws-as-5x3 — reuse xs as both operands of matching shape.
        let cs: Vec<Matrix> = (0..batch).map(|i| fill(5, 3, 91 + i as u64)).collect();
        let c_refs: Vec<&Matrix> = cs.iter().collect();
        let want: Vec<Matrix> = xs.iter().zip(&cs).map(|(a, c)| a.matmul_tn(c)).collect();
        let got = run(&|outs| matmul_batched_tn_into(&x_refs, &c_refs, outs));
        assert_bits(&want, &got);

        // nt: xs[i] * (3x7)ᵀ.
        let ds: Vec<Matrix> = (0..batch).map(|i| fill(3, 7, 121 + i as u64)).collect();
        let d_refs: Vec<&Matrix> = ds.iter().collect();
        let want: Vec<Matrix> = xs.iter().zip(&ds).map(|(a, d)| a.matmul_nt(d)).collect();
        let got = run(&|outs| matmul_batched_nt_into(&x_refs, &d_refs, outs));
        assert_bits(&want, &got);

        // prepacked bias and bias+relu, including a broadcast (shared) A.
        let mut want = Vec::new();
        for i in 0..batch {
            let mut o = Matrix::zeros(0, 0);
            xs[i].matmul_prepacked_bias_into(&packs[i], &biases[i], &mut o);
            want.push(o);
        }
        let got =
            run(&|outs| matmul_batched_prepacked_bias_into(&x_refs, &pack_refs, &bias_refs, outs));
        assert_bits(&want, &got);

        let mut want_relu = Vec::new();
        for i in 0..batch {
            let mut o = Matrix::zeros(0, 0);
            xs[0].matmul_prepacked_bias_relu_into(&packs[i], &biases[i], &mut o);
            want_relu.push(o);
        }
        let shared_a: Vec<&Matrix> = vec![&xs[0]];
        let got = run(&|outs| {
            matmul_batched_prepacked_bias_relu_into(&shared_a, &pack_refs, &bias_refs, outs)
        });
        assert_bits(&want_relu, &got);
    }

    #[test]
    #[should_panic(expected = "batched matmul_tn requires one shared shape")]
    fn batched_matmul_rejects_mixed_shapes() {
        let a0 = Matrix::zeros(4, 3);
        let a1 = Matrix::zeros(5, 3);
        let b = Matrix::zeros(4, 2);
        let b1 = Matrix::zeros(5, 2);
        let mut o0 = Matrix::zeros(0, 0);
        let mut o1 = Matrix::zeros(0, 0);
        matmul_batched_tn_into(&[&a0, &a1], &[&b, &b1], &mut [&mut o0, &mut o1]);
    }

    #[test]
    fn reset_to_zeros_reshapes_and_clears() {
        let mut m = Matrix::from_vec(2, 3, vec![1.; 6]);
        m.reset_to_zeros(3, 2);
        assert_eq!((m.rows(), m.cols()), (3, 2));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn detects_non_finite() {
        let mut m = Matrix::zeros(2, 2);
        assert!(!m.has_non_finite());
        m[(1, 1)] = f64::NAN;
        assert!(m.has_non_finite());
    }
}
