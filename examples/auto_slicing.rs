//! Discovering slices automatically before tuning (Appendix A).
//!
//! ```sh
//! cargo run --release --example auto_slicing
//! ```
//!
//! Slice Tuner assumes slices are given, but Appendix A sketches how to
//! find the largest-possible unbiased slices with a decision-tree style
//! split on label entropy. This example starts from an *unsliced* pool of
//! mixed data, rediscovers slices with [`auto_slice`], rebuilds a sliced
//! dataset from the assignment, and runs the tuner on the discovered
//! slices.

use slice_tuner::{PoolSource, SliceTuner, Strategy, TSchedule, TunerConfig};
use st_data::{
    auto_slice, families, seeded_rng, stratified_split, Example, SliceId, SlicedDataset,
    SlicingConfig,
};
use st_models::ModelSpec;

fn main() {
    // Pretend we received one undifferentiated dataset: pool the census
    // family's slices and erase the slice ids.
    let family = families::census();
    let pooled = SlicedDataset::generate(&family, &[250; 4], 0, 3);
    let mut all: Vec<Example> = pooled.all_train();
    for e in &mut all {
        e.slice = SliceId(0);
    }
    println!("pooled {} examples with no slice structure", all.len());

    // Appendix A: recursively split while label entropy is high.
    let cfg = SlicingConfig {
        max_depth: 3,
        min_slice_size: 60,
        ..Default::default()
    };
    let result = auto_slice(&all, family.num_classes, &cfg);
    println!(
        "auto-slicing found {} slices using {} splits:",
        result.num_slices,
        result.splits.len()
    );
    for (i, (&size, &h)) in result
        .slice_sizes()
        .iter()
        .zip(&result.slice_entropies)
        .enumerate()
    {
        println!("  slice {i}: {size} examples, label entropy {h:.3}");
    }

    // Rebuild a SlicedDataset from the discovered assignment.
    let relabeled = result.relabel(&all);
    let mut rng = seeded_rng(5);
    let mut ds = SlicedDataset::empty(
        &(0..result.num_slices)
            .map(|i| format!("auto_{i}"))
            .collect::<Vec<_>>(),
        &vec![1.0; result.num_slices],
        family.feature_dim,
        family.num_classes,
    );
    for s in 0..result.num_slices {
        let members: Vec<Example> = relabeled
            .iter()
            .filter(|e| e.slice.index() == s)
            .cloned()
            .collect();
        let (train, val) = stratified_split(&members, 0.3, &mut rng);
        ds.slices[s].train = train;
        ds.slices[s].validation = val;
    }

    // Acquire against the original family, remapping discovered slices to
    // their closest generating slice by majority vote of the assignment.
    // (For simplicity this example reuses the pool keyed by discovered id
    // modulo the family's slice count.)
    let mut pool = RemappedPool {
        inner: PoolSource::new(family.clone(), 11),
        k: family.num_slices(),
    };

    let mut config = TunerConfig::new(ModelSpec::softmax()).with_seed(11);
    config.min_slice_size = 30;
    let mut tuner = SliceTuner::new(ds, &mut pool, config);
    let outcome = tuner.run(Strategy::Iterative(TSchedule::moderate()), 400.0);

    println!("\nacquired per discovered slice: {:?}", outcome.acquired);
    println!(
        "loss    {:.4} -> {:.4}",
        outcome.original.overall_loss, outcome.report.overall_loss
    );
    println!(
        "avg EER {:.4} -> {:.4}",
        outcome.original.avg_eer, outcome.report.avg_eer
    );
}

/// Maps discovered slice ids onto the generating family's id space.
struct RemappedPool {
    inner: PoolSource,
    k: usize,
}

impl slice_tuner::AcquisitionSource for RemappedPool {
    fn cost(&self, _slice: SliceId) -> f64 {
        1.0
    }

    fn acquire(&mut self, slice: SliceId, n: usize) -> Vec<Example> {
        let mapped = SliceId(slice.index() % self.k);
        let mut got = self.inner.acquire(mapped, n);
        for e in &mut got {
            e.slice = slice; // keep the discovered id on absorbed examples
        }
        got
    }
}
