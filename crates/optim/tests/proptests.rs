//! Property-based tests for the acquisition optimizer.

use proptest::prelude::*;
use st_curve::PowerLaw;
use st_optim::{
    change_ratio, project_weighted_simplex, round_to_budget, solve_kkt, solve_projected,
    AcquisitionProblem, SolverOptions,
};

fn arb_problem(lambda: f64) -> impl Strategy<Value = AcquisitionProblem> {
    (2usize..6).prop_flat_map(move |n| {
        (
            prop::collection::vec((0.3f64..5.0, 0.05f64..1.0), n..=n),
            prop::collection::vec(20.0f64..400.0, n..=n),
            prop::collection::vec(0.5f64..2.0, n..=n),
            50.0f64..2000.0,
        )
            .prop_map(move |(ba, sizes, costs, budget)| {
                let curves = ba.into_iter().map(|(b, a)| PowerLaw::new(b, a)).collect();
                AcquisitionProblem::new(curves, sizes, costs, budget, lambda)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn projection_always_feasible(
        y in prop::collection::vec(-100.0f64..100.0, 1..8),
        budget in 0.0f64..500.0,
    ) {
        let costs: Vec<f64> = (0..y.len()).map(|i| 0.5 + (i % 3) as f64 * 0.5).collect();
        let d = project_weighted_simplex(&y, &costs, budget);
        prop_assert!(d.iter().all(|&x| x >= 0.0));
        let total: f64 = d.iter().zip(&costs).map(|(x, c)| x * c).sum();
        prop_assert!((total - budget).abs() < 1e-6 * budget.max(1.0), "{total} vs {budget}");
    }

    #[test]
    fn projection_is_idempotent(
        y in prop::collection::vec(-50.0f64..50.0, 2..6),
        budget in 1.0f64..200.0,
    ) {
        let costs = vec![1.0; y.len()];
        let once = project_weighted_simplex(&y, &costs, budget);
        let twice = project_weighted_simplex(&once, &costs, budget);
        for (a, b) in once.iter().zip(&twice) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn projected_solver_feasible_and_no_worse_than_uniform(p in arb_problem(1.0)) {
        let d = solve_projected(&p, &SolverOptions::default());
        prop_assert!(p.is_feasible(&d, 1e-5), "{d:?}");
        let per = p.budget / p.costs.iter().sum::<f64>();
        let uniform = vec![per; p.n()];
        prop_assert!(p.objective(&d) <= p.objective(&uniform) + 1e-7);
    }

    #[test]
    fn kkt_and_projected_agree_at_lambda_zero(p in arb_problem(0.0)) {
        let kkt = solve_kkt(&p);
        let pg = solve_projected(&p, &SolverOptions::default());
        prop_assert!(p.is_feasible(&kkt, 1e-5));
        let (ok, op) = (p.objective(&kkt), p.objective(&pg));
        // Both convex solvers must land on the same optimum value.
        prop_assert!((ok - op).abs() <= 5e-3 * ok.max(1e-9), "kkt {ok} vs pg {op}");
        // And the KKT solution is never beaten (it is closed-form optimal).
        prop_assert!(ok <= op + 5e-3 * ok.max(1e-9));
    }

    #[test]
    fn more_budget_never_hurts(p in arb_problem(0.0)) {
        let small = solve_kkt(&p);
        let mut bigger = p.clone();
        bigger.budget *= 2.0;
        let large = solve_kkt(&bigger);
        prop_assert!(bigger.objective(&large) <= p.objective(&small) + 1e-9);
    }

    #[test]
    fn rounding_stays_within_budget(
        d in prop::collection::vec(0.0f64..300.0, 1..8),
        extra in 0.0f64..10.0,
    ) {
        let costs: Vec<f64> = (0..d.len()).map(|i| 1.0 + (i % 4) as f64 * 0.25).collect();
        let budget: f64 = d.iter().zip(&costs).map(|(x, c)| x * c).sum::<f64>() + extra;
        let counts = round_to_budget(&d, &costs, budget);
        let spent: f64 = counts.iter().zip(&costs).map(|(&n, &c)| n as f64 * c).sum();
        prop_assert!(spent <= budget + 1e-6);
        // Never rounds down by more than one whole example per slice.
        for (&n, &x) in counts.iter().zip(&d) {
            prop_assert!(n as f64 >= x.floor());
            prop_assert!(n as f64 <= x.ceil());
        }
    }

    #[test]
    fn change_ratio_keeps_limit(
        sizes in prop::collection::vec(10.0f64..300.0, 2..6),
        adds_seed in 0u64..1000,
        t in 0.2f64..3.0,
    ) {
        let add: Vec<f64> = sizes
            .iter()
            .enumerate()
            .map(|(i, _)| ((adds_seed as usize + i * 131) % 500) as f64)
            .collect();
        let ir = |s: &[f64]| {
            s.iter().cloned().fold(f64::MIN, f64::max) / s.iter().cloned().fold(f64::MAX, f64::min)
        };
        let ir0 = ir(&sizes);
        let after_full: Vec<f64> = sizes.iter().zip(&add).map(|(s, a)| s + a).collect();
        let target = ir0 + t * (ir(&after_full) - ir0).signum();
        let x = change_ratio(&sizes, &add, target);
        prop_assert!((0.0..=1.0).contains(&x));
        let after: Vec<f64> = sizes.iter().zip(&add).map(|(s, a)| s + x * a).collect();
        prop_assert!((ir(&after) - ir0).abs() <= t + 1e-4, "x={x}");
    }

    #[test]
    fn objective_monotone_in_lambda(p in arb_problem(0.0), lambda in 0.1f64..5.0) {
        // With any fixed allocation, the objective grows with λ whenever a
        // slice sits above average (penalty ≥ 0 pointwise).
        let per = p.budget / p.costs.iter().sum::<f64>();
        let d = vec![per; p.n()];
        let with = AcquisitionProblem { lambda, ..p.clone() };
        prop_assert!(with.objective(&d) >= p.objective(&d) - 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn barrier_solver_feasible_and_agrees_with_projected(p in arb_problem(1.0)) {
        let bar = st_optim::solve_barrier(&p, &st_optim::BarrierOptions::default());
        prop_assert!(p.is_feasible(&bar, 1e-5), "{bar:?}");
        let proj = solve_projected(&p, &SolverOptions::default());
        let (fb, fp) = (p.objective(&bar), p.objective(&proj));
        // Independent solvers: neither may be meaningfully better.
        prop_assert!((fb - fp).abs() <= 1e-2 * fb.abs().max(1.0), "barrier {fb} vs proj {fp}");
    }

    #[test]
    fn barrier_matches_kkt_closed_form_at_lambda_zero(p in arb_problem(0.0)) {
        let bar = st_optim::solve_barrier(&p, &st_optim::BarrierOptions::default());
        let kkt = solve_kkt(&p);
        let (fb, fk) = (p.objective(&bar), p.objective(&kkt));
        prop_assert!(fb <= fk + 5e-3 * fk.max(1e-9), "barrier {fb} worse than kkt {fk}");
        prop_assert!(fk <= fb + 5e-3 * fb.max(1e-9), "kkt {fk} worse than barrier {fb}");
    }

    #[test]
    fn sensitivity_marginal_value_is_nonpositive(p in arb_problem(1.0)) {
        let rep = st_optim::budget_sensitivity(&p, &st_optim::BarrierOptions::default());
        prop_assert!(rep.marginal_value <= 1e-9, "extra budget cannot hurt: {}", rep.marginal_value);
        prop_assert_eq!(rep.allocation.len(), p.n());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn overlap_identity_matches_partition_solver(p in arb_problem(1.0)) {
        let ov = st_optim::OverlapProblem::from_partition(&p);
        let d_ov = st_optim::solve_overlap(&ov, &SolverOptions::default());
        let d_p = solve_projected(&p, &SolverOptions::default());
        let (fo, fp) = (p.objective(&d_ov), p.objective(&d_p));
        prop_assert!((fo - fp).abs() <= 1e-4 * fp.abs().max(1.0), "{fo} vs {fp}");
    }

    #[test]
    fn overlap_solution_feasible_and_beats_uniform(
        p in arb_problem(1.0),
        share in 0usize..3,
    ) {
        // Random overlap: add one shared atom that belongs to every slice.
        let n = p.n();
        let m = n + 1;
        let mut membership: Vec<Vec<bool>> =
            (0..n).map(|i| (0..m).map(|j| j == i).collect()).collect();
        for row in membership.iter_mut() {
            row[n] = true; // the shared atom
        }
        let mut atom_costs = p.costs.clone();
        atom_costs.push(0.8 + share as f64 * 0.6);
        let ov = st_optim::OverlapProblem::new(
            p.curves.clone(),
            p.sizes.clone(),
            membership,
            atom_costs.clone(),
            p.budget,
            p.lambda,
        );
        let d = st_optim::solve_overlap(&ov, &SolverOptions::default());
        prop_assert!(ov.is_feasible(&d, 1e-5), "{d:?}");
        let per = ov.budget / atom_costs.iter().sum::<f64>();
        let uniform = vec![per; m];
        prop_assert!(ov.objective(&d) <= ov.objective(&uniform) + 1e-7);
    }
}
