//! Weighted non-linear least squares fitting of power-law curves.
//!
//! The paper fits `y = b·x^(-a)` with a weighted non-linear least squares
//! method (SciPy's in the original). This module reproduces that estimator:
//!
//! 1. **Initialization** — weighted linear regression in log-log space
//!    (`ln y = ln b − a·ln x`), which is the exact NLLS solution under
//!    multiplicative noise and an excellent starting point otherwise.
//! 2. **Refinement** — Levenberg–Marquardt on the original (not log) scale,
//!    minimizing `Σ wᵢ (b·xᵢ^(-a) − yᵢ)²`, so large-`n` points with large
//!    weights dominate exactly as in the paper.

use crate::model::{PowerLaw, PowerLawWithFloor};
use crate::points::CurvePoint;
use st_linalg::{gaussian_solve, Matrix};

/// Why a fit could not be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// Fewer than two distinct-x points with positive weight.
    NotEnoughPoints,
    /// All measured losses were non-positive after clamping.
    DegenerateLosses,
    /// A point carried a non-finite or negative subset size, or a non-finite
    /// weight. Unlike a non-finite *loss* (a legitimate outcome of a
    /// degenerate training run, silently filtered), these fields are
    /// caller-constructed and a bad value is a bug upstream.
    NonFinitePoint,
    /// The optimizer diverged. Today this is only produced by the `ST_FAULT`
    /// injection harness (`fit_diverge@p`); it exercises the same fallback
    /// path a genuine divergence would take.
    Diverged,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::NotEnoughPoints => write!(f, "need >= 2 distinct subset sizes to fit"),
            FitError::DegenerateLosses => write!(f, "all losses non-positive; cannot fit"),
            FitError::NonFinitePoint => {
                write!(f, "curve point has non-finite or negative size/weight")
            }
            FitError::Diverged => write!(f, "power-law fit diverged"),
        }
    }
}

impl std::error::Error for FitError {}

/// Smallest loss considered measurable; values below are clamped before the
/// log transform (near-zero losses happen on saturated easy slices).
const LOSS_FLOOR: f64 = 1e-6;
/// Exponent bounds keeping the optimizer's curvature well behaved. Empirical
/// decay exponents sit in [0.05, 1.0] (Hestness et al.); the bounds leave
/// generous slack.
const A_MIN: f64 = 1e-3;
const A_MAX: f64 = 4.0;
const LM_ITERS: usize = 60;

/// Fits `y = b·x^(-a)` to weighted points.
///
/// Points with non-positive `n` or weight are ignored; losses are clamped to
/// a small positive floor. See the module docs for the algorithm.
pub fn fit_power_law(points: &[CurvePoint]) -> Result<PowerLaw, FitError> {
    let pts = clean(points)?;
    inject_divergence(&pts)?;

    // --- Log-space weighted linear regression initialization. ---
    let (ln_b, a) = log_space_init(&pts)?;

    Ok(lm_refine(&pts, ln_b, a))
}

/// `ST_FAULT=fit_diverge@p` injection point: decides from an
/// order-independent hash of the cleaned points, so the same measurements
/// always diverge (or not) together — across runs, retries, and resumes.
/// A no-op (one relaxed atomic load) when no fault plan is active.
fn inject_divergence(pts: &[CurvePoint]) -> Result<(), FitError> {
    if st_linalg::fault::active() && st_linalg::fault::fit_diverges(points_hash(pts)) {
        return Err(FitError::Diverged);
    }
    Ok(())
}

fn points_hash(pts: &[CurvePoint]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for p in pts {
        let mut x =
            p.n.to_bits() ^ p.loss.to_bits().rotate_left(17) ^ p.weight.to_bits().rotate_left(31);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        h ^= x; // XOR-fold: insensitive to point order
    }
    h
}

/// [`fit_power_law`] seeded from caller-supplied `(ln b, a)` instead of the
/// batch log-space initialization.
///
/// The incremental estimation path keeps a [`LogLogAccumulator`] per slice
/// and seeds the LM refinement from it, so appending a round's new points
/// costs O(new) instead of a full re-initialization. The seed only moves the
/// optimizer's starting point: with the same points, results agree with
/// [`fit_power_law`] to refinement tolerance, not bit-for-bit.
pub fn fit_power_law_seeded(
    points: &[CurvePoint],
    ln_b: f64,
    a: f64,
) -> Result<PowerLaw, FitError> {
    let pts = clean(points)?;
    inject_divergence(&pts)?;
    Ok(lm_refine(&pts, ln_b, a.clamp(A_MIN, A_MAX)))
}

/// The batch log-space initialization on cleaned points, exposed so the
/// incremental accumulator can be pinned against it: returns the `(ln b, a)`
/// seed [`fit_power_law`] starts its refinement from.
pub fn log_space_seed(points: &[CurvePoint]) -> Result<(f64, f64), FitError> {
    let pts = clean(points)?;
    log_space_init(&pts)
}

fn lm_refine(pts: &[CurvePoint], mut ln_b: f64, mut a: f64) -> PowerLaw {
    // --- Levenberg–Marquardt refinement in (ln b, a). ---
    // Residuals r_i = b x^{-a} - y, parameters p = (ln b, a):
    //   dr/d(ln b) = b x^{-a};  dr/da = -b ln(x) x^{-a}.
    let mut mu = 1e-3;
    let mut cost = nlls_cost(pts, ln_b, a);
    for _ in 0..LM_ITERS {
        let b = ln_b.exp();
        // Normal equations JᵀWJ δ = -JᵀWr.
        let mut jtj = [[0.0_f64; 2]; 2];
        let mut jtr = [0.0_f64; 2];
        for p in pts {
            let xa = p.n.powf(-a);
            let pred = b * xa;
            let r = pred - p.loss;
            let j0 = pred; // ∂r/∂ln b
            let j1 = -pred * p.n.ln(); // ∂r/∂a
            jtj[0][0] += p.weight * j0 * j0;
            jtj[0][1] += p.weight * j0 * j1;
            jtj[1][1] += p.weight * j1 * j1;
            jtr[0] += p.weight * j0 * r;
            jtr[1] += p.weight * j1 * r;
        }
        jtj[1][0] = jtj[0][1];

        let damped = Matrix::from_vec(
            2,
            2,
            vec![
                jtj[0][0] * (1.0 + mu),
                jtj[0][1],
                jtj[1][0],
                jtj[1][1] * (1.0 + mu),
            ],
        );
        let Ok(delta) = gaussian_solve(damped, &[-jtr[0], -jtr[1]]) else {
            break; // singular: the init is already as good as we can do
        };
        let cand_ln_b = ln_b + delta[0];
        let cand_a = (a + delta[1]).clamp(A_MIN, A_MAX);
        let cand_cost = nlls_cost(pts, cand_ln_b, cand_a);
        if cand_cost < cost {
            ln_b = cand_ln_b;
            a = cand_a;
            let improved = cost - cand_cost;
            cost = cand_cost;
            mu = (mu * 0.5).max(1e-12);
            if improved < 1e-14 * (1.0 + cost) {
                break;
            }
        } else {
            mu *= 4.0;
            if mu > 1e8 {
                break;
            }
        }
    }
    PowerLaw::new(ln_b.exp(), a.clamp(A_MIN, A_MAX))
}

/// Fits `y = b·x^(-a) + c` with `c ≥ 0` by scanning a floor grid.
///
/// For each candidate floor `c`, the residual losses `y − c` are fitted with
/// [`fit_power_law`]; the floor minimizing weighted squared error wins. The
/// grid runs from 0 to just below the smallest observed loss, which is where
/// any feasible floor must lie.
pub fn fit_power_law_with_floor(points: &[CurvePoint]) -> Result<PowerLawWithFloor, FitError> {
    let pts = clean(points)?;
    let min_loss = pts.iter().map(|p| p.loss).fold(f64::INFINITY, f64::min);
    let max_loss = pts.iter().map(|p| p.loss).fold(f64::NEG_INFINITY, f64::max);
    // Degenerate grid: when every cleaned loss is (numerically) the same, or
    // the smallest sits at the clamp floor, every candidate floor shifts a
    // constant vector and the scan cannot rank them — the pre-fix code then
    // "won" with the largest floor and an exponent clamped at A_MIN. Fall
    // back to the plain c = 0 fit instead.
    if max_loss - min_loss <= LOSS_FLOOR || min_loss <= LOSS_FLOOR {
        let pl = fit_power_law(points)?;
        return Ok(PowerLawWithFloor::new(pl.b, pl.a, 0.0));
    }
    let mut best: Option<(f64, PowerLawWithFloor)> = None;
    const GRID: usize = 24;
    for g in 0..GRID {
        let c = min_loss * (g as f64 / GRID as f64) * 0.999;
        let shifted: Vec<CurvePoint> = pts
            .iter()
            .map(|p| CurvePoint::weighted(p.n, (p.loss - c).max(LOSS_FLOOR), p.weight))
            .collect();
        let Ok(pl) = fit_power_law(&shifted) else {
            continue;
        };
        let cand = PowerLawWithFloor::new(pl.b, pl.a, c);
        let cost: f64 = pts
            .iter()
            .map(|p| {
                let r = cand.eval(p.n) - p.loss;
                p.weight * r * r
            })
            .sum();
        if best.as_ref().is_none_or(|(bc, _)| cost < *bc) {
            best = Some((cost, cand));
        }
    }
    match best {
        Some((_, c)) => Ok(c),
        // Every shifted candidate failed to fit: same fallback as the
        // degenerate grid above.
        None => {
            let pl = fit_power_law(points)?;
            Ok(PowerLawWithFloor::new(pl.b, pl.a, 0.0))
        }
    }
}

fn clean(points: &[CurvePoint]) -> Result<Vec<CurvePoint>, FitError> {
    // Sizes and weights are caller-constructed; a non-finite or negative
    // value is rejected up front rather than silently filtered like the
    // measurement-derived loss field.
    if points
        .iter()
        .any(|p| !p.n.is_finite() || !p.weight.is_finite() || p.n < 0.0)
    {
        return Err(FitError::NonFinitePoint);
    }
    let pts: Vec<CurvePoint> = points
        .iter()
        .filter(|p| p.n >= 1.0 && p.weight > 0.0 && p.loss.is_finite())
        .map(|p| CurvePoint::weighted(p.n, p.loss.max(LOSS_FLOOR), p.weight))
        .collect();
    let mut xs: Vec<u64> = pts.iter().map(|p| p.n.to_bits()).collect();
    xs.sort_unstable();
    xs.dedup();
    if xs.len() < 2 {
        return Err(FitError::NotEnoughPoints);
    }
    if pts.iter().all(|p| p.loss <= LOSS_FLOOR) {
        return Err(FitError::DegenerateLosses);
    }
    Ok(pts)
}

fn log_space_init(pts: &[CurvePoint]) -> Result<(f64, f64), FitError> {
    // Weighted simple regression of ln y on ln x.
    let wsum: f64 = pts.iter().map(|p| p.weight).sum();
    let mx = pts.iter().map(|p| p.weight * p.n.ln()).sum::<f64>() / wsum;
    let my = pts.iter().map(|p| p.weight * p.loss.ln()).sum::<f64>() / wsum;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for p in pts {
        let dx = p.n.ln() - mx;
        let dy = p.loss.ln() - my;
        sxx += p.weight * dx * dx;
        sxy += p.weight * dx * dy;
    }
    if sxx <= 0.0 {
        return Err(FitError::NotEnoughPoints);
    }
    let slope = sxy / sxx; // = -a
    let a = (-slope).clamp(A_MIN, A_MAX);
    let ln_b = my + a * mx;
    Ok((ln_b, a))
}

/// Streaming weighted log-log regression accumulator.
///
/// The incremental counterpart of the batch initialization inside
/// [`fit_power_law`]: a weighted Welford recurrence over `(ln n, ln loss)`
/// (the idiom of `st_linalg::running::RunningStats`) that absorbs
/// [`CurvePoint`]s one at a time and yields the same `(ln b, a)` seed — to
/// floating-point tolerance — that [`log_space_seed`] computes from the full
/// batch. Each acquisition round pushes only its new measurements instead of
/// re-folding every point since round one.
///
/// Points are admitted under the same rules [`fit_power_law`]'s cleaning
/// pass applies: `n ≥ 1`, positive weight, finite loss, losses clamped to
/// the measurement floor.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LogLogAccumulator {
    w: f64,
    mx: f64,
    my: f64,
    sxx: f64,
    sxy: f64,
    /// Distinct subset sizes seen (bit patterns); the fit needs ≥ 2.
    seen_n: Vec<u64>,
    any_above_floor: bool,
    count: usize,
}

impl LogLogAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one point in. Returns `false` (and changes nothing) for points
    /// the batch cleaning pass would discard.
    pub fn push(&mut self, p: &CurvePoint) -> bool {
        // NaN in any field fails the comparisons and is rejected too.
        let usable = p.n >= 1.0 && p.weight > 0.0 && p.loss.is_finite();
        if !usable {
            return false;
        }
        let loss = p.loss.max(LOSS_FLOOR);
        if loss > LOSS_FLOOR {
            self.any_above_floor = true;
        }
        let x = p.n.ln();
        let y = loss.ln();
        self.w += p.weight;
        let dx = x - self.mx;
        let dy = y - self.my;
        let r = p.weight / self.w;
        self.mx += r * dx;
        self.my += r * dy;
        self.sxx += p.weight * dx * (x - self.mx);
        self.sxy += p.weight * dx * (y - self.my);
        if !self.seen_n.contains(&p.n.to_bits()) {
            self.seen_n.push(p.n.to_bits());
        }
        self.count += 1;
        true
    }

    /// Folds every point of `pts` in.
    pub fn extend(&mut self, pts: &[CurvePoint]) {
        for p in pts {
            self.push(p);
        }
    }

    /// Merges another accumulator, as if all of its points had been pushed
    /// here (parallel aggregation).
    pub fn merge(&mut self, other: &LogLogAccumulator) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let w1 = self.w;
        let w2 = other.w;
        let total = w1 + w2;
        let dx = other.mx - self.mx;
        let dy = other.my - self.my;
        self.sxx += other.sxx + dx * dx * w1 * w2 / total;
        self.sxy += other.sxy + dx * dy * w1 * w2 / total;
        self.mx += dx * w2 / total;
        self.my += dy * w2 / total;
        self.w = total;
        for &bits in &other.seen_n {
            if !self.seen_n.contains(&bits) {
                self.seen_n.push(bits);
            }
        }
        self.any_above_floor |= other.any_above_floor;
        self.count += other.count;
    }

    /// Number of admitted points.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The `(ln b, a)` seed of the accumulated regression, under the same
    /// error conditions as the batch initialization: fewer than two distinct
    /// subset sizes (or no spread in `ln n`) is [`FitError::NotEnoughPoints`],
    /// all losses at the floor is [`FitError::DegenerateLosses`].
    pub fn seed(&self) -> Result<(f64, f64), FitError> {
        if self.seen_n.len() < 2 {
            return Err(FitError::NotEnoughPoints);
        }
        if !self.any_above_floor {
            return Err(FitError::DegenerateLosses);
        }
        if self.sxx <= 0.0 {
            return Err(FitError::NotEnoughPoints);
        }
        let slope = self.sxy / self.sxx;
        let a = (-slope).clamp(A_MIN, A_MAX);
        let ln_b = self.my + a * self.mx;
        Ok((ln_b, a))
    }
}

/// One-sided CUSUM over log-scale learning-curve residuals, the drift
/// detector's accumulator (the change-detection counterpart of
/// [`LogLogAccumulator`]).
///
/// A stationary slice's measured losses scatter around its fitted curve, so
/// the log residual `ln(measured) − ln(predicted)` is near zero and the
/// cumulative sum — debited a per-observation `slack` and floored at zero —
/// hovers near zero. When the slice's distribution shifts, measured losses
/// sit persistently *above* the stale curve and the sum climbs until it
/// crosses the caller's threshold. One-sided by design: losses falling
/// below the curve (the slice got easier) never trigger — a tuner that
/// over-serves an easy slice wastes budget but does not mis-allocate on
/// stale evidence.
///
/// State is three floats and a count, snapshot/restored bit-exactly for the
/// checkpoint layer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResidualCusum {
    cum: f64,
    last: f64,
    count: usize,
}

impl ResidualCusum {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds in one residual between a curve's prediction and a fresh
    /// measurement at the same subset size, debiting `slack` (the tolerated
    /// per-round residual — measurement noise that must not accumulate).
    /// Returns the updated score. Non-finite inputs are ignored: a poisoned
    /// measurement is the fault layer's problem, not a drift signal.
    pub fn observe(&mut self, predicted: f64, measured: f64, slack: f64) -> f64 {
        if !predicted.is_finite() || !measured.is_finite() || !slack.is_finite() {
            return self.cum;
        }
        let res = measured.max(LOSS_FLOOR).ln() - predicted.max(LOSS_FLOOR).ln();
        self.last = res;
        self.cum = (self.cum + res - slack).max(0.0);
        self.count += 1;
        self.cum
    }

    /// The current cumulative drift score (≥ 0).
    pub fn score(&self) -> f64 {
        self.cum
    }

    /// The most recent raw log residual.
    pub fn last_residual(&self) -> f64 {
        self.last
    }

    /// Number of residuals observed since the last reset.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Clears the accumulator (after a recovery re-measurement the slice's
    /// curve is fresh again, so accumulated evidence no longer applies).
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Bit-exact state for the checkpoint layer: `(cum, last, count)` with
    /// the floats as raw bit patterns.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (self.cum.to_bits(), self.last.to_bits(), self.count as u64)
    }

    /// Rebuilds an accumulator from [`snapshot`](Self::snapshot) output.
    pub fn restore((cum, last, count): (u64, u64, u64)) -> Self {
        ResidualCusum {
            cum: f64::from_bits(cum),
            last: f64::from_bits(last),
            count: count as usize,
        }
    }
}

/// An updatable power-law fit: absorb [`CurvePoint`]s as they are measured,
/// then [`fit`](Self::fit) seeds the LM refinement from the running
/// [`LogLogAccumulator`] instead of re-initializing from the full batch.
///
/// With the same points, the result agrees with [`fit_power_law`] to
/// refinement tolerance (the seed differs by streaming round-off only); it
/// is what the incremental estimation path uses, while from-scratch
/// estimations keep the bit-exact batch path.
#[derive(Debug, Clone, Default)]
pub struct IncrementalFit {
    acc: LogLogAccumulator,
    points: Vec<CurvePoint>,
}

impl IncrementalFit {
    /// An empty fit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs one measurement. Returns `false` for points the cleaning
    /// rules discard (those are not retained either).
    pub fn absorb(&mut self, p: CurvePoint) -> bool {
        let admitted = self.acc.push(&p);
        if admitted {
            self.points.push(p);
        }
        admitted
    }

    /// Absorbs every point of `pts`.
    pub fn absorb_all(&mut self, pts: &[CurvePoint]) {
        for &p in pts {
            self.absorb(p);
        }
    }

    /// The retained (admitted) points.
    pub fn points(&self) -> &[CurvePoint] {
        &self.points
    }

    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if nothing has been absorbed.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Fits `y = b·x^(-a)` to everything absorbed so far, seeding the LM
    /// refinement from the running accumulator.
    pub fn fit(&self) -> Result<PowerLaw, FitError> {
        let (ln_b, a) = self.acc.seed()?;
        fit_power_law_seeded(&self.points, ln_b, a)
    }
}

fn nlls_cost(pts: &[CurvePoint], ln_b: f64, a: f64) -> f64 {
    let b = ln_b.exp();
    pts.iter()
        .map(|p| {
            let r = b * p.n.powf(-a) - p.loss;
            p.weight * r * r
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_curve(b: f64, a: f64, xs: &[f64]) -> Vec<CurvePoint> {
        xs.iter()
            .map(|&x| CurvePoint::size_weighted(x, b * x.powf(-a)))
            .collect()
    }

    #[test]
    fn recovers_exact_power_law() {
        let pts = sample_curve(2.9, 0.21, &[10., 30., 60., 100., 200., 300.]);
        let fit = fit_power_law(&pts).unwrap();
        assert!((fit.b - 2.9).abs() < 1e-6, "b {}", fit.b);
        assert!((fit.a - 0.21).abs() < 1e-6, "a {}", fit.a);
    }

    #[test]
    fn recovers_under_multiplicative_noise() {
        // Deterministic pseudo-noise; the fit should land close.
        let xs = [20., 40., 80., 120., 180., 240., 300.];
        let pts: Vec<CurvePoint> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                let noise = 1.0 + 0.05 * ((i as f64 * 2.3).sin());
                CurvePoint::size_weighted(x, 1.875 * x.powf(-0.446) * noise)
            })
            .collect();
        let fit = fit_power_law(&pts).unwrap();
        assert!((fit.b - 1.875).abs() < 0.3, "b {}", fit.b);
        assert!((fit.a - 0.446).abs() < 0.06, "a {}", fit.a);
    }

    #[test]
    fn weights_prioritize_large_subsets() {
        // Corrupt the smallest-x point heavily; size weighting must keep the
        // fit anchored to the big subsets.
        let mut pts = sample_curve(2.0, 0.3, &[10., 50., 100., 200., 400.]);
        pts[0].loss *= 3.0;
        let weighted_fit = fit_power_law(&pts).unwrap();
        let equal: Vec<CurvePoint> = pts
            .iter()
            .map(|p| CurvePoint::weighted(p.n, p.loss, 1.0))
            .collect();
        let equal_fit = fit_power_law(&equal).unwrap();
        // Size weighting must anchor the prediction at the big subsets: the
        // weighted fit is strictly closer to the uncorrupted truth at n=400.
        let truth = 2.0 * 400.0_f64.powf(-0.3);
        assert!(
            (weighted_fit.eval(400.0) - truth).abs() < (equal_fit.eval(400.0) - truth).abs(),
            "weighted {} equal {} truth {truth}",
            weighted_fit.eval(400.0),
            equal_fit.eval(400.0)
        );
        // The raw-scale NLLS optimum still tilts toward a 3x outlier with
        // only five points; the bound documents how far it can drift.
        assert!((weighted_fit.eval(400.0) - truth).abs() < 0.15);
    }

    #[test]
    fn rejects_single_size() {
        let pts = vec![CurvePoint::size_weighted(50.0, 1.0); 3];
        assert_eq!(fit_power_law(&pts), Err(FitError::NotEnoughPoints));
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(fit_power_law(&[]), Err(FitError::NotEnoughPoints));
    }

    #[test]
    fn ignores_zero_weight_and_bad_points() {
        let mut pts = sample_curve(2.0, 0.25, &[10., 100., 300.]);
        pts.push(CurvePoint::weighted(50.0, 99.0, 0.0)); // zero weight
        pts.push(CurvePoint::weighted(0.0, 1.0, 5.0)); // n < 1
        pts.push(CurvePoint::weighted(60.0, f64::NAN, 1.0)); // NaN loss
        let fit = fit_power_law(&pts).unwrap();
        assert!((fit.a - 0.25).abs() < 1e-6);
    }

    #[test]
    fn rejects_non_finite_sizes_and_weights_up_front() {
        for bad in [
            CurvePoint::weighted(f64::NAN, 1.0, 1.0),
            CurvePoint::weighted(f64::INFINITY, 1.0, 1.0),
            CurvePoint::weighted(-5.0, 1.0, 1.0),
            CurvePoint::weighted(50.0, 1.0, f64::NAN),
        ] {
            let mut pts = sample_curve(2.0, 0.25, &[10., 100., 300.]);
            pts.push(bad);
            assert_eq!(fit_power_law(&pts), Err(FitError::NonFinitePoint));
            assert_eq!(
                fit_power_law_with_floor(&pts),
                Err(FitError::NonFinitePoint)
            );
        }
    }

    #[test]
    fn injected_divergence_is_typed_and_deterministic() {
        let _g = {
            static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
            LOCK.lock().unwrap_or_else(|e| e.into_inner())
        };
        let pts = sample_curve(2.9, 0.21, &[10., 30., 60., 100.]);
        st_linalg::fault::install(Some(
            st_linalg::fault::parse_plan("fit_diverge@1.0").unwrap(),
        ));
        assert_eq!(fit_power_law(&pts), Err(FitError::Diverged));
        assert_eq!(fit_power_law(&pts), Err(FitError::Diverged), "reproducible");
        // Order-independent hash: shuffled points make the same decision.
        let mut rev = pts.clone();
        rev.reverse();
        assert_eq!(fit_power_law(&rev), Err(FitError::Diverged));
        st_linalg::fault::install(None);
        assert!(fit_power_law(&pts).is_ok());
    }

    #[test]
    fn clamps_tiny_losses_instead_of_failing() {
        let pts = vec![
            CurvePoint::size_weighted(10.0, 0.5),
            CurvePoint::size_weighted(100.0, 0.0), // clamped to floor
            CurvePoint::size_weighted(300.0, 0.0),
        ];
        let fit = fit_power_law(&pts).unwrap();
        assert!(fit.a > 0.0);
    }

    #[test]
    fn increasing_losses_degrade_to_minimal_exponent() {
        // A slice whose loss grows with data (pathological); the exponent is
        // clamped at A_MIN rather than going negative.
        let pts = vec![
            CurvePoint::size_weighted(10.0, 0.2),
            CurvePoint::size_weighted(100.0, 0.4),
            CurvePoint::size_weighted(300.0, 0.6),
        ];
        let fit = fit_power_law(&pts).unwrap();
        assert!(fit.a <= 2e-3, "a {}", fit.a);
    }

    #[test]
    fn floor_fit_recovers_floor() {
        let xs = [10., 30., 80., 150., 300., 600., 1200.];
        let pts: Vec<CurvePoint> = xs
            .iter()
            .map(|&x| CurvePoint::size_weighted(x, 2.0 * x.powf(-0.5) + 0.3))
            .collect();
        let fit = fit_power_law_with_floor(&pts).unwrap();
        assert!((fit.c - 0.3).abs() < 0.05, "c {}", fit.c);
        assert!((fit.a - 0.5).abs() < 0.12, "a {}", fit.a);
    }

    #[test]
    fn floor_fit_constant_losses_fall_back_to_zero_floor() {
        // Pre-fix, the degenerate grid (every candidate shifts a constant
        // vector) "won" with the largest floor c ≈ min_loss·23/24, leaving a
        // near-zero amplitude on the shifted fit. The fallback must return
        // the plain fit with c = 0 instead.
        let pts: Vec<CurvePoint> = [10.0, 50.0, 200.0, 800.0]
            .iter()
            .map(|&n| CurvePoint::size_weighted(n, 0.4))
            .collect();
        let fit = fit_power_law_with_floor(&pts).unwrap();
        assert_eq!(fit.c, 0.0, "c {}", fit.c);
        let plain = fit_power_law(&pts).unwrap();
        assert_eq!(fit.b.to_bits(), plain.b.to_bits());
        assert_eq!(fit.a.to_bits(), plain.a.to_bits());
    }

    #[test]
    fn floor_fit_losses_at_clamp_floor_fall_back() {
        // One loss sits at the clamp floor, so the grid range collapses to
        // [0, ~1e-6); the fallback takes over.
        let pts = vec![
            CurvePoint::size_weighted(10.0, 0.5),
            CurvePoint::size_weighted(100.0, 0.0), // clamped to the floor
            CurvePoint::size_weighted(300.0, 0.0),
        ];
        let fit = fit_power_law_with_floor(&pts).unwrap();
        assert_eq!(fit.c, 0.0);
        assert!(fit.a > 0.0);
    }

    #[test]
    fn floor_fit_degenerate_errors_still_propagate() {
        // All losses at/below the floor is DegenerateLosses, same as the
        // plain fit.
        let pts = vec![
            CurvePoint::size_weighted(10.0, 0.0),
            CurvePoint::size_weighted(100.0, 0.0),
        ];
        assert_eq!(
            fit_power_law_with_floor(&pts),
            Err(FitError::DegenerateLosses)
        );
    }

    #[test]
    fn floor_fit_beats_plain_fit_when_floor_exists() {
        let xs = [10., 30., 80., 150., 300., 600., 1200.];
        let pts: Vec<CurvePoint> = xs
            .iter()
            .map(|&x| CurvePoint::size_weighted(x, 2.0 * x.powf(-0.5) + 0.3))
            .collect();
        let plain = fit_power_law(&pts).unwrap();
        let floored = fit_power_law_with_floor(&pts).unwrap();
        let sse = |f: &dyn Fn(f64) -> f64| -> f64 {
            pts.iter()
                .map(|p| (f(p.n) - p.loss).powi(2) * p.weight)
                .sum()
        };
        assert!(sse(&|n| floored.eval(n)) < sse(&|n| plain.eval(n)));
    }

    #[test]
    fn accumulator_seed_matches_batch_init() {
        let xs = [20., 40., 80., 120., 180., 240., 300.];
        let pts: Vec<CurvePoint> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                let noise = 1.0 + 0.05 * ((i as f64 * 2.3).sin());
                CurvePoint::size_weighted(x, 1.875 * x.powf(-0.446) * noise)
            })
            .collect();
        let (ln_b, a) = log_space_seed(&pts).unwrap();
        let mut acc = LogLogAccumulator::new();
        for p in &pts {
            assert!(acc.push(p));
        }
        let (inc_ln_b, inc_a) = acc.seed().unwrap();
        assert!((inc_ln_b - ln_b).abs() < 1e-12, "{inc_ln_b} vs {ln_b}");
        assert!((inc_a - a).abs() < 1e-12, "{inc_a} vs {a}");
    }

    #[test]
    fn accumulator_rejects_what_clean_rejects() {
        let mut acc = LogLogAccumulator::new();
        assert!(!acc.push(&CurvePoint::weighted(0.5, 1.0, 1.0))); // n < 1
        assert!(!acc.push(&CurvePoint::weighted(10.0, 1.0, 0.0))); // zero weight
        assert!(!acc.push(&CurvePoint::weighted(10.0, f64::NAN, 1.0))); // NaN
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.seed(), Err(FitError::NotEnoughPoints));
    }

    #[test]
    fn accumulator_error_conditions_match_batch() {
        // Single distinct size → NotEnoughPoints.
        let mut acc = LogLogAccumulator::new();
        acc.push(&CurvePoint::size_weighted(50.0, 1.0));
        acc.push(&CurvePoint::size_weighted(50.0, 0.9));
        assert_eq!(acc.seed(), Err(FitError::NotEnoughPoints));
        // All losses at the floor → DegenerateLosses, like clean().
        let mut acc = LogLogAccumulator::new();
        acc.push(&CurvePoint::size_weighted(10.0, 0.0));
        acc.push(&CurvePoint::size_weighted(100.0, 0.0));
        assert_eq!(acc.seed(), Err(FitError::DegenerateLosses));
    }

    #[test]
    fn accumulator_merge_equals_sequential() {
        let first = sample_curve(2.0, 0.3, &[10., 50., 100.]);
        let second = sample_curve(2.0, 0.3, &[200., 400.]);
        let mut all = LogLogAccumulator::new();
        all.extend(&first);
        all.extend(&second);
        let mut a = LogLogAccumulator::new();
        a.extend(&first);
        let mut b = LogLogAccumulator::new();
        b.extend(&second);
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        let (s1, s2) = (a.seed().unwrap(), all.seed().unwrap());
        assert!((s1.0 - s2.0).abs() < 1e-12);
        assert!((s1.1 - s2.1).abs() < 1e-12);

        let mut empty = LogLogAccumulator::new();
        empty.merge(&all);
        assert_eq!(empty.seed().unwrap(), all.seed().unwrap());
    }

    #[test]
    fn incremental_fit_matches_batch_fit_to_tolerance() {
        let xs = [20., 40., 80., 120., 180., 240., 300.];
        let pts: Vec<CurvePoint> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                let noise = 1.0 + 0.04 * ((i as f64 * 1.7).cos());
                CurvePoint::size_weighted(x, 2.4 * x.powf(-0.31) * noise)
            })
            .collect();
        let batch = fit_power_law(&pts).unwrap();
        let mut inc = IncrementalFit::new();
        // Absorb one at a time, as successive rounds would.
        for &p in &pts {
            inc.absorb(p);
        }
        assert_eq!(inc.len(), pts.len());
        let fit = inc.fit().unwrap();
        // The seed differs from the batch init by streaming round-off, so
        // the refined optimum agrees to LM convergence tolerance, not bits.
        assert!(
            (fit.b - batch.b).abs() < 1e-6 * batch.b,
            "{} {}",
            fit.b,
            batch.b
        );
        assert!((fit.a - batch.a).abs() < 1e-6, "{} {}", fit.a, batch.a);
    }

    #[test]
    fn incremental_fit_drops_rejected_points() {
        let mut inc = IncrementalFit::new();
        assert!(!inc.absorb(CurvePoint::weighted(0.0, 1.0, 1.0)));
        assert!(inc.is_empty());
        inc.absorb_all(&sample_curve(2.9, 0.21, &[10., 60., 200.]));
        let fit = inc.fit().unwrap();
        assert!((fit.a - 0.21).abs() < 1e-6);
    }

    #[test]
    fn seeded_fit_converges_from_offset_seed() {
        let pts = sample_curve(2.9, 0.21, &[10., 30., 60., 100., 200., 300.]);
        let (ln_b, a) = log_space_seed(&pts).unwrap();
        let fit = fit_power_law_seeded(&pts, ln_b + 0.05, a * 1.1).unwrap();
        assert!((fit.b - 2.9).abs() < 1e-6, "b {}", fit.b);
        assert!((fit.a - 0.21).abs() < 1e-6, "a {}", fit.a);
    }

    #[test]
    fn cusum_stays_cold_on_curve_and_climbs_off_it() {
        let mut on = ResidualCusum::new();
        for _ in 0..10 {
            // ±5% scatter around the prediction, inside the slack.
            on.observe(1.0, 1.05, 0.1);
            on.observe(1.0, 0.95, 0.1);
        }
        assert!(
            on.score() < 1e-9,
            "stationary residuals stay cold: {}",
            on.score()
        );

        let mut off = ResidualCusum::new();
        for _ in 0..4 {
            off.observe(1.0, 2.0, 0.1); // measured 2× the stale prediction
        }
        assert!(
            off.score() > 4.0 * (2.0f64.ln() - 0.1) - 1e-9,
            "persistent excess accumulates: {}",
            off.score()
        );
        assert_eq!(off.count(), 4);
    }

    #[test]
    fn cusum_is_one_sided_and_resettable() {
        let mut c = ResidualCusum::new();
        for _ in 0..20 {
            c.observe(1.0, 0.2, 0.0); // slice got easier
        }
        assert_eq!(c.score(), 0.0, "improvement never triggers");
        c.observe(1.0, 3.0, 0.0);
        assert!(c.score() > 1.0);
        c.reset();
        assert_eq!(c.score(), 0.0);
        assert_eq!(c.count(), 0);
    }

    #[test]
    fn cusum_ignores_poisoned_measurements() {
        let mut c = ResidualCusum::new();
        c.observe(1.0, f64::NAN, 0.1);
        c.observe(f64::INFINITY, 2.0, 0.1);
        assert_eq!(c.count(), 0);
        assert_eq!(c.score(), 0.0);
    }

    #[test]
    fn cusum_snapshot_round_trips_bit_exactly() {
        let mut c = ResidualCusum::new();
        c.observe(0.731, 1.214, 0.05);
        c.observe(0.693, 1.512, 0.05);
        let restored = ResidualCusum::restore(c.snapshot());
        assert_eq!(restored, c);
        assert_eq!(restored.score().to_bits(), c.score().to_bits());
        assert_eq!(
            restored.last_residual().to_bits(),
            c.last_residual().to_bits()
        );
    }
}
