//! Offline stand-in for the subset of `criterion` this workspace uses
//! (see `vendor/README.md`).
//!
//! Provides `criterion_group!` / `criterion_main!`, `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, and `black_box`. The
//! measurement loop is intentionally simple: per benchmark it warms up,
//! then runs batches until a small time budget is exhausted and reports the
//! best per-iteration time (median-of-batches is noisy at this scale; best
//! approximates the noise floor). Statistical machinery (outlier analysis,
//! HTML reports) is out of scope — the benches exist to track relative
//! regressions, and the harness honors `--bench`/`--test` filters and the
//! `CRITERION_TIME_MS` budget override.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark measurement budget in milliseconds (`CRITERION_TIME_MS`).
fn time_budget() -> Duration {
    let ms = std::env::var("CRITERION_TIME_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300);
    Duration::from_millis(ms)
}

/// The benchmark manager: filters and runs benchmark functions.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` forwards trailing args: a bare string filters by
        // substring, `--test` means "run once to check, don't measure".
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" | "--nocapture" => {}
                s if !s.starts_with('-') => filter = Some(s.to_string()),
                _ => {}
            }
        }
        Criterion { filter, test_mode }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Benchmarks a closure under `id` (ungrouped).
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        self.run_one(&id, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, id: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            budget: if self.test_mode {
                Duration::ZERO
            } else {
                time_budget()
            },
            best: None,
        };
        f(&mut bencher);
        match bencher.best {
            Some(best) => println!("bench: {id:<48} {:>12}/iter", fmt_duration(best)),
            None => println!("bench: {id:<48} (no measurement)"),
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is time-budgeted here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks a closure under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, f);
        self
    }

    /// Benchmarks a closure with a borrowed input under `group/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`, criterion's display convention.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Times closures handed to it by a benchmark function.
pub struct Bencher {
    budget: Duration,
    best: Option<Duration>,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the best per-iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Always run once: correctness check, and the only run in test mode.
        let once = Instant::now();
        black_box(routine());
        let mut best = once.elapsed();

        let deadline = Instant::now() + self.budget;
        let mut batch = 1u64;
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let per_iter = start.elapsed() / batch as u32;
            if per_iter < best {
                best = per_iter;
            }
            // Grow batches until each batch is ~1ms so timer noise fades.
            if start.elapsed() < Duration::from_millis(1) {
                batch = batch.saturating_mul(2);
            }
        }
        self.best = Some(match self.best {
            Some(prev) if prev < best => prev,
            _ => best,
        });
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_time() {
        let mut b = Bencher {
            budget: Duration::from_millis(5),
            best: None,
        };
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.best.is_some());
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(
            BenchmarkId::new("power_law", 10).to_string(),
            "power_law/10"
        );
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
