//! Microbench: learning-curve fitting — the dedicated power-law NLLS, the
//! generic zoo families, full-zoo model selection, and bootstrap bands.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use st_curve::{bootstrap_curve, fit_best, fit_family, fit_power_law, CurveFamily, CurvePoint};
use std::hint::black_box;

fn points(n: usize) -> Vec<CurvePoint> {
    (0..n)
        .map(|i| {
            let x = 20.0 * (i + 1) as f64;
            let noise = 1.0 + 0.05 * ((i as f64 * 2.1).sin());
            CurvePoint::size_weighted(x, 2.3 * x.powf(-0.35) * noise)
        })
        .collect()
}

fn bench_curve_fitting(c: &mut Criterion) {
    let mut group = c.benchmark_group("curve_fit_zoo");
    let pts = points(10);

    group.bench_function("power_law_dedicated", |b| {
        b.iter(|| fit_power_law(black_box(&pts)))
    });
    for family in [
        CurveFamily::PowerLaw,
        CurveFamily::Exponential,
        CurveFamily::Janoschek,
        CurveFamily::VaporPressure,
    ] {
        group.bench_with_input(BenchmarkId::new("family", family.name()), &pts, |b, pts| {
            b.iter(|| fit_family(black_box(pts), family))
        });
    }
    group.bench_function("fit_best_all_families", |b| {
        b.iter(|| fit_best(black_box(&pts)))
    });
    group.finish();

    let mut group = c.benchmark_group("curve_bands");
    group.sample_size(20);
    group.bench_function("bootstrap_200_reps", |b| {
        b.iter(|| bootstrap_curve(black_box(&pts), 200, 0.95, 7))
    });
    group.finish();
}

criterion_group!(benches, bench_curve_fitting);
criterion_main!(benches);
