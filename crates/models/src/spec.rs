//! Model architecture specifications.

use serde_like::SpecRepr;

/// Architecture of the shared model trained on the sliced dataset.
///
/// Mirrors the paper's model menu: softmax regression for AdultCensus, a
/// small MLP standing in for the "basic CNNs with 2–3 hidden layers" used on
/// the image datasets, and an oversized network standing in for ResNet-18
/// (Appendix B shows the method ranking is architecture-independent; the
/// oversized model merely raises absolute losses).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelSpec {
    /// Hidden-layer widths, input side first. Empty = softmax regression.
    pub hidden: Vec<usize>,
    /// Display name for reports.
    pub name: &'static str,
}

impl ModelSpec {
    /// Plain softmax (multinomial logistic) regression: the AdultCensus
    /// model ("fully connected network with no hidden layers").
    pub fn softmax() -> Self {
        ModelSpec {
            hidden: vec![],
            name: "softmax",
        }
    }

    /// The image-dataset stand-in: two modest hidden layers.
    pub fn basic() -> Self {
        ModelSpec {
            hidden: vec![32, 16],
            name: "basic",
        }
    }

    /// One-hidden-layer variant (the paper's smallest CNN).
    pub fn small() -> Self {
        ModelSpec {
            hidden: vec![24],
            name: "small",
        }
    }

    /// The ResNet-18 stand-in: deliberately overparameterized for the data
    /// sizes in play, reproducing Appendix B's higher absolute losses.
    pub fn deep() -> Self {
        ModelSpec {
            hidden: vec![128, 128, 64, 64],
            name: "deep",
        }
    }

    /// Serialized compact representation, e.g. `"mlp[32,16]"`.
    pub fn repr(&self) -> String {
        SpecRepr(&self.hidden).to_string()
    }
}

mod serde_like {
    /// Tiny display helper so `repr()` has one obvious format.
    pub(super) struct SpecRepr<'a>(pub &'a [usize]);

    impl std::fmt::Display for SpecRepr<'_> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            if self.0.is_empty() {
                return write!(f, "softmax");
            }
            write!(f, "mlp[")?;
            for (i, h) in self.0.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{h}")?;
            }
            write!(f, "]")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_spec_has_no_hidden_layers() {
        assert!(ModelSpec::softmax().hidden.is_empty());
        assert_eq!(ModelSpec::softmax().repr(), "softmax");
    }

    #[test]
    fn deep_is_larger_than_basic() {
        let deep: usize = ModelSpec::deep().hidden.iter().sum();
        let basic: usize = ModelSpec::basic().hidden.iter().sum();
        assert!(deep > 4 * basic);
    }

    #[test]
    fn repr_formats_hidden_layers() {
        assert_eq!(ModelSpec::basic().repr(), "mlp[32,16]");
    }
}
