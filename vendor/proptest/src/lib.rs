//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The container has no crates.io access, so the workspace vendors a
//! minimal property-testing framework that is source-compatible with the
//! `proptest!` suites in `crates/*/tests/proptests.rs` (see
//! `vendor/README.md`):
//!
//! - [`strategy::Strategy`] with `prop_map` / `prop_flat_map`, implemented
//!   for numeric ranges (`0.3f64..5.0`, `0u64..1000`, `2usize..=6`, …) and
//!   for tuples of strategies;
//! - [`collection::vec`] building `Vec` strategies from an element strategy
//!   and a size (fixed, `lo..hi`, or `lo..=hi`);
//! - the [`proptest!`] macro plus `prop_assert!`, `prop_assert_eq!`,
//!   `prop_assert_ne!`, and `prop_assume!`;
//! - [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! **Pinned seeds.** Unlike upstream proptest (which seeds from OS entropy
//! by default), every run here derives its RNG from a fixed master seed, the
//! test's name, and the case index — so CI failures are reproducible by
//! construction. Set `PROPTEST_SEED=<u64>` to explore a different stream;
//! a failure report prints the seed that replays it.
//!
//! **Halving shrink.** A failing case is minimized before it is reported:
//! the runner asks each strategy for simpler candidates (range start,
//! halfway point, one step down; shorter vectors and simpler elements;
//! one tuple component at a time) and keeps the candidates that still
//! fail, so the final panic comes from a locally-minimal input. Mapped
//! strategies (`prop_map` / `prop_flat_map`) cannot invert their closures
//! and are reported as generated.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// What `use proptest::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Alias for the crate root, so `prop::collection::vec(..)` works.
    pub use crate as prop;
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` for `config.cases` generated inputs.
///
/// Strategy expressions are evaluated together (as one tuple strategy)
/// before any argument binds, so one argument's strategy cannot reference
/// an earlier argument (`b in 0..a` does not compile). Use
/// `prop_flat_map` for dependent generation, as upstream proptest
/// recommends.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_body {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident ($($pat:pat_param in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                // The tuple of strategies is itself a strategy: generation
                // draws components in declaration order (the same stream
                // the per-variable formulation used), and shrinking
                // simplifies one component at a time.
                let __strategy = ($(($strat),)*);
                $crate::test_runner::run_proptest(
                    &__config,
                    stringify!($name),
                    &__strategy,
                    |__vals| {
                        #[allow(unused_variables, unused_mut)]
                        let ($($pat,)*) = ::std::clone::Clone::clone(__vals);
                        $body
                    },
                );
            }
        )*
    };
}

/// Asserts a property, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            panic!("prop_assert!({}) failed", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

/// Asserts equality of two values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            panic!("prop_assert_eq! failed: {:?} != {:?}", l, r);
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            panic!($($fmt)+);
        }
    }};
}

/// Asserts inequality of two values.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if *l == *r {
            panic!("prop_assert_ne! failed: both sides are {:?}", l);
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if *l == *r {
            panic!($($fmt)+);
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return;
        }
    };
}
