//! # Slice Tuner
//!
//! A Rust reproduction of *Slice Tuner: A Selective Data Acquisition
//! Framework for Accurate and Fair Machine Learning Models* (Ki Hyun Tae
//! and Steven Euijong Whang, SIGMOD 2021).
//!
//! Slice Tuner decides **how much new data to acquire for each slice** of a
//! dataset so that, after retraining, the model's loss *and* unfairness
//! (equalized error rates, Definition 1) are both minimized under an
//! acquisition budget. It estimates per-slice power-law learning curves,
//! solves a convex allocation problem, and iterates as acquired data shifts
//! the curves (Algorithm 1).
//!
//! ```
//! use slice_tuner::{PoolSource, SliceTuner, Strategy, TSchedule, TunerConfig};
//! use st_data::{families, SlicedDataset};
//! use st_models::ModelSpec;
//!
//! // Four demographic slices, 60 starting examples each.
//! let family = families::census();
//! let dataset = SlicedDataset::generate(&family, &[60; 4], 100, 7);
//! let mut pool = PoolSource::new(family, 7);
//!
//! let mut config = TunerConfig::new(ModelSpec::softmax());
//! config.train.epochs = 8; // keep the doctest quick
//! config.repeats = 1;
//! let mut tuner = SliceTuner::new(dataset, &mut pool, config);
//!
//! // Spend a budget of 200 with the Moderate iterative strategy.
//! let result = tuner.run(Strategy::Iterative(TSchedule::moderate()), 200.0);
//! assert_eq!(result.acquired.len(), 4);
//! assert!(result.spent <= 200.0);
//! ```
//!
//! ## Crate map
//!
//! - [`tuner`] — the engine: curve estimation + optimization + acquisition.
//! - [`strategy`] — Uniform / Water filling baselines, One-shot, and the
//!   iterative `T` schedules.
//! - [`metrics`] — loss and equalized-error-rates unfairness measures.
//! - [`acquire`] — acquisition sources: generative pools and the
//!   crowdsourcing (Amazon Mechanical Turk) simulator.
//! - [`influence`] — the slice-influence sweep behind Figure 7.
//! - [`runner`] — multi-trial experiment harness with the Table 6 settings.
//! - [`trials`] — the parallel trial executor (`--jobs N`), bit-identical
//!   to the sequential runner at any worker count.
//! - [`cache`] — shared memoization of repeated curve estimations, keyed
//!   on dataset content + seed so hits equal recomputation exactly.

pub mod acquire;
pub mod cache;
pub mod checkpoint;
pub mod config;
pub mod drift;
pub mod error;
pub mod incremental;
pub mod influence;
pub mod metrics;
pub mod report;
pub mod runner;
pub mod similarity;
pub mod strategy;
pub mod trials;
pub mod tuner;

pub use acquire::{
    AcquisitionSource, CrowdConfig, CrowdSimulator, CrowdStats, EscalatingSource, EscalationConfig,
    FaultConfig, FaultySource, PoolSource,
};
pub use cache::{CurveCache, CurveKey};
pub use checkpoint::{clean_orphan_temp, clean_orphan_temps, CheckpointError, RoundCheckpoint};
pub use config::{strategy_from_name, strategy_to_name, ExperimentSpec, SpecError};
pub use drift::{DriftDetector, DriftFlag};
pub use error::Error;
pub use incremental::{IncrementalState, WarmKey};
pub use influence::{influence_sweep, InfluencePoint, InfluenceSweep};
pub use metrics::{avg_eer, max_eer, EvalReport};
pub use report::{acquisition_markdown, methods_csv, methods_markdown, series_markdown};
pub use runner::{run_trials, AggregateResult, Setting, Summary};
pub use similarity::{similarity_matrix, SimilarityMatrix};
pub use strategy::{
    proportional_allocation, uniform_allocation, water_filling_allocation, BanditParams, Strategy,
    TSchedule,
};
pub use trials::{
    ensure_deterministic_kernel, plan_thread_budget, run_trials_parallel, try_run_trials_parallel,
    ThreadBudget, TrialError,
};
pub use tuner::{batch_plane_names, RunResult, SliceTuner, TunerConfig, TuningWarning};

// Re-exported so downstream callers (the CLI's `--mode` flag, integration
// tests) can pick an estimation schedule without a direct st_curve edge.
pub use st_curve::EstimationMode;
