//! Minimal JSON value tree, writer, and parser.
//!
//! The checkpoint subsystem (`slice_tuner::checkpoint`) needs a real
//! serialization format: versioned, human-inspectable, and byte-stable so
//! that `to_string(parse(to_string(v))) == to_string(v)` holds exactly.
//! This module provides just that — an order-preserving [`Value`] tree, a
//! deterministic writer, and a recursive-descent parser with positioned
//! errors. It lives in the vendored serde crate so a future swap to real
//! serde/serde_json replaces one import path.
//!
//! Design choices:
//! - Objects are `Vec<(String, Value)>`: insertion order is preserved and
//!   round-trips byte-for-byte (no hash-map reordering).
//! - Numbers are kept as the exact string that was written/parsed. Callers
//!   that need exact `f64` round-trips (the checkpoint does) store floats
//!   as 16-hex-digit bit patterns instead of decimal.

use std::fmt;

/// A parsed JSON document node. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// The literal token text, e.g. `"42"` or `"-1.5e3"`. Kept verbatim so
    /// writing a parsed document is byte-identical.
    Num(String),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Convenience constructor for an unsigned integer member.
    pub fn from_u64(v: u64) -> Value {
        Value::Num(v.to_string())
    }

    /// Convenience constructor for a signed integer member.
    pub fn from_i64(v: i64) -> Value {
        Value::Num(v.to_string())
    }

    /// Looks up an object member by key (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string node.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array node.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object node.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool node.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parses the numeric token as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// Parses the numeric token as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// Serializes the tree compactly (no whitespace), deterministically.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out);
        out
    }
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(s) => out.push_str(s),
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Obj(members) => {
            out.push('{');
            for (i, (k, item)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub pos: usize,
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(ParseError {
            pos,
            msg: "trailing characters after document".to_string(),
        });
    }
    Ok(v)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn err(pos: usize, msg: &str) -> ParseError {
    ParseError {
        pos,
        msg: msg.to_string(),
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(&c) => Err(err(*pos, &format!("unexpected byte 0x{c:02x}"))),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: Value,
) -> Result<Value, ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, &format!("expected `{lit}`")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_start = *pos;
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if *pos == digits_start {
        return Err(err(*pos, "expected digit"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        if *pos == frac_start {
            return Err(err(*pos, "expected digit after decimal point"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        if *pos == exp_start {
            return Err(err(*pos, "expected digit in exponent"));
        }
    }
    let token = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ASCII");
    Ok(Value::Num(token.to_string()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| err(*pos, "non-ASCII in \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "invalid hex in \\u escape"))?;
                        // Surrogates are rejected rather than paired — the
                        // writer never emits them (it only escapes control
                        // characters, which are in the BMP).
                        let c = char::from_u32(code)
                            .ok_or_else(|| err(*pos, "\\u escape is not a scalar value"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => {
                return Err(err(*pos, "unescaped control character in string"));
            }
            Some(_) => {
                // Copy one UTF-8 scalar (input is a &str, so boundaries are valid).
                let s = std::str::from_utf8(&bytes[*pos..]).expect("input was a str");
                let c = s.chars().next().expect("non-empty remainder");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    debug_assert_eq!(bytes[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(err(*pos, "expected `,` or `]` in array")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    debug_assert_eq!(bytes[*pos], b'{');
    *pos += 1;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected string key in object"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected `:` after object key"));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            _ => return Err(err(*pos, "expected `,` or `}` in object")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let doc = r#"{"a":1,"b":[true,false,null],"c":"x\ny","d":-2.5e3,"e":{}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.to_json(), doc);
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x\ny"));
        assert_eq!(
            v.get("b").and_then(Value::as_arr).map(<[Value]>::len),
            Some(3)
        );
    }

    #[test]
    fn preserves_member_order() {
        let doc = r#"{"z":1,"a":2,"m":3}"#;
        assert_eq!(parse(doc).unwrap().to_json(), doc);
    }

    #[test]
    fn write_parse_write_is_a_fixpoint() {
        let v = Value::Obj(vec![
            ("version".to_string(), Value::from_u64(1)),
            (
                "bits".to_string(),
                Value::Str(format!("{:016x}", 1.5_f64.to_bits())),
            ),
            (
                "rows".to_string(),
                Value::Arr(vec![Value::from_i64(-3), Value::Null, Value::Bool(true)]),
            ),
        ]);
        let once = v.to_json();
        let twice = parse(&once).unwrap().to_json();
        assert_eq!(once, twice);
    }

    #[test]
    fn rejects_malformed_documents_with_position() {
        for (doc, at) in [
            ("{", 1),
            ("[1,]", 3),
            ("{\"a\" 1}", 5),
            ("tru", 0),
            ("\"abc", 4),
            ("1 2", 2),
        ] {
            let e = parse(doc).unwrap_err();
            assert_eq!(e.pos, at, "doc {doc:?}: {e}");
        }
    }

    #[test]
    fn escapes_control_characters() {
        let v = Value::Str("a\u{0001}b\"c\\d".to_string());
        let s = v.to_json();
        assert_eq!(s, "\"a\\u0001b\\\"c\\\\d\"");
        assert_eq!(parse(&s).unwrap(), v);
    }
}
