//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The container has no crates.io access, so the workspace vendors a
//! minimal property-testing framework that is source-compatible with the
//! `proptest!` suites in `crates/*/tests/proptests.rs` (see
//! `vendor/README.md`):
//!
//! - [`strategy::Strategy`] with `prop_map` / `prop_flat_map`, implemented
//!   for numeric ranges (`0.3f64..5.0`, `0u64..1000`, `2usize..=6`, …) and
//!   for tuples of strategies;
//! - [`collection::vec`] building `Vec` strategies from an element strategy
//!   and a size (fixed, `lo..hi`, or `lo..=hi`);
//! - the [`proptest!`] macro plus `prop_assert!`, `prop_assert_eq!`,
//!   `prop_assert_ne!`, and `prop_assume!`;
//! - [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! **Pinned seeds.** Unlike upstream proptest (which seeds from OS entropy
//! by default), every run here derives its RNG from a fixed master seed, the
//! test's name, and the case index — so CI failures are reproducible by
//! construction. Set `PROPTEST_SEED=<u64>` to explore a different stream;
//! a failure report prints the seed that replays it.
//!
//! **No shrinking.** Failing inputs are reported as generated. The suites
//! in this workspace use small, bounded inputs where shrinking matters
//! little.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// What `use proptest::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Alias for the crate root, so `prop::collection::vec(..)` works.
    pub use crate as prop;
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` for `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_body {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident ($($pat:pat_param in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let __case_seed = $crate::test_runner::derive_case_seed(
                        __config.seed,
                        stringify!($name),
                        __case,
                    );
                    let mut __rng = $crate::test_runner::TestRng::new(__case_seed);
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| -> () { $body })
                    );
                    if let ::std::result::Result::Err(payload) = __outcome {
                        eprintln!(
                            "proptest {}: case {}/{} failed (master seed {}; \
                             rerun with PROPTEST_SEED={} to replay)",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            __config.seed,
                            __config.seed,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

/// Asserts a property, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            panic!("prop_assert!({}) failed", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

/// Asserts equality of two values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            panic!("prop_assert_eq! failed: {:?} != {:?}", l, r);
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            panic!($($fmt)+);
        }
    }};
}

/// Asserts inequality of two values.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if *l == *r {
            panic!("prop_assert_ne! failed: both sides are {:?}", l);
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if *l == *r {
            panic!($($fmt)+);
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return;
        }
    };
}
