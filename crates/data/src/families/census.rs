//! AdultCensus analog: 4 race×gender slices, binary income prediction.
//!
//! AdultCensus is the paper's tabular benchmark: simple model (a single
//! fully-connected layer), flat learning curves (Figure 8d fits exponents of
//! only 0.06–0.10), low losses (~0.25), and tiny budgets (B = 300–500
//! suffices). The analog uses strongly overlapping positive/negative
//! clusters plus label noise so that loss bottoms out quickly — the flat
//! curve regime where Water filling and Uniform are hard to beat but
//! Slice Tuner still edges them out (Table 6, bottom rows).

use super::random_centers;
use crate::generator::{DatasetFamily, GaussianSliceModel, LabelCluster, SliceSpec};

/// Feature dimensionality of the census family.
pub const CENSUS_DIM: usize = 12;

/// Slice names in paper order.
pub const CENSUS_SLICES: [&str; 4] = ["White_Male", "White_Female", "Black_Male", "Black_Female"];

/// Fraction of `>50K` labels per slice. The real dataset is skewed: White
/// males have a much higher positive rate than Black females; the skew is
/// what makes per-slice error rates differ.
pub const POSITIVE_RATE: [f64; 4] = [0.31, 0.11, 0.19, 0.06];

/// Canonical census family.
pub fn census() -> DatasetFamily {
    census_with_seed(0xCE25_0000)
}

/// Census family with an explicit geometry seed.
pub fn census_with_seed(seed: u64) -> DatasetFamily {
    // A shared pair of income-class directions plus per-slice demographic
    // offsets. Classes overlap strongly (sigma comparable to separation):
    // that produces the flat, low-exponent learning curves of Figure 8d.
    let class_centers = random_centers(2, CENSUS_DIM, 0.9, seed);
    let slice_offsets = random_centers(4, CENSUS_DIM, 0.8, seed ^ 0xBEEF);

    let mut slices = Vec::with_capacity(4);
    for (i, name) in CENSUS_SLICES.iter().enumerate() {
        let mk_center = |label: usize| -> Vec<f64> {
            class_centers[label]
                .iter()
                .zip(&slice_offsets[i])
                .map(|(c, o)| c + o)
                .collect()
        };
        let p = POSITIVE_RATE[i];
        let neg = LabelCluster::new(0, 1.0 - p, mk_center(0), 1.1);
        let pos = LabelCluster::new(1, p, mk_center(1), 1.1);
        let model = GaussianSliceModel::new(vec![neg, pos], 0.08);
        slices.push(SliceSpec::new(*name, 1.0, model));
    }
    DatasetFamily::new("census", CENSUS_DIM, 2, slices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::SliceId;
    use crate::rng::seeded_rng;

    #[test]
    fn four_binary_slices() {
        let fam = census();
        assert_eq!(fam.num_slices(), 4);
        assert_eq!(fam.num_classes, 2);
    }

    #[test]
    fn positive_rates_follow_spec() {
        let fam = census();
        let mut rng = seeded_rng(17);
        for (i, &p) in POSITIVE_RATE.iter().enumerate() {
            let n = 4000;
            let ex = fam.sample_slice(SliceId(i), n, &mut rng);
            let pos = ex.iter().filter(|e| e.label == 1).count() as f64 / n as f64;
            // Label noise perturbs the rate toward 0.5 by ~8%/2.
            let expected = p * (1.0 - 0.08) + 0.5 * 0.08;
            assert!(
                (pos - expected).abs() < 0.03,
                "slice {i}: {pos} vs {expected}"
            );
        }
    }

    #[test]
    fn classes_overlap_strongly() {
        let fam = census();
        // Class-center separation must be comparable to sigma: that is the
        // design property producing flat curves.
        let s = &fam.slices[0].model;
        let d: f64 = s.clusters[0]
            .center
            .iter()
            .zip(&s.clusters[1].center)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(d < 3.0 * s.clusters[0].sigma, "separation {d} too large");
    }
}
