//! Power-law learning-curve estimation (paper Section 4).
//!
//! A learning curve projects how a model trained on the entire dataset will
//! perform on a particular slice as a function of that slice's size. The
//! paper models curves as `loss = b · n^(-a)` (the power-law region of
//! Hestness et al.) and fits them by weighted non-linear least squares over
//! losses measured on random subsets, averaging several fits for
//! reliability.
//!
//! This crate provides:
//! - [`PowerLaw`] / [`PowerLawWithFloor`] — the parametric curve models;
//! - [`fit_power_law`] — weighted NLLS via a log-space linear initialization
//!   refined by Levenberg–Marquardt; [`IncrementalFit`] is its updatable
//!   counterpart, absorbing new measurements one at a time into a running
//!   log-log accumulator that seeds the same refinement;
//! - [`CurveEstimator`] — the subset-sampling measurement loop with both the
//!   exhaustive (Section 4.1) and the amortized (Section 4.2) schedules;
//! - [`zoo`] — the Domhan et al. parametric model menu with AIC/BIC
//!   selection, re-verifying the paper's "power law fits as well as any
//!   other curve" claim;
//! - [`bands`] — bootstrap confidence bands quantifying curve unreliability
//!   (the Section 6.3.4 regime).

pub mod bands;
pub mod estimator;
pub mod fit;
pub mod model;
pub mod points;
pub mod zoo;

pub use bands::{bootstrap_curve, CurveBands};
pub use estimator::{
    BatchedTrainPlan, CurveEstimator, EstimateError, EstimationMode, MeasureRequest, SliceEstimate,
    SliceLossMeasurement, TrainEvalBatchFn, TrainEvalFn,
};
pub use fit::{
    fit_power_law, fit_power_law_seeded, fit_power_law_with_floor, log_space_seed, FitError,
    IncrementalFit, LogLogAccumulator, ResidualCusum,
};
pub use model::{PowerLaw, PowerLawWithFloor};
pub use points::CurvePoint;
pub use zoo::{fit_best, fit_family, fit_zoo, CurveFamily, FittedCurve};
