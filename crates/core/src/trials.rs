//! Parallel multi-trial execution.
//!
//! The paper reports means over 10 trials; trials are embarrassingly
//! parallel (each builds its own dataset, source, and tuner from a derived
//! seed). This module fans trials out over crossbeam scoped threads while
//! keeping results in deterministic trial order — the aggregate is
//! bit-identical to the sequential [`run_trials`](crate::runner::run_trials).

use crate::acquire::PoolSource;
use crate::runner::AggregateResult;
use crate::strategy::Strategy;
use crate::tuner::{RunResult, SliceTuner, TunerConfig};
use parking_lot::Mutex;
use st_data::{split_seed, DatasetFamily, SlicedDataset};

/// Parallel version of [`run_trials`](crate::runner::run_trials): runs
/// `trials` independent seeds across `threads` workers (0 = all cores) and
/// aggregates identically to the sequential runner.
///
/// # Panics
/// Panics when `trials == 0`.
#[allow(clippy::too_many_arguments)]
pub fn run_trials_parallel(
    family: &DatasetFamily,
    initial_sizes: &[usize],
    validation_size: usize,
    budget: f64,
    strategy: Strategy,
    config: &TunerConfig,
    trials: usize,
    threads: usize,
) -> AggregateResult {
    assert!(trials > 0, "need at least one trial");
    let workers = if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    }
    .min(trials);

    let slots: Mutex<Vec<Option<RunResult>>> = Mutex::new(vec![None; trials]);
    let next: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let t = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if t >= trials {
                    break;
                }
                let trial_seed = split_seed(config.seed, 0x7121A1 + t as u64);
                let ds = SlicedDataset::generate(
                    family,
                    initial_sizes,
                    validation_size,
                    trial_seed,
                );
                let mut source =
                    PoolSource::new(family.clone(), split_seed(trial_seed, 2));
                // Trials already saturate the workers; keep each tuner's
                // internal estimator single-threaded to avoid oversubscription.
                let mut cfg = config.clone().with_seed(trial_seed);
                cfg.threads = 1;
                let mut tuner = SliceTuner::new(ds, &mut source, cfg);
                let result = tuner.run(strategy, budget);
                slots.lock()[t] = Some(result);
            });
        }
    })
    .expect("trial worker panicked");

    let results: Vec<RunResult> =
        slots.into_inner().into_iter().map(|r| r.expect("all trials ran")).collect();
    crate::runner::aggregate(strategy, results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_trials;
    use st_data::families::census;
    use st_models::ModelSpec;

    fn quick_config() -> TunerConfig {
        let mut cfg = TunerConfig::new(ModelSpec::softmax());
        cfg.train.epochs = 8;
        cfg.fractions = vec![0.4, 0.7, 1.0];
        cfg.repeats = 1;
        cfg.threads = 1;
        cfg
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let fam = census();
        let seq =
            run_trials(&fam, &[50; 4], 60, 100.0, Strategy::Uniform, &quick_config(), 3);
        let par = run_trials_parallel(
            &fam,
            &[50; 4],
            60,
            100.0,
            Strategy::Uniform,
            &quick_config(),
            3,
            2,
        );
        assert_eq!(seq.trials.len(), par.trials.len());
        for (s, p) in seq.trials.iter().zip(&par.trials) {
            assert_eq!(s.acquired, p.acquired);
            assert_eq!(s.report.overall_loss.to_bits(), p.report.overall_loss.to_bits());
        }
        assert_eq!(seq.loss.mean.to_bits(), par.loss.mean.to_bits());
    }

    #[test]
    fn single_worker_still_completes_all_trials() {
        let fam = census();
        let agg = run_trials_parallel(
            &fam,
            &[40; 4],
            50,
            80.0,
            Strategy::WaterFilling,
            &quick_config(),
            4,
            1,
        );
        assert_eq!(agg.trials.len(), 4);
        assert!(agg.loss.mean.is_finite());
    }

    #[test]
    fn more_workers_than_trials_is_fine() {
        let fam = census();
        let agg = run_trials_parallel(
            &fam,
            &[40; 4],
            50,
            80.0,
            Strategy::Uniform,
            &quick_config(),
            2,
            16,
        );
        assert_eq!(agg.trials.len(), 2);
    }

    #[test]
    #[should_panic(expected = "need at least one trial")]
    fn zero_trials_is_rejected() {
        let fam = census();
        let _ = run_trials_parallel(
            &fam,
            &[40; 4],
            50,
            80.0,
            Strategy::Uniform,
            &quick_config(),
            0,
            1,
        );
    }
}
