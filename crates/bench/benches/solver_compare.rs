//! Microbench ablation: the three acquisition solvers head-to-head.
//!
//! DESIGN.md calls out the solver choice (first-order projected subgradient
//! vs second-order interior point vs the λ=0 closed form). Tests prove the
//! optima agree; this bench records what each costs as the slice count
//! grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use st_curve::PowerLaw;
use st_optim::{
    budget_sensitivity, solve_barrier, solve_kkt, solve_projected, AcquisitionProblem,
    BarrierOptions, SolverOptions,
};
use std::hint::black_box;

fn problem(n: usize, lambda: f64) -> AcquisitionProblem {
    let curves: Vec<PowerLaw> = (0..n)
        .map(|i| PowerLaw::new(1.5 + (i % 7) as f64 * 0.4, 0.1 + (i % 5) as f64 * 0.15))
        .collect();
    let sizes: Vec<f64> = (0..n).map(|i| 100.0 + (i * 37 % 300) as f64).collect();
    let costs: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64 * 0.25).collect();
    AcquisitionProblem::new(curves, sizes, costs, 250.0 * n as f64, lambda)
}

fn bench_solver_compare(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_compare");
    group.sample_size(20);
    for n in [4usize, 10, 20, 50] {
        let p = problem(n, 1.0);
        group.bench_with_input(BenchmarkId::new("projected", n), &p, |b, p| {
            b.iter(|| solve_projected(black_box(p), &SolverOptions::default()))
        });
        group.bench_with_input(BenchmarkId::new("barrier", n), &p, |b, p| {
            b.iter(|| solve_barrier(black_box(p), &BarrierOptions::default()))
        });
        let p0 = problem(n, 0.0);
        group.bench_with_input(BenchmarkId::new("kkt_lambda0", n), &p0, |b, p| {
            b.iter(|| solve_kkt(black_box(p)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("sensitivity");
    group.sample_size(10);
    let p = problem(10, 1.0);
    group.bench_function("budget_sensitivity_n10", |b| {
        b.iter(|| budget_sensitivity(black_box(&p), &BarrierOptions::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_solver_compare);
criterion_main!(benches);
