//! Integration: incremental re-estimation across acquisition rounds.
//!
//! Incremental mode's identity contract is regime-specific. Under the
//! amortized schedule (the quickstart default) every round's estimation
//! runs the normal full schedule over the append-layout snapshot, so an
//! incremental trial is bit-identical to a from-scratch one. Under the
//! exhaustive schedule a measurement trains on the *whole* dataset minus
//! the target slice's held-out part, so skipping a clean slice reuses a
//! result that is stale with respect to other slices' growth — the same
//! staleness Algorithm 1 already accepts between rounds. There the
//! guarantees are: strictly fewer trainings than the forced-full-refit
//! baseline, and bit-reproducibility run to run.

use slice_tuner::{PoolSource, RunResult, SliceTuner, Strategy, TSchedule, TunerConfig};
use st_curve::EstimationMode;
use st_data::{families, SlicedDataset};
use st_models::ModelSpec;

/// The quickstart cell (census family, four slices) in its default
/// amortized estimation mode, with incremental snapshots on.
fn quickstart_config() -> TunerConfig {
    let mut cfg = TunerConfig::new(ModelSpec::softmax())
        .with_seed(7)
        .with_incremental();
    cfg.train.epochs = 8;
    cfg.fractions = vec![0.4, 0.7, 1.0];
    cfg.repeats = 1;
    cfg.threads = 1;
    cfg.max_iterations = 3;
    cfg
}

/// Same cell under the exhaustive schedule, where dirty-slice skipping
/// actually happens.
fn exhaustive_config() -> TunerConfig {
    quickstart_config().with_mode(EstimationMode::Exhaustive)
}

fn run_cell(cfg: TunerConfig) -> (RunResult, usize) {
    let fam = families::census();
    let ds = SlicedDataset::generate(&fam, &[60, 25, 45, 30], 60, 5);
    let mut src = PoolSource::new(fam, 55);
    let mut tuner = SliceTuner::new(ds, &mut src, cfg);
    let result = tuner.run(Strategy::Iterative(TSchedule::moderate()), 300.0);
    let trainings = tuner.trainings();
    (result, trainings)
}

fn assert_bit_identical(a: &RunResult, b: &RunResult) {
    assert_eq!(a.acquired, b.acquired, "allocations diverged");
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.spent.to_bits(), b.spent.to_bits());
    for (x, y) in a
        .report
        .per_slice_losses
        .iter()
        .zip(&b.report.per_slice_losses)
    {
        assert_eq!(x.to_bits(), y.to_bits(), "per-slice loss bits diverged");
    }
    assert_eq!(
        a.report.overall_loss.to_bits(),
        b.report.overall_loss.to_bits()
    );
}

#[test]
fn incremental_trial_matches_from_scratch_bit_for_bit() {
    // Satellite acceptance: on the quickstart cell, an incremental-mode
    // trial must land the exact same allocations as a from-scratch trial.
    // The amortized schedule re-measures everything each round (it is the
    // data plane, not the schedule, that incremental mode changes here),
    // so the match is bit-exact.
    let (inc, _) = run_cell(quickstart_config());
    let mut scratch_cfg = quickstart_config();
    scratch_cfg.incremental = false;
    let (scratch, _) = run_cell(scratch_cfg);
    assert_bit_identical(&inc, &scratch);
}

#[test]
fn exhaustive_incremental_saves_trainings_and_is_reproducible() {
    // Dirty-slice tracking must train strictly less than the refit-all
    // baseline once any round leaves a slice clean...
    let (inc, inc_trainings) = run_cell(exhaustive_config());
    let (_full, full_trainings) = run_cell(exhaustive_config().with_incremental_refit_all());
    assert!(
        inc_trainings < full_trainings,
        "expected fewer trainings: {inc_trainings} vs {full_trainings}"
    );
    // ...and the skipping itself is deterministic: the same cell run
    // twice reproduces every bit.
    let (again, again_trainings) = run_cell(exhaustive_config());
    assert_eq!(inc_trainings, again_trainings);
    assert_bit_identical(&inc, &again);
}

#[test]
fn warm_start_trial_is_tolerance_comparable() {
    let (cold, _) = run_cell(exhaustive_config());
    let (warm, _) = run_cell(exhaustive_config().with_warm_start());

    // Warm-starting reorders the math (skipped init draws shift the RNG
    // stream), so this is tolerance- not bit-gated.
    assert!(warm.report.overall_loss.is_finite());
    assert!(
        (warm.report.overall_loss - cold.report.overall_loss).abs()
            < 0.5 * cold.report.overall_loss.max(0.1),
        "warm loss {} strayed from cold {}",
        warm.report.overall_loss,
        cold.report.overall_loss
    );
    let spent_total: usize = warm.acquired.iter().sum();
    assert!(spent_total > 0, "warm run must still acquire data");
}

#[test]
fn incremental_append_snapshot_matches_rebuilt_matrices() {
    // After an incremental run the append-layout snapshot must still name
    // exactly the dataset's examples: gathering it into canonical order
    // reproduces the from-scratch slice-major build.
    let fam = families::census();
    let ds = SlicedDataset::generate(&fam, &[40; 4], 50, 9);
    let mut src = PoolSource::new(fam, 21);
    let mut tuner = SliceTuner::new(ds, &mut src, exhaustive_config());
    let result = tuner.run(Strategy::Iterative(TSchedule::moderate()), 200.0);
    assert!(result.acquired.iter().sum::<usize>() > 0);

    let snap = tuner.dataset().matrices();
    let fresh = tuner.dataset().build_matrices();
    assert_eq!(snap.train_x.rows(), fresh.train_x.rows());
    let order = snap.canonical_row_order();
    let cols = snap.train_x.cols();
    for (logical, &phys) in order.iter().enumerate() {
        assert_eq!(
            snap.train_x.row(phys),
            fresh.train_x.row(logical),
            "row {logical} diverged"
        );
        assert_eq!(snap.train_y[phys], fresh.train_y[logical]);
    }
    assert_eq!(order.len() * cols, fresh.train_x.as_slice().len());
}
