//! Microbench: the model substrate — MLP vs ConvNet training cost, the
//! quantitative side of the "MLPs stand in for the paper's CNNs" note in
//! DESIGN.md (the CNN path exists but costs this much more per training).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use st_data::{image_fashion, seeded_rng, SliceId};
use st_linalg::Matrix;
use st_models::{
    examples_to_matrix, labels_of, train, ConvNet, ConvTrainConfig, ImageShape, ModelSpec,
    TrainConfig,
};
use std::hint::black_box;

fn image_batch(per_slice: usize) -> (Matrix, Vec<usize>) {
    let fam = image_fashion();
    let mut rng = seeded_rng(1);
    let mut all = Vec::new();
    for s in 0..fam.num_slices() {
        all.extend(fam.sample_slice(SliceId(s), per_slice, &mut rng));
    }
    (examples_to_matrix(&all), labels_of(&all))
}

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_training");
    group.sample_size(10);

    for per_slice in [20usize, 50] {
        let (x, y) = image_batch(per_slice);
        let mlp_cfg = TrainConfig {
            epochs: 5,
            ..TrainConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("mlp_basic", per_slice), &(), |b, _| {
            b.iter(|| {
                train(
                    black_box(&x),
                    black_box(&y),
                    64,
                    10,
                    &ModelSpec::basic(),
                    &mlp_cfg,
                )
            })
        });
        let conv_cfg = ConvTrainConfig {
            epochs: 5,
            filters: 4,
            ..Default::default()
        };
        let shape = ImageShape {
            channels: 1,
            height: 8,
            width: 8,
        };
        group.bench_with_input(BenchmarkId::new("convnet", per_slice), &(), |b, _| {
            b.iter(|| ConvNet::train(black_box(&x), black_box(&y), shape, 10, &conv_cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
