//! Property-based tests for the curve fitter.

use proptest::prelude::*;
use st_curve::{
    fit_power_law, fit_power_law_with_floor, log_space_seed, CurvePoint, IncrementalFit,
    LogLogAccumulator, PowerLaw,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exact_curves_are_recovered(b in 0.2f64..8.0, a in 0.05f64..1.0) {
        let xs = [15.0, 40.0, 90.0, 160.0, 250.0, 400.0];
        let pts: Vec<CurvePoint> =
            xs.iter().map(|&x| CurvePoint::size_weighted(x, b * x.powf(-a))).collect();
        let fit = fit_power_law(&pts).unwrap();
        prop_assert!((fit.b - b).abs() < 1e-3 * b.max(1.0), "b {} vs {b}", fit.b);
        prop_assert!((fit.a - a).abs() < 1e-4, "a {} vs {a}", fit.a);
    }

    #[test]
    fn fit_is_scale_equivariant(b in 0.5f64..4.0, a in 0.1f64..0.8, scale in 0.5f64..3.0) {
        // Multiplying all losses by s multiplies b by s and leaves a alone.
        let xs = [20.0, 60.0, 120.0, 300.0];
        let base: Vec<CurvePoint> =
            xs.iter().map(|&x| CurvePoint::size_weighted(x, b * x.powf(-a))).collect();
        let scaled: Vec<CurvePoint> = base
            .iter()
            .map(|p| CurvePoint::size_weighted(p.n, p.loss * scale))
            .collect();
        let f1 = fit_power_law(&base).unwrap();
        let f2 = fit_power_law(&scaled).unwrap();
        prop_assert!((f2.a - f1.a).abs() < 1e-6);
        prop_assert!((f2.b / f1.b - scale).abs() < 1e-6 * scale);
    }

    #[test]
    fn fitted_exponent_stays_in_bounds(
        losses in prop::collection::vec(0.01f64..5.0, 4..10),
    ) {
        let pts: Vec<CurvePoint> = losses
            .iter()
            .enumerate()
            .map(|(i, &l)| CurvePoint::size_weighted(10.0 * (i + 1) as f64, l))
            .collect();
        let fit = fit_power_law(&pts).unwrap();
        prop_assert!(fit.a > 0.0 && fit.a <= 4.0);
        prop_assert!(fit.b > 0.0 && fit.b.is_finite());
    }

    #[test]
    fn floor_fit_never_has_higher_cost_than_plain(
        b in 0.5f64..4.0, a in 0.2f64..0.9, c in 0.0f64..0.5,
    ) {
        let xs = [10.0, 30.0, 80.0, 200.0, 500.0, 1000.0];
        let pts: Vec<CurvePoint> =
            xs.iter().map(|&x| CurvePoint::size_weighted(x, b * x.powf(-a) + c)).collect();
        let plain = fit_power_law(&pts).unwrap();
        let floored = fit_power_law_with_floor(&pts).unwrap();
        let cost = |f: &dyn Fn(f64) -> f64| -> f64 {
            pts.iter().map(|p| p.weight * (f(p.n) - p.loss).powi(2)).sum()
        };
        // The floor family contains the plain family (c = 0 is on the grid).
        prop_assert!(
            cost(&|n| floored.eval(n)) <= cost(&|n| plain.eval(n)) + 1e-9,
        );
    }

    #[test]
    fn log_mean_is_between_extremes(
        b1 in 0.5f64..4.0, a1 in 0.1f64..0.9,
        b2 in 0.5f64..4.0, a2 in 0.1f64..0.9,
    ) {
        let m = PowerLaw::log_mean(&[PowerLaw::new(b1, a1), PowerLaw::new(b2, a2)]);
        prop_assert!(m.a >= a1.min(a2) - 1e-12 && m.a <= a1.max(a2) + 1e-12);
        prop_assert!(m.b >= b1.min(b2) - 1e-9 && m.b <= b1.max(b2) + 1e-9);
    }

    #[test]
    fn eval_monotone_nonincreasing(b in 0.1f64..10.0, a in 0.01f64..2.0,
                                   n1 in 1.0f64..1e5, n2 in 1.0f64..1e5) {
        let c = PowerLaw::new(b, a);
        let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        prop_assert!(c.eval(lo) >= c.eval(hi));
    }

    #[test]
    fn examples_for_loss_round_trips(b in 0.5f64..5.0, a in 0.1f64..1.0, n in 10.0f64..1e4) {
        let c = PowerLaw::new(b, a);
        let loss = c.eval(n);
        let back = c.examples_for_loss(loss).unwrap();
        prop_assert!((back - n).abs() < 1e-6 * n);
    }

    #[test]
    fn accumulator_seed_matches_batch_init_on_random_streams(
        raw in prop::collection::vec((5u32..5000, 1e-5f64..10.0, 0.5f64..50.0), 2..20),
    ) {
        // The running weighted log-log accumulator, absorbing one point at a
        // time in stream order, must agree with the batch closed-form init
        // on the same points to floating-point round-off.
        let pts: Vec<CurvePoint> = raw
            .iter()
            .map(|&(n, loss, w)| CurvePoint::weighted(n as f64, loss, w))
            .collect();
        let mut acc = LogLogAccumulator::new();
        for p in &pts {
            acc.push(p);
        }
        let batch = log_space_seed(&pts);
        match (acc.seed(), batch) {
            (Ok((ln_b_i, a_i)), Ok((ln_b_b, a_b))) => {
                prop_assert!(
                    (ln_b_i - ln_b_b).abs() < 1e-9 * (1.0 + ln_b_b.abs()),
                    "ln_b {ln_b_i} vs {ln_b_b}"
                );
                prop_assert!(
                    (a_i - a_b).abs() < 1e-9 * (1.0 + a_b.abs()),
                    "a {a_i} vs {a_b}"
                );
            }
            // Degenerate streams (all one size, all at the loss floor) must
            // be rejected identically.
            (Err(ei), Err(eb)) => prop_assert_eq!(ei, eb),
            (i, b) => prop_assert!(false, "seed {i:?} disagreed with batch {b:?}"),
        }
    }

    #[test]
    fn incremental_fit_matches_batch_fit_on_random_streams(
        raw in prop::collection::vec((5u32..2000, 1e-4f64..5.0), 3..12),
    ) {
        // Absorbing the same stream one point at a time and fitting must
        // agree with the one-shot batch fit to LM convergence tolerance.
        let pts: Vec<CurvePoint> = raw
            .iter()
            .map(|&(n, loss)| CurvePoint::size_weighted(n as f64, loss))
            .collect();
        let mut inc = IncrementalFit::new();
        for p in &pts {
            inc.absorb(*p);
        }
        match (inc.fit(), fit_power_law(&pts)) {
            (Ok(fi), Ok(fb)) => {
                prop_assert!(
                    (fi.a - fb.a).abs() < 1e-5 * (1.0 + fb.a.abs()),
                    "a {} vs {}", fi.a, fb.a
                );
                prop_assert!(
                    (fi.b - fb.b).abs() < 1e-5 * (1.0 + fb.b.abs()),
                    "b {} vs {}", fi.b, fb.b
                );
            }
            (Err(ei), Err(eb)) => prop_assert_eq!(ei, eb),
            (i, b) => prop_assert!(false, "incremental {i:?} disagreed with batch {b:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn zoo_winner_never_loses_to_the_dedicated_power_law_fit(
        b in 0.3f64..5.0,
        a in 0.08f64..0.9,
        noise in 0.0f64..0.08,
    ) {
        // The AIC winner's weighted SSE can be at most the plain power law's
        // (pow2 is in the menu, and AIC only reorders equal-k fits by SSE).
        let xs = [15.0, 40.0, 90.0, 160.0, 250.0, 400.0];
        let pts: Vec<CurvePoint> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                let wobble = 1.0 + noise * ((i as f64 * 2.7).sin());
                CurvePoint::size_weighted(x, b * x.powf(-a) * wobble)
            })
            .collect();
        let best = st_curve::fit_best(&pts).unwrap();
        let pow = st_curve::fit_family(&pts, st_curve::CurveFamily::PowerLaw).unwrap();
        prop_assert!(best.wsse <= pow.wsse + 1e-9, "winner {} vs pow {}", best.wsse, pow.wsse);
    }

    #[test]
    fn zoo_fits_are_deterministic(
        b in 0.3f64..3.0,
        a in 0.1f64..0.8,
    ) {
        let xs = [20.0, 60.0, 150.0, 400.0];
        let pts: Vec<CurvePoint> =
            xs.iter().map(|&x| CurvePoint::size_weighted(x, b * x.powf(-a) + 0.1)).collect();
        let f1 = st_curve::fit_best(&pts).unwrap();
        let f2 = st_curve::fit_best(&pts).unwrap();
        prop_assert_eq!(f1, f2);
    }

    #[test]
    fn bootstrap_bands_contain_the_point_fit(
        b in 0.5f64..3.0,
        a in 0.1f64..0.7,
        seed in 0u64..500,
    ) {
        let xs = [20.0, 50.0, 100.0, 200.0, 350.0];
        let pts: Vec<CurvePoint> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                let wobble = 1.0 + 0.05 * ((i as f64 + seed as f64) * 1.9).sin();
                CurvePoint::size_weighted(x, b * x.powf(-a) * wobble)
            })
            .collect();
        let bands = st_curve::bootstrap_curve(&pts, 100, 0.95, seed).unwrap();
        prop_assert!(bands.b_interval().lo <= bands.b_interval().hi);
        prop_assert!(bands.a_interval().lo <= bands.a_interval().hi);
        let iv = bands.loss_interval(500.0);
        prop_assert!(iv.lo <= iv.hi);
    }
}
