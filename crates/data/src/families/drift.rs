//! Drift-scenario family: two slices purpose-built for attributable drift.
//!
//! The drift gate (`st_bench --bin drift`), the drift integration suite,
//! and the CLI's `--family driftbench` all share this cell, so the scenario
//! the docs describe is the scenario every harness runs. Two slices live in
//! orthogonal 2-D feature subspaces of a 4-D space:
//!
//! - **drifter** — tight clusters (sigma 0.45), easy, low base loss. A
//!   drift plan that poisons its pool produces a large *relative* loss
//!   residual, the quantity the detector's CUSUM accumulates.
//! - **steady** — wide clusters (sigma 1.0), hard. Budget redirected away
//!   from a quarantined drifter still buys real improvement here.
//!
//! The orthogonal subspaces keep drift *attributable*: poisoned examples in
//! one slice cannot silently re-shape the other slice's decision boundary
//! beyond shared-model contamination. Start it small-drifter / large-steady
//! (e.g. sizes `100,500`) so the stale baseline funds the drifter — exactly
//! the regime where trusting a pre-drift curve hurts.

use crate::generator::{DatasetFamily, GaussianSliceModel, LabelCluster, SliceSpec};

/// Feature dimensionality of the driftbench family.
pub const DRIFTBENCH_DIM: usize = 4;

/// Canonical drift-scenario family.
pub fn driftbench() -> DatasetFamily {
    let dim = DRIFTBENCH_DIM;
    let mut slices = Vec::new();
    for (i, (name, sigma)) in [("drifter", 0.45), ("steady", 1.0)].iter().enumerate() {
        let mut c0 = vec![0.0; dim];
        let mut c1 = vec![0.0; dim];
        c0[2 * i] = -1.0;
        c0[2 * i + 1] = -1.0;
        c1[2 * i] = 1.0;
        c1[2 * i + 1] = 1.0;
        let neg = LabelCluster::new(0, 0.5, c0, *sigma);
        let pos = LabelCluster::new(1, 0.5, c1, *sigma);
        slices.push(SliceSpec::new(
            *name,
            1.0,
            GaussianSliceModel::new(vec![neg, pos], 0.02),
        ));
    }
    DatasetFamily::new("driftbench", dim, 2, slices)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_live_in_orthogonal_subspaces() {
        let fam = driftbench();
        assert_eq!(fam.num_slices(), 2);
        assert_eq!(fam.num_classes, 2);
        for (i, spec) in fam.slices.iter().enumerate() {
            for c in &spec.model.clusters {
                for (d, &x) in c.center.iter().enumerate() {
                    if d / 2 == i {
                        assert_ne!(x, 0.0, "slice {i} signals in its own plane");
                    } else {
                        assert_eq!(x, 0.0, "slice {i} is silent in plane {}", d / 2);
                    }
                }
            }
        }
        assert!(
            fam.slices[0].model.clusters[0].sigma < fam.slices[1].model.clusters[0].sigma,
            "the drifter is the easy slice"
        );
    }
}
