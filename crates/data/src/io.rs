//! CSV-style persistence for example sets.
//!
//! Slice Tuner's crowdsourcing pipeline stores acquired batches between
//! collection rounds (the paper used S3 + manual post-processing); this
//! module provides the equivalent local capability without new
//! dependencies. Format: one example per line,
//! `label,slice,f0,f1,...` with full-precision floats.

use crate::example::{Example, SliceId};

/// Errors from [`read_examples`].
#[derive(Debug, Clone, PartialEq)]
pub enum CsvError {
    /// A line had fewer than the two required columns.
    TooFewColumns {
        /// 1-based line number.
        line: usize,
    },
    /// Label or slice id failed to parse as an unsigned integer.
    BadIndex {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// A feature failed to parse as a float.
    BadFloat {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// Rows disagree on feature dimensionality.
    InconsistentDim {
        /// 1-based line number.
        line: usize,
        /// Dimensionality of the first row.
        expected: usize,
        /// Dimensionality found on this row.
        found: usize,
    },
    /// A feature parsed but is not a finite number (NaN or ±Inf). Rejected
    /// at ingestion: one non-finite feature would poison every dot product
    /// downstream and surface as an inexplicable NaN loss rounds later.
    NonFiniteFeature {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// A slice id names a slice the target dataset does not have
    /// (bounds-checked readers only).
    SliceOutOfRange {
        /// 1-based line number.
        line: usize,
        /// The out-of-range slice id.
        slice: usize,
        /// Number of slices in the target dataset.
        num_slices: usize,
    },
    /// A slice received no examples at all (covering readers only):
    /// datasets built from such a batch would carry empty slices whose
    /// evaluations degenerate to NaN.
    EmptySlice {
        /// The unpopulated slice id.
        slice: usize,
        /// Number of slices the batch was required to cover.
        num_slices: usize,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::TooFewColumns { line } => {
                write!(f, "line {line}: need at least label and slice columns")
            }
            CsvError::BadIndex { line, token } => {
                write!(f, "line {line}: cannot parse index {token:?}")
            }
            CsvError::BadFloat { line, token } => {
                write!(f, "line {line}: cannot parse float {token:?}")
            }
            CsvError::InconsistentDim {
                line,
                expected,
                found,
            } => {
                write!(f, "line {line}: {found} features, expected {expected}")
            }
            CsvError::NonFiniteFeature { line, token } => {
                write!(f, "line {line}: non-finite feature {token:?}")
            }
            CsvError::SliceOutOfRange {
                line,
                slice,
                num_slices,
            } => {
                write!(
                    f,
                    "line {line}: slice {slice} out of range (dataset has {num_slices} slices)"
                )
            }
            CsvError::EmptySlice { slice, num_slices } => {
                write!(
                    f,
                    "slice {slice} has no examples (batch must cover all {num_slices} slices)"
                )
            }
        }
    }
}

impl std::error::Error for CsvError {}

/// Serializes examples to the CSV format. Floats use the shortest
/// round-trippable decimal representation Rust produces by default.
pub fn write_examples(examples: &[Example]) -> String {
    let mut out = String::new();
    for e in examples {
        out.push_str(&format!("{},{}", e.label, e.slice.index()));
        for v in &e.features {
            out.push_str(&format!(",{v}"));
        }
        out.push('\n');
    }
    out
}

/// Parses the CSV format back into examples. Blank lines are skipped.
///
/// # Errors
/// Returns the first [`CsvError`] encountered.
pub fn read_examples(text: &str) -> Result<Vec<Example>, CsvError> {
    let mut out = Vec::new();
    let mut dim: Option<usize> = None;
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let mut parts = raw.split(',');
        let label_tok = parts.next().unwrap_or("");
        let slice_tok = parts.next().ok_or(CsvError::TooFewColumns { line })?;
        let label: usize = label_tok.trim().parse().map_err(|_| CsvError::BadIndex {
            line,
            token: label_tok.to_string(),
        })?;
        let slice: usize = slice_tok.trim().parse().map_err(|_| CsvError::BadIndex {
            line,
            token: slice_tok.to_string(),
        })?;
        let features: Result<Vec<f64>, CsvError> = parts
            .map(|t| {
                let v = t.trim().parse::<f64>().map_err(|_| CsvError::BadFloat {
                    line,
                    token: t.to_string(),
                })?;
                if !v.is_finite() {
                    return Err(CsvError::NonFiniteFeature {
                        line,
                        token: t.to_string(),
                    });
                }
                Ok(v)
            })
            .collect();
        let features = features?;
        match dim {
            None => dim = Some(features.len()),
            Some(d) if d != features.len() => {
                return Err(CsvError::InconsistentDim {
                    line,
                    expected: d,
                    found: features.len(),
                })
            }
            _ => {}
        }
        out.push(Example::new(features, label, SliceId(slice)));
    }
    Ok(out)
}

/// [`read_examples`] with slice ids bounds-checked against `num_slices` —
/// the ingestion boundary for examples headed into a dataset
/// ([`SlicedDataset::absorb`](crate::SlicedDataset::absorb) would otherwise
/// panic on an out-of-range id that came from user-supplied CSV).
///
/// # Errors
/// Returns the first [`CsvError`] encountered, including
/// [`CsvError::SliceOutOfRange`] with the offending line.
pub fn read_examples_bounded(text: &str, num_slices: usize) -> Result<Vec<Example>, CsvError> {
    let examples = read_examples(text)?;
    // Line numbers are recoverable because read_examples preserves input
    // order and skips only blank lines.
    let mut line = 0;
    let mut nonblank = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    for e in &examples {
        line = nonblank.next().map(|(i, _)| i + 1).unwrap_or(line + 1);
        if e.slice.index() >= num_slices {
            return Err(CsvError::SliceOutOfRange {
                line,
                slice: e.slice.index(),
                num_slices,
            });
        }
    }
    Ok(examples)
}

/// [`read_examples_bounded`] additionally requiring every one of the
/// `num_slices` slices to be populated — the ingestion boundary for a
/// *whole dataset* (as opposed to an acquisition batch, which legitimately
/// touches a subset of slices).
///
/// # Errors
/// Returns the first [`CsvError`] encountered, including
/// [`CsvError::EmptySlice`] for the lowest unpopulated slice id.
pub fn read_examples_covering(text: &str, num_slices: usize) -> Result<Vec<Example>, CsvError> {
    let examples = read_examples_bounded(text, num_slices)?;
    let mut seen = vec![false; num_slices];
    for e in &examples {
        seen[e.slice.index()] = true;
    }
    if let Some(slice) = seen.iter().position(|&s| !s) {
        return Err(CsvError::EmptySlice { slice, num_slices });
    }
    Ok(examples)
}

/// Writes examples to a file.
///
/// # Errors
/// Propagates I/O errors.
pub fn save_examples(path: &std::path::Path, examples: &[Example]) -> std::io::Result<()> {
    std::fs::write(path, write_examples(examples))
}

/// Reads examples from a file.
///
/// # Errors
/// Propagates I/O errors; parse failures surface as
/// [`std::io::ErrorKind::InvalidData`].
pub fn load_examples(path: &std::path::Path) -> std::io::Result<Vec<Example>> {
    let text = std::fs::read_to_string(path)?;
    read_examples(&text)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

/// [`load_examples`] with slice ids bounds-checked against `num_slices`
/// (see [`read_examples_bounded`]).
///
/// # Errors
/// Propagates I/O errors; parse and bounds failures surface as
/// [`std::io::ErrorKind::InvalidData`].
pub fn load_examples_bounded(
    path: &std::path::Path,
    num_slices: usize,
) -> std::io::Result<Vec<Example>> {
    let text = std::fs::read_to_string(path)?;
    read_examples_bounded(&text, num_slices)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Example> {
        vec![
            Example::new(vec![1.5, -2.25, 0.1], 0, SliceId(0)),
            Example::new(vec![0.0, 1e-12, 3.0e8], 4, SliceId(2)),
        ]
    }

    #[test]
    fn round_trip_preserves_everything() {
        let ex = sample();
        let back = read_examples(&write_examples(&ex)).unwrap();
        assert_eq!(ex, back);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = format!("\n{}\n\n", write_examples(&sample()));
        assert_eq!(read_examples(&text).unwrap().len(), 2);
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert_eq!(read_examples("").unwrap(), vec![]);
        assert_eq!(write_examples(&[]), "");
    }

    #[test]
    fn detects_missing_slice_column() {
        assert_eq!(
            read_examples("3\n"),
            Err(CsvError::TooFewColumns { line: 1 })
        );
    }

    #[test]
    fn detects_bad_label() {
        assert!(matches!(
            read_examples("x,0,1.0\n"),
            Err(CsvError::BadIndex { line: 1, .. })
        ));
    }

    #[test]
    fn detects_bad_float_with_line_number() {
        let text = "0,0,1.0\n1,1,oops\n";
        assert!(matches!(
            read_examples(text),
            Err(CsvError::BadFloat { line: 2, .. })
        ));
    }

    #[test]
    fn detects_inconsistent_dimensions() {
        let text = "0,0,1.0,2.0\n1,1,3.0\n";
        assert_eq!(
            read_examples(text),
            Err(CsvError::InconsistentDim {
                line: 2,
                expected: 2,
                found: 1
            })
        );
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("st_data_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("examples.csv");
        let ex = sample();
        save_examples(&path, &ex).unwrap();
        assert_eq!(load_examples(&path).unwrap(), ex);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bounded_reader_accepts_in_range_slices() {
        let ex = sample();
        let back = read_examples_bounded(&write_examples(&ex), 3).unwrap();
        assert_eq!(back, ex);
    }

    #[test]
    fn bounded_reader_rejects_out_of_range_slice_with_line() {
        // sample()'s second example names slice 2; a 2-slice dataset must
        // reject it at parse time instead of panicking later in absorb.
        let text = format!("\n{}", write_examples(&sample()));
        assert_eq!(
            read_examples_bounded(&text, 2),
            Err(CsvError::SliceOutOfRange {
                line: 3,
                slice: 2,
                num_slices: 2
            })
        );
    }

    #[test]
    fn zero_feature_examples_round_trip() {
        let ex = vec![Example::new(vec![], 1, SliceId(3))];
        assert_eq!(read_examples(&write_examples(&ex)).unwrap(), ex);
    }

    #[test]
    fn rejects_non_finite_features_with_line_and_token() {
        for token in ["NaN", "inf", "-inf", "Infinity"] {
            let text = format!("0,0,1.0\n1,1,{token}\n");
            assert_eq!(
                read_examples(&text),
                Err(CsvError::NonFiniteFeature {
                    line: 2,
                    token: token.to_string()
                }),
                "token {token:?} must be rejected"
            );
        }
        // Finite parses stay accepted, including exotic-but-finite forms.
        assert!(read_examples("0,0,1e308\n").is_ok());
    }

    #[test]
    fn truncated_rows_are_typed_errors_not_panics() {
        // A row chopped mid-write (crash during save) in every position.
        for truncated in ["0", "0,", "0,0,1.0\n1", "0,0,1.0\n1,1,2.0e"] {
            let err = read_examples(truncated);
            assert!(err.is_err(), "{truncated:?} must fail");
        }
        // "0," parses as slice token "" -> BadIndex, not TooFewColumns.
        assert!(matches!(
            read_examples("0,"),
            Err(CsvError::BadIndex { line: 1, .. })
        ));
    }

    #[test]
    fn covering_reader_rejects_empty_slices() {
        let ex = sample(); // populates slices 0 and 2 only
        let text = write_examples(&ex);
        assert_eq!(
            read_examples_covering(&text, 3),
            Err(CsvError::EmptySlice {
                slice: 1,
                num_slices: 3
            })
        );
        // Whole-file emptiness is the degenerate case of the same error.
        assert_eq!(
            read_examples_covering("", 2),
            Err(CsvError::EmptySlice {
                slice: 0,
                num_slices: 2
            })
        );
        // A batch covering every slice passes through unchanged.
        let full = vec![
            Example::new(vec![1.0], 0, SliceId(0)),
            Example::new(vec![2.0], 1, SliceId(1)),
        ];
        assert_eq!(
            read_examples_covering(&write_examples(&full), 2).unwrap(),
            full
        );
    }
}
