//! Deterministic randomness helpers.
//!
//! Every stochastic component of the reproduction takes an explicit `u64`
//! seed so that experiments are replayable. `rand_distr` is not on the
//! offline allowlist, so the standard normal sampler is a small Box–Muller
//! implementation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates the project-standard seeded RNG.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives an independent child seed from `(seed, stream)`.
///
/// Uses the SplitMix64 finalizer, which decorrelates sequential stream ids;
/// this is how per-slice / per-trial RNGs are derived from one experiment
/// seed without overlapping sequences.
pub fn split_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Samples a standard normal deviate via the Box–Muller transform.
pub fn normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Reject u1 == 0 so ln(u1) is finite.
    let mut u1: f64 = rng.gen();
    while u1 <= f64::MIN_POSITIVE {
        u1 = rng.gen();
    }
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let same = (0..10).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 10);
    }

    #[test]
    fn split_seed_decorrelates_streams() {
        let s = 12345;
        let children: Vec<u64> = (0..8).map(|i| split_seed(s, i)).collect();
        let mut uniq = children.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), children.len());
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut rng = seeded_rng(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn normal_is_finite() {
        let mut rng = seeded_rng(9);
        assert!((0..1000).all(|_| normal(&mut rng).is_finite()));
    }
}
