//! Integration: the convolutional path over the synthetic image family.
//!
//! Validates the model substitution end to end: the image patterns are
//! learnable by the real CNN, per-slice losses behave like learning curves
//! (more data ⇒ lower loss), and augmentation stretches small acquisitions.

use st_curve::{fit_power_law, CurvePoint};
use st_data::{image_fashion, seeded_rng, AugmentConfig, Example, SliceId};
use st_models::{
    accuracy_of, examples_to_matrix, labels_of, log_loss_of, ConvNet, ConvTrainConfig, ImageShape,
};

const SHAPE: ImageShape = ImageShape {
    channels: 1,
    height: 8,
    width: 8,
};

fn sample_all(per_slice: usize, seed: u64) -> Vec<Example> {
    let fam = image_fashion();
    let mut rng = seeded_rng(seed);
    let mut out = Vec::new();
    for s in 0..fam.num_slices() {
        out.extend(fam.sample_slice(SliceId(s), per_slice, &mut rng));
    }
    out
}

#[test]
fn cnn_learns_the_image_family_well_above_chance() {
    let train = sample_all(80, 1);
    let val = sample_all(40, 2);
    let cfg = ConvTrainConfig {
        epochs: 12,
        filters: 6,
        ..Default::default()
    };
    let net = ConvNet::train(
        &examples_to_matrix(&train),
        &labels_of(&train),
        SHAPE,
        10,
        &cfg,
    );
    let acc = accuracy_of(&net, &examples_to_matrix(&val), &labels_of(&val));
    assert!(
        acc > 0.5,
        "10-way accuracy {acc} should beat chance (0.1) widely"
    );
}

#[test]
fn per_slice_losses_decrease_with_data_and_fit_power_laws() {
    let fam = image_fashion();
    let val = sample_all(60, 3);
    let mut points: Vec<Vec<CurvePoint>> = vec![Vec::new(); fam.num_slices()];

    for &n in &[25usize, 50, 100, 200] {
        let train = sample_all(n, 4);
        let cfg = ConvTrainConfig {
            epochs: 10,
            filters: 6,
            ..Default::default()
        };
        let net = ConvNet::train(
            &examples_to_matrix(&train),
            &labels_of(&train),
            SHAPE,
            10,
            &cfg,
        );
        for s in 0..fam.num_slices() {
            let slice_val: Vec<Example> = val
                .iter()
                .filter(|e| e.slice == SliceId(s))
                .cloned()
                .collect();
            let loss = log_loss_of(
                &net,
                &examples_to_matrix(&slice_val),
                &labels_of(&slice_val),
            );
            points[s].push(CurvePoint::size_weighted(n as f64, loss));
        }
    }

    // Every slice must admit a power-law fit with a positive decay exponent,
    // and most slices must strictly improve from the smallest to the largest
    // training size (training noise can break monotonicity on a few).
    let mut improved = 0;
    for pts in &points {
        let fit = fit_power_law(pts).expect("fit");
        assert!(fit.a > 0.0 && fit.b > 0.0);
        if pts.last().unwrap().loss < pts.first().unwrap().loss {
            improved += 1;
        }
    }
    assert!(
        improved >= 7,
        "only {improved}/10 slices improved with 8x data"
    );
}

#[test]
fn augmentation_expands_batches_and_helps_a_starved_model() {
    let small = sample_all(12, 5);
    let val = sample_all(40, 6);
    let vx = examples_to_matrix(&val);
    let vy = labels_of(&val);
    let cfg = ConvTrainConfig {
        epochs: 10,
        filters: 6,
        ..Default::default()
    };

    let bare = ConvNet::train(
        &examples_to_matrix(&small),
        &labels_of(&small),
        SHAPE,
        10,
        &cfg,
    );

    let policy = AugmentConfig::image(8, 8);
    let mut rng = seeded_rng(7);
    let expanded = policy.expand(&small, 4, &mut rng);
    assert_eq!(expanded.len(), small.len() * 4);
    let augd = ConvNet::train(
        &examples_to_matrix(&expanded),
        &labels_of(&expanded),
        SHAPE,
        10,
        &cfg,
    );

    let bare_acc = accuracy_of(&bare, &vx, &vy);
    let aug_acc = accuracy_of(&augd, &vx, &vy);
    // Augmentation must not hurt; usually it helps a 12-per-class model.
    assert!(
        aug_acc >= bare_acc - 0.05,
        "augmented {aug_acc} vs bare {bare_acc}"
    );
}

#[test]
fn image_rows_round_trip_through_csv() {
    let ex = sample_all(3, 8);
    let text = st_data::write_examples(&ex);
    let back = st_data::read_examples(&text).unwrap();
    assert_eq!(ex, back);
}
