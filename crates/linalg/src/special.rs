//! Numerically stable special functions for classification losses.

/// Probabilities are clamped into `[EPS_PROB, 1 - EPS_PROB]` before taking
/// logs, matching the clipping that Keras' `categorical_crossentropy`
/// performs. This bounds a single example's log loss at about 16.1 nats.
pub const EPS_PROB: f64 = 1e-7;

/// Numerically stable log-sum-exp: `ln Σ exp(x_i)`.
///
/// Returns `-inf` for an empty slice (the sum of zero exponentials).
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    m + xs.iter().map(|&x| (x - m).exp()).sum::<f64>().ln()
}

/// Replaces `logits` with softmax probabilities, in place.
///
/// Uses the max-shift trick so large logits cannot overflow.
pub fn softmax_in_place(logits: &mut [f64]) {
    let m = logits.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    let mut sum = 0.0;
    for x in logits.iter_mut() {
        *x = (*x - m).exp();
        sum += *x;
    }
    debug_assert!(sum > 0.0);
    for x in logits.iter_mut() {
        *x /= sum;
    }
}

/// One softmax probability without materializing the distribution:
/// bit-identical to `softmax_in_place` followed by reading `logits[index]`,
/// with one division instead of `len` and no mutation.
///
/// The bit-identity argument: the max fold and the exponential/sum
/// accumulation sweep run in the same ascending-index order over the same
/// values as [`softmax_in_place`], so `sum` carries identical bits, and the
/// final `exp(logits[index] - m) / sum` divides the identical operand pair
/// the in-place version divides at `index`. Negative-log-likelihood
/// epilogues only read the label's probability, so this is their exact
/// drop-in — the batched estimation plane's stacked evaluation leans on it
/// to skip the per-row segment copy and the unread divisions.
///
/// # Panics
/// Panics if `index` is out of bounds.
pub fn softmax_prob(logits: &[f64], index: usize) -> f64 {
    assert!(index < logits.len(), "softmax index out of bounds");
    let m = logits.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    let mut sum = 0.0;
    let mut picked = 0.0;
    for (i, &x) in logits.iter().enumerate() {
        let e = (x - m).exp();
        sum += e;
        if i == index {
            picked = e;
        }
    }
    debug_assert!(sum > 0.0);
    picked / sum
}

/// Logistic sigmoid, stable for large-magnitude inputs.
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_sum_exp_matches_naive_for_small_inputs() {
        let xs = [0.1, -0.5, 1.2];
        let naive = xs.iter().map(|&x: &f64| x.exp()).sum::<f64>().ln();
        assert!((log_sum_exp(&xs) - naive).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_stable_for_huge_inputs() {
        let xs = [1000.0, 1000.0];
        assert!((log_sum_exp(&xs) - (1000.0 + 2.0_f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn log_sum_exp_empty_is_neg_inf() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn softmax_sums_to_one_and_preserves_order() {
        let mut v = vec![1.0, 3.0, 2.0];
        softmax_in_place(&mut v);
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(v[1] > v[2] && v[2] > v[0]);
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let mut v = vec![1e6, 1e6 - 1.0];
        softmax_in_place(&mut v);
        assert!(v.iter().all(|p| p.is_finite()));
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn softmax_prob_bits_match_in_place_softmax() {
        let cases: [&[f64]; 4] = [
            &[1.0, 3.0, 2.0],
            &[1e6, 1e6 - 1.0],
            &[-4.25, 0.0, 17.5, 3.125, -0.5],
            &[0.7],
        ];
        for logits in cases {
            let mut dist = logits.to_vec();
            softmax_in_place(&mut dist);
            for (i, &p) in dist.iter().enumerate() {
                assert_eq!(
                    softmax_prob(logits, i).to_bits(),
                    p.to_bits(),
                    "lane {i} of {logits:?}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "softmax index out of bounds")]
    fn softmax_prob_rejects_out_of_bounds_index() {
        let _ = softmax_prob(&[0.0, 1.0], 2);
    }

    #[test]
    fn sigmoid_symmetry_and_limits() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(100.0) > 1.0 - 1e-12);
        assert!(sigmoid(-100.0) < 1e-12);
        assert!(sigmoid(-1000.0).is_finite());
    }
}
