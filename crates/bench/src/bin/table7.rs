//! Figure 11 + Table 7: small slices with unreliable learning curves.
//!
//! Fashion-MNIST with initial size L = 30 and B = 500: the fitted curves
//! are noisy (Figure 11), yet Slice Tuner still beats the baselines
//! because it only needs the curves' *relative* ordering.

use slice_tuner::{PoolSource, SliceTuner, Strategy, TSchedule};
use st_bench::{rule, run_cell, trials, FamilySetup};
use st_data::SlicedDataset;

fn main() {
    // Bench-wide kernel default: `sharded` on multi-core hosts, `simd`
    // on single-core containers; `ST_KERNEL` overrides (see docs/kernels.md).
    st_bench::init_bench_kernel();
    let setup = FamilySetup::fashion();
    let init = 30usize;
    let budget = 500.0;
    let sizes = vec![init; 10];
    let trials = trials();

    // Figure 11: show two noisy small-slice curve fits.
    let ds = SlicedDataset::generate(&setup.family, &sizes, setup.validation, 55);
    let mut src = PoolSource::new(setup.family.clone(), 55);
    let tuner = SliceTuner::new(ds, &mut src, setup.config(55));
    let curves = tuner.estimate_curves(0);
    println!("Figure 11: noisy learning curves at slice size {init}");
    for s in [4usize, 7] {
        let name = setup.family.slice_names()[s];
        println!(
            "  slice {name:<12} y = {:.3}x^(-{:.3})",
            curves[s].b, curves[s].a
        );
    }

    println!("\nTable 7: loss and unfairness with small slices (init {init}, B = {budget}, {trials} trials)");
    println!(
        "{:<14} {:>8} {:>10} {:>10}",
        "Method", "Loss", "Avg EER", "Max EER"
    );
    rule(46);
    let methods = [
        ("Uniform", Strategy::Uniform),
        ("Water filling", Strategy::WaterFilling),
        ("Moderate", Strategy::Iterative(TSchedule::moderate())),
    ];
    let mut cfg = setup.config(5);
    cfg.min_slice_size = init;
    let orig = run_cell(
        &setup.family,
        &sizes,
        setup.validation,
        0.0,
        Strategy::Uniform,
        &cfg,
        trials,
    );
    println!(
        "{:<14} {:>8.3} {:>10.3} {:>10.3}",
        "Original", orig.original_loss.mean, orig.original_avg_eer.mean, orig.original_max_eer.mean
    );
    for (name, strategy) in &methods {
        let agg = run_cell(
            &setup.family,
            &sizes,
            setup.validation,
            budget,
            *strategy,
            &cfg,
            trials,
        );
        println!(
            "{name:<14} {:>8.3} {:>10.3} {:>10.3}",
            agg.loss.mean, agg.avg_eer.mean, agg.max_eer.mean
        );
    }
    println!("\n(paper shape: even with unreliable curves, Moderate ≤ both baselines;");
    println!(" with equal initial sizes Uniform and Water filling coincide)");
}
