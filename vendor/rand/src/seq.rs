//! Sequence-related sampling.

use crate::RngCore;

/// Slice shuffling and element selection.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Uniform in-place Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        // `rng` may be unsized, so draw bits directly instead of going
        // through the `Sized`-bounded `Rng::gen_range` convenience method.
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = (rng.next_u64() % self.len() as u64) as usize;
            Some(&self[i])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([42].choose(&mut rng), Some(&42));
    }
}
