//! Synthetic image slices for the convolutional path.
//!
//! The paper's image datasets (Fashion-MNIST, UTKFace) are unavailable
//! offline, so this module draws small grayscale images whose classes are
//! geometric *patterns* (bars, checkers, crosses, …) rather than Gaussian
//! feature clusters. A convolution genuinely helps on these — the patterns
//! are translation-jittered — which is what makes the CNN-vs-MLP validation
//! experiment (`cnn_compare`) meaningful.
//!
//! Per-slice difficulty is controlled by the additive pixel-noise level, so
//! image slices have differently-steep learning curves just like the
//! Gaussian families.

use crate::example::{Example, SliceId};
use crate::rng::normal;
use rand::Rng;

/// Geometric pattern classes for synthetic images.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Bright vertical bar at a jittered column.
    VBar,
    /// Bright horizontal bar at a jittered row.
    HBar,
    /// Main diagonal stripe.
    Diagonal,
    /// 2×2 checkerboard tiling with jittered phase.
    Checker,
    /// Filled disc near the center.
    Blob,
    /// Plus-shaped cross through a jittered center.
    Cross,
    /// Bright one-pixel frame around the border.
    Frame,
    /// Anti-diagonal stripe.
    AntiDiagonal,
    /// Horizontal intensity gradient.
    GradientX,
    /// Two parallel vertical bars.
    DoubleBar,
}

impl Pattern {
    /// The canonical 10-pattern menu, indexed by class label.
    pub const ALL: [Pattern; 10] = [
        Pattern::VBar,
        Pattern::HBar,
        Pattern::Diagonal,
        Pattern::Checker,
        Pattern::Blob,
        Pattern::Cross,
        Pattern::Frame,
        Pattern::AntiDiagonal,
        Pattern::GradientX,
        Pattern::DoubleBar,
    ];

    /// Renders this pattern into an `h × w` image (row-major), with spatial
    /// jitter drawn from `rng`. Foreground intensity is 1.0 on a 0.0
    /// background; noise is added by the caller.
    pub fn render<R: Rng + ?Sized>(&self, h: usize, w: usize, rng: &mut R) -> Vec<f64> {
        let mut img = vec![0.0; h * w];
        let set = |img: &mut Vec<f64>, y: usize, x: usize| {
            if y < h && x < w {
                img[y * w + x] = 1.0;
            }
        };
        match self {
            Pattern::VBar => {
                let col = rng.gen_range(1..w.saturating_sub(1).max(2));
                for y in 0..h {
                    set(&mut img, y, col);
                }
            }
            Pattern::HBar => {
                let row = rng.gen_range(1..h.saturating_sub(1).max(2));
                for x in 0..w {
                    set(&mut img, row, x);
                }
            }
            Pattern::Diagonal => {
                let off = rng.gen_range(0..3) as i64 - 1;
                for t in 0..h.max(w) as i64 {
                    let (y, x) = (t, t + off);
                    if y >= 0 && x >= 0 {
                        set(&mut img, y as usize, x as usize);
                    }
                }
            }
            Pattern::Checker => {
                let phase = rng.gen_range(0..2);
                for y in 0..h {
                    for x in 0..w {
                        if (y / 2 + x / 2 + phase) % 2 == 0 {
                            set(&mut img, y, x);
                        }
                    }
                }
            }
            Pattern::Blob => {
                let cy = h as f64 / 2.0 + rng.gen_range(-1.0..1.0);
                let cx = w as f64 / 2.0 + rng.gen_range(-1.0..1.0);
                let r = (h.min(w) as f64 / 3.2).max(1.0);
                for y in 0..h {
                    for x in 0..w {
                        let d2 = (y as f64 - cy).powi(2) + (x as f64 - cx).powi(2);
                        if d2 <= r * r {
                            set(&mut img, y, x);
                        }
                    }
                }
            }
            Pattern::Cross => {
                let cy = rng.gen_range(2..h.saturating_sub(2).max(3));
                let cx = rng.gen_range(2..w.saturating_sub(2).max(3));
                for x in 0..w {
                    set(&mut img, cy, x);
                }
                for y in 0..h {
                    set(&mut img, y, cx);
                }
            }
            Pattern::Frame => {
                for x in 0..w {
                    set(&mut img, 0, x);
                    set(&mut img, h - 1, x);
                }
                for y in 0..h {
                    set(&mut img, y, 0);
                    set(&mut img, y, w - 1);
                }
            }
            Pattern::AntiDiagonal => {
                let off = rng.gen_range(0..3) as i64 - 1;
                for t in 0..h.max(w) as i64 {
                    let (y, x) = (t, w as i64 - 1 - t + off);
                    if y >= 0 && x >= 0 {
                        set(&mut img, y as usize, x as usize);
                    }
                }
            }
            Pattern::GradientX => {
                for y in 0..h {
                    for x in 0..w {
                        img[y * w + x] = x as f64 / (w - 1).max(1) as f64;
                    }
                }
            }
            Pattern::DoubleBar => {
                let col = rng.gen_range(1..(w / 2).max(2));
                for y in 0..h {
                    set(&mut img, y, col);
                    set(&mut img, y, col + w / 2);
                }
            }
        }
        img
    }
}

/// One image slice: a subset of pattern classes at a given noise level.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageSliceSpec {
    /// Human-readable slice name.
    pub name: String,
    /// Acquisition cost `C(s)`.
    pub cost: f64,
    /// Class labels this slice draws from (uniformly).
    pub labels: Vec<usize>,
    /// Additive Gaussian pixel-noise standard deviation (difficulty knob).
    pub noise: f64,
    /// Probability of replacing the label with a uniform random class
    /// (irreducible-loss floor).
    pub label_noise: f64,
}

/// A family of image slices, mirroring [`crate::DatasetFamily`] for the
/// convolutional path.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageFamily {
    /// Family name.
    pub name: String,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Number of classes (≤ 10, indexing [`Pattern::ALL`]).
    pub num_classes: usize,
    /// The slices in id order.
    pub slices: Vec<ImageSliceSpec>,
}

impl ImageFamily {
    /// Validates and builds a family.
    ///
    /// # Panics
    /// Panics when a slice references a label ≥ `num_classes`, when
    /// `num_classes` exceeds the pattern menu, or when a slice has no labels.
    pub fn new(
        name: impl Into<String>,
        height: usize,
        width: usize,
        num_classes: usize,
        slices: Vec<ImageSliceSpec>,
    ) -> Self {
        assert!(
            num_classes <= Pattern::ALL.len(),
            "at most 10 pattern classes"
        );
        assert!(!slices.is_empty(), "family needs at least one slice");
        for s in &slices {
            assert!(!s.labels.is_empty(), "slice {} has no labels", s.name);
            assert!(
                s.labels.iter().all(|&l| l < num_classes),
                "slice {} label out of range",
                s.name
            );
        }
        ImageFamily {
            name: name.into(),
            height,
            width,
            num_classes,
            slices,
        }
    }

    /// Flattened feature dimensionality.
    pub fn feature_dim(&self) -> usize {
        self.height * self.width
    }

    /// Number of slices.
    pub fn num_slices(&self) -> usize {
        self.slices.len()
    }

    /// Per-slice costs in slice-id order.
    pub fn costs(&self) -> Vec<f64> {
        self.slices.iter().map(|s| s.cost).collect()
    }

    /// Samples `n` fresh examples for slice `slice`.
    ///
    /// # Panics
    /// Panics if `slice` is out of range.
    pub fn sample_slice<R: Rng + ?Sized>(
        &self,
        slice: SliceId,
        n: usize,
        rng: &mut R,
    ) -> Vec<Example> {
        let spec = &self.slices[slice.index()];
        (0..n)
            .map(|_| {
                let label = spec.labels[rng.gen_range(0..spec.labels.len())];
                let mut img = Pattern::ALL[label].render(self.height, self.width, rng);
                if spec.noise > 0.0 {
                    for v in &mut img {
                        *v += spec.noise * normal(rng);
                    }
                }
                let out_label = if spec.label_noise > 0.0 && rng.gen::<f64>() < spec.label_noise {
                    rng.gen_range(0..self.num_classes)
                } else {
                    label
                };
                Example::new(img, out_label, slice)
            })
            .collect()
    }
}

/// The canonical image analog of Fashion-MNIST: 10 single-class slices over
/// 8×8 images, with noise increasing across slices so their learning curves
/// differ (easy early slices, hard late slices).
pub fn image_fashion() -> ImageFamily {
    let slices = (0..10)
        .map(|i| ImageSliceSpec {
            name: format!("pattern_{i}"),
            cost: 1.0,
            labels: vec![i],
            noise: 0.15 + 0.06 * i as f64,
            label_noise: 0.02,
        })
        .collect();
    ImageFamily::new("image-fashion", 8, 8, 10, slices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn all_patterns_render_nonempty_in_range() {
        let mut rng = seeded_rng(1);
        for p in Pattern::ALL {
            let img = p.render(8, 8, &mut rng);
            assert_eq!(img.len(), 64);
            assert!(img.iter().any(|&v| v > 0.0), "{p:?} rendered all-zero");
            assert!(
                img.iter().all(|&v| (0.0..=1.0).contains(&v)),
                "{p:?} out of range"
            );
        }
    }

    #[test]
    fn patterns_are_distinct_in_expectation() {
        // Mean images of different classes must differ substantially.
        let mut rng = seeded_rng(2);
        let mean_img = |p: Pattern, rng: &mut rand::rngs::StdRng| {
            let mut acc = vec![0.0; 64];
            for _ in 0..50 {
                for (a, v) in acc.iter_mut().zip(p.render(8, 8, rng)) {
                    *a += v / 50.0;
                }
            }
            acc
        };
        let a = mean_img(Pattern::VBar, &mut rng);
        let b = mean_img(Pattern::HBar, &mut rng);
        let dist: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(dist > 2.0, "VBar and HBar means too close: {dist}");
    }

    #[test]
    fn family_sampling_respects_slice_labels() {
        let fam = image_fashion();
        let mut rng = seeded_rng(3);
        let ex = fam.sample_slice(SliceId(4), 100, &mut rng);
        assert_eq!(ex.len(), 100);
        // Label noise is 2%, so the vast majority must carry label 4.
        let hits = ex.iter().filter(|e| e.label == 4).count();
        assert!(hits >= 90, "only {hits}/100 carried the slice label");
        assert!(ex.iter().all(|e| e.slice == SliceId(4)));
        assert!(ex.iter().all(|e| e.dim() == 64));
    }

    #[test]
    fn noise_increases_across_fashion_slices() {
        let fam = image_fashion();
        for w in fam.slices.windows(2) {
            assert!(w[1].noise > w[0].noise);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let fam = image_fashion();
        let a = fam.sample_slice(SliceId(0), 5, &mut seeded_rng(9));
        let b = fam.sample_slice(SliceId(0), 5, &mut seeded_rng(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_out_of_range_slice_labels() {
        let _ = ImageFamily::new(
            "bad",
            8,
            8,
            2,
            vec![ImageSliceSpec {
                name: "x".into(),
                cost: 1.0,
                labels: vec![5],
                noise: 0.1,
                label_noise: 0.0,
            }],
        );
    }
}
