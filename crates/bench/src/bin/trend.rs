//! Perf-trend reporter: folds the machine-readable bench artifacts of the
//! current build — `BENCH_pipeline.json` (per-phase timings + data-plane /
//! batched / prepacked / incremental gate readings) and, when present,
//! `BENCH_kernels.json` (kernel-gate speedups + the batched-vs-looped
//! small-shape group), `BENCH_drift.json` (drift-robustness gate
//! ratios), and `BENCH_service.json` (service-level chaos gate
//! throughput/latency) — into an append-only `BENCH_trend.json` keyed
//! by commit, so the perf trajectory across commits lives in one artifact
//! (schema in `docs/profiling.md`).
//!
//! ```text
//! cargo run --release -p st_bench --bin pipeline   # writes BENCH_pipeline.json
//! cargo run --release -p st_bench --bin trend      # appends to BENCH_trend.json
//! ```
//!
//! Knobs:
//!
//! - `ST_BENCH_JSON` — pipeline artifact to read (default
//!   `BENCH_pipeline.json`);
//! - `ST_KERNELS_JSON` — kernels artifact to read (default
//!   `BENCH_kernels.json`; skipped silently when absent);
//! - `ST_DRIFT_JSON` — drift-gate artifact to read (default
//!   `BENCH_drift.json`; skipped silently when absent);
//! - `ST_SERVICE_JSON` — service-gate artifact to read (default
//!   `BENCH_service.json`; skipped silently when absent);
//! - `ST_TREND_JSON` — trend artifact to append to (default
//!   `BENCH_trend.json`);
//! - `ST_COMMIT` — commit id to stamp (falls back to `GITHUB_SHA`, then
//!   `git rev-parse --short HEAD`, then `"unknown"`).
//!
//! CI runs this right after the pipeline schema smoke and uploads
//! `BENCH_trend.json` as a build artifact; downloading the artifact from
//! successive runs and re-running `trend` accumulates the history.

use std::fmt::Write as _;
use std::time::{SystemTime, UNIX_EPOCH};

/// Extracts the number following `pat` in `src` (the artifacts are written
/// by our own bins with a fixed, regular layout, so a scan beats pulling a
/// JSON parser into the vendored dependency set).
fn num_after(src: &str, pat: &str) -> Option<f64> {
    let at = src.find(pat)? + pat.len();
    let rest = &src[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the quoted string following `pat`.
fn str_after(src: &str, pat: &str) -> Option<String> {
    let at = src.find(pat)? + pat.len();
    let rest = &src[at..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// The commit id to stamp on the entry.
fn commit_id() -> String {
    if let Ok(c) = std::env::var("ST_COMMIT") {
        if !c.trim().is_empty() {
            return c.trim().to_string();
        }
    }
    if let Ok(c) = std::env::var("GITHUB_SHA") {
        if !c.trim().is_empty() {
            return c.trim().to_string();
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn main() {
    let pipeline_path =
        std::env::var("ST_BENCH_JSON").unwrap_or_else(|_| "BENCH_pipeline.json".to_string());
    let kernels_path =
        std::env::var("ST_KERNELS_JSON").unwrap_or_else(|_| "BENCH_kernels.json".to_string());
    let drift_path =
        std::env::var("ST_DRIFT_JSON").unwrap_or_else(|_| "BENCH_drift.json".to_string());
    let service_path =
        std::env::var("ST_SERVICE_JSON").unwrap_or_else(|_| "BENCH_service.json".to_string());
    let trend_path =
        std::env::var("ST_TREND_JSON").unwrap_or_else(|_| "BENCH_trend.json".to_string());

    let pipeline = std::fs::read_to_string(&pipeline_path).unwrap_or_else(|e| {
        panic!("reading {pipeline_path}: {e} (run `st_bench --bin pipeline` first)")
    });
    assert!(
        pipeline.contains("\"bench\": \"pipeline\""),
        "{pipeline_path} is not a pipeline artifact"
    );
    let schema = num_after(&pipeline, "\"schema_version\": ").unwrap_or(0.0) as u64;
    assert!(
        schema >= 2,
        "{pipeline_path} has schema_version {schema}; trend needs >= 2 \
         (re-run the pipeline bin from this build)"
    );
    let kernels = std::fs::read_to_string(&kernels_path).ok();
    let drift = std::fs::read_to_string(&drift_path)
        .ok()
        .filter(|d| d.contains("\"bench\": \"drift\""));
    let service = std::fs::read_to_string(&service_path)
        .ok()
        .filter(|s| s.contains("\"bench\": \"service\""));

    // ---- Build the entry -------------------------------------------------
    let commit = commit_id();
    let timestamp = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let kernel = str_after(&pipeline, "\"kernel\": \"").unwrap_or_else(|| "?".into());
    let quick = pipeline.contains("\"quick\": true");

    let phase = |name: &str| num_after(&pipeline, &format!("\"name\": \"{name}\", \"ms\": "));
    // `incremental` appears from pipeline schema 3 on and `batched` from
    // schema 4; older artifacts fold in with nulls for them.
    let phase_names = [
        "data_gen",
        "training",
        "batched",
        "curve_fit",
        "solver",
        "full_trial",
        "incremental",
    ];

    let mut entry = String::new();
    let _ = writeln!(entry, "    {{");
    let _ = writeln!(entry, "      \"commit\": \"{commit}\",");
    let _ = writeln!(entry, "      \"timestamp\": {timestamp},");
    let _ = writeln!(entry, "      \"kernel\": \"{kernel}\",");
    let _ = writeln!(entry, "      \"quick\": {quick},");
    let _ = writeln!(entry, "      \"phases_ms\": {{");
    for (i, name) in phase_names.iter().enumerate() {
        let comma = if i + 1 < phase_names.len() { "," } else { "" };
        match phase(name) {
            Some(ms) => {
                let _ = writeln!(entry, "        \"{name}\": {ms:.6}{comma}");
            }
            None => {
                let _ = writeln!(entry, "        \"{name}\": null{comma}");
            }
        }
    }
    let _ = writeln!(entry, "      }},");
    let write_num = |entry: &mut String, key: &str, v: Option<f64>, comma: &str| {
        match v {
            Some(v) => {
                let _ = writeln!(entry, "      \"{key}\": {v:.4}{comma}");
            }
            None => {
                let _ = writeln!(entry, "      \"{key}\": null{comma}");
            }
        };
    };
    write_num(
        &mut entry,
        "total_ms",
        num_after(&pipeline, "\"total_ms\": "),
        ",",
    );
    // Gated-but-overlapping phase total (pipeline schema 4+).
    write_num(
        &mut entry,
        "gated_phases_ms",
        num_after(&pipeline, "\"gated_phases_ms\": "),
        ",",
    );
    write_num(
        &mut entry,
        "data_plane_training_speedup",
        num_after(&pipeline, "\"training_speedup\": "),
        ",",
    );
    write_num(
        &mut entry,
        "data_plane_full_trial_speedup",
        num_after(&pipeline, "\"full_trial_speedup\": "),
        ",",
    );
    write_num(
        &mut entry,
        "prepacked_speedup",
        pipeline
            .find("\"prepacked\": {")
            .and_then(|at| num_after(&pipeline[at..], "\"speedup\": ")),
        ",",
    );
    // Batched-plane gate reading (pipeline schema 4+). The `"batched": {`
    // needle skips past the phase entry (`"name": "batched", "ms": …`)
    // because only the gate block opens an object under that key.
    write_num(
        &mut entry,
        "batched_speedup",
        pipeline
            .find("\"batched\": {")
            .and_then(|at| num_after(&pipeline[at..], "\"speedup\": ")),
        ",",
    );
    // Incremental re-estimation gate readings (pipeline schema 3+).
    let inc_section = pipeline.find("\"incremental\": {");
    write_num(
        &mut entry,
        "incremental_speedup",
        inc_section.and_then(|at| num_after(&pipeline[at..], "\"speedup\": ")),
        ",",
    );
    write_num(
        &mut entry,
        "incremental_trainings_ratio",
        inc_section.and_then(|at| num_after(&pipeline[at..], "\"trainings_ratio\": ")),
        ",",
    );
    // Fault-tolerance guards overhead (pipeline schema 5+); the scoped
    // find keeps the needle off the phase list and other gate blocks.
    write_num(
        &mut entry,
        "guards_overhead",
        pipeline
            .find("\"guards\": {")
            .and_then(|at| num_after(&pipeline[at..], "\"overhead\": ")),
        ",",
    );
    // Drift-robustness gate readings (from the drift bin's artifact).
    write_num(
        &mut entry,
        "drift_slice_loss_ratio",
        drift
            .as_deref()
            .and_then(|d| num_after(d, "\"slice_loss_ratio\": ")),
        ",",
    );
    write_num(
        &mut entry,
        "drift_overall_loss_ratio",
        drift
            .as_deref()
            .and_then(|d| num_after(d, "\"overall_loss_ratio\": ")),
        ",",
    );
    // Service-level chaos gate readings (from the service bin's artifact).
    write_num(
        &mut entry,
        "service_sessions_per_sec",
        service
            .as_deref()
            .and_then(|s| num_after(s, "\"sessions_per_sec\": ")),
        ",",
    );
    write_num(
        &mut entry,
        "service_p50_ms",
        service
            .as_deref()
            .and_then(|s| num_after(s, "\"p50_ms\": ")),
        ",",
    );
    write_num(
        &mut entry,
        "service_p99_ms",
        service
            .as_deref()
            .and_then(|s| num_after(s, "\"p99_ms\": ")),
        ",",
    );
    match &kernels {
        Some(k) => {
            write_num(
                &mut entry,
                "kernels_blocked_speedup",
                num_after(k, "\"blocked_speedup\": "),
                ",",
            );
            write_num(
                &mut entry,
                "kernels_simd_speedup",
                num_after(k, "\"simd_speedup\": "),
                ",",
            );
            write_num(
                &mut entry,
                "kernels_sharded_speedup",
                num_after(k, "\"sharded_speedup\": "),
                ",",
            );
            // Batched-vs-looped small-shape group (kernels schema 2+):
            // per-backend one-call-over-loop ratios.
            let group = k.find("\"batched_group\": {");
            for (i, backend) in ["naive", "blocked", "simd", "sharded", "fast"]
                .iter()
                .enumerate()
            {
                let comma = if i + 1 < 5 { "," } else { "" };
                write_num(
                    &mut entry,
                    &format!("kernels_batched_{backend}_speedup"),
                    group.and_then(|at| num_after(&k[at..], &format!("\"{backend}\": "))),
                    comma,
                );
            }
        }
        None => {
            let _ = writeln!(entry, "      \"kernels\": null");
        }
    }
    let _ = write!(entry, "    }}");

    // ---- Append to the trend artifact ------------------------------------
    //
    // The trend file is our own output, so appending is a string splice
    // before the closing of the entries array.
    const HEADER: &str = "{\n  \"bench\": \"trend\",\n  \"schema_version\": 1,\n  \"entries\": [\n";
    const FOOTER: &str = "\n  ]\n}\n";
    let trend = match std::fs::read_to_string(&trend_path) {
        Ok(existing) => {
            let body = existing
                .strip_prefix(HEADER)
                .and_then(|r| r.strip_suffix(FOOTER))
                .unwrap_or_else(|| {
                    panic!(
                        "{trend_path} exists but is not a trend artifact this tool wrote; \
                         move it aside or point ST_TREND_JSON elsewhere"
                    )
                });
            format!("{HEADER}{body},\n{entry}{FOOTER}")
        }
        Err(_) => format!("{HEADER}{entry}{FOOTER}"),
    };
    std::fs::write(&trend_path, &trend).unwrap_or_else(|e| panic!("writing {trend_path}: {e}"));

    // ---- Human summary ---------------------------------------------------
    let entries = trend.matches("\"commit\": ").count();
    println!("appended commit {commit} to {trend_path} ({entries} entries)");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>9} {:>10} {:>11} {:>7} {:>7} {:>8}",
        "commit",
        "total_ms",
        "train_dp",
        "trial_dp",
        "batched",
        "prepacked",
        "incremental",
        "guards",
        "drift",
        "svc_p99"
    );
    for chunk in trend.split("    {").skip(1) {
        let c = str_after(chunk, "\"commit\": \"").unwrap_or_else(|| "?".into());
        let fmt = |v: Option<f64>| v.map_or("-".into(), |x| format!("{x:.2}"));
        println!(
            "{:<12} {:>10} {:>10} {:>10} {:>9} {:>10} {:>11} {:>7} {:>7} {:>8}",
            c,
            fmt(num_after(chunk, "\"total_ms\": ")),
            fmt(num_after(chunk, "\"data_plane_training_speedup\": ")),
            fmt(num_after(chunk, "\"data_plane_full_trial_speedup\": ")),
            fmt(num_after(chunk, "\"batched_speedup\": ")),
            fmt(num_after(chunk, "\"prepacked_speedup\": ")),
            fmt(num_after(chunk, "\"incremental_speedup\": ")),
            fmt(num_after(chunk, "\"guards_overhead\": ")),
            fmt(num_after(chunk, "\"drift_slice_loss_ratio\": ")),
            fmt(num_after(chunk, "\"service_p99_ms\": ")),
        );
    }
}
