//! Property-based tests for the linear algebra kernels.

use proptest::prelude::*;
use st_linalg::{
    cholesky_solve, dot, gaussian_solve, l2_norm, log_sum_exp, mean, quantile, sigmoid,
    softmax_in_place, sub, variance, BlockedKernel, GemmBackend, Matrix, NaiveKernel,
    ShardedKernel, SimdKernel,
};

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3..1e3_f64, len)
}

fn square_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0..10.0_f64, n * n).prop_map(move |d| Matrix::from_vec(n, n, d))
}

proptest! {
    #[test]
    fn dot_is_commutative(a in finite_vec(8), b in finite_vec(8)) {
        prop_assert!((dot(&a, &b) - dot(&b, &a)).abs() < 1e-6);
    }

    #[test]
    fn dot_is_linear_in_first_arg(a in finite_vec(6), b in finite_vec(6), alpha in -5.0..5.0_f64) {
        let scaled: Vec<f64> = a.iter().map(|x| alpha * x).collect();
        prop_assert!((dot(&scaled, &b) - alpha * dot(&a, &b)).abs() < 1e-4);
    }

    #[test]
    fn cauchy_schwarz(a in finite_vec(5), b in finite_vec(5)) {
        prop_assert!(dot(&a, &b).abs() <= l2_norm(&a) * l2_norm(&b) + 1e-6);
    }

    #[test]
    fn matmul_is_associative(a in square_matrix(3), b in square_matrix(3), c in square_matrix(3)) {
        let ab_c = a.matmul(&b).matmul(&c);
        let a_bc = a.matmul(&b.matmul(&c));
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!((ab_c[(i, j)] - a_bc[(i, j)]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn transpose_reverses_product(a in square_matrix(3), b in square_matrix(3)) {
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!((lhs[(i, j)] - rhs[(i, j)]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn gaussian_solution_satisfies_system(a in square_matrix(4), b in finite_vec(4)) {
        if let Ok(x) = gaussian_solve(a.clone(), &b) {
            let r = sub(&a.matvec(&x), &b);
            // Residual scaled by solution magnitude: ill-conditioned random
            // matrices can legitimately amplify error.
            let scale = 1.0 + l2_norm(&x) * a.frobenius_norm();
            prop_assert!(l2_norm(&r) / scale < 1e-6);
        }
    }

    #[test]
    fn cholesky_agrees_with_gaussian(m in square_matrix(3), b in finite_vec(3)) {
        // Build an SPD matrix A = M Mᵀ + I.
        let mut a = m.matmul(&m.transpose());
        for i in 0..3 {
            a[(i, i)] += 1.0;
        }
        let xc = cholesky_solve(&a, &b).expect("SPD by construction");
        let xg = gaussian_solve(a.clone(), &b).expect("nonsingular by construction");
        for (c, g) in xc.iter().zip(&xg) {
            prop_assert!((c - g).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_is_a_distribution(mut v in finite_vec(6)) {
        softmax_in_place(&mut v);
        prop_assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(v.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn softmax_shift_invariant(v in finite_vec(5), shift in -100.0..100.0_f64) {
        let mut a = v.clone();
        let mut b: Vec<f64> = v.iter().map(|x| x + shift).collect();
        softmax_in_place(&mut a);
        softmax_in_place(&mut b);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn log_sum_exp_bounds(v in finite_vec(5)) {
        let m = v.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        let lse = log_sum_exp(&v);
        prop_assert!(lse >= m - 1e-12);
        prop_assert!(lse <= m + (v.len() as f64).ln() + 1e-12);
    }

    #[test]
    fn sigmoid_in_unit_interval(x in -1e6..1e6_f64) {
        let s = sigmoid(x);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn mean_between_min_and_max(v in finite_vec(7)) {
        let m = mean(&v);
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    #[test]
    fn variance_nonnegative(v in finite_vec(7)) {
        prop_assert!(variance(&v) >= -1e-9);
    }

    #[test]
    fn quantile_monotone(v in finite_vec(9), q1 in 0.0..1.0_f64, q2 in 0.0..1.0_f64) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(quantile(&v, lo) <= quantile(&v, hi) + 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn qr_least_squares_satisfies_normal_equations(
        entries in prop::collection::vec(-3.0f64..3.0, 12..=12),
        rhs in prop::collection::vec(-5.0f64..5.0, 6..=6),
    ) {
        // 6x2 design with an intercept column: always full rank.
        let a = Matrix::from_fn(6, 2, |r, c| if c == 0 { 1.0 } else { entries[r] });
        if let Ok(x) = st_linalg::least_squares(&a, &rhs) {
            // AᵀA x = Aᵀ b within tolerance.
            let at = a.transpose();
            let ata = at.matmul(&a);
            let atb: Vec<f64> = (0..2)
                .map(|i| at.row(i).iter().zip(&rhs).map(|(p, q)| p * q).sum())
                .collect();
            for i in 0..2 {
                let lhs: f64 = (0..2).map(|j| ata[(i, j)] * x[j]).sum();
                prop_assert!((lhs - atb[i]).abs() < 1e-6, "row {i}: {lhs} vs {}", atb[i]);
            }
        }
    }

    #[test]
    fn running_stats_merge_is_order_invariant(
        xs in prop::collection::vec(-100.0f64..100.0, 1..20),
        ys in prop::collection::vec(-100.0f64..100.0, 1..20),
    ) {
        let mut ab = st_linalg::RunningStats::new();
        ab.extend(&xs);
        let mut b = st_linalg::RunningStats::new();
        b.extend(&ys);
        ab.merge(&b);

        let mut ba = st_linalg::RunningStats::new();
        ba.extend(&ys);
        let mut a2 = st_linalg::RunningStats::new();
        a2.extend(&xs);
        ba.merge(&a2);

        prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
        prop_assert!((ab.variance() - ba.variance()).abs() < 1e-9);
        prop_assert_eq!(ab.count(), ba.count());
    }

    #[test]
    fn spearman_is_bounded_and_symmetric(
        xs in prop::collection::vec(-10.0f64..10.0, 3..15),
        shift in -5.0f64..5.0,
    ) {
        let ys: Vec<f64> = xs.iter().rev().map(|v| v + shift).collect();
        let r = st_linalg::spearman(&xs, &ys);
        if r.is_finite() {
            prop_assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&r));
            let r2 = st_linalg::spearman(&ys, &xs);
            prop_assert!((r - r2).abs() < 1e-12);
        }
    }

    #[test]
    fn bootstrap_interval_ordering_holds(
        xs in prop::collection::vec(0.0f64..10.0, 2..30),
        seed in 0u64..1000,
    ) {
        let ci = st_linalg::bootstrap_ci(&xs, 100, 0.9, seed, st_linalg::mean);
        prop_assert!(ci.lo <= ci.hi);
        // The point estimate is the statistic on the original sample.
        prop_assert!((ci.point - st_linalg::mean(&xs)).abs() < 1e-12);
    }
}

/// Deterministic dense buffer for the kernel-equivalence suite.
fn kernel_data(len: usize, seed: u64) -> Vec<f64> {
    let mut rng = st_linalg::SplitMix64::new(seed ^ 0xD15E);
    (0..len).map(|_| rng.next_f64() * 6.0 - 3.0).collect()
}

fn assert_bits_equal(op: &str, a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "{op}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "{op}: bit divergence at {i}: {x:?} vs {y:?}"
        );
    }
}

/// Runs every backend op on one `(m, k, n)` shape and asserts bitwise
/// equality of every deterministic backend — blocked, simd, and sharded
/// at 1, 2, and N worker threads — against the naive reference.
fn check_kernel_equivalence(m: usize, k: usize, n: usize, seed: u64) {
    let a = kernel_data(m * k, seed);
    let b = kernel_data(k * n, seed.wrapping_add(1));
    let bt = kernel_data(n * k, seed.wrapping_add(2));
    let c = kernel_data(m * n, seed.wrapping_add(3));
    let v = kernel_data(k, seed.wrapping_add(4));
    let w = kernel_data(m, seed.wrapping_add(5));

    let sharded1 = ShardedKernel::with_threads(1);
    let sharded2 = ShardedKernel::with_threads(2);
    let sharded_n = ShardedKernel::with_threads(7);
    let backends: [&dyn GemmBackend; 5] = [
        &BlockedKernel,
        &SimdKernel,
        &sharded1,
        &sharded2,
        &sharded_n,
    ];

    let mut x = vec![0.0; m * n];
    NaiveKernel.gemm(m, k, n, &a, &b, &mut x);
    let mut u = vec![0.0; k * n];
    NaiveKernel.gemm_tn(m, k, n, &a, &c, &mut u);
    let mut nt = vec![0.0; m * n];
    NaiveKernel.gemm_nt(m, k, n, &a, &bt, &mut nt);
    let mut mv_n = vec![0.0; m];
    NaiveKernel.matvec(m, k, &a, &v, &mut mv_n);
    let mut mt_n = vec![0.0; k];
    NaiveKernel.matvec_t(m, k, &a, &w, &mut mt_n);
    let mut t_n = vec![0.0; m * k];
    NaiveKernel.transpose(m, k, &a, &mut t_n);

    for backend in backends {
        let name = backend.name();
        let mut y = vec![0.0; m * n];
        backend.gemm(m, k, n, &a, &b, &mut y);
        assert_bits_equal(&format!("{name} gemm"), &x, &y);

        y.fill(0.0);
        backend.gemm_nt(m, k, n, &a, &bt, &mut y);
        assert_bits_equal(&format!("{name} gemm_nt"), &nt, &y);

        let mut z = vec![0.0; k * n];
        backend.gemm_tn(m, k, n, &a, &c, &mut z);
        assert_bits_equal(&format!("{name} gemm_tn"), &u, &z);

        let mut mv = vec![0.0; m];
        backend.matvec(m, k, &a, &v, &mut mv);
        assert_bits_equal(&format!("{name} matvec"), &mv_n, &mv);

        let mut mt = vec![0.0; k];
        backend.matvec_t(m, k, &a, &w, &mut mt);
        assert_bits_equal(&format!("{name} matvec_t"), &mt_n, &mt);

        let mut t = vec![0.0; m * k];
        backend.transpose(m, k, &a, &mut t);
        assert_bits_equal(&format!("{name} transpose"), &t_n, &t);
    }
}

/// Asserts the prepacked entry points are `to_bits`-identical to their
/// pack-on-call twins for every deterministic backend — naive (raw
/// fallback handle), blocked, simd, and sharded at 1, 2, and N worker
/// threads — on one `(m, k, n)` shape.
fn check_prepacked_equivalence(m: usize, k: usize, n: usize, seed: u64) {
    let a = kernel_data(m * k, seed.wrapping_add(11));
    let b = kernel_data(k * n, seed.wrapping_add(12));
    let bt = kernel_data(n * k, seed.wrapping_add(13));
    let c = kernel_data(m * n, seed.wrapping_add(14));

    let sharded1 = ShardedKernel::with_threads(1);
    let sharded2 = ShardedKernel::with_threads(2);
    let sharded_n = ShardedKernel::with_threads(7);
    let backends: [&dyn GemmBackend; 6] = [
        &NaiveKernel,
        &BlockedKernel,
        &SimdKernel,
        &sharded1,
        &sharded2,
        &sharded_n,
    ];

    for backend in backends {
        let name = backend.name();

        let mut plain = vec![0.0; m * n];
        backend.gemm(m, k, n, &a, &b, &mut plain);
        let pb = backend.pack_b(k, n, &b);
        let mut packed = vec![0.0; m * n];
        backend.gemm_prepacked(m, k, n, &a, &pb, &mut packed);
        assert_bits_equal(&format!("{name} gemm_prepacked"), &plain, &packed);

        let mut plain_nt = vec![0.0; m * n];
        backend.gemm_nt(m, k, n, &a, &bt, &mut plain_nt);
        let pbt = backend.pack_b_t(k, n, &bt);
        let mut packed_nt = vec![0.0; m * n];
        backend.gemm_nt_prepacked(m, k, n, &a, &pbt, &mut packed_nt);
        assert_bits_equal(&format!("{name} gemm_nt_prepacked"), &plain_nt, &packed_nt);

        let mut plain_tn = vec![0.0; k * n];
        backend.gemm_tn(m, k, n, &a, &c, &mut plain_tn);
        let pa = backend.pack_a(m, k, &a);
        let mut packed_tn = vec![0.0; k * n];
        backend.gemm_tn_prepacked(m, k, n, &pa, &c, &mut packed_tn);
        assert_bits_equal(&format!("{name} gemm_tn_prepacked"), &plain_tn, &packed_tn);
    }
}

/// Asserts the fused-bias epilogue (`gemm_prepacked_bias`) is
/// `to_bits`-identical to `gemm_prepacked` followed by a separate
/// element-wise bias pass, for every deterministic backend — naive (raw
/// fallback handle), blocked, simd, and sharded at 1, 2, and N worker
/// threads — on one `(m, k, n)` shape.
fn check_fused_bias_equivalence(m: usize, k: usize, n: usize, seed: u64) {
    let a = kernel_data(m * k, seed.wrapping_add(21));
    let b = kernel_data(k * n, seed.wrapping_add(22));
    let bias = kernel_data(n, seed.wrapping_add(23));

    let sharded1 = ShardedKernel::with_threads(1);
    let sharded2 = ShardedKernel::with_threads(2);
    let sharded_n = ShardedKernel::with_threads(7);
    let backends: [&dyn GemmBackend; 6] = [
        &NaiveKernel,
        &BlockedKernel,
        &SimdKernel,
        &sharded1,
        &sharded2,
        &sharded_n,
    ];

    for backend in backends {
        let name = backend.name();
        let pb = backend.pack_b(k, n, &b);
        let mut want = vec![0.0; m * n];
        backend.gemm_prepacked(m, k, n, &a, &pb, &mut want);
        if n > 0 {
            for row in want.chunks_exact_mut(n) {
                for (o, &bv) in row.iter_mut().zip(&bias) {
                    *o += bv;
                }
            }
        }
        let mut fused = vec![0.0; m * n];
        backend.gemm_prepacked_bias(m, k, n, &a, &pb, &bias, &mut fused);
        assert_bits_equal(&format!("{name} gemm_prepacked_bias"), &want, &fused);
    }
}

/// Asserts the fused-ReLU epilogue (`gemm_prepacked_bias_relu`) is
/// `to_bits`-identical to `gemm_prepacked_bias` followed by a separate
/// clamp-at-zero pass, for every deterministic backend — naive (raw
/// fallback handle), blocked, simd, and sharded at 1, 2, and N worker
/// threads — on one `(m, k, n)` shape.
fn check_fused_relu_equivalence(m: usize, k: usize, n: usize, seed: u64) {
    let a = kernel_data(m * k, seed.wrapping_add(26));
    let b = kernel_data(k * n, seed.wrapping_add(27));
    let bias = kernel_data(n, seed.wrapping_add(28));

    let sharded1 = ShardedKernel::with_threads(1);
    let sharded2 = ShardedKernel::with_threads(2);
    let sharded_n = ShardedKernel::with_threads(7);
    let backends: [&dyn GemmBackend; 6] = [
        &NaiveKernel,
        &BlockedKernel,
        &SimdKernel,
        &sharded1,
        &sharded2,
        &sharded_n,
    ];

    for backend in backends {
        let name = backend.name();
        let pb = backend.pack_b(k, n, &b);
        let mut want = vec![0.0; m * n];
        backend.gemm_prepacked_bias(m, k, n, &a, &pb, &bias, &mut want);
        for v in want.iter_mut() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        let mut fused = vec![0.0; m * n];
        backend.gemm_prepacked_bias_relu(m, k, n, &a, &pb, &bias, &mut fused);
        assert_bits_equal(&format!("{name} gemm_prepacked_bias_relu"), &want, &fused);
    }
}

/// Asserts every batched entry point is `to_bits`-identical to the same
/// backend's sequential per-product loop — the batched-GEMM contract — on
/// one `(m, k, n)` shape with `batch` products, for every deterministic
/// backend including sharded at 1, 2, and N worker threads. Covers both
/// the per-product-operand form and the length-1 broadcast form (shared
/// `B` for `gemm_batched`, shared `A` for the prepacked entries).
fn check_batched_equivalence(m: usize, k: usize, n: usize, batch: usize, seed: u64) {
    let salt = |tag: u64, i: usize| seed.wrapping_add(tag.wrapping_mul(97) + i as u64);
    let avs: Vec<Vec<f64>> = (0..batch)
        .map(|i| kernel_data(m * k, salt(31, i)))
        .collect();
    let bvs: Vec<Vec<f64>> = (0..batch)
        .map(|i| kernel_data(k * n, salt(32, i)))
        .collect();
    let btvs: Vec<Vec<f64>> = (0..batch)
        .map(|i| kernel_data(n * k, salt(33, i)))
        .collect();
    let cvs: Vec<Vec<f64>> = (0..batch)
        .map(|i| kernel_data(m * n, salt(34, i)))
        .collect();
    let biasvs: Vec<Vec<f64>> = (0..batch).map(|i| kernel_data(n, salt(35, i))).collect();
    let a_refs: Vec<&[f64]> = avs.iter().map(Vec::as_slice).collect();
    let b_refs: Vec<&[f64]> = bvs.iter().map(Vec::as_slice).collect();
    let bt_refs: Vec<&[f64]> = btvs.iter().map(Vec::as_slice).collect();
    let c_refs: Vec<&[f64]> = cvs.iter().map(Vec::as_slice).collect();
    let bias_refs: Vec<&[f64]> = biasvs.iter().map(Vec::as_slice).collect();

    let sharded1 = ShardedKernel::with_threads(1);
    let sharded2 = ShardedKernel::with_threads(2);
    let sharded_n = ShardedKernel::with_threads(7);
    let backends: [&dyn GemmBackend; 6] = [
        &NaiveKernel,
        &BlockedKernel,
        &SimdKernel,
        &sharded1,
        &sharded2,
        &sharded_n,
    ];

    // Runs `run_batched` and asserts each product matches `run_single(i)`.
    let check = |name: &str,
                 op: &str,
                 out_len: usize,
                 run_single: &dyn Fn(usize, &mut [f64]),
                 run_batched: &dyn Fn(&mut [&mut [f64]])| {
        let mut want = vec![vec![0.0; out_len]; batch];
        for (i, w) in want.iter_mut().enumerate() {
            run_single(i, w);
        }
        let mut got = vec![vec![0.0; out_len]; batch];
        {
            let mut outs: Vec<&mut [f64]> = got.iter_mut().map(Vec::as_mut_slice).collect();
            run_batched(&mut outs);
        }
        for (i, (w, g)) in want.iter().zip(&got).enumerate() {
            assert_bits_equal(&format!("{name} {op} product {i}"), w, g);
        }
    };

    for backend in backends {
        let name = backend.name();
        check(
            name,
            "gemm_batched",
            m * n,
            &|i, out| backend.gemm(m, k, n, a_refs[i], b_refs[i], out),
            &|outs| backend.gemm_batched(m, k, n, &a_refs, &b_refs, outs),
        );
        check(
            name,
            "gemm_batched shared-B",
            m * n,
            &|i, out| backend.gemm(m, k, n, a_refs[i], b_refs[0], out),
            &|outs| backend.gemm_batched(m, k, n, &a_refs, &b_refs[..1], outs),
        );
        check(
            name,
            "gemm_batched_nt",
            m * n,
            &|i, out| backend.gemm_nt(m, k, n, a_refs[i], bt_refs[i], out),
            &|outs| backend.gemm_batched_nt(m, k, n, &a_refs, &bt_refs, outs),
        );
        check(
            name,
            "gemm_batched_tn",
            k * n,
            &|i, out| backend.gemm_tn(m, k, n, a_refs[i], c_refs[i], out),
            &|outs| backend.gemm_batched_tn(m, k, n, &a_refs, &c_refs, outs),
        );

        let packs: Vec<_> = bvs.iter().map(|b| backend.pack_b(k, n, b)).collect();
        let pack_refs: Vec<&st_linalg::PackedB> = packs.iter().collect();
        check(
            name,
            "gemm_batched_prepacked",
            m * n,
            &|i, out| backend.gemm_prepacked(m, k, n, a_refs[i], pack_refs[i], out),
            &|outs| backend.gemm_batched_prepacked(m, k, n, &a_refs, &pack_refs, outs),
        );
        check(
            name,
            "gemm_batched_prepacked shared-A",
            m * n,
            &|i, out| backend.gemm_prepacked(m, k, n, a_refs[0], pack_refs[i], out),
            &|outs| backend.gemm_batched_prepacked(m, k, n, &a_refs[..1], &pack_refs, outs),
        );
        check(
            name,
            "gemm_batched_prepacked_bias",
            m * n,
            &|i, out| {
                backend.gemm_prepacked_bias(m, k, n, a_refs[i], pack_refs[i], bias_refs[i], out)
            },
            &|outs| {
                backend.gemm_batched_prepacked_bias(m, k, n, &a_refs, &pack_refs, &bias_refs, outs)
            },
        );
        check(
            name,
            "gemm_batched_prepacked_bias_relu",
            m * n,
            &|i, out| {
                backend.gemm_prepacked_bias_relu(
                    m,
                    k,
                    n,
                    a_refs[i],
                    pack_refs[i],
                    bias_refs[i],
                    out,
                )
            },
            &|outs| {
                backend.gemm_batched_prepacked_bias_relu(
                    m, k, n, &a_refs, &pack_refs, &bias_refs, outs,
                )
            },
        );
        check(
            name,
            "gemm_batched_prepacked_bias_relu shared-A",
            m * n,
            &|i, out| {
                backend.gemm_prepacked_bias_relu(
                    m,
                    k,
                    n,
                    a_refs[0],
                    pack_refs[i],
                    bias_refs[i],
                    out,
                )
            },
            &|outs| {
                backend.gemm_batched_prepacked_bias_relu(
                    m,
                    k,
                    n,
                    &a_refs[..1],
                    &pack_refs,
                    &bias_refs,
                    outs,
                )
            },
        );
    }
}

/// The fixed shape gallery the ISSUE calls out: degenerate (empty, 1×1),
/// prime, and just-past-blocking-boundary dimensions.
#[test]
fn kernels_bit_identical_on_degenerate_and_prime_shapes() {
    for &(m, k, n) in &[
        (0, 3, 4),
        (3, 0, 4),
        (3, 4, 0),
        (0, 0, 0),
        (1, 1, 1),
        (1, 7, 1),
        (2, 3, 5),
        (7, 11, 13),
        (31, 37, 41),
        (61, 67, 71),
        (1, 64, 129),
        (5, 1, 9),
        (8, 8, 8),
        (65, 2, 3),
    ] {
        check_kernel_equivalence(m, k, n, 7 + (m * 131 + k * 17 + n) as u64);
        check_prepacked_equivalence(m, k, n, 7 + (m * 131 + k * 17 + n) as u64);
        check_fused_bias_equivalence(m, k, n, 7 + (m * 131 + k * 17 + n) as u64);
        check_fused_relu_equivalence(m, k, n, 7 + (m * 131 + k * 17 + n) as u64);
        // Batch 3 walks the shared/broadcast and per-product arms with a
        // non-trivial remainder under any worker split; batch 1 pins the
        // single-product edge of every batched entry point.
        check_batched_equivalence(m, k, n, 3, 7 + (m * 131 + k * 17 + n) as u64);
        check_batched_equivalence(m, k, n, 1, 19 + (m * 131 + k * 17 + n) as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Blocked vs naive bit-identity on random rectangular shapes,
    /// including empty dimensions (the ranges start at 0).
    #[test]
    fn kernels_bit_identical_on_random_shapes(
        m in 0usize..24,
        k in 0usize..24,
        n in 0usize..24,
        seed in 0u64..100_000,
    ) {
        check_kernel_equivalence(m, k, n, seed);
    }

    /// Prepacked gemm/gemm_nt/gemm_tn vs their pack-on-call twins on
    /// random rectangular shapes (empty dimensions included), across
    /// every deterministic backend.
    #[test]
    fn prepacked_bit_identical_on_random_shapes(
        m in 0usize..24,
        k in 0usize..24,
        n in 0usize..24,
        seed in 0u64..100_000,
    ) {
        check_prepacked_equivalence(m, k, n, seed);
    }

    /// The fused-bias forward vs the unfused `gemm_prepacked` +
    /// bias-rows sequence on random rectangular shapes (empty dimensions
    /// included — a `k == 0` product must still broadcast the bias),
    /// across every deterministic backend.
    #[test]
    fn fused_bias_bit_identical_on_random_shapes(
        m in 0usize..24,
        k in 0usize..24,
        n in 0usize..24,
        seed in 0u64..100_000,
    ) {
        check_fused_bias_equivalence(m, k, n, seed);
    }

    /// The fused-ReLU forward vs the fused-bias call plus a separate
    /// clamp-at-zero pass on random rectangular shapes (empty dimensions
    /// included), across every deterministic backend.
    #[test]
    fn fused_relu_bit_identical_on_random_shapes(
        m in 0usize..24,
        k in 0usize..24,
        n in 0usize..24,
        seed in 0u64..100_000,
    ) {
        check_fused_relu_equivalence(m, k, n, seed);
    }

    /// Every batched entry point vs the same backend's sequential
    /// per-product loop on random rectangular shapes and batch sizes
    /// (empty dimensions included), across every deterministic backend —
    /// the batched-GEMM contract.
    #[test]
    fn batched_bit_identical_on_random_shapes(
        m in 0usize..16,
        k in 0usize..16,
        n in 0usize..16,
        batch in 1usize..5,
        seed in 0u64..100_000,
    ) {
        check_batched_equivalence(m, k, n, batch, seed);
    }

    /// The Matrix layer dispatches every product through the process-wide
    /// kernel; whatever backend is active must agree with the reference
    /// backend bit-for-bit.
    #[test]
    fn matrix_ops_match_reference_kernel(
        m in 1usize..16,
        k in 1usize..16,
        n in 1usize..16,
        seed in 0u64..100_000,
    ) {
        let a = Matrix::from_vec(m, k, kernel_data(m * k, seed));
        let b = Matrix::from_vec(k, n, kernel_data(k * n, seed ^ 1));
        let product = a.matmul(&b);
        let mut reference = vec![0.0; m * n];
        NaiveKernel.gemm(m, k, n, a.as_slice(), b.as_slice(), &mut reference);
        assert_bits_equal("Matrix::matmul", product.as_slice(), &reference);

        let bt = Matrix::from_vec(n, k, kernel_data(n * k, seed ^ 2));
        assert_bits_equal(
            "Matrix::matmul_nt",
            a.matmul_nt(&bt).as_slice(),
            a.matmul(&bt.transpose()).as_slice(),
        );
        let c = Matrix::from_vec(m, n, kernel_data(m * n, seed ^ 3));
        assert_bits_equal(
            "Matrix::matmul_tn",
            a.matmul_tn(&c).as_slice(),
            a.transpose().matmul(&c).as_slice(),
        );
    }
}
