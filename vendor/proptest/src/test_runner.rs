//! Run configuration and the deterministic test RNG.

/// Configuration for one `proptest!` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Master seed. Defaults to a fixed constant so CI is reproducible;
    /// override with the `PROPTEST_SEED` environment variable.
    pub seed: u64,
}

/// The fixed master seed used when `PROPTEST_SEED` is not set.
pub const DEFAULT_SEED: u64 = 0x51_1CE7_0DE5_EED5;

impl Default for ProptestConfig {
    fn default() -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_SEED);
        ProptestConfig { cases: 256, seed }
    }
}

impl ProptestConfig {
    /// Default configuration with a custom case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// Derives the per-case RNG seed from the master seed, the test name, and
/// the case index, so every test gets an independent deterministic stream.
pub fn derive_case_seed(master: u64, test_name: &str, case: u32) -> u64 {
    let mut h = master ^ 0x9E37_79B9_7F4A_7C15;
    for b in test_name.bytes() {
        h = splitmix(h ^ b as u64);
    }
    splitmix(h ^ ((case as u64) << 32))
}

fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic generator handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seeds_differ_by_test_and_case() {
        let a = derive_case_seed(1, "alpha", 0);
        let b = derive_case_seed(1, "beta", 0);
        let c = derive_case_seed(1, "alpha", 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_case_seed(1, "alpha", 0), "deterministic");
    }

    #[test]
    fn default_config_is_pinned() {
        // (Assumes PROPTEST_SEED is unset in the test environment.)
        if std::env::var("PROPTEST_SEED").is_err() {
            assert_eq!(ProptestConfig::default().seed, DEFAULT_SEED);
        }
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
    }
}
