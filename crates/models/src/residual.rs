//! A residual MLP — the closer ResNet-18 analog for Appendix B.
//!
//! Appendix B's point is that an overly complex model raises absolute
//! losses on modest data while leaving the *method ranking* unchanged. The
//! main experiments use [`crate::ModelSpec::deep`] (a plain oversized MLP);
//! this module adds genuine residual blocks — `h ← ReLU(h + W₂·ReLU(W₁·h))`
//! with identity skip connections — so the architecture family actually
//! matches ResNet's, and the `residual_compare` bin can check that the
//! per-slice loss structure is architecture-independent.

use crate::classifier::Classifier;
use crate::network::Layer;
use crate::optimizer::{OptimizerKind, OptimizerState};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use st_data::seeded_rng;
use st_linalg::{softmax_in_place, Matrix, PackedB};

/// One residual block: two width-preserving dense layers with an identity
/// skip, post-activation (`out = ReLU(x + W₂·ReLU(W₁·x + b₁) + b₂)`).
#[derive(Debug, Clone, PartialEq)]
pub struct ResidualBlock {
    /// First dense layer (width × width).
    pub l1: Layer,
    /// Second dense layer (width × width).
    pub l2: Layer,
}

impl ResidualBlock {
    /// He-initializes the inner layer and zero-initializes the outer one,
    /// so every block starts as the identity map — the standard trick that
    /// keeps deep residual stacks stable at initialization (the analog of
    /// zero-init'ing the last batch-norm scale in ResNets).
    fn he_init(width: usize, rng: &mut StdRng) -> Self {
        let l1 = Layer::he_init(width, width, rng);
        let mut l2 = Layer::he_init(width, width, rng);
        l2.w.scale(0.0);
        ResidualBlock { l1, l2 }
    }
}

/// Intermediates of one block's forward pass (for backprop).
struct BlockTrace {
    /// Block input `x`.
    input: Matrix,
    /// Post-ReLU inner activation `ReLU(W₁x + b₁)`.
    hidden: Matrix,
    /// Block output `ReLU(x + W₂·hidden + b₂)`.
    output: Matrix,
}

/// A residual classifier: input projection → `depth` residual blocks →
/// softmax head.
#[derive(Debug, Clone, PartialEq)]
pub struct ResidualMlp {
    /// Projection from the input dimension to the trunk width.
    pub stem: Layer,
    /// The residual trunk.
    pub blocks: Vec<ResidualBlock>,
    /// Softmax head.
    pub head: Layer,
}

/// Hyperparameters for [`ResidualMlp::train`].
#[derive(Debug, Clone, PartialEq)]
pub struct ResidualTrainConfig {
    /// Trunk width.
    pub width: usize,
    /// Number of residual blocks.
    pub depth: usize,
    /// Passes over the data.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f64,
    /// Update rule.
    pub optimizer: OptimizerKind,
    /// Seed for init and shuffling.
    pub seed: u64,
}

impl Default for ResidualTrainConfig {
    fn default() -> Self {
        ResidualTrainConfig {
            width: 32,
            depth: 4,
            epochs: 20,
            batch_size: 32,
            lr: 0.05,
            optimizer: OptimizerKind::default_momentum(),
            seed: 0,
        }
    }
}

fn relu_in_place(m: &mut Matrix) {
    for v in m.as_mut_slice() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// Prepacked forward weights of every layer, kept alive across minibatches
/// by the training loop. Packs are snapshots: the loop re-packs (buffer
/// reuse, no allocation) after each optimizer step, exactly when the
/// weights change — the [`PackedB`] invalidation contract.
#[derive(Debug, Default)]
struct ResidualPacks {
    stem: PackedB,
    /// `(l1, l2)` per residual block.
    blocks: Vec<(PackedB, PackedB)>,
    head: PackedB,
}

impl ResidualPacks {
    fn for_net(net: &ResidualMlp) -> Self {
        let mut packs = ResidualPacks {
            blocks: net.blocks.iter().map(|_| Default::default()).collect(),
            ..Default::default()
        };
        packs.refresh(net);
        packs
    }

    /// Re-packs every layer from the current weights.
    fn refresh(&mut self, net: &ResidualMlp) {
        net.stem.pack_weights_into(&mut self.stem);
        for (block, (p1, p2)) in net.blocks.iter().zip(&mut self.blocks) {
            block.l1.pack_weights_into(p1);
            block.l2.pack_weights_into(p2);
        }
        net.head.pack_weights_into(&mut self.head);
    }
}

/// Forward of one layer through its pack when available (bit-identical to
/// the plain forward either way).
fn layer_forward(layer: &Layer, pack: Option<&PackedB>, x: &Matrix) -> Matrix {
    match pack {
        Some(p) => {
            let mut out = Matrix::zeros(0, 0);
            layer.forward_prepacked_into(p, x, &mut out);
            out
        }
        None => layer.forward(x),
    }
}

impl ResidualMlp {
    /// Builds a seeded, He-initialized network.
    ///
    /// # Panics
    /// Panics when any dimension is zero.
    pub fn new(
        input_dim: usize,
        width: usize,
        depth: usize,
        num_classes: usize,
        rng: &mut StdRng,
    ) -> Self {
        assert!(
            input_dim > 0 && width > 0 && num_classes > 0,
            "dimensions must be positive"
        );
        ResidualMlp {
            stem: Layer::he_init(input_dim, width, rng),
            blocks: (0..depth)
                .map(|_| ResidualBlock::he_init(width, rng))
                .collect(),
            head: Layer::he_init(width, num_classes, rng),
        }
    }

    /// Total trainable parameter count.
    pub fn num_params(&self) -> usize {
        let layer = |l: &Layer| l.w.rows() * l.w.cols() + l.b.len();
        layer(&self.stem)
            + self
                .blocks
                .iter()
                .map(|b| layer(&b.l1) + layer(&b.l2))
                .sum::<usize>()
            + layer(&self.head)
    }

    /// Forward pass keeping per-block intermediates.
    fn forward_trace(&self, x: &Matrix) -> (Matrix, Vec<BlockTrace>, Matrix) {
        self.forward_trace_with(x, None)
    }

    /// [`forward_trace`](Self::forward_trace) through prepacked weights
    /// when the training loop supplies them — identical operations, so
    /// training bits are unchanged.
    fn forward_trace_with(
        &self,
        x: &Matrix,
        packs: Option<&ResidualPacks>,
    ) -> (Matrix, Vec<BlockTrace>, Matrix) {
        let mut cur = layer_forward(&self.stem, packs.map(|p| &p.stem), x);
        relu_in_place(&mut cur);
        let stem_out = cur.clone();
        let mut traces = Vec::with_capacity(self.blocks.len());
        for (bi, block) in self.blocks.iter().enumerate() {
            let mut hidden = layer_forward(&block.l1, packs.map(|p| &p.blocks[bi].0), &cur);
            relu_in_place(&mut hidden);
            let mut out = layer_forward(&block.l2, packs.map(|p| &p.blocks[bi].1), &hidden);
            out.add_assign(&cur);
            relu_in_place(&mut out);
            traces.push(BlockTrace {
                input: cur,
                hidden: hidden.clone(),
                output: out.clone(),
            });
            cur = out;
        }
        let logits = layer_forward(&self.head, packs.map(|p| &p.head), &cur);
        (stem_out, traces, logits)
    }

    /// Batch logits.
    pub fn logits(&self, x: &Matrix) -> Matrix {
        self.forward_trace(x).2
    }

    /// An evaluation view with every layer's weights packed **once** for
    /// reuse across many forward passes — the residual analog of
    /// [`crate::Mlp::packed`]. Outputs are bit-identical to
    /// [`Self::logits`]: every dense product goes through the prepacked
    /// fused-bias path, which is bit-identical to the plain forward (the
    /// fused-bias contract), and the block arithmetic (ReLU, identity
    /// skip) is op-for-op the traced forward's.
    pub fn packed(&self) -> PackedResidualMlp<'_> {
        PackedResidualMlp {
            net: self,
            packs: ResidualPacks::for_net(self),
        }
    }

    /// Trains a residual classifier. Deterministic in `(x, y, config)`.
    ///
    /// # Panics
    /// Panics on shape/label mismatches.
    pub fn train(
        x: &Matrix,
        y: &[usize],
        input_dim: usize,
        num_classes: usize,
        config: &ResidualTrainConfig,
    ) -> ResidualMlp {
        assert_eq!(x.rows(), y.len(), "feature/label count mismatch");
        assert!(y.iter().all(|&l| l < num_classes), "label out of range");

        let mut rng = seeded_rng(config.seed);
        let mut net =
            ResidualMlp::new(input_dim, config.width, config.depth, num_classes, &mut rng);
        let n = x.rows();
        if n == 0 {
            return net;
        }

        // Slot layout: stem w/b, then per block l1 w/b + l2 w/b, then head.
        let layer_lens = |l: &Layer| [l.w.rows() * l.w.cols(), l.b.len()];
        let mut lens: Vec<usize> = layer_lens(&net.stem).to_vec();
        for b in &net.blocks {
            lens.extend(layer_lens(&b.l1));
            lens.extend(layer_lens(&b.l2));
        }
        lens.extend(layer_lens(&net.head));
        let mut opt = OptimizerState::new(config.optimizer, &lens);

        // Forward weights are packed once here and kept alive across
        // minibatches; each step invalidates them (the optimizer updates
        // every layer), so `refresh` re-packs into the same buffers.
        let mut packs = ResidualPacks::for_net(&net);
        let mut order: Vec<usize> = (0..n).collect();
        let mut bx = Matrix::zeros(0, 0);
        let mut by: Vec<usize> = Vec::new();
        for _epoch in 0..config.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(config.batch_size.max(1)) {
                x.gather_rows_into(chunk, &mut bx);
                by.clear();
                by.extend(chunk.iter().map(|&i| y[i]));
                opt.next_step();
                net.step(&bx, &by, config.lr, &mut opt, &packs);
                packs.refresh(&net);
            }
        }
        net
    }

    /// One optimizer step on a minibatch.
    fn step(
        &mut self,
        bx: &Matrix,
        by: &[usize],
        lr: f64,
        opt: &mut OptimizerState,
        packs: &ResidualPacks,
    ) {
        let m = bx.rows();
        let (stem_out, traces, logits) = self.forward_trace_with(bx, Some(packs));

        // Softmax cross-entropy gradient.
        let mut dz = logits;
        for r in 0..m {
            let row = dz.row_mut(r);
            softmax_in_place(row);
            row[by[r]] -= 1.0;
            for v in row.iter_mut() {
                *v /= m as f64;
            }
        }

        // Gradients of (w, b) for a dense layer given input and dout,
        // via the transpose-free batched GEMM shapes.
        let grads = |input: &Matrix, dout: &Matrix| -> (Matrix, Vec<f64>) {
            (input.matmul_tn(dout), dout.col_sums())
        };
        // Applies the ReLU mask of `act` (post-activation) to `d` in place.
        let mask = |d: &mut Matrix, act: &Matrix| {
            for (v, &a) in d.as_mut_slice().iter_mut().zip(act.as_slice()) {
                if a <= 0.0 {
                    *v = 0.0;
                }
            }
        };

        // Head.
        let trunk_out = traces.last().map(|t| &t.output).unwrap_or(&stem_out);
        let (head_gw, head_gb) = grads(trunk_out, &dz);
        let mut dcur = dz.matmul_nt(&self.head.w);

        // Blocks, last first. Per block (post-activation residual):
        //   out = ReLU(x + W₂·h + b₂),  h = ReLU(W₁·x + b₁)
        //   d(pre-out) = dout ⊙ [out > 0]
        //   dW₂ = hᵀ·d(pre-out); dh = d(pre-out)·W₂ᵀ ⊙ [h > 0]
        //   dW₁ = xᵀ·dh; dx = dh·W₁ᵀ + d(pre-out)   (identity skip)
        let mut block_grads: Vec<(Matrix, Vec<f64>, Matrix, Vec<f64>)> =
            Vec::with_capacity(self.blocks.len());
        for (bi, trace) in traces.iter().enumerate().rev() {
            mask(&mut dcur, &trace.output);
            let dpre = dcur; // gradient at the pre-ReLU sum
            let (g2w, g2b) = grads(&trace.hidden, &dpre);
            let mut dh = dpre.matmul_nt(&self.blocks[bi].l2.w);
            mask(&mut dh, &trace.hidden);
            let (g1w, g1b) = grads(&trace.input, &dh);
            let mut dx = dh.matmul_nt(&self.blocks[bi].l1.w);
            dx.add_assign(&dpre); // the skip path
            block_grads.push((g1w, g1b, g2w, g2b));
            dcur = dx;
        }
        block_grads.reverse();

        // Stem.
        mask(&mut dcur, &stem_out);
        let (stem_gw, stem_gb) = grads(bx, &dcur);

        // Apply updates in the slot order used at allocation.
        let mut slot = 0;
        let mut upd = |params: &mut [f64], grads: &[f64], opt: &mut OptimizerState| {
            opt.update(slot, params, grads, lr, 0.0);
            slot += 1;
        };
        upd(self.stem.w.as_mut_slice(), stem_gw.as_slice(), opt);
        upd(&mut self.stem.b, &stem_gb, opt);
        for (b, (g1w, g1b, g2w, g2b)) in self.blocks.iter_mut().zip(&block_grads) {
            upd(b.l1.w.as_mut_slice(), g1w.as_slice(), opt);
            upd(&mut b.l1.b, g1b, opt);
            upd(b.l2.w.as_mut_slice(), g2w.as_slice(), opt);
            upd(&mut b.l2.b, g2b, opt);
        }
        upd(self.head.w.as_mut_slice(), head_gw.as_slice(), opt);
        upd(&mut self.head.b, &head_gb, opt);
    }
}

/// A read-only [`ResidualMlp`] evaluation view with prepacked weights (see
/// [`ResidualMlp::packed`]).
#[derive(Debug)]
pub struct PackedResidualMlp<'a> {
    net: &'a ResidualMlp,
    packs: ResidualPacks,
}

/// Reusable forward buffers for [`PackedResidualMlp`] — the residual analog
/// of [`crate::EvalScratch`]: ping-pong trunk activations plus the inner
/// block activation, reused across batches and models.
#[derive(Debug, Default)]
pub struct ResidualEvalScratch {
    cur: Matrix,
    next: Matrix,
    hidden: Matrix,
}

impl PackedResidualMlp<'_> {
    /// The underlying network.
    pub fn network(&self) -> &ResidualMlp {
        self.net
    }

    /// Batch logits into the scratch's `cur` buffer — bit-identical to
    /// [`ResidualMlp::logits`] (the traced forward keeps intermediates;
    /// this one reuses two trunk buffers, same ops and bits). The
    /// stem/inner ReLUs ride the packed cores' fused write-back; the block
    /// output ReLU follows the skip add, so it stays a separate sweep.
    pub fn logits_into(&self, x: &Matrix, s: &mut ResidualEvalScratch) {
        let net = self.net;
        net.stem
            .forward_prepacked_relu_into(&self.packs.stem, x, &mut s.cur);
        for (block, (p1, p2)) in net.blocks.iter().zip(&self.packs.blocks) {
            block
                .l1
                .forward_prepacked_relu_into(p1, &s.cur, &mut s.hidden);
            block.l2.forward_prepacked_into(p2, &s.hidden, &mut s.next);
            s.next.add_assign(&s.cur);
            relu_in_place(&mut s.next);
            std::mem::swap(&mut s.cur, &mut s.next);
        }
        net.head
            .forward_prepacked_into(&self.packs.head, &s.cur, &mut s.next);
        std::mem::swap(&mut s.cur, &mut s.next);
    }

    /// Mean clamped negative log-likelihood on one validation batch —
    /// bit-identical to [`crate::log_loss_of`] on the unpacked network.
    /// Returns `NaN` for an empty batch.
    ///
    /// # Panics
    /// Panics when `x.rows() != y.len()`.
    pub fn log_loss_scratch(&self, x: &Matrix, y: &[usize], s: &mut ResidualEvalScratch) -> f64 {
        assert_eq!(x.rows(), y.len(), "feature/label count mismatch");
        if y.is_empty() {
            return f64::NAN;
        }
        self.logits_into(x, s);
        for r in 0..s.cur.rows() {
            softmax_in_place(s.cur.row_mut(r));
        }
        crate::loss::nll_of_proba(&s.cur, y)
    }
}

impl Classifier for ResidualMlp {
    fn predict_proba(&self, x: &Matrix) -> Matrix {
        let mut logits = self.logits(x);
        for r in 0..logits.rows() {
            softmax_in_place(logits.row_mut(r));
        }
        logits
    }

    fn num_classes(&self) -> usize {
        self.head.fan_out()
    }

    fn input_dim(&self) -> usize {
        self.stem.fan_in()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::{accuracy_of, log_loss_of};
    use st_data::normal;

    fn blobs(n_per: usize, centers: &[(f64, f64)], seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = seeded_rng(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for (label, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..n_per {
                rows.push(cx + 0.3 * normal(&mut rng));
                rows.push(cy + 0.3 * normal(&mut rng));
                labels.push(label);
            }
        }
        (Matrix::from_vec(labels.len(), 2, rows), labels)
    }

    #[test]
    fn shapes_and_param_count() {
        let mut rng = seeded_rng(1);
        let net = ResidualMlp::new(4, 8, 3, 5, &mut rng);
        assert_eq!(net.input_dim(), 4);
        assert_eq!(net.num_classes(), 5);
        assert_eq!(net.blocks.len(), 3);
        // stem 4·8+8, 3 blocks of 2·(8·8+8), head 8·5+5.
        assert_eq!(net.num_params(), (32 + 8) + 3 * 2 * (64 + 8) + (40 + 5));
    }

    #[test]
    fn forward_produces_distributions() {
        let mut rng = seeded_rng(2);
        let net = ResidualMlp::new(3, 6, 2, 4, &mut rng);
        let x = Matrix::from_fn(5, 3, |r, c| (r as f64 - 2.0) * (c as f64 + 0.3));
        let p = net.predict_proba(&x);
        for r in 0..5 {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn learns_separable_blobs() {
        let (x, y) = blobs(60, &[(-2.0, 0.0), (2.0, 0.0), (0.0, 2.0)], 3);
        let cfg = ResidualTrainConfig {
            epochs: 30,
            ..Default::default()
        };
        let net = ResidualMlp::train(&x, &y, 2, 3, &cfg);
        let acc = accuracy_of(&net, &x, &y);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn packed_view_is_bit_identical_and_scratch_is_shareable() {
        let (x, y) = blobs(40, &[(-2.0, 0.0), (2.0, 0.0), (0.0, 2.0)], 9);
        let cfg = ResidualTrainConfig {
            width: 6,
            depth: 2,
            epochs: 3,
            ..Default::default()
        };
        let a = ResidualMlp::train(&x, &y, 2, 3, &cfg);
        let b = ResidualMlp::train(&x, &y, 2, 3, &ResidualTrainConfig { seed: 5, ..cfg });
        // One scratch across two models and two batch sizes: the packs live
        // in the views, so scratch reuse cannot go stale.
        let mut s = ResidualEvalScratch::default();
        for net in [&a, &b] {
            let packed = net.packed();
            for rows in [1usize, 7] {
                let xs = x.gather_rows(&(0..rows).collect::<Vec<_>>());
                let want = net.logits(&xs);
                packed.logits_into(&xs, &mut s);
                for (w, g) in want.as_slice().iter().zip(s.cur.as_slice()) {
                    assert_eq!(w.to_bits(), g.to_bits());
                }
            }
            let want = log_loss_of(net, &x, &y);
            let got = packed.log_loss_scratch(&x, &y, &mut s);
            assert_eq!(want.to_bits(), got.to_bits());
        }
        assert!(a
            .packed()
            .log_loss_scratch(&Matrix::zeros(0, 2), &[], &mut s)
            .is_nan());
    }

    #[test]
    fn learns_xor_which_needs_depth() {
        let mut rng = seeded_rng(4);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..100 {
            for (cx, cy, l) in [
                (-1.0, -1.0, 0),
                (1.0, 1.0, 0),
                (-1.0, 1.0, 1),
                (1.0, -1.0, 1),
            ] {
                rows.push(cx + 0.15 * normal(&mut rng));
                rows.push(cy + 0.15 * normal(&mut rng));
                labels.push(l);
            }
        }
        let x = Matrix::from_vec(labels.len(), 2, rows);
        let cfg = ResidualTrainConfig {
            epochs: 40,
            width: 16,
            depth: 2,
            ..Default::default()
        };
        let net = ResidualMlp::train(&x, &labels, 2, 2, &cfg);
        assert!(log_loss_of(&net, &x, &labels) < 0.2);
    }

    #[test]
    fn training_is_deterministic() {
        let (x, y) = blobs(20, &[(-1.5, 0.0), (1.5, 0.0)], 5);
        let cfg = ResidualTrainConfig {
            epochs: 5,
            ..Default::default()
        };
        let a = ResidualMlp::train(&x, &y, 2, 2, &cfg);
        let b = ResidualMlp::train(&x, &y, 2, 2, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn deeper_trunk_still_trains_thanks_to_skips() {
        // 8 blocks of width 16 — a plain 17-layer MLP at this width would
        // struggle; residual skips keep gradients flowing. Deeper trunks
        // need a gentler step (heavy-ball at lr 0.05 oscillates at depth 8).
        let (x, y) = blobs(60, &[(-2.0, 0.0), (2.0, 0.0)], 6);
        let cfg = ResidualTrainConfig {
            epochs: 40,
            width: 16,
            depth: 8,
            lr: 0.02,
            ..Default::default()
        };
        let net = ResidualMlp::train(&x, &y, 2, 2, &cfg);
        assert!(
            log_loss_of(&net, &x, &y) < 0.2,
            "loss {}",
            log_loss_of(&net, &x, &y)
        );
    }

    #[test]
    fn zero_depth_degenerates_to_one_hidden_layer() {
        let (x, y) = blobs(40, &[(-2.0, 0.0), (2.0, 0.0)], 7);
        let cfg = ResidualTrainConfig {
            epochs: 20,
            depth: 0,
            ..Default::default()
        };
        let net = ResidualMlp::train(&x, &y, 2, 2, &cfg);
        assert!(net.blocks.is_empty());
        assert!(accuracy_of(&net, &x, &y) > 0.95);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        let x = Matrix::zeros(1, 2);
        let _ = ResidualMlp::train(&x, &[9], 2, 2, &ResidualTrainConfig::default());
    }
}
