//! Figure 7: influence (loss change) on the other UTKFace slices as more
//! data is acquired only for White_Male, plotted against the change of the
//! imbalance ratio.
//!
//! Expected shape: magnitudes grow with the imbalance-ratio change; the
//! content-similar slice (White_Female, same race cluster) trends *down*
//! while dissimilar slices trend up.

use slice_tuner::influence_sweep;
use st_bench::{quick, rule};
use st_data::{families, SliceId};
use st_models::{ModelSpec, TrainConfig};

fn main() {
    // Bench-wide kernel default: `sharded` on multi-core hosts, `simd`
    // on single-core containers; `ST_KERNEL` overrides (see docs/kernels.md).
    st_bench::init_bench_kernel();
    let family = families::faces();
    // Paper protocol: all slices size 300, White_Male starts at 50 and
    // grows alone.
    let mut sizes = vec![300; 8];
    sizes[0] = 50;
    let steps: Vec<usize> = if quick() {
        vec![250, 950]
    } else {
        vec![250, 550, 950, 1450, 2050, 2950]
    };
    let trials = if quick() { 1 } else { st_bench::trials() };

    let train = TrainConfig {
        epochs: if quick() { 8 } else { 20 },
        ..Default::default()
    };

    let sweep = influence_sweep(
        &family,
        &sizes,
        SliceId(0),
        &steps,
        300,
        &ModelSpec::basic(),
        &train,
        trials,
        2021,
    );

    println!("Figure 7: influence on other slices while growing White_Male (start 50)\n");
    print!("{:<16}", "IR change");
    for p in &sweep.points {
        print!("{:>9.2}", p.ir_change);
    }
    println!();
    rule(16 + 9 * sweep.points.len());
    for (i, name) in sweep.slice_names.iter().enumerate().skip(1) {
        print!("{name:<16}");
        for p in &sweep.points {
            print!("{:>9.3}", p.influence[i]);
        }
        println!();
    }
    print!("{:<16}", "White_Male(own)");
    for p in &sweep.points {
        print!("{:>9.3}", p.influence[0]);
    }
    println!();

    // Summarize the two paper claims numerically.
    let last = sweep.points.last().expect("at least one step");
    let first = &sweep.points[0];
    let mag = |p: &slice_tuner::InfluencePoint| -> f64 {
        p.influence[1..].iter().map(|x| x.abs()).sum::<f64>() / (p.influence.len() - 1) as f64
    };
    println!(
        "\nmean |influence| grows with IR change: {:.3} (ΔIR {:.1}) -> {:.3} (ΔIR {:.1})",
        mag(first),
        first.ir_change,
        mag(last),
        last.ir_change
    );
    println!(
        "content-similar White_Female influence at max ΔIR: {:+.3} (paper: negative)",
        last.influence[1]
    );
}
