//! The selective data acquisition optimization problem (Section 5.1).

use st_curve::PowerLaw;

/// The convex program of Section 5.1:
///
/// ```text
/// min  Σ b_i (|s_i| + d_i)^(-a_i)
///    + λ Σ max(0, b_i (|s_i| + d_i)^(-a_i) / A − 1)
/// s.t. Σ C(s_i) d_i = B,   d_i ≥ 0
/// ```
///
/// `A` is the average of the current per-slice losses (a constant while
/// solving, per the paper's convexity argument).
///
/// ```
/// use st_curve::PowerLaw;
/// use st_optim::{solve_projected, AcquisitionProblem, SolverOptions};
///
/// // Two slices of 100 examples each; slice 0's curve is much steeper.
/// let problem = AcquisitionProblem::new(
///     vec![PowerLaw::new(5.0, 0.5), PowerLaw::new(3.0, 0.1)],
///     vec![100.0, 100.0],
///     vec![1.0, 1.0],
///     200.0, // budget
///     1.0,   // lambda
/// );
/// let d = solve_projected(&problem, &SolverOptions::default());
/// assert!(problem.is_feasible(&d, 1e-6));
/// assert!(problem.objective(&d) < problem.objective(&[100.0, 100.0]));
/// ```
#[derive(Debug, Clone)]
pub struct AcquisitionProblem {
    /// Fitted learning curves, one per slice.
    pub curves: Vec<PowerLaw>,
    /// Current slice sizes `|s_i|`.
    pub sizes: Vec<f64>,
    /// Per-example acquisition costs `C(s_i)`.
    pub costs: Vec<f64>,
    /// Total acquisition budget `B`.
    pub budget: f64,
    /// Fairness weight `λ ≥ 0` (paper default 1).
    pub lambda: f64,
}

impl AcquisitionProblem {
    /// Builds a problem, validating shapes and ranges.
    ///
    /// # Panics
    /// Panics on length mismatches, non-positive costs, negative sizes,
    /// negative budget, or negative lambda.
    pub fn new(
        curves: Vec<PowerLaw>,
        sizes: Vec<f64>,
        costs: Vec<f64>,
        budget: f64,
        lambda: f64,
    ) -> Self {
        let n = curves.len();
        assert!(n > 0, "need at least one slice");
        assert_eq!(sizes.len(), n, "sizes length mismatch");
        assert_eq!(costs.len(), n, "costs length mismatch");
        assert!(
            sizes.iter().all(|&s| s >= 0.0),
            "sizes must be non-negative"
        );
        assert!(costs.iter().all(|&c| c > 0.0), "costs must be positive");
        assert!(budget >= 0.0, "budget must be non-negative");
        assert!(lambda >= 0.0, "lambda must be non-negative");
        AcquisitionProblem {
            curves,
            sizes,
            costs,
            budget,
            lambda,
        }
    }

    /// Number of slices.
    pub fn n(&self) -> usize {
        self.curves.len()
    }

    /// Current per-slice losses (curve value at the current size).
    pub fn current_losses(&self) -> Vec<f64> {
        self.curves
            .iter()
            .zip(&self.sizes)
            .map(|(c, &s)| c.eval(s))
            .collect()
    }

    /// The constant `A`: average of the current per-slice losses.
    pub fn avg_loss(&self) -> f64 {
        let losses = self.current_losses();
        losses.iter().sum::<f64>() / losses.len() as f64
    }

    /// Predicted per-slice losses after acquiring `d`.
    pub fn losses_after(&self, d: &[f64]) -> Vec<f64> {
        assert_eq!(d.len(), self.n(), "allocation length mismatch");
        self.curves
            .iter()
            .zip(&self.sizes)
            .zip(d)
            .map(|((c, &s), &di)| c.eval(s + di))
            .collect()
    }

    /// Objective value at allocation `d` (loss term + λ·unfairness penalty).
    pub fn objective(&self, d: &[f64]) -> f64 {
        let a = self.avg_loss();
        let losses = self.losses_after(d);
        let loss_term: f64 = losses.iter().sum();
        let penalty: f64 = losses.iter().map(|&l| (l / a - 1.0).max(0.0)).sum();
        loss_term + self.lambda * penalty
    }

    /// A subgradient of the objective at `d`.
    ///
    /// The loss term is differentiable; the penalty's `max(0, ·)` kink uses
    /// the one-sided derivative (active only when `loss_i > A`).
    pub fn subgradient(&self, d: &[f64]) -> Vec<f64> {
        assert_eq!(d.len(), self.n(), "allocation length mismatch");
        let a = self.avg_loss();
        self.curves
            .iter()
            .zip(&self.sizes)
            .zip(d)
            .map(|((c, &s), &di)| {
                let x = s + di;
                let slope = c.slope(x);
                let active = c.eval(x) > a;
                slope * (1.0 + if active { self.lambda / a } else { 0.0 })
            })
            .collect()
    }

    /// Total cost of an allocation `Σ C(s_i) d_i`.
    pub fn total_cost(&self, d: &[f64]) -> f64 {
        self.costs.iter().zip(d).map(|(c, x)| c * x).sum()
    }

    /// True when `d` is (approximately) feasible: non-negative and on the
    /// budget hyperplane within `tol` (relative to `B`).
    pub fn is_feasible(&self, d: &[f64], tol: f64) -> bool {
        d.iter().all(|&x| x >= -tol)
            && (self.total_cost(d) - self.budget).abs() <= tol * self.budget.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_slice() -> AcquisitionProblem {
        AcquisitionProblem::new(
            vec![PowerLaw::new(5.0, 0.5), PowerLaw::new(3.0, 0.1)],
            vec![100.0, 100.0],
            vec![1.0, 1.0],
            200.0,
            1.0,
        )
    }

    #[test]
    fn avg_loss_matches_manual() {
        let p = two_slice();
        let l0 = 5.0 * 100.0_f64.powf(-0.5);
        let l1 = 3.0 * 100.0_f64.powf(-0.1);
        assert!((p.avg_loss() - (l0 + l1) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn objective_decreases_with_more_data() {
        let p = two_slice();
        assert!(p.objective(&[200.0, 0.0]) < p.objective(&[0.0, 0.0]));
    }

    #[test]
    fn subgradient_is_negative() {
        let p = two_slice();
        let g = p.subgradient(&[10.0, 10.0]);
        assert!(
            g.iter().all(|&x| x < 0.0),
            "more data always reduces the objective"
        );
    }

    #[test]
    fn subgradient_matches_finite_difference() {
        let p = two_slice();
        let d = vec![37.0, 55.0];
        let g = p.subgradient(&d);
        let eps = 1e-5;
        for i in 0..2 {
            let mut dp = d.clone();
            dp[i] += eps;
            let mut dm = d.clone();
            dm[i] -= eps;
            let fd = (p.objective(&dp) - p.objective(&dm)) / (2.0 * eps);
            assert!((g[i] - fd).abs() < 1e-5, "slice {i}: {} vs {}", g[i], fd);
        }
    }

    #[test]
    fn penalty_only_hits_above_average_slices() {
        // Slice 0 loss above A, slice 1 below: only slice 0's gradient gets
        // the λ boost.
        let p = two_slice();
        let d = vec![0.0, 0.0];
        let g1 = {
            let mut q = p.clone();
            q.lambda = 0.0;
            q.subgradient(&d)
        };
        let g2 = p.subgradient(&d);
        let losses = p.current_losses();
        let a = p.avg_loss();
        for i in 0..2 {
            if losses[i] > a {
                assert!(g2[i] < g1[i], "penalized slice has steeper descent");
            } else {
                assert_eq!(g2[i], g1[i]);
            }
        }
    }

    #[test]
    fn feasibility_check() {
        let p = two_slice();
        assert!(p.is_feasible(&[150.0, 50.0], 1e-9));
        assert!(!p.is_feasible(&[150.0, 100.0], 1e-9));
        assert!(!p.is_feasible(&[-1.0, 201.0], 1e-9));
    }

    #[test]
    #[should_panic(expected = "costs must be positive")]
    fn rejects_zero_cost() {
        let _ = AcquisitionProblem::new(
            vec![PowerLaw::new(1.0, 0.1)],
            vec![1.0],
            vec![0.0],
            1.0,
            0.0,
        );
    }
}
