//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the Slice Tuner paper (see `DESIGN.md` for the index).
//!
//! Each binary prints the same rows/series the paper reports. Runtime knobs
//! come from the environment so the full suite can be scaled:
//!
//! - `ST_TRIALS` — trials per cell (paper: 10; default here: 3)
//! - `ST_QUICK=1` — shrink budgets and trainings for smoke runs
//! - `ST_JOBS` — worker threads for the parallel trial executor
//!   (default 0 = all cores)
//!
//! Every binary routes its repeated-trial cells through [`run_cell`], which
//! fans trials out over `ST_JOBS` workers and shares one process-wide
//! curve-estimation cache — sweeps that re-estimate identical `(dataset,
//! seed)` curves (λ sweeps, schedule comparisons) reuse the fits instead of
//! retraining, without changing a single output bit.

use slice_tuner::{AggregateResult, CurveCache, Strategy, TunerConfig};
use st_data::{families, DatasetFamily};
use st_models::ModelSpec;
use std::sync::{Arc, OnceLock};

/// One benchmark dataset wired up like the paper's Section 6.1 settings.
pub struct FamilySetup {
    /// The dataset family (synthetic analog).
    pub family: DatasetFamily,
    /// Shared-model architecture.
    pub spec: ModelSpec,
    /// Display name used in table rows.
    pub label: &'static str,
    /// Per-slice validation size (paper: 500).
    pub validation: usize,
    /// Initial per-slice training size (Table 3's "Original" row).
    pub initial: usize,
    /// Acquisition budget `B`.
    pub budget: f64,
}

impl FamilySetup {
    /// Fashion-MNIST analog: 10 slices, init 200, B = 6K.
    pub fn fashion() -> Self {
        FamilySetup {
            family: families::fashion(),
            spec: ModelSpec::basic(),
            label: "Fashion-MNIST",
            validation: 300,
            initial: 200,
            budget: 6000.0,
        }
    }

    /// Mixed-MNIST analog (10 of 20 slices), init 150, B = 6K.
    pub fn mixed() -> Self {
        FamilySetup {
            family: families::mixed_selected(),
            spec: ModelSpec::basic(),
            label: "Mixed-MNIST",
            validation: 300,
            initial: 150,
            budget: 6000.0,
        }
    }

    /// UTKFace analog: 8 slices, Table 1 costs, init 400, B = 3K.
    pub fn faces() -> Self {
        FamilySetup {
            family: families::faces(),
            spec: ModelSpec::basic(),
            label: "UTKFace",
            validation: 300,
            initial: 400,
            budget: 3000.0,
        }
    }

    /// AdultCensus analog: 4 slices, init 150, B = 500.
    pub fn census() -> Self {
        FamilySetup {
            family: families::census(),
            spec: ModelSpec::softmax(),
            label: "AdultCensus",
            validation: 500,
            initial: 150,
            budget: 500.0,
        }
    }

    /// All four, in the paper's table order.
    pub fn all() -> Vec<FamilySetup> {
        vec![
            Self::fashion(),
            Self::mixed(),
            Self::faces(),
            Self::census(),
        ]
    }

    /// The tuner configuration used for this dataset's experiments.
    pub fn config(&self, seed: u64) -> TunerConfig {
        let mut cfg = TunerConfig::new(self.spec.clone()).with_seed(seed);
        if quick() {
            cfg.train.epochs = 8;
            cfg.fractions = vec![0.4, 0.7, 1.0];
            cfg.repeats = 1;
        } else {
            cfg.train.epochs = 20;
            cfg.fractions = vec![0.2, 0.4, 0.6, 0.8, 1.0];
            cfg.repeats = 2;
        }
        cfg.max_iterations = 12;
        cfg
    }

    /// Budget, scaled down in quick mode.
    pub fn scaled_budget(&self) -> f64 {
        if quick() {
            (self.budget / 4.0).max(100.0)
        } else {
            self.budget
        }
    }

    /// Equal initial sizes for every slice.
    pub fn equal_sizes(&self) -> Vec<usize> {
        vec![self.initial; self.family.num_slices()]
    }
}

/// Fixes the bench-wide default compute kernel before the first dense
/// operation: `sharded` on multi-core hosts (the full kernel roster's
/// fastest deterministic backend there), `simd` on single-core containers
/// where a worker fan-out only adds spawn overhead. An explicit
/// `ST_KERNEL` — or any kernel already active in the process — always
/// wins. Returns the kind actually in effect so binaries can report it.
///
/// Every experiment binary (tables, figures, comparison bins) calls this
/// at the top of `main`; the `kernels` microbench and `jobs_scaling` do
/// not, because they time or budget explicit backends themselves.
pub fn init_bench_kernel() -> st_linalg::KernelKind {
    if std::env::var_os("ST_KERNEL").is_none() {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let want = if cores >= 2 {
            st_linalg::KernelKind::Sharded
        } else {
            st_linalg::KernelKind::Simd
        };
        // An Err only means a kernel was fixed earlier; keep it.
        let _ = st_linalg::set_kernel(want);
    }
    st_linalg::kernel_kind()
}

/// Trials per experiment cell (`ST_TRIALS`, default 3; paper uses 10).
pub fn trials() -> usize {
    std::env::var("ST_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

/// Worker threads for the parallel trial executor (`ST_JOBS`, default 0 =
/// all available cores).
pub fn jobs() -> usize {
    std::env::var("ST_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// The process-wide curve-estimation cache shared by every [`run_cell`].
///
/// Keys include the dataset content fingerprint and the derived estimator
/// seed, so sharing across unrelated cells is always sound: a hit is
/// bit-identical to recomputation. Reported training counts reflect
/// trainings actually performed — a cached estimation costs zero.
pub fn shared_cache() -> Arc<CurveCache> {
    static CACHE: OnceLock<Arc<CurveCache>> = OnceLock::new();
    Arc::clone(CACHE.get_or_init(CurveCache::shared))
}

/// Runs one repeated-trial experiment cell through the parallel executor
/// ([`slice_tuner::run_trials_parallel`]) with the bench-wide [`jobs`]
/// setting and the [`shared_cache`]. Drop-in replacement for the
/// sequential `slice_tuner::run_trials` with identical aggregates.
pub fn run_cell(
    family: &DatasetFamily,
    initial_sizes: &[usize],
    validation_size: usize,
    budget: f64,
    strategy: Strategy,
    config: &TunerConfig,
    trials: usize,
) -> AggregateResult {
    let config = match &config.cache {
        Some(_) => config.clone(),
        None => config.clone().with_cache(shared_cache()),
    };
    slice_tuner::run_trials_parallel(
        family,
        initial_sizes,
        validation_size,
        budget,
        strategy,
        &config,
        trials,
        jobs(),
    )
}

/// Quick smoke mode (`ST_QUICK=1`).
pub fn quick() -> bool {
    std::env::var("ST_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// Deterministic dense test data for the kernel-layer microbenches
/// (SplitMix64 stream in `[-1, 1)`), shared by the `kernels` and
/// `pipeline` bins so their inputs — and therefore their bit
/// cross-checks — stay in lockstep.
pub fn bench_fill(len: usize, seed: u64) -> Vec<f64> {
    let mut rng = st_linalg::SplitMix64::new(seed);
    (0..len).map(|_| rng.next_f64() * 2.0 - 1.0).collect()
}

/// Asserts two buffers are `to_bits`-identical (the kernel layer's
/// bit-determinism contract), panicking with the offending index.
pub fn assert_bits_identical(op: &str, a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "{op}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "{op}: outputs differ at {i}: {x} vs {y}"
        );
    }
}

/// Times `body` over `reps` runs and returns the best wall-clock seconds
/// (best-of is robust to scheduler noise on shared runners).
pub fn best_secs(reps: usize, mut body: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = std::time::Instant::now();
        body();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Prints a horizontal rule sized to the table width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Formats an integer slice as the paper's per-slice acquisition rows.
pub fn fmt_counts(counts: &[f64]) -> String {
    counts
        .iter()
        .map(|c| format!("{:>5}", c.round() as i64))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setups_cover_all_four_datasets() {
        let all = FamilySetup::all();
        assert_eq!(all.len(), 4);
        assert_eq!(all[0].family.num_slices(), 10);
        assert_eq!(all[1].family.num_slices(), 10);
        assert_eq!(all[2].family.num_slices(), 8);
        assert_eq!(all[3].family.num_slices(), 4);
    }

    #[test]
    fn budgets_match_paper() {
        assert_eq!(FamilySetup::fashion().budget, 6000.0);
        assert_eq!(FamilySetup::mixed().budget, 6000.0);
        assert_eq!(FamilySetup::faces().budget, 3000.0);
        assert_eq!(FamilySetup::census().budget, 500.0);
    }

    #[test]
    fn faces_setup_carries_table1_costs() {
        let f = FamilySetup::faces();
        assert_eq!(
            f.family.costs(),
            st_data::families::faces::FACE_COSTS.to_vec()
        );
    }

    #[test]
    fn fmt_counts_aligns() {
        assert_eq!(fmt_counts(&[1.0, 20.0]), "    1    20");
    }

    #[test]
    fn bench_kernel_default_is_deterministic_and_sticky() {
        let first = init_bench_kernel();
        // Whatever won (env override, earlier selection, or the
        // core-count default), it must be the active process kernel, a
        // bit-deterministic backend, and stable across calls.
        assert_eq!(first, st_linalg::kernel_kind());
        assert!(first.bit_deterministic());
        assert_eq!(init_bench_kernel(), first);
    }
}
