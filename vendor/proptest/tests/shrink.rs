//! End-to-end halving-shrink behavior of the `proptest!` runner: a
//! failing property's reported case must be the *minimal* failing input,
//! not the first one generated.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// The smallest failing value the runner ever evaluated (the body records
/// every failing evaluation, so after shrinking this is the minimum).
static SMALLEST_SEEN: AtomicU64 = AtomicU64::new(u64::MAX);

// No `#[test]` attribute: the harness below invokes this directly so it
// can observe the panic.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    fn fails_from_fifty_up(x in 0u64..1000) {
        if x >= 50 {
            SMALLEST_SEEN.fetch_min(x, Ordering::SeqCst);
            panic!("fails for every x >= 50, x = {x}");
        }
    }
}

#[test]
fn shrink_finds_the_minimal_failing_int() {
    let outcome = std::panic::catch_unwind(fails_from_fifty_up);
    assert!(outcome.is_err(), "property must fail somewhere in 8 cases");
    // Halving closes the distance, the −1 step finishes exactly at the
    // boundary: the minimized case is 50 regardless of the master seed.
    assert_eq!(SMALLEST_SEEN.load(Ordering::SeqCst), 50);
}

static SHORTEST_LEN: AtomicU64 = AtomicU64::new(u64::MAX);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    fn fails_when_vec_longer_than_three(v in prop::collection::vec(0.0f64..1.0, 1..12)) {
        if v.len() > 3 {
            SHORTEST_LEN.fetch_min(v.len() as u64, Ordering::SeqCst);
            panic!("fails for every len > 3");
        }
    }
}

#[test]
fn shrink_finds_the_minimal_failing_vec_length() {
    let outcome = std::panic::catch_unwind(fails_when_vec_longer_than_three);
    assert!(outcome.is_err(), "property must fail somewhere in 4 cases");
    assert_eq!(SHORTEST_LEN.load(Ordering::SeqCst), 4);
}

proptest! {
    // A passing property, compiled through the same macro path, to pin
    // that the rewrite kept multi-variable patterns (including `mut`).
    #[test]
    fn runner_still_supports_mut_patterns(mut v in prop::collection::vec(0u32..5, 3..=3), k in 1u32..4) {
        v.push(k);
        prop_assert_eq!(v.len(), 4);
    }
}
