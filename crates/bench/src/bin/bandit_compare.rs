//! Extension experiment (Section 7 framing): Slice Tuner's Moderate method
//! vs a model-free ε-greedy rotting bandit with the same budget.
//!
//! The bandit observes rewards only by retraining after every pull and has
//! no fairness objective; Slice Tuner's learning curves let it plan the
//! whole allocation. Expected shape: comparable or better loss for Slice
//! Tuner, clearly better unfairness, far fewer trainings per unit budget.

use slice_tuner::{BanditParams, Strategy, TSchedule};
use st_bench::{rule, run_cell, trials, FamilySetup};

fn main() {
    // Bench-wide kernel default: `sharded` on multi-core hosts, `simd`
    // on single-core containers; `ST_KERNEL` overrides (see docs/kernels.md).
    st_bench::init_bench_kernel();
    let setup = FamilySetup::census();
    let sizes = [40usize, 80, 120, 160];
    let budget = if st_bench::quick() { 200.0 } else { 500.0 };
    let trials = trials();

    println!(
        "Extension: Moderate vs rotting bandit (census analog, B = {budget}, {trials} trials)\n"
    );
    println!(
        "{:<16} {:>8} {:>10} {:>10} {:>11}",
        "Method", "Loss", "Avg EER", "Max EER", "Trainings"
    );
    rule(60);
    for (name, strategy) in [
        ("Moderate", Strategy::Iterative(TSchedule::moderate())),
        (
            "Bandit ε=0.1",
            Strategy::RottingBandit(BanditParams {
                batch: 50.0,
                epsilon: 0.1,
            }),
        ),
        (
            "Bandit ε=0.3",
            Strategy::RottingBandit(BanditParams {
                batch: 50.0,
                epsilon: 0.3,
            }),
        ),
    ] {
        let agg = run_cell(
            &setup.family,
            &sizes,
            setup.validation,
            budget,
            strategy,
            &setup.config(12),
            trials,
        );
        println!(
            "{name:<16} {:>8.3} {:>10.3} {:>10.3} {:>11.0}",
            agg.loss.mean, agg.avg_eer.mean, agg.max_eer.mean, agg.trainings
        );
    }
    println!("\n(the bandit has no fairness term and pays one full retraining per pull;");
    println!(" Slice Tuner plans with learning curves instead)");
}
