//! Minimal HTTP/1.1 framing over a blocking [`TcpStream`].
//!
//! The server speaks a deliberately tiny dialect: one request per
//! connection, `Connection: close` on every response, bodies framed by
//! `Content-Length` only (no chunked encoding, no keep-alive, no TLS).
//! That dialect is exactly what the crash-only contract wants — a dropped
//! connection is indistinguishable from a crashed worker, and the client
//! recovers both the same way: reconnect and retry the idempotent request.
//!
//! Reads enforce a *total* deadline, not a per-`read(2)` timeout: the
//! remaining budget shrinks as bytes trickle in, so a slow-loris client
//! (or an `ST_FAULT slow_client` injection) is shed with 408 after
//! `deadline` wall-clock time no matter how it paces its bytes.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Upper bound on the request head (request line + headers).
const MAX_HEAD: usize = 16 * 1024;
/// Upper bound on a request body (CSV uploads are the largest payload).
const MAX_BODY: usize = 8 * 1024 * 1024;

/// A parsed request. Bodies are text (JSON or CSV) in this dialect.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub body: String,
}

/// Why a request could not be read. Each variant maps to one status code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The total read deadline elapsed before the request was complete.
    Timeout,
    /// The peer closed the connection mid-request.
    Disconnected,
    /// The bytes on the wire were not a well-formed request.
    Malformed(String),
    /// The head or body exceeded its size cap.
    TooLarge,
    /// A transport error other than timeout/EOF.
    Io(String),
}

impl HttpError {
    /// The status code this error is reported as.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Timeout => 408,
            HttpError::TooLarge => 413,
            HttpError::Malformed(_) => 400,
            HttpError::Disconnected | HttpError::Io(_) => 400,
        }
    }

    /// A short machine-readable code for the JSON error body.
    pub fn code(&self) -> &'static str {
        match self {
            HttpError::Timeout => "deadline_exceeded",
            HttpError::Disconnected => "disconnected",
            HttpError::Malformed(_) => "malformed_request",
            HttpError::TooLarge => "payload_too_large",
            HttpError::Io(_) => "io_error",
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Timeout => write!(f, "read deadline exceeded"),
            HttpError::Disconnected => write!(f, "peer disconnected mid-request"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::TooLarge => write!(f, "request exceeds size cap"),
            HttpError::Io(m) => write!(f, "transport error: {m}"),
        }
    }
}

/// Reads one full request, enforcing `deadline` as a total wall-clock
/// budget across all reads (head and body alike).
pub fn read_request(stream: &mut TcpStream, deadline: Duration) -> Result<Request, HttpError> {
    let start = Instant::now();
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return Err(HttpError::TooLarge);
        }
        read_some(stream, &mut buf, start, deadline)?;
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("non-UTF-8 request head".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("request line has no path".into()))?
        .to_string();
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported protocol '{version}'"
        )));
    }

    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpError::Malformed("bad Content-Length".into()))?;
        }
    }
    if content_length > MAX_BODY {
        return Err(HttpError::TooLarge);
    }

    let body_start = head_end + 4;
    while buf.len() < body_start + content_length {
        read_some(stream, &mut buf, start, deadline)?;
    }
    let body = String::from_utf8_lossy(&buf[body_start..body_start + content_length]).into_owned();
    Ok(Request { method, path, body })
}

/// One bounded read, with the socket timeout set to the *remaining*
/// deadline so the total never exceeds it.
fn read_some(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    start: Instant,
    deadline: Duration,
) -> Result<(), HttpError> {
    let remaining = deadline
        .checked_sub(start.elapsed())
        .filter(|d| !d.is_zero())
        .ok_or(HttpError::Timeout)?;
    stream
        .set_read_timeout(Some(remaining))
        .map_err(|e| HttpError::Io(e.to_string()))?;
    let mut chunk = [0u8; 4096];
    match stream.read(&mut chunk) {
        Ok(0) => Err(HttpError::Disconnected),
        Ok(n) => {
            buf.extend_from_slice(&chunk[..n]);
            Ok(())
        }
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            Err(HttpError::Timeout)
        }
        Err(e) => Err(HttpError::Io(e.to_string())),
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A response about to be written. `retry_after`, when set, emits a
/// `Retry-After: <secs>` header — the backoff hint clients honour.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub body: String,
    pub retry_after: Option<u64>,
}

impl Response {
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            body,
            retry_after: None,
        }
    }

    /// A `{"error": code, "detail": ...}` body with the given status.
    pub fn error(status: u16, code: &str, detail: &str) -> Self {
        let body = format!(
            "{{\"error\":{},\"detail\":{}}}",
            serde::json::Value::Str(code.to_string()).to_json(),
            serde::json::Value::Str(detail.to_string()).to_json(),
        );
        Response::json(status, body)
    }

    pub fn with_retry_after(mut self, secs: u64) -> Self {
        self.retry_after = Some(secs);
        self
    }
}

/// The reason phrase for the handful of statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Writes `resp` and flushes. Errors are returned, not panicked on — a
/// peer that vanished mid-write is routine under chaos.
pub fn write_response(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        resp.status,
        reason(resp.status),
        resp.body.len(),
    );
    if let Some(secs) = resp.retry_after {
        head.push_str(&format!("Retry-After: {secs}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(resp.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::thread;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = thread::spawn(move || TcpStream::connect(addr).expect("connect"));
        let (server, _) = listener.accept().expect("accept");
        (server, client.join().expect("client thread"))
    }

    #[test]
    fn parses_a_request_with_a_body() {
        let (mut server, mut client) = pair();
        client
            .write_all(b"POST /sessions HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world")
            .expect("write");
        let req = read_request(&mut server, Duration::from_secs(2)).expect("parse");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/sessions");
        assert_eq!(req.body, "hello world");
    }

    #[test]
    fn times_out_on_a_stalled_client() {
        let (mut server, client) = pair();
        // Client writes nothing; hold it open so EOF is not the cause.
        let err = read_request(&mut server, Duration::from_millis(80)).expect_err("must time out");
        assert_eq!(err, HttpError::Timeout);
        assert_eq!(err.status(), 408);
        drop(client);
    }

    #[test]
    fn eof_mid_request_is_disconnected() {
        let (mut server, mut client) = pair();
        client.write_all(b"GET /healthz HT").expect("write");
        drop(client);
        let err = read_request(&mut server, Duration::from_secs(2)).expect_err("truncated");
        assert_eq!(err, HttpError::Disconnected);
    }

    #[test]
    fn rejects_oversized_declared_bodies() {
        let (mut server, mut client) = pair();
        client
            .write_all(b"POST /x HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n")
            .expect("write");
        let err = read_request(&mut server, Duration::from_secs(2)).expect_err("too large");
        assert_eq!(err, HttpError::TooLarge);
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn rejects_garbage_request_lines() {
        let (mut server, mut client) = pair();
        client.write_all(b"NONSENSE\r\n\r\n").expect("write");
        let err = read_request(&mut server, Duration::from_secs(2)).expect_err("malformed");
        assert!(matches!(err, HttpError::Malformed(_)));
    }

    #[test]
    fn response_round_trips_with_retry_after() {
        let (mut server, mut client) = pair();
        let resp = Response::error(429, "backpressure", "queue full").with_retry_after(2);
        write_response(&mut server, &resp).expect("write");
        drop(server);
        let mut text = String::new();
        client.read_to_string(&mut text).expect("read");
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.contains("\"error\":\"backpressure\""));
    }
}
