//! Plugging a user-defined acquisition source into Slice Tuner.
//!
//! ```sh
//! cargo run --release --example custom_source
//! ```
//!
//! The paper abstracts acquisition behind a per-slice cost function and the
//! ability to obtain fresh examples (Section 2.1). This example implements
//! [`AcquisitionSource`] for a "vendor catalog": a source with tiered
//! per-slice pricing and a finite stock per slice, then shows Slice Tuner
//! degrading gracefully when a slice runs out mid-run (callers are only
//! charged for delivered examples).

use slice_tuner::{AcquisitionSource, SliceTuner, Strategy, TSchedule, TunerConfig};
use st_data::{families, seeded_rng, DatasetFamily, Example, SliceId, SlicedDataset};
use st_models::ModelSpec;

/// A data vendor with per-slice prices and finite stock.
struct VendorCatalog {
    family: DatasetFamily,
    prices: Vec<f64>,
    stock: Vec<usize>,
    rng: rand::rngs::StdRng,
}

impl VendorCatalog {
    fn new(family: DatasetFamily, prices: Vec<f64>, stock: Vec<usize>, seed: u64) -> Self {
        assert_eq!(prices.len(), family.num_slices());
        assert_eq!(stock.len(), family.num_slices());
        VendorCatalog {
            family,
            prices,
            stock,
            rng: seeded_rng(seed),
        }
    }
}

impl AcquisitionSource for VendorCatalog {
    fn cost(&self, slice: SliceId) -> f64 {
        self.prices[slice.index()]
    }

    fn acquire(&mut self, slice: SliceId, n: usize) -> Vec<Example> {
        // Deliver only what is left in stock; the engine pays per example.
        let available = self.stock[slice.index()];
        let deliver = n.min(available);
        self.stock[slice.index()] -= deliver;
        self.family.sample_slice(slice, deliver, &mut self.rng)
    }

    fn name(&self) -> &'static str {
        "vendor-catalog"
    }
}

fn main() {
    let family = families::census();
    let n = family.num_slices();

    // Slice 2's records are pricey and nearly sold out.
    let prices = vec![1.0, 1.0, 2.5, 1.2];
    let stock = vec![10_000, 10_000, 60, 10_000];
    let mut vendor = VendorCatalog::new(family.clone(), prices.clone(), stock.clone(), 7);

    // IMPORTANT: the working dataset must carry the vendor's costs so the
    // optimizer prices slices correctly.
    let mut dataset = SlicedDataset::generate(&family, &[80; 4], 300, 7);
    for (i, cost) in prices.iter().enumerate() {
        dataset.slices[i].cost = *cost;
    }

    let config = TunerConfig::new(ModelSpec::softmax()).with_seed(7);
    let mut tuner = SliceTuner::new(dataset, &mut vendor, config);
    let budget = 800.0;
    let result = tuner.run(Strategy::Iterative(TSchedule::moderate()), budget);

    println!("vendor catalog with prices {prices:?} and stock {stock:?}\n");
    println!(
        "{:<14} {:>8} {:>10} {:>12}",
        "slice", "price", "acquired", "stock left"
    );
    for i in 0..n {
        println!(
            "{:<14} {:>8.1} {:>10} {:>12}",
            family.slice_names()[i],
            prices[i],
            result.acquired[i],
            vendor.stock[i],
        );
    }
    println!(
        "\nbudget {budget}, spent {:.1} (under-delivery is never charged)",
        result.spent
    );
    println!(
        "loss    {:.4} -> {:.4}",
        result.original.overall_loss, result.report.overall_loss
    );
    println!(
        "avg EER {:.4} -> {:.4}",
        result.original.avg_eer, result.report.avg_eer
    );
    assert!(result.spent <= budget + 1e-9);
}
