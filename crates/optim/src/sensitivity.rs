//! Sensitivity analysis of the acquisition optimum.
//!
//! Practitioners running Slice Tuner face the question "is my budget in the
//! right ballpark?" before committing crowdsourcing money. This module
//! differentiates the solved program with respect to the budget:
//!
//! - the **marginal value of budget** (the equality constraint's dual
//!   variable ν): predicted objective improvement per extra unit of budget;
//! - **allocation sensitivities** `∂d_i/∂B`: where the next unit of budget
//!   would go.
//!
//! Both fall out of the KKT stationarity conditions for free once the
//! program is solved, and are validated against finite differences in tests.

use crate::barrier::{solve_barrier, BarrierOptions};
use crate::problem::AcquisitionProblem;

/// Sensitivity report at the optimum for a given budget.
#[derive(Debug, Clone)]
pub struct SensitivityReport {
    /// The optimal allocation at the probed budget.
    pub allocation: Vec<f64>,
    /// Marginal objective change per unit budget (≤ 0: more budget can only
    /// help). This is `−ν`, the negative dual of the budget constraint.
    pub marginal_value: f64,
    /// `∂d_i/∂B` — how the next budget unit would be split across slices
    /// (costs-weighted entries sum to ≈ 1).
    pub allocation_gradient: Vec<f64>,
}

/// Finite-difference step used for the budget probe, relative to `B`.
const REL_STEP: f64 = 1e-3;

/// Solves the program at `B` and `B(1 + ε)` and differentiates.
///
/// Uses the interior-point solver, whose solutions are smooth in `B` (the
/// projected-subgradient path is noisier under tiny budget perturbations).
///
/// # Panics
/// Panics when the problem's budget is non-positive (there is no meaningful
/// sensitivity at `B = 0`).
pub fn budget_sensitivity(p: &AcquisitionProblem, opts: &BarrierOptions) -> SensitivityReport {
    assert!(p.budget > 0.0, "sensitivity needs a positive budget");
    let d0 = solve_barrier(p, opts);
    let h = p.budget * REL_STEP;

    let mut bumped = p.clone();
    bumped.budget = p.budget + h;
    let d1 = solve_barrier(&bumped, opts);

    let f0 = p.objective(&d0);
    // Evaluate the bumped optimum under the same objective: `objective` only
    // depends on curves/sizes/λ, so this is well-defined.
    let f1 = p.objective(&d1);

    let allocation_gradient: Vec<f64> = d0.iter().zip(&d1).map(|(a, b)| (b - a) / h).collect();
    SensitivityReport {
        allocation: d0,
        marginal_value: (f1 - f0) / h,
        allocation_gradient,
    }
}

/// Sweeps budgets and reports the objective at each optimum — the data
/// behind "how much budget do I actually need" plots (Figure 10's x-axis).
///
/// # Panics
/// Panics when `budgets` is empty.
pub fn budget_curve(
    p: &AcquisitionProblem,
    budgets: &[f64],
    opts: &BarrierOptions,
) -> Vec<(f64, f64)> {
    assert!(!budgets.is_empty(), "need at least one budget");
    budgets
        .iter()
        .map(|&b| {
            let mut q = p.clone();
            q.budget = b;
            let d = solve_barrier(&q, opts);
            (b, p.objective(&d))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_curve::PowerLaw;

    fn problem() -> AcquisitionProblem {
        AcquisitionProblem::new(
            vec![
                PowerLaw::new(5.0, 0.5),
                PowerLaw::new(3.0, 0.2),
                PowerLaw::new(4.0, 0.35),
            ],
            vec![100.0, 200.0, 120.0],
            vec![1.0, 1.3, 0.9],
            400.0,
            1.0,
        )
    }

    #[test]
    fn marginal_value_is_negative() {
        let rep = budget_sensitivity(&problem(), &BarrierOptions::default());
        assert!(
            rep.marginal_value < 0.0,
            "extra budget must lower the objective"
        );
    }

    #[test]
    fn allocation_gradient_spends_the_extra_budget() {
        let p = problem();
        let rep = budget_sensitivity(&p, &BarrierOptions::default());
        let spent: f64 = rep
            .allocation_gradient
            .iter()
            .zip(&p.costs)
            .map(|(g, c)| g * c)
            .sum();
        assert!(
            (spent - 1.0).abs() < 0.05,
            "cost-weighted gradient sums to {spent}"
        );
    }

    #[test]
    fn marginal_value_matches_objective_difference() {
        // Direct check at a coarser step: f(B + ΔB) − f(B) ≈ marginal · ΔB.
        let p = problem();
        let rep = budget_sensitivity(&p, &BarrierOptions::default());
        let mut big = p.clone();
        big.budget = p.budget * 1.1;
        let d_big = solve_barrier(&big, &BarrierOptions::default());
        let actual = p.objective(&d_big) - p.objective(&rep.allocation);
        let predicted = rep.marginal_value * (big.budget - p.budget);
        // The objective is convex decreasing in B, so the linear prediction
        // overestimates the improvement; both must be negative and same
        // order of magnitude.
        assert!(actual < 0.0 && predicted < 0.0);
        assert!(
            predicted <= actual * 0.5,
            "predicted {predicted}, actual {actual}"
        );
        assert!(
            predicted >= actual * 3.0,
            "predicted {predicted}, actual {actual}"
        );
    }

    #[test]
    fn diminishing_returns_across_budgets() {
        let p = problem();
        let curve = budget_curve(
            &p,
            &[100.0, 200.0, 400.0, 800.0, 1600.0],
            &BarrierOptions::default(),
        );
        // Objective decreases with budget...
        for w in curve.windows(2) {
            assert!(w[1].1 < w[0].1, "{curve:?}");
        }
        // ...and the *per-unit* improvement shrinks (convexity in B).
        let rates: Vec<f64> = curve
            .windows(2)
            .map(|w| (w[0].1 - w[1].1) / (w[1].0 - w[0].0))
            .collect();
        for r in rates.windows(2) {
            assert!(r[1] < r[0], "per-unit returns should diminish: {rates:?}");
        }
    }

    #[test]
    #[should_panic(expected = "positive budget")]
    fn rejects_zero_budget() {
        let mut p = problem();
        p.budget = 0.0;
        let _ = budget_sensitivity(&p, &BarrierOptions::default());
    }
}
