//! Integration: checkpoint/resume across acquisition rounds.
//!
//! The fault-tolerance contract for long tuning runs: killing an iterative
//! run after round `k` and resuming from its checkpoint must produce
//! **bit-identical** results to the uninterrupted run — under the
//! sequential runner and under the parallel executor alike. The kill is
//! simulated with `TunerConfig::halt_after_rounds` (the loop stops after
//! the round's checkpoint hits disk, exactly what a crash right after the
//! write leaves behind); resume replays the recorded acquisitions against
//! a fresh source, which re-consumes the identical RNG stream.

use slice_tuner::{
    run_trials, run_trials_parallel, AggregateResult, PoolSource, SliceTuner, Strategy, TSchedule,
    TunerConfig,
};
use st_curve::EstimationMode;
use st_data::{families, SlicedDataset};
use st_models::ModelSpec;

fn quick_config() -> TunerConfig {
    let mut cfg = TunerConfig::new(ModelSpec::softmax());
    cfg.train.epochs = 8;
    cfg.fractions = vec![0.4, 0.7, 1.0];
    cfg.repeats = 1;
    cfg.threads = 1;
    cfg.max_iterations = 3;
    cfg
}

/// A fresh path under the system temp dir; removes stale files from
/// previous runs of this test (per-trial suffixed files included).
fn checkpoint_path(tag: &str) -> String {
    let dir = std::env::temp_dir().join("st_checkpoint_tests");
    std::fs::create_dir_all(&dir).expect("create checkpoint dir");
    let base = dir.join(format!("{tag}.json"));
    for t in 0..8 {
        std::fs::remove_file(format!("{}.trial{t}", base.display())).ok();
    }
    std::fs::remove_file(&base).ok();
    base.display().to_string()
}

fn assert_bit_identical(a: &AggregateResult, b: &AggregateResult) {
    assert!(
        a.bits_identical_to(b),
        "aggregates diverged:\n{a:?}\nvs\n{b:?}"
    );
}

// Deliberately imbalanced initial sizes: the cell must run ≥2 acquisition
// rounds, or killing it after round 1 proves nothing.
const SIZES: [usize; 4] = [80, 20, 60, 25];
const BUDGET: f64 = 400.0;

fn run_cell(cfg: &TunerConfig, trials: usize, jobs: Option<usize>) -> AggregateResult {
    let fam = families::census();
    let strategy = Strategy::Iterative(TSchedule::moderate());
    match jobs {
        None => run_trials(&fam, &SIZES, 60, BUDGET, strategy, cfg, trials),
        Some(j) => run_trials_parallel(&fam, &SIZES, 60, BUDGET, strategy, cfg, trials, j),
    }
}

#[test]
fn kill_at_round_one_then_resume_is_bit_identical_sequential() {
    let path = checkpoint_path("seq");
    let clean = run_cell(&quick_config(), 2, None);
    // The cell must actually run multiple rounds, or the kill is vacuous.
    assert!(
        clean.trials.iter().all(|t| t.iterations >= 2),
        "test cell too small: {:?}",
        clean
            .trials
            .iter()
            .map(|t| t.iterations)
            .collect::<Vec<_>>()
    );

    let halted_cfg = quick_config()
        .with_checkpoint(&path)
        .with_halt_after_rounds(1);
    let halted = run_cell(&halted_cfg, 2, None);
    assert!(
        halted.trials.iter().all(|t| t.iterations == 1),
        "the crash simulation must stop after round 1"
    );

    let resumed_cfg = quick_config().with_checkpoint(&path).with_resume();
    let resumed = run_cell(&resumed_cfg, 2, None);
    assert_bit_identical(&clean, &resumed);
}

#[test]
fn kill_at_round_one_then_resume_is_bit_identical_jobs_four() {
    let path = checkpoint_path("par");
    let clean = run_cell(&quick_config(), 2, Some(4));

    let halted_cfg = quick_config()
        .with_checkpoint(&path)
        .with_halt_after_rounds(1);
    let _ = run_cell(&halted_cfg, 2, Some(4));

    let resumed_cfg = quick_config().with_checkpoint(&path).with_resume();
    let resumed = run_cell(&resumed_cfg, 2, Some(4));
    assert_bit_identical(&clean, &resumed);

    // Cross-runner: the resumed parallel aggregate equals the sequential
    // clean run too (resume composes with the executor's determinism).
    let seq_clean = run_cell(&quick_config(), 2, None);
    assert_bit_identical(&seq_clean, &resumed);
}

/// Incremental mode carries cross-round estimator state (previous
/// estimates + dirty flags); the checkpoint snapshots it, so resume must
/// stay bit-identical there as well — under the exhaustive schedule,
/// where dirty-slice skipping actually happens.
#[test]
fn incremental_exhaustive_resume_is_bit_identical() {
    let inc_config = || {
        quick_config()
            .with_incremental()
            .with_mode(EstimationMode::Exhaustive)
    };
    let path = checkpoint_path("inc");
    let clean = run_cell(&inc_config(), 1, None);

    let halted_cfg = inc_config()
        .with_checkpoint(&path)
        .with_halt_after_rounds(1);
    let _ = run_cell(&halted_cfg, 1, None);

    let resumed_cfg = inc_config().with_checkpoint(&path).with_resume();
    let resumed = run_cell(&resumed_cfg, 1, None);
    assert_bit_identical(&clean, &resumed);
}

/// Resume with no checkpoint on disk is simply a fresh run — the flag is
/// safe to leave on in wrapper scripts.
#[test]
fn resume_without_a_file_is_a_fresh_run() {
    let path = checkpoint_path("fresh");
    let clean = run_cell(&quick_config(), 1, None);
    let resumed_cfg = quick_config().with_checkpoint(&path).with_resume();
    let resumed = run_cell(&resumed_cfg, 1, None);
    assert_bit_identical(&clean, &resumed);
}

/// A checkpoint written by a different run (another seed) must be refused
/// with a typed error, not silently absorbed into the wrong run.
#[test]
fn foreign_checkpoints_are_refused_with_a_typed_error() {
    let path = checkpoint_path("foreign");
    let fam = families::census();

    // Write a checkpoint under seed 42 (halt immediately after pre-pass).
    let ds = SlicedDataset::generate(&fam, &SIZES, 60, 42);
    let mut pool = PoolSource::new(fam.clone(), 42);
    let cfg = quick_config()
        .with_seed(42)
        .with_checkpoint(&path)
        .with_halt_after_rounds(0);
    let mut tuner = SliceTuner::new(ds, &mut pool, cfg);
    tuner
        .try_run(Strategy::Iterative(TSchedule::moderate()), BUDGET)
        .expect("writing the checkpoint must succeed");

    // Resume it under seed 7: refused.
    let ds = SlicedDataset::generate(&fam, &SIZES, 60, 7);
    let mut pool = PoolSource::new(fam.clone(), 7);
    let cfg = quick_config()
        .with_seed(7)
        .with_checkpoint(&path)
        .with_resume();
    let mut tuner = SliceTuner::new(ds, &mut pool, cfg);
    let err = tuner
        .try_run(Strategy::Iterative(TSchedule::moderate()), BUDGET)
        .expect_err("foreign checkpoint must be refused");
    let msg = err.to_string();
    assert!(
        matches!(err, slice_tuner::Error::Checkpoint(_)),
        "want a Checkpoint error, got: {msg}"
    );
    assert!(msg.contains("seed"), "diagnostic names the field: {msg}");
}
