//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// An inclusive size window for generated collections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let span = (self.hi - self.lo) as u64 + 1;
        self.lo + (rng.next_u64() % span) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }

    /// Halving-shrink: first try shorter vectors (half the surplus over
    /// the minimum length, then one element less), then simplify one
    /// element at a time using the element strategy's most aggressive
    /// candidate.
    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        let len = value.len();
        if len > self.size.lo {
            let half = self.size.lo + (len - self.size.lo) / 2;
            if half < len {
                out.push(value[..half].to_vec());
            }
            if len - 1 != half {
                out.push(value[..len - 1].to_vec());
            }
        }
        for (i, v) in value.iter().enumerate() {
            for simpler in self.element.shrink(v) {
                let mut candidate = value.clone();
                candidate[i] = simpler;
                out.push(candidate);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_honor_all_three_forms() {
        let mut rng = TestRng::new(7);
        for _ in 0..200 {
            assert_eq!(vec(0.0f64..1.0, 4usize).generate(&mut rng).len(), 4);
            let a = vec(0u32..9, 1..5).generate(&mut rng).len();
            assert!((1..5).contains(&a));
            let b = vec(0u32..9, 2..=3).generate(&mut rng).len();
            assert!((2..=3).contains(&b));
        }
    }

    #[test]
    fn elements_come_from_element_strategy() {
        let mut rng = TestRng::new(8);
        let v = vec(5i32..=5, 100usize).generate(&mut rng);
        assert!(v.iter().all(|&x| x == 5));
    }

    #[test]
    fn shrink_respects_minimum_length() {
        let s = vec(0u32..10, 2..=8);
        let candidates = s.shrink(&std::vec::Vec::from([7, 7, 7, 7, 7, 7]));
        assert!(candidates.iter().all(|c| c.len() >= 2));
        // Halving the surplus over the minimum: 6 -> 4, then 6 -> 5.
        assert!(candidates.contains(&std::vec::Vec::from([7, 7, 7, 7])));
        assert!(candidates.contains(&std::vec::Vec::from([7, 7, 7, 7, 7])));
        // Element-wise simplification keeps the length.
        assert!(candidates.iter().any(|c| c.len() == 6 && c.contains(&0)));
        // Fixed-size vectors only shrink elementwise.
        let fixed = vec(0u32..10, 3usize);
        assert!(fixed
            .shrink(&std::vec::Vec::from([1, 2, 3]))
            .iter()
            .all(|c| c.len() == 3));
    }
}
