//! Selective acquisition with overlapping slices (the paper's future work).
//!
//! Section 8: "In the future, we would like to ... support overlapping
//! slices." The paper's program assumes slices partition the data, so one
//! acquired example belongs to exactly one slice. With overlap (e.g.
//! `region = Europe` and `gender = Female` as two slices), an example can
//! belong to several.
//!
//! The generalization: partition the example space into disjoint **atoms**
//! (the nonempty intersection cells, e.g. `Europe ∧ Female`). Acquisition
//! is decided per atom — that is what a data source can actually deliver —
//! and a 0/1 membership matrix `M` maps atom counts to slice increments:
//! acquiring `d_j` examples of atom `j` grows slice `i` by `M[i][j]·d_j`.
//! The objective becomes
//!
//! ```text
//! min  Σ_i b_i (|s_i| + (M·d)_i)^(-a_i)
//!    + λ Σ_i max(0, b_i (|s_i| + (M·d)_i)^(-a_i) / A − 1)
//! s.t. Σ_j C_j · d_j = B,   d ≥ 0
//! ```
//!
//! which is still convex: each term is a convex decreasing function
//! composed with the linear map `d ↦ |s_i| + (M·d)_i`. The partition case
//! is recovered when `M` is the identity, and tests assert the solver then
//! matches [`solve_projected`](crate::solve_projected) exactly.

use crate::problem::AcquisitionProblem;
use crate::projection::project_weighted_simplex;
use crate::solver::SolverOptions;
use st_curve::PowerLaw;

/// The overlapping-slices acquisition program.
#[derive(Debug, Clone)]
pub struct OverlapProblem {
    /// Fitted learning curves, one per slice.
    pub curves: Vec<PowerLaw>,
    /// Current slice sizes `|s_i|`.
    pub slice_sizes: Vec<f64>,
    /// Membership matrix: `membership[i][j]` is true when atom `j`'s
    /// examples belong to slice `i`.
    pub membership: Vec<Vec<bool>>,
    /// Per-example acquisition cost of each atom.
    pub atom_costs: Vec<f64>,
    /// Total budget `B`.
    pub budget: f64,
    /// Fairness weight `λ ≥ 0`.
    pub lambda: f64,
}

impl OverlapProblem {
    /// Builds a problem, validating shapes.
    ///
    /// # Panics
    /// Panics on empty inputs, shape mismatches, non-positive costs,
    /// negative sizes/budget/lambda, or an atom belonging to no slice.
    pub fn new(
        curves: Vec<PowerLaw>,
        slice_sizes: Vec<f64>,
        membership: Vec<Vec<bool>>,
        atom_costs: Vec<f64>,
        budget: f64,
        lambda: f64,
    ) -> Self {
        let n = curves.len();
        let m = atom_costs.len();
        assert!(n > 0, "need at least one slice");
        assert!(m > 0, "need at least one atom");
        assert_eq!(slice_sizes.len(), n, "slice_sizes length mismatch");
        assert_eq!(
            membership.len(),
            n,
            "membership rows must equal slice count"
        );
        assert!(
            membership.iter().all(|row| row.len() == m),
            "membership columns must equal atom count"
        );
        for j in 0..m {
            assert!(
                (0..n).any(|i| membership[i][j]),
                "atom {j} belongs to no slice — drop it from the problem"
            );
        }
        assert!(
            slice_sizes.iter().all(|&s| s >= 0.0),
            "sizes must be non-negative"
        );
        assert!(
            atom_costs.iter().all(|&c| c > 0.0),
            "costs must be positive"
        );
        assert!(budget >= 0.0, "budget must be non-negative");
        assert!(lambda >= 0.0, "lambda must be non-negative");
        OverlapProblem {
            curves,
            slice_sizes,
            membership,
            atom_costs,
            budget,
            lambda,
        }
    }

    /// Builds the partition (non-overlapping) special case from a standard
    /// [`AcquisitionProblem`]: one atom per slice, identity membership.
    pub fn from_partition(p: &AcquisitionProblem) -> Self {
        let n = p.n();
        let membership = (0..n).map(|i| (0..n).map(|j| i == j).collect()).collect();
        OverlapProblem::new(
            p.curves.clone(),
            p.sizes.clone(),
            membership,
            p.costs.clone(),
            p.budget,
            p.lambda,
        )
    }

    /// Number of slices.
    pub fn num_slices(&self) -> usize {
        self.curves.len()
    }

    /// Number of atoms.
    pub fn num_atoms(&self) -> usize {
        self.atom_costs.len()
    }

    /// Effective slice sizes after acquiring `d` per atom: `|s_i| + (M·d)_i`.
    pub fn slice_sizes_after(&self, d: &[f64]) -> Vec<f64> {
        assert_eq!(d.len(), self.num_atoms(), "allocation length mismatch");
        self.membership
            .iter()
            .zip(&self.slice_sizes)
            .map(|(row, &s)| {
                s + row
                    .iter()
                    .zip(d)
                    .filter(|(&m, _)| m)
                    .map(|(_, &x)| x)
                    .sum::<f64>()
            })
            .collect()
    }

    /// The constant `A`: average of the current per-slice losses.
    pub fn avg_loss(&self) -> f64 {
        let total: f64 = self
            .curves
            .iter()
            .zip(&self.slice_sizes)
            .map(|(c, &s)| c.eval(s))
            .sum();
        total / self.num_slices() as f64
    }

    /// Objective value at the per-atom allocation `d`.
    pub fn objective(&self, d: &[f64]) -> f64 {
        let a = self.avg_loss();
        let sizes = self.slice_sizes_after(d);
        let mut total = 0.0;
        for (c, &n) in self.curves.iter().zip(&sizes) {
            let l = c.eval(n);
            total += l + self.lambda * (l / a - 1.0).max(0.0);
        }
        total
    }

    /// A subgradient of the objective with respect to the atom counts:
    /// `g_j = Σ_{i : M[i][j]} ∂f_i/∂n_i` (chain rule through `M`).
    pub fn subgradient(&self, d: &[f64]) -> Vec<f64> {
        let a = self.avg_loss();
        let sizes = self.slice_sizes_after(d);
        // Per-slice derivative of loss + active penalty.
        let slice_grads: Vec<f64> = self
            .curves
            .iter()
            .zip(&sizes)
            .map(|(c, &n)| {
                let slope = c.slope(n);
                let active = c.eval(n) > a;
                slope * (1.0 + if active { self.lambda / a } else { 0.0 })
            })
            .collect();
        (0..self.num_atoms())
            .map(|j| {
                (0..self.num_slices())
                    .filter(|&i| self.membership[i][j])
                    .map(|i| slice_grads[i])
                    .sum()
            })
            .collect()
    }

    /// Total cost of a per-atom allocation.
    pub fn total_cost(&self, d: &[f64]) -> f64 {
        self.atom_costs.iter().zip(d).map(|(c, x)| c * x).sum()
    }

    /// Approximate feasibility check (non-negative, on the budget plane).
    pub fn is_feasible(&self, d: &[f64], tol: f64) -> bool {
        d.iter().all(|&x| x >= -tol)
            && (self.total_cost(d) - self.budget).abs() <= tol * self.budget.max(1.0)
    }
}

/// Solves the overlapping-slices program by projected subgradient descent
/// with best-iterate tracking (the same machinery as
/// [`solve_projected`](crate::solve_projected), in atom space).
pub fn solve_overlap(p: &OverlapProblem, opts: &SolverOptions) -> Vec<f64> {
    let m = p.num_atoms();
    if p.budget <= 0.0 {
        return vec![0.0; m];
    }
    // Feasible start: equal spend per atom.
    let cost_sum: f64 = p.atom_costs.iter().sum();
    let mut d: Vec<f64> = vec![p.budget / cost_sum; m];

    let mut best = d.clone();
    let mut best_obj = p.objective(&d);
    let mut last_check = best_obj;
    let base_step = p.budget / m as f64 * opts.step_scale;

    for t in 0..opts.max_iters {
        let g = p.subgradient(&d);
        let gnorm = g.iter().map(|x| x * x).sum::<f64>().sqrt();
        if gnorm < 1e-18 {
            break;
        }
        let step = base_step / ((t + 1) as f64).sqrt() / gnorm;
        let y: Vec<f64> = d.iter().zip(&g).map(|(x, gi)| x - step * gi).collect();
        d = project_weighted_simplex(&y, &p.atom_costs, p.budget);
        let obj = p.objective(&d);
        if obj < best_obj {
            best_obj = obj;
            best.copy_from_slice(&d);
        }
        if t % 50 == 49 {
            if (last_check - best_obj).abs() < opts.tol * (1.0 + best_obj.abs()) {
                break;
            }
            last_check = best_obj;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::solve_projected;

    fn curves3() -> Vec<PowerLaw> {
        vec![
            PowerLaw::new(5.0, 0.5),
            PowerLaw::new(3.0, 0.2),
            PowerLaw::new(4.0, 0.35),
        ]
    }

    /// Two overlapping slices (rows) over three atoms (columns):
    /// slice 0 = atoms {0, 1}, slice 1 = atoms {1, 2}; atom 1 is shared.
    fn overlap2x3(budget: f64, lambda: f64) -> OverlapProblem {
        OverlapProblem::new(
            vec![PowerLaw::new(5.0, 0.5), PowerLaw::new(5.0, 0.5)],
            vec![100.0, 100.0],
            vec![vec![true, true, false], vec![false, true, true]],
            vec![1.0, 1.0, 1.0],
            budget,
            lambda,
        )
    }

    #[test]
    fn identity_membership_reduces_to_the_partition_solver() {
        let p = AcquisitionProblem::new(
            curves3(),
            vec![100.0, 150.0, 80.0],
            vec![1.0, 1.2, 0.9],
            300.0,
            1.0,
        );
        let ov = OverlapProblem::from_partition(&p);
        let d_ov = solve_overlap(&ov, &SolverOptions::default());
        let d_part = solve_projected(&p, &SolverOptions::default());
        // Identical machinery on an identical landscape.
        let (fo, fp) = (p.objective(&d_ov), p.objective(&d_part));
        assert!((fo - fp).abs() < 1e-6 * fp.max(1.0), "{fo} vs {fp}");
    }

    #[test]
    fn solution_is_feasible_in_atom_space() {
        for lambda in [0.0, 1.0, 10.0] {
            let p = overlap2x3(200.0, lambda);
            let d = solve_overlap(&p, &SolverOptions::default());
            assert!(p.is_feasible(&d, 1e-6), "λ={lambda}: {d:?}");
        }
    }

    #[test]
    fn shared_atom_dominates_when_it_helps_both_slices() {
        // Atom 1 grows both slices per example bought; with identical
        // curves and costs it strictly dominates the exclusive atoms.
        let p = overlap2x3(200.0, 0.0);
        let d = solve_overlap(&p, &SolverOptions::default());
        assert!(
            d[1] > d[0] && d[1] > d[2],
            "shared atom should get the most budget: {d:?}"
        );
        // In fact essentially all of it.
        assert!(d[1] > 190.0, "{d:?}");
    }

    #[test]
    fn expensive_shared_atom_loses_to_cheap_exclusive_atoms() {
        // Same structure, but the shared atom costs 3x: two exclusive
        // examples (cost 2) now grow both slices for less than one shared
        // example (cost 3).
        let p = OverlapProblem::new(
            vec![PowerLaw::new(5.0, 0.5), PowerLaw::new(5.0, 0.5)],
            vec![100.0, 100.0],
            vec![vec![true, true, false], vec![false, true, true]],
            vec![1.0, 3.0, 1.0],
            200.0,
            0.0,
        );
        let d = solve_overlap(&p, &SolverOptions::default());
        assert!(
            d[0] + d[2] > d[1],
            "exclusive atoms should carry the budget: {d:?}"
        );
    }

    #[test]
    fn subgradient_matches_finite_differences() {
        let p = overlap2x3(300.0, 1.0);
        let d = vec![40.0, 90.0, 55.0];
        let g = p.subgradient(&d);
        let eps = 1e-5;
        for j in 0..3 {
            let mut dp = d.clone();
            dp[j] += eps;
            let mut dm = d.clone();
            dm[j] -= eps;
            let fd = (p.objective(&dp) - p.objective(&dm)) / (2.0 * eps);
            assert!((g[j] - fd).abs() < 1e-5, "atom {j}: {} vs {fd}", g[j]);
        }
    }

    #[test]
    fn sizes_after_apply_the_membership_map() {
        let p = overlap2x3(0.0, 0.0);
        let sizes = p.slice_sizes_after(&[10.0, 20.0, 30.0]);
        assert_eq!(sizes, vec![100.0 + 30.0, 100.0 + 50.0]);
    }

    #[test]
    fn unfairness_penalty_steers_toward_the_lossy_slice() {
        // Slice 0 has much higher loss; with λ large, its exclusive atom
        // must out-receive slice 1's exclusive atom.
        let p = OverlapProblem::new(
            vec![PowerLaw::new(8.0, 0.3), PowerLaw::new(1.0, 0.3)],
            vec![100.0, 100.0],
            vec![vec![true, true, false], vec![false, true, true]],
            vec![1.0, 1.0, 1.0],
            200.0,
            10.0,
        );
        let d = solve_overlap(&p, &SolverOptions::default());
        assert!(
            d[0] > d[2],
            "lossy slice's exclusive atom should win: {d:?}"
        );
    }

    #[test]
    fn zero_budget_returns_zero() {
        let p = overlap2x3(0.0, 1.0);
        assert_eq!(solve_overlap(&p, &SolverOptions::default()), vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "belongs to no slice")]
    fn orphan_atoms_are_rejected() {
        let _ = OverlapProblem::new(
            vec![PowerLaw::new(1.0, 0.1)],
            vec![10.0],
            vec![vec![true, false]],
            vec![1.0, 1.0],
            10.0,
            0.0,
        );
    }
}
