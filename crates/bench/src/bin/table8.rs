//! Table 8: amortized (Section 4.2) vs exhaustive (Section 4.1) learning
//! curve generation — wall-clock runtime and resulting loss/unfairness for
//! the Moderate method on Fashion-MNIST.

use slice_tuner::{Strategy, TSchedule};
use st_bench::{rule, run_cell, trials, FamilySetup};
use st_curve::EstimationMode;
use std::time::Instant;

fn main() {
    // Bench-wide kernel default: `sharded` on multi-core hosts, `simd`
    // on single-core containers; `ST_KERNEL` overrides (see docs/kernels.md).
    st_bench::init_bench_kernel();
    let setup = FamilySetup::fashion();
    let trials = trials().min(3);
    let cells: Vec<(usize, f64)> = if st_bench::quick() {
        vec![(100, 500.0)]
    } else {
        vec![(200, 2000.0), (300, 3000.0)]
    };

    println!("Table 8: exhaustive vs amortized curve generation (Moderate, {trials} trials)\n");
    println!(
        "{:<26} {:>8} {:>10} {:>10} {:>12} {:>10}",
        "Config", "Loss", "Avg EER", "Max EER", "Runtime (s)", "Trainings"
    );
    rule(80);
    for (init, budget) in cells {
        for (name, mode) in [
            ("Exhaustive", EstimationMode::Exhaustive),
            ("Slice Tuner", EstimationMode::Amortized),
        ] {
            let cfg = setup.config(8).with_mode(mode);
            let start = Instant::now();
            let agg = run_cell(
                &setup.family,
                &[init; 10],
                setup.validation,
                budget,
                Strategy::Iterative(TSchedule::moderate()),
                &cfg,
                trials,
            );
            let secs = start.elapsed().as_secs_f64() / trials as f64;
            println!(
                "{:<26} {:>8.3} {:>10.3} {:>10.3} {:>12.1} {:>10.0}",
                format!("init {init}, B={budget}: {name}"),
                agg.loss.mean,
                agg.avg_eer.mean,
                agg.max_eer.mean,
                secs,
                agg.trainings
            );
        }
        rule(80);
    }
    println!("(paper shape: amortized is ~|S|x cheaper in trainings and ~11-12x faster in");
    println!(" wall clock, with equal-or-better loss and unfairness)");
}
