//! Cross-strategy integration tests: the headline claims of the paper,
//! exercised end to end on small budgets.
//!
//! These are the "shape" assertions of the evaluation section: Slice Tuner
//! beats the baselines on unfairness, the pathological settings hurt the
//! intended baseline, and the iterative schedules behave as Table 3 shows.

use slice_tuner::{run_trials, Setting, Strategy, TSchedule, TunerConfig};
use st_data::families;
use st_models::ModelSpec;

fn cfg(spec: ModelSpec, seed: u64) -> TunerConfig {
    let mut cfg = TunerConfig::new(spec).with_seed(seed);
    cfg.train.epochs = 12;
    cfg.fractions = vec![0.3, 0.6, 1.0];
    cfg.repeats = 1;
    cfg.threads = 1;
    cfg.lambda = 0.5;
    cfg
}

#[test]
fn slice_tuner_beats_baselines_on_unfairness_census() {
    // Census: flat curves, cheap trainings — the quickest full comparison.
    // Unequal initial sizes give the optimizer something to exploit.
    let fam = families::census();
    let sizes = [30, 120, 60, 150];
    let budget = 400.0;
    let trials = 3;

    let uni = run_trials(
        &fam,
        &sizes,
        150,
        budget,
        Strategy::Uniform,
        &cfg(ModelSpec::softmax(), 1),
        trials,
    );
    let moderate = run_trials(
        &fam,
        &sizes,
        150,
        budget,
        Strategy::Iterative(TSchedule::moderate()),
        &cfg(ModelSpec::softmax(), 1),
        trials,
    );

    assert!(
        moderate.avg_eer.mean < uni.avg_eer.mean + 0.01,
        "Moderate avg EER {} must not lose to Uniform {}",
        moderate.avg_eer.mean,
        uni.avg_eer.mean
    );
    assert!(moderate.loss.mean < uni.loss.mean + 0.02);
}

#[test]
fn iterative_moderate_runs_multiple_iterations_with_unequal_sizes() {
    let fam = families::census();
    let agg = run_trials(
        &fam,
        &[20, 40, 160, 160],
        100,
        500.0,
        Strategy::Iterative(TSchedule::moderate()),
        &cfg(ModelSpec::softmax(), 3),
        2,
    );
    assert!(agg.iterations > 1.0, "iterations {}", agg.iterations);
}

#[test]
fn settings_construct_distinct_worlds() {
    let fam = families::census();
    let basic = Setting::Basic.initial_sizes(&fam, 100, 5);
    let bad_uni = Setting::BadForUniform.initial_sizes(&fam, 100, 5);
    let bad_wf = Setting::BadForWaterFilling.initial_sizes(&fam, 100, 5);
    assert_ne!(basic, bad_uni);
    assert_ne!(basic, bad_wf);
    assert_ne!(bad_uni, bad_wf);
    // All still produce runnable experiments.
    let agg = run_trials(
        &fam,
        &bad_wf,
        80,
        150.0,
        Strategy::WaterFilling,
        &cfg(ModelSpec::softmax(), 5),
        1,
    );
    assert!(agg.loss.mean.is_finite());
}

#[test]
fn water_filling_ignores_large_high_loss_slice() {
    // The Bad-for-Water-filling construction: the hardest slice is large, so
    // WF sends it (almost) nothing even though its loss is the worst.
    let fam = families::census();
    let sizes = Setting::BadForWaterFilling.initial_sizes(&fam, 100, 7);
    let largest = sizes.iter().enumerate().max_by_key(|(_, &s)| s).unwrap().0;
    let agg = run_trials(
        &fam,
        &sizes,
        80,
        200.0,
        Strategy::WaterFilling,
        &cfg(ModelSpec::softmax(), 7),
        1,
    );
    assert_eq!(
        agg.trials[0].acquired[largest], 0,
        "water filling must not feed the already-largest slice"
    );
}

#[test]
fn lambda_zero_vs_high_trades_fairness_for_loss() {
    let fam = families::census();
    let sizes = [40, 80, 120, 160];
    let run = |lambda: f64| {
        let mut c = cfg(ModelSpec::softmax(), 11);
        c.lambda = lambda;
        run_trials(
            &fam,
            &sizes,
            150,
            400.0,
            Strategy::Iterative(TSchedule::moderate()),
            &c,
            3,
        )
    };
    let fair = run(10.0);
    let lossy = run(0.0);
    // Higher λ must not produce *worse* fairness than λ = 0 (Table 4's
    // monotone trend, allowing SGD noise).
    assert!(
        fair.avg_eer.mean <= lossy.avg_eer.mean + 0.015,
        "λ=10 avg EER {} vs λ=0 {}",
        fair.avg_eer.mean,
        lossy.avg_eer.mean
    );
}
