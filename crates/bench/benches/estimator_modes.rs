//! Microbench: amortized (§4.2) vs exhaustive (§4.1) curve estimation cost
//! on the real training substrate — the ablation behind Table 8, at bench
//! scale (small dataset so Criterion can sample it).

use criterion::{criterion_group, criterion_main, Criterion};
use slice_tuner::{PoolSource, SliceTuner, TunerConfig};
use st_curve::EstimationMode;
use st_data::{families, SlicedDataset};
use st_models::ModelSpec;
use std::hint::black_box;

fn bench_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimator_modes");
    group.sample_size(10);

    let fam = families::census();
    for (name, mode) in [
        ("amortized", EstimationMode::Amortized),
        ("exhaustive", EstimationMode::Exhaustive),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let ds = SlicedDataset::generate(&fam, &[80; 4], 60, 3);
                let mut src = PoolSource::new(fam.clone(), 3);
                let mut cfg = TunerConfig::new(ModelSpec::softmax()).with_mode(mode);
                cfg.train.epochs = 6;
                cfg.fractions = vec![0.3, 0.6, 1.0];
                cfg.repeats = 1;
                cfg.threads = 1;
                let tuner = SliceTuner::new(ds, &mut src, cfg);
                black_box(tuner.estimate_curves(0))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
