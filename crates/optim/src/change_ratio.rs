//! Algorithm 1's `GetChangeRatio`: scale back an acquisition so the
//! imbalance-ratio change stays within the iteration limit `T`.

/// Imbalance ratio of a (possibly fractional) size vector.
fn imbalance(sizes: &[f64]) -> f64 {
    let max = sizes.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = sizes.iter().cloned().fold(f64::INFINITY, f64::min);
    if min <= 0.0 {
        if max <= 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        max / min
    }
}

/// Finds the scale `x ∈ [0, 1]` such that the imbalance ratio of
/// `sizes + x·add` equals `target_ratio` (Algorithm 1, step 13).
///
/// The caller invokes this when applying the full acquisition (`x = 1`)
/// would move the imbalance ratio past the limit; the returned `x` is the
/// largest scale that keeps the ratio at the target. Solved by bisection on
/// the deviation `|IR(x) − IR(0)|`, which starts below the limit at `x = 0`
/// and exceeds it at `x = 1`.
///
/// Returns `1.0` when even the full acquisition stays within the target
/// (nothing to scale back).
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn change_ratio(sizes: &[f64], add: &[f64], target_ratio: f64) -> f64 {
    assert_eq!(sizes.len(), add.len(), "length mismatch");
    assert!(!sizes.is_empty(), "need at least one slice");

    let ir0 = imbalance(sizes);
    let dev = |x: f64| -> f64 {
        let s: Vec<f64> = sizes.iter().zip(add).map(|(&s, &a)| s + x * a).collect();
        (imbalance(&s) - ir0).abs()
    };
    let limit = (target_ratio - ir0).abs();
    if dev(1.0) <= limit {
        return 1.0;
    }

    let (mut lo, mut hi) = (0.0_f64, 1.0_f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if dev(mid) <= limit {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_example() {
        // Section 5.2: sizes [10, 10], proposal [10, 40], T = 1 ⇒ target
        // ratio 2; solution x = 0.5 (sizes become [15, 30]).
        let x = change_ratio(&[10.0, 10.0], &[10.0, 40.0], 2.0);
        assert!((x - 0.5).abs() < 1e-6, "x = {x}");
        let after = [(10.0 + 10.0 * x), (10.0 + 40.0 * x)];
        assert!((imbalance(&after) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn full_scale_when_within_limit() {
        let x = change_ratio(&[100.0, 100.0], &[10.0, 20.0], 2.0);
        assert_eq!(x, 1.0);
    }

    #[test]
    fn decreasing_ratio_direction() {
        // Acquisition that *reduces* imbalance past the limit: sizes [10,40]
        // (IR 4), proposal adds 90 to the small slice only; at x=1 IR = 0.4→
        // ratio max/min = 100/40 = 2.5, change |2.5-4| = 1.5 > T=1 ⇒ target 3.
        let x = change_ratio(&[10.0, 40.0], &[90.0, 0.0], 3.0);
        let after = [10.0 + 90.0 * x, 40.0];
        assert!(
            (imbalance(&after) - 3.0).abs() < 1e-4,
            "x={x} after={after:?}"
        );
    }

    #[test]
    fn result_respects_limit() {
        let sizes = [50.0, 120.0, 200.0, 80.0];
        let add = [500.0, 0.0, 300.0, 20.0];
        let ir0 = imbalance(&sizes);
        let target = ir0 + 1.0;
        let x = change_ratio(&sizes, &add, target);
        let after: Vec<f64> = sizes.iter().zip(&add).map(|(&s, &a)| s + x * a).collect();
        assert!((imbalance(&after) - ir0).abs() <= 1.0 + 1e-6);
        assert!(x > 0.0 && x < 1.0);
    }

    #[test]
    fn zero_add_is_full_scale() {
        assert_eq!(change_ratio(&[10.0, 20.0], &[0.0, 0.0], 3.0), 1.0);
    }
}
