//! No-op `Serialize` / `Deserialize` derives for the offline serde
//! stand-in (see `vendor/README.md`).
//!
//! The workspace only *tags* types with these derives; nothing serializes
//! through serde at runtime (all I/O goes through `st_data::io`'s
//! hand-rolled CSV codec). Emitting no code keeps the derives valid on any
//! type while costing nothing.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
