//! Microbench: the overlapping-slices solver vs the partition solver.
//!
//! Overlap turns an `n`-slice problem into an `m`-atom problem with a
//! membership matrix in the subgradient's inner loop; this bench records
//! what that generality costs as atoms multiply (the combinatorial growth
//! the paper's reference [7] worries about).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use st_curve::PowerLaw;
use st_optim::{solve_overlap, solve_projected, AcquisitionProblem, OverlapProblem, SolverOptions};
use std::hint::black_box;

/// `n` overlapping slices over `n·(n−1)/2 + n` atoms: one exclusive atom
/// per slice plus one shared atom per slice pair.
fn pairwise_overlap(n: usize) -> OverlapProblem {
    let curves: Vec<PowerLaw> = (0..n)
        .map(|i| PowerLaw::new(1.5 + (i % 5) as f64 * 0.5, 0.1 + (i % 4) as f64 * 0.15))
        .collect();
    let sizes: Vec<f64> = (0..n).map(|i| 100.0 + (i * 37 % 250) as f64).collect();

    let mut atoms: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    for i in 0..n {
        for j in i + 1..n {
            atoms.push(vec![i, j]);
        }
    }
    let m = atoms.len();
    let membership: Vec<Vec<bool>> = (0..n)
        .map(|i| (0..m).map(|j| atoms[j].contains(&i)).collect())
        .collect();
    let costs: Vec<f64> = (0..m).map(|j| 1.0 + (j % 3) as f64 * 0.3).collect();
    OverlapProblem::new(curves, sizes, membership, costs, 200.0 * n as f64, 1.0)
}

fn bench_overlap(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlap_solver");
    group.sample_size(15);
    for n in [4usize, 8, 12] {
        let ov = pairwise_overlap(n);
        group.bench_with_input(
            BenchmarkId::new(
                "pairwise_overlap",
                format!("{n}slices_{}atoms", ov.num_atoms()),
            ),
            &ov,
            |b, ov| b.iter(|| solve_overlap(black_box(ov), &SolverOptions::default())),
        );
        // The partition solver on the same slice count, for scale.
        let p = AcquisitionProblem::new(
            ov.curves.clone(),
            ov.slice_sizes.clone(),
            vec![1.0; n],
            ov.budget,
            1.0,
        );
        group.bench_with_input(BenchmarkId::new("partition", n), &p, |b, p| {
            b.iter(|| solve_projected(black_box(p), &SolverOptions::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_overlap);
criterion_main!(benches);
