//! Integration: Slice Tuner under unreliable acquisition sources.
//!
//! Real acquisition under-delivers (short crowdsourcing rounds, exhausted
//! catalogs). The framework's contract is: never charge for undelivered
//! examples, never overspend the budget, and terminate. These tests wrap
//! the pool in [`FaultySource`] and assert the contract end to end.

use slice_tuner::{
    FaultConfig, FaultySource, PoolSource, SliceTuner, Strategy, TSchedule, TunerConfig,
};
use st_data::{families, SliceId, SlicedDataset};
use st_models::ModelSpec;

fn quick_config() -> TunerConfig {
    let mut cfg = TunerConfig::new(ModelSpec::softmax());
    cfg.train.epochs = 8;
    cfg.fractions = vec![0.4, 0.7, 1.0];
    cfg.repeats = 1;
    cfg.threads = 1;
    cfg
}

#[test]
fn under_delivery_is_not_charged() {
    let fam = families::census();
    let ds = SlicedDataset::generate(&fam, &[60; 4], 60, 1);
    let inner = PoolSource::new(fam, 2);
    let mut src = FaultySource::new(
        inner,
        FaultConfig {
            drop_rate: 0.4,
            seed: 3,
            ..Default::default()
        },
    );
    let mut tuner = SliceTuner::new(ds, &mut src, quick_config());
    let result = tuner.run(Strategy::Uniform, 200.0);

    // 40% of deliveries are dropped; spending must track deliveries exactly
    // (unit costs ⇒ spent == total acquired).
    let total_acquired: usize = result.acquired.iter().sum();
    assert!((result.spent - total_acquired as f64).abs() < 1e-9);
    assert!(
        result.spent < 200.0,
        "under-delivery must reduce spend: {}",
        result.spent
    );
    assert!(total_acquired > 50, "should still deliver a majority");
}

#[test]
fn exhausted_slice_does_not_hang_the_iterative_loop() {
    let fam = families::census();
    let ds = SlicedDataset::generate(&fam, &[30, 60, 60, 60], 60, 4);
    let inner = PoolSource::new(fam, 5);
    // Slice capacity 25: the smallest slice (which the optimizer will chase)
    // dries up almost immediately.
    let mut src = FaultySource::new(
        inner,
        FaultConfig {
            capacity_per_slice: 25,
            ..Default::default()
        },
    );
    let mut cfg = quick_config();
    cfg.max_iterations = 10;
    let mut tuner = SliceTuner::new(ds, &mut src, cfg);
    let result = tuner.run(Strategy::Iterative(TSchedule::moderate()), 500.0);

    for (i, &a) in result.acquired.iter().enumerate() {
        assert!(a <= 25, "slice {i} exceeded the capacity: {a}");
    }
    assert!(
        result.spent <= 100.0 + 1e-9,
        "4 slices x 25 cap bounds the spend"
    );
    assert!(result.iterations <= 10);
}

#[test]
fn totally_dead_source_terminates_with_zero_spend() {
    let fam = families::census();
    let ds = SlicedDataset::generate(&fam, &[50; 4], 60, 6);
    let inner = PoolSource::new(fam, 7);
    let mut src = FaultySource::new(
        inner,
        FaultConfig {
            capacity_per_slice: 0,
            ..Default::default()
        },
    );
    let mut tuner = SliceTuner::new(ds, &mut src, quick_config());
    let result = tuner.run(Strategy::Iterative(TSchedule::aggressive()), 300.0);
    assert_eq!(result.spent, 0.0);
    assert!(result.acquired.iter().all(|&a| a == 0));
    // The model is still trained and evaluated on the unchanged data.
    assert!(result.report.overall_loss.is_finite());
}

#[test]
fn faulty_source_composes_with_one_shot() {
    let fam = families::census();
    let ds = SlicedDataset::generate(&fam, &[50; 4], 60, 8);
    let inner = PoolSource::new(fam, 9);
    let mut src = FaultySource::new(
        inner,
        FaultConfig {
            drop_rate: 0.25,
            seed: 10,
            capacity_per_slice: 80,
        },
    );
    let mut tuner = SliceTuner::new(ds, &mut src, quick_config());
    let result = tuner.run(Strategy::OneShot, 400.0);
    assert!(result.spent <= 400.0 + 1e-9);
    for i in 0..4 {
        assert!(src.delivered(SliceId(i)) <= 80);
    }
}
