//! Microbenchmark of the pluggable compute-kernel layer: naive vs blocked
//! backends on the dense shapes the trainers actually hit, with a
//! bit-identity cross-check on every timed shape.
//!
//! ```text
//! cargo run --release -p st_bench --bin kernels
//! ```
//!
//! The acceptance bar this guards: the blocked kernel at ≥ 2x the naive
//! kernel on 256×256 dense matmul, with outputs bit-identical. Set
//! `ST_QUICK=1` for a faster sweep (fewer repetitions, same checks).

use st_bench::rule;
use st_linalg::{BlockedKernel, GemmBackend, NaiveKernel};
use std::time::Instant;

/// Deterministic dense test data (SplitMix64 stream).
fn fill(len: usize, seed: u64) -> Vec<f64> {
    let mut rng = st_linalg::SplitMix64::new(seed);
    (0..len).map(|_| rng.next_f64() * 2.0 - 1.0).collect()
}

fn assert_bits_identical(op: &str, a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "{op}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "{op}: outputs differ at {i}: {x} vs {y}"
        );
    }
}

/// Times `body` over `reps` runs and returns the best wall-clock seconds
/// (best-of is robust to scheduler noise on shared runners).
fn best_secs(reps: usize, mut body: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        body();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

struct OpReport {
    label: String,
    naive: f64,
    blocked: f64,
    flops: f64,
}

impl OpReport {
    fn speedup(&self) -> f64 {
        self.naive / self.blocked
    }
}

fn main() {
    let quick = std::env::var("ST_QUICK").is_ok();
    let reps = if quick { 3 } else { 7 };
    let mut reports: Vec<OpReport> = Vec::new();

    println!("Compute-kernel microbench — naive vs blocked (best of {reps})");
    println!(
        "active process kernel: {} (ST_KERNEL; both backends timed explicitly below)\n",
        st_linalg::kernel_kind().name()
    );
    println!(
        "{:<22} {:>11} {:>11} {:>9} {:>10}",
        "op", "naive", "blocked", "speedup", "blk GF/s"
    );
    rule(66);

    // Square GEMM sweep, the acceptance shape last.
    for &n in &[64usize, 128, 256] {
        let a = fill(n * n, 0xA0 + n as u64);
        let b = fill(n * n, 0xB0 + n as u64);
        let mut out_n = vec![0.0; n * n];
        let mut out_b = vec![0.0; n * n];
        let inner = if quick { 1 } else { 2 };
        let naive = best_secs(reps, || {
            for _ in 0..inner {
                out_n.fill(0.0);
                NaiveKernel.gemm(n, n, n, &a, &b, &mut out_n);
            }
        }) / inner as f64;
        let blocked = best_secs(reps, || {
            for _ in 0..inner {
                out_b.fill(0.0);
                BlockedKernel.gemm(n, n, n, &a, &b, &mut out_b);
            }
        }) / inner as f64;
        assert_bits_identical("gemm", &out_n, &out_b);
        reports.push(OpReport {
            label: format!("matmul {n}x{n}"),
            naive,
            blocked,
            flops: 2.0 * (n * n * n) as f64,
        });
    }

    // The training shapes: tall-skinny batch times small weight panels.
    {
        let (m, k, n) = (512usize, 784, 64);
        let a = fill(m * k, 1);
        let w = fill(k * n, 2);
        let mut out_n = vec![0.0; m * n];
        let mut out_b = vec![0.0; m * n];
        let naive = best_secs(reps, || {
            out_n.fill(0.0);
            NaiveKernel.gemm(m, k, n, &a, &w, &mut out_n);
        });
        let blocked = best_secs(reps, || {
            out_b.fill(0.0);
            BlockedKernel.gemm(m, k, n, &a, &w, &mut out_b);
        });
        assert_bits_identical("gemm batch", &out_n, &out_b);
        reports.push(OpReport {
            label: format!("batch fwd {m}x{k}x{n}"),
            naive,
            blocked,
            flops: 2.0 * (m * k * n) as f64,
        });

        // Gradient shape Xᵀ·dZ.
        let dz = fill(m * n, 3);
        let mut g_n = vec![0.0; k * n];
        let mut g_b = vec![0.0; k * n];
        let naive = best_secs(reps, || {
            g_n.fill(0.0);
            NaiveKernel.gemm_tn(m, k, n, &a, &dz, &mut g_n);
        });
        let blocked = best_secs(reps, || {
            g_b.fill(0.0);
            BlockedKernel.gemm_tn(m, k, n, &a, &dz, &mut g_b);
        });
        assert_bits_identical("gemm_tn", &g_n, &g_b);
        reports.push(OpReport {
            label: format!("grad tn {m}x{k}x{n}"),
            naive,
            blocked,
            flops: 2.0 * (m * k * n) as f64,
        });

        // Backprop shape dZ·Wᵀ.
        let mut d_n = vec![0.0; m * k];
        let mut d_b = vec![0.0; m * k];
        let naive = best_secs(reps, || {
            d_n.fill(0.0);
            NaiveKernel.gemm_nt(m, n, k, &dz, &w, &mut d_n);
        });
        let blocked = best_secs(reps, || {
            d_b.fill(0.0);
            BlockedKernel.gemm_nt(m, n, k, &dz, &w, &mut d_b);
        });
        assert_bits_identical("gemm_nt", &d_n, &d_b);
        reports.push(OpReport {
            label: format!("bwd nt {m}x{n}x{k}"),
            naive,
            blocked,
            flops: 2.0 * (m * k * n) as f64,
        });
    }

    // Transpose (the blocked swap vs the column-strided walk).
    {
        let (r, c) = (1024usize, 768);
        let a = fill(r * c, 4);
        let mut t_n = vec![0.0; r * c];
        let mut t_b = vec![0.0; r * c];
        let naive = best_secs(reps, || NaiveKernel.transpose(r, c, &a, &mut t_n));
        let blocked = best_secs(reps, || BlockedKernel.transpose(r, c, &a, &mut t_b));
        assert_bits_identical("transpose", &t_n, &t_b);
        reports.push(OpReport {
            label: format!("transpose {r}x{c}"),
            naive,
            blocked,
            flops: (r * c) as f64, // element moves, not FLOPs; GF/s column ≈ Gmoves/s
        });
    }

    let mut gate = None;
    for rep in &reports {
        let gfs = rep.flops / rep.blocked / 1e9;
        println!(
            "{:<22} {:>10.3}ms {:>10.3}ms {:>8.2}x {:>10.2}",
            rep.label,
            rep.naive * 1e3,
            rep.blocked * 1e3,
            rep.speedup(),
            gfs
        );
        if rep.label == "matmul 256x256" {
            gate = Some(rep.speedup());
        }
    }
    let gate = gate.expect("256x256 matmul must be timed");
    println!(
        "\nall outputs bit-identical across backends; 256x256 matmul speedup {gate:.2}x \
         (target >= 2x)"
    );
    assert!(
        gate >= 2.0,
        "blocked kernel must be >= 2x naive on 256x256 matmul, got {gate:.2}x"
    );
}
