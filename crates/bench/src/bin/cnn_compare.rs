//! Validation of the model substitution: do per-slice learning curves look
//! the same under a real CNN as under the MLP stand-in?
//!
//! The paper trains small CNNs; the main experiments here use MLPs because
//! Slice Tuner only consumes per-slice losses. This bin trains *both* model
//! families on the synthetic image dataset at growing subset sizes, fits
//! power laws per slice, and reports (a) the fit quality for each model and
//! (b) the Spearman rank correlation between the two models' per-slice
//! decay exponents. High rank agreement means the optimizer would make the
//! same relative acquisition decisions either way — which is exactly what
//! the substitution needs to preserve.

use st_bench::rule;
use st_curve::{fit_power_law, CurvePoint};
use st_data::{image_fashion, seeded_rng, Example, SliceId};
use st_linalg::spearman;
use st_models::{
    examples_to_matrix, labels_of, log_loss_of, log_loss_packed_scratch, train, ConvEvalScratch,
    ConvNet, ConvTrainConfig, EvalScratch, ImageShape, ModelSpec, TrainConfig,
};

const SHAPE: ImageShape = ImageShape {
    channels: 1,
    height: 8,
    width: 8,
};

fn main() {
    // Bench-wide kernel default: `sharded` on multi-core hosts, `simd`
    // on single-core containers; `ST_KERNEL` overrides (see docs/kernels.md).
    st_bench::init_bench_kernel();
    let fam = image_fashion();
    let sizes = if st_bench::quick() {
        vec![30usize, 60, 120]
    } else {
        vec![30, 60, 120, 240]
    };
    let val_per_slice = 120;
    let mut rng = seeded_rng(5);

    // Fixed validation sets per slice — gathered into dense matrices
    // **once** here instead of once per (size × repeat × slice) loop
    // iteration below (the bench-side analog of the estimator's cached
    // validation matrices).
    let validation: Vec<Vec<Example>> = (0..fam.num_slices())
        .map(|s| fam.sample_slice(SliceId(s), val_per_slice, &mut rng))
        .collect();
    let val_mats: Vec<(st_linalg::Matrix, Vec<usize>)> = validation
        .iter()
        .map(|v| (examples_to_matrix(v), labels_of(v)))
        .collect();

    // Measured (n, loss) points per slice for both model families.
    let mut mlp_points: Vec<Vec<CurvePoint>> = vec![Vec::new(); fam.num_slices()];
    let mut cnn_points: Vec<Vec<CurvePoint>> = vec![Vec::new(); fam.num_slices()];

    // Average the measured losses over several independent trainings per
    // size — the same variance-reduction move as the paper's "draw multiple
    // curves and average them" (Section 4.1).
    let repeats = if st_bench::quick() { 2 } else { 4 };
    // Pack each trained model once and reuse one scratch per family across
    // every (size × repeat × slice) evaluation — the snapshot-native eval
    // path the estimator uses (docs/kernels.md "Prepacked operands").
    let mut mlp_scratch = EvalScratch::default();
    let mut cnn_scratch = ConvEvalScratch::default();
    for &n in &sizes {
        let mut mlp_loss = vec![0.0; fam.num_slices()];
        let mut cnn_loss = vec![0.0; fam.num_slices()];
        for rep in 0..repeats {
            let mut train_set = Vec::new();
            for s in 0..fam.num_slices() {
                train_set.extend(fam.sample_slice(SliceId(s), n, &mut rng));
            }
            let x = examples_to_matrix(&train_set);
            let y = labels_of(&train_set);

            let mlp_cfg = TrainConfig {
                epochs: 15,
                seed: rep as u64,
                ..TrainConfig::default()
            };
            let mlp = train(
                &x,
                &y,
                SHAPE.flat_len(),
                fam.num_classes,
                &ModelSpec::basic(),
                &mlp_cfg,
            );
            let conv_cfg = ConvTrainConfig {
                epochs: 15,
                filters: 6,
                seed: rep as u64,
                ..Default::default()
            };
            let cnn = ConvNet::train(&x, &y, SHAPE, fam.num_classes, &conv_cfg);

            let mlp_packed = mlp.packed();
            let cnn_packed = cnn.packed();
            for (s, (vx, vy)) in val_mats.iter().enumerate() {
                mlp_loss[s] +=
                    log_loss_packed_scratch(&mlp_packed, vx, vy, &mut mlp_scratch) / repeats as f64;
                cnn_loss[s] +=
                    cnn_packed.log_loss_scratch(vx, vy, &mut cnn_scratch) / repeats as f64;
            }
        }
        for s in 0..fam.num_slices() {
            mlp_points[s].push(CurvePoint::size_weighted(n as f64, mlp_loss[s]));
            cnn_points[s].push(CurvePoint::size_weighted(n as f64, cnn_loss[s]));
        }
    }

    println!("CNN vs MLP learning-curve agreement (image-fashion, sizes {sizes:?})\n");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10}",
        "slice", "MLP b", "MLP a", "CNN b", "CNN a"
    );
    rule(56);
    let mut mlp_a = Vec::new();
    let mut cnn_a = Vec::new();
    for s in 0..fam.num_slices() {
        let m = fit_power_law(&mlp_points[s]);
        let c = fit_power_law(&cnn_points[s]);
        match (m, c) {
            (Ok(m), Ok(c)) => {
                println!(
                    "{:<12} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
                    fam.slices[s].name, m.b, m.a, c.b, c.a
                );
                mlp_a.push(m.a);
                cnn_a.push(c.a);
            }
            _ => println!("{:<12} (fit failed)", fam.slices[s].name),
        }
    }

    if mlp_a.len() >= 3 {
        let rho = spearman(&mlp_a, &cnn_a);
        println!("\nSpearman rank correlation of decay exponents: {rho:.3}");
        println!("(expected shape: ρ well above 0 — the MLP ranks slice cost-benefits like");
        println!(" the CNN does, so the optimizer's relative decisions are preserved)");
    }

    // Sanity anchor: the CNN really is the better image model.
    let mut rng2 = seeded_rng(9);
    let mut big = Vec::new();
    for s in 0..fam.num_slices() {
        big.extend(fam.sample_slice(SliceId(s), 200, &mut rng2));
    }
    let x = examples_to_matrix(&big);
    let y = labels_of(&big);
    let mlp = train(
        &x,
        &y,
        SHAPE.flat_len(),
        fam.num_classes,
        &ModelSpec::basic(),
        &TrainConfig {
            epochs: 15,
            ..TrainConfig::default()
        },
    );
    let cnn = ConvNet::train(
        &x,
        &y,
        SHAPE,
        fam.num_classes,
        &ConvTrainConfig {
            epochs: 15,
            filters: 6,
            ..Default::default()
        },
    );
    let vx = examples_to_matrix(&validation.concat());
    let vy: Vec<usize> = validation.concat().iter().map(|e| e.label).collect();
    println!(
        "\nAt 200/slice: CNN val loss {:.3} vs MLP val loss {:.3} ({} vs {} params)",
        log_loss_of(&cnn, &vx, &vy),
        log_loss_of(&mlp, &vx, &vy),
        cnn.num_params(),
        mlp.num_params()
    );
}
