//! The pluggable compute-kernel layer.
//!
//! Every dense product in the workspace — batch forward/backward passes in
//! `st-models`, the QR factorization behind the curve fitter, the trial
//! executor's evaluation matmuls — bottoms out in the handful of primitives
//! defined by [`GemmBackend`]. This module owns that trait, a transparent
//! reference implementation ([`NaiveKernel`]), and a cache-blocked,
//! register-tiled implementation ([`BlockedKernel`]) that is the default.
//!
//! **Bit-identical accumulation.** Slice Tuner's determinism story (trial
//! aggregates independent of `--jobs`, memoized curve estimations, pinned
//! proptest seeds) requires that swapping kernels never changes a single
//! output bit. Both kernels therefore accumulate every output element in
//! strictly ascending `k` order — blocking only re-tiles the *interleaving*
//! across output elements, never the per-element summation chain. The
//! proptest suite in `crates/linalg/tests/proptests.rs` asserts exact
//! (`to_bits`) equality across rectangular and degenerate shapes, and CI
//! runs the whole workspace under both `ST_KERNEL` values.
//!
//! **Selection.** The active kernel is process-global and fixed on first
//! use: `ST_KERNEL=naive|blocked|simd|sharded|fast` in the environment, or
//! [`set_kernel`] before any dense operation (the CLI's `--kernel` flag).
//! A new backend plugs in by implementing [`GemmBackend`] and extending
//! [`KernelKind`]; see `docs/kernels.md`.
//!
//! **Prepacked operands.** Workloads that multiply a stream of activation
//! batches against one fixed weight matrix pack that operand **once**
//! ([`PackedB`] / [`PackedA`]) and reuse it across
//! `gemm_prepacked`/`gemm_nt_prepacked`/`gemm_tn_prepacked` calls — the
//! packing backends skip their per-call pack, the naive reference falls
//! back to pack-on-call, and all results stay bit-identical. Handles are
//! snapshots: re-pack (buffer-reusing `*_into`) when the operand mutates.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Panel width of the packed GEMM micro-kernel: output columns are packed
/// four at a time, interleaved per `k` step, so the inner loop reads one
/// contiguous 4-lane group per multiply (vectorizes as broadcast·panel).
const PW: usize = 4;
/// Byte budget for the set of `B` panels kept hot between reuses; panels
/// are processed in blocks of roughly this size so they stay in L2 while
/// every row of `A` streams over them.
const PANEL_BLOCK_BYTES: usize = 128 * 1024;
/// Below this many `A` rows the packing pass costs more than it saves and
/// the register-tiled axpy path is used instead.
const PACK_MIN_ROWS: usize = 5;
/// `k`-tile of the axpy fallback path.
const KC: usize = 64;
/// `j`-tile of the axpy fallback path.
const NC: usize = 512;
/// Tile side of the blocked transpose swap.
const TB: usize = 32;
/// Panel width of the SIMD kernels: eight output columns per packed group
/// (one 512-bit vector, or two 256-bit vectors).
const SPW: usize = 8;
/// Widest output-column panel any backend packs (the SIMD kernels' [`SPW`]).
/// Batched-GEMM callers can consult this to predict whether a product's
/// columns will fill a panel: products narrower than this under-fill every
/// panel no matter how many are batched per call (batching preserves the
/// per-product packing to stay bit-identical), so batching them saves only
/// dispatch overhead — see `st_models::train_on_rows_batched`.
pub const MAX_PANEL_WIDTH: usize = SPW;
/// Panel-block byte budget of the SIMD kernels. Larger than
/// [`PANEL_BLOCK_BYTES`]: the explicit micro-kernels stream `A` once per
/// block, so on the bigger L2 of AVX-512-era cores a wider resident set
/// trades a little cache pressure for fewer passes over `A`.
const SIMD_PANEL_BLOCK_BYTES: usize = 512 * 1024;
/// Sample-row tile of the `gemm_tn` block loops (shared by the blocked and
/// SIMD backends).
const IB: usize = 128;
/// Scalar multiply count below which [`ShardedKernel`] runs on the calling
/// thread: spawning workers costs tens of microseconds, which only pays
/// off once the product itself is at least that expensive.
const SHARD_MIN_WORK: usize = 1 << 20;

/// Internal layout tag of a [`PackedB`] handle.
///
/// The layout decides which packed compute core consumes the handle; all
/// three cores keep every output element's ascending-`k` accumulation
/// chain, so the layout affects throughput only, never bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PackLayout {
    /// Verbatim row-major copy of `B` (`k×n`) — the pack-on-call fallback:
    /// every prepacked call runs the backend's ordinary `gemm` on it.
    Raw,
    /// [`PW`]-wide interleaved column panels ([`BlockedKernel`] layout).
    Panels4,
    /// [`SPW`]-wide interleaved column panels ([`SimdKernel`] layout,
    /// shared by the sharded backend's per-worker core).
    Panels8,
}

/// A `B` operand packed **once** into a backend's panel layout and reused
/// across many [`GemmBackend::gemm_prepacked`] /
/// [`GemmBackend::gemm_nt_prepacked`] calls.
///
/// The estimator hot path multiplies thousands of different activation
/// batches against the *same* weight matrix; packing per call re-shuffles
/// the identical `k×n` bytes every time. A `PackedB` hoists that shuffle
/// out of the loop.
///
/// **Lifetime / invalidation contract.** The handle is a snapshot: it
/// captures the operand's bytes at pack time and never observes later
/// mutations. Callers that mutate the source (an optimizer step updating
/// weights) must re-pack — [`GemmBackend::pack_b_into`] reuses the
/// handle's allocation, so re-packing is a copy, not an allocation.
///
/// **Bit identity.** Packing is pure data movement; the packed cores run
/// the same ascending-`k` per-element chains as the pack-on-call paths, so
/// a prepacked product is bit-identical to its pack-on-call twin on every
/// deterministic backend (proptested).
#[derive(Debug, Clone)]
pub struct PackedB {
    layout: PackLayout,
    k: usize,
    n: usize,
    data: Vec<f64>,
}

impl PackedB {
    /// Reduction dimension (`B` rows) the handle was packed for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output columns (`B` columns) the handle was packed for.
    pub fn n(&self) -> usize {
        self.n
    }
}

impl Default for PackedB {
    /// An empty handle (the natural seed for `pack_b_into` scratch slots).
    fn default() -> Self {
        PackedB {
            layout: PackLayout::Raw,
            k: 0,
            n: 0,
            data: Vec::new(),
        }
    }
}

/// An `A` operand of the [`GemmBackend::gemm_tn`] shape (`out += Aᵀ·B`)
/// with the transpose materialized **once** for reuse across
/// [`GemmBackend::gemm_tn_prepacked`] calls.
///
/// `gemm_tn` pays a block transpose of `A` on every call; when `A` is the
/// stable operand the handle hoists it. Same lifetime/invalidation and
/// bit-identity contract as [`PackedB`] (the stored `Aᵀ` is an exact
/// copy, and `gemm(k, m, n, Aᵀ, B)` reduces every output element in the
/// same ascending-sample order as `gemm_tn(m, k, n, A, B)`).
#[derive(Debug, Clone, Default)]
pub struct PackedA {
    m: usize,
    k: usize,
    /// `Aᵀ`, row-major `k×m`.
    data: Vec<f64>,
}

impl PackedA {
    /// Sample rows (`A` rows) the handle was packed for.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Output rows (`A` columns) the handle was packed for.
    pub fn k(&self) -> usize {
        self.k
    }
}

/// Adds `bias` to every row of the row-major `… × n` buffer `out`: the
/// shared unfused epilogue of the `Raw`-layout and `k == 0` fused-bias
/// paths, and the op-for-op twin of `Matrix::add_bias_rows`.
fn bias_rows(n: usize, bias: &[f64], out: &mut [f64]) {
    debug_assert_eq!(bias.len(), n);
    if n == 0 {
        return;
    }
    for row in out.chunks_exact_mut(n) {
        for (o, &b) in row.iter_mut().zip(bias) {
            *o += b;
        }
    }
}

/// Clamps every element of `out` at zero from below, exactly like the
/// model stack's separate ReLU pass (`if v < 0.0 { 0.0 }` — `-0.0` and
/// `NaN` pass through untouched): the shared unfused epilogue of the
/// `Raw`-layout and `k == 0` fused-ReLU paths. The vector micro-kernels
/// mirror this comparison with a `< 0` blend, **not** a `max`, so the
/// fused and separate passes agree on every bit pattern.
fn relu_rows(out: &mut [f64]) {
    for v in out {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// Pointer to `bias[j0]` for the vector micro-kernels, or null when no
/// bias epilogue is requested (the micro-kernels branch on null once per
/// tile, not per element).
///
/// # Safety
/// When `bias` is `Some`, `j0` must be in bounds.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
unsafe fn bias_ptr(bias: Option<&[f64]>, j0: usize) -> *const f64 {
    match bias {
        Some(b) => b.as_ptr().add(j0),
        None => std::ptr::null(),
    }
}

/// Selects product `i`'s operand from a batched operand list: a length-1
/// list is broadcast (the shared operand every product reuses), any other
/// length is indexed per product.
fn batched_operand<'a, T: ?Sized>(xs: &[&'a T], i: usize) -> &'a T {
    xs[if xs.len() == 1 { 0 } else { i }]
}

/// Validates a batched operand list length: `1` (shared/broadcast) or
/// exactly `batch` (per-product).
///
/// # Panics
/// Panics on any other length.
fn check_batched_len(what: &str, len: usize, batch: usize) {
    assert!(
        len == 1 || len == batch,
        "batched {what} operand count mismatch: {len} operands for batch {batch}"
    );
}

/// The dense compute primitives every backend must provide.
///
/// All matrices are row-major `f64` slices with explicit dimensions; `out`
/// buffers are **accumulated into** (callers zero them for a plain
/// product), except [`transpose`](Self::transpose) and
/// [`matvec`](Self::matvec) which assign.
///
/// Implementations must accumulate each output element in ascending-`k`
/// order so all backends produce bit-identical results (see module docs).
pub trait GemmBackend: Send + Sync {
    /// Human-readable backend name (for logs and the `kernels` bench).
    fn name(&self) -> &'static str;

    /// `out += a · b` with `a: m×k`, `b: k×n`, `out: m×n`.
    fn gemm(&self, m: usize, k: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]);

    /// `out += a · bᵀ` with `a: m×k`, `bt: n×k` (row-major), `out: m×n`.
    ///
    /// This is the backward-pass shape `dZ · Wᵀ` without materializing the
    /// transpose: row `j` of `bt` is exactly column `j` of `btᵀ`.
    fn gemm_nt(&self, m: usize, k: usize, n: usize, a: &[f64], bt: &[f64], out: &mut [f64]);

    /// `out += aᵀ · b` with `a: m×k`, `b: m×n`, `out: k×n`.
    ///
    /// This is the gradient shape `Xᵀ · dZ` without materializing the
    /// transpose; both operands are streamed row-major.
    fn gemm_tn(&self, m: usize, k: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]);

    /// `out[r] = dot(a.row(r), v)` with `a: rows×cols`.
    fn matvec(&self, rows: usize, cols: usize, a: &[f64], v: &[f64], out: &mut [f64]);

    /// `out[c] += Σ_r v[r] · a[r][c]` with `a: rows×cols` (i.e. `aᵀ · v`).
    fn matvec_t(&self, rows: usize, cols: usize, a: &[f64], v: &[f64], out: &mut [f64]);

    /// `out = aᵀ` with `a: rows×cols`, `out: cols×rows`.
    fn transpose(&self, rows: usize, cols: usize, a: &[f64], out: &mut [f64]);

    // ---- The prepacked operand API ------------------------------------
    //
    // Pack once, multiply many times. The default implementations are the
    // pack-on-call fallback: the handle stores the operand verbatim and
    // every prepacked call runs the backend's ordinary entry point — this
    // is what `naive` (and the reassociating `fast` backend) use. The
    // packing backends (`blocked`, `simd`, `sharded`) override the pack
    // methods to emit their native panel layouts; `gemm_prepacked` then
    // feeds the matching packed core directly, skipping the per-call pack.
    // Every combination is bit-identical to the pack-on-call twin.

    /// Packs the `B` operand of [`gemm`](Self::gemm) (`b: k×n` row-major)
    /// into `dst`, reusing `dst`'s allocation.
    fn pack_b_into(&self, k: usize, n: usize, b: &[f64], dst: &mut PackedB) {
        debug_assert_eq!(b.len(), k * n);
        dst.layout = PackLayout::Raw;
        dst.k = k;
        dst.n = n;
        dst.data.clear();
        dst.data.extend_from_slice(b);
    }

    /// Packs the `B` operand of [`gemm_nt`](Self::gemm_nt) given its
    /// transposed storage (`bt: n×k` row-major — row `j` of `bt` is column
    /// `j` of the logical `B`), reusing `dst`'s allocation. The transpose
    /// is resolved at pack time, so the handle feeds
    /// [`gemm_nt_prepacked`](Self::gemm_nt_prepacked) with no per-call
    /// transpose work.
    fn pack_b_t_into(&self, k: usize, n: usize, bt: &[f64], dst: &mut PackedB) {
        debug_assert_eq!(bt.len(), n * k);
        dst.layout = PackLayout::Raw;
        dst.k = k;
        dst.n = n;
        dst.data.clear();
        dst.data.resize(k * n, 0.0);
        if k > 0 && n > 0 {
            // An exact copy: `gemm` on the materialized `B` accumulates
            // the same ascending-`k` chains `gemm_nt` runs on `bt`.
            self.transpose(n, k, bt, &mut dst.data);
        }
    }

    /// Packs the `A` operand of [`gemm_tn`](Self::gemm_tn) (`a: m×k`
    /// row-major), materializing `Aᵀ` once, reusing `dst`'s allocation.
    fn pack_a_into(&self, m: usize, k: usize, a: &[f64], dst: &mut PackedA) {
        debug_assert_eq!(a.len(), m * k);
        dst.m = m;
        dst.k = k;
        dst.data.clear();
        dst.data.resize(m * k, 0.0);
        if m > 0 && k > 0 {
            self.transpose(m, k, a, &mut dst.data);
        }
    }

    /// Allocating convenience for [`pack_b_into`](Self::pack_b_into).
    fn pack_b(&self, k: usize, n: usize, b: &[f64]) -> PackedB {
        let mut dst = PackedB::default();
        self.pack_b_into(k, n, b, &mut dst);
        dst
    }

    /// Allocating convenience for [`pack_b_t_into`](Self::pack_b_t_into).
    fn pack_b_t(&self, k: usize, n: usize, bt: &[f64]) -> PackedB {
        let mut dst = PackedB::default();
        self.pack_b_t_into(k, n, bt, &mut dst);
        dst
    }

    /// Allocating convenience for [`pack_a_into`](Self::pack_a_into).
    fn pack_a(&self, m: usize, k: usize, a: &[f64]) -> PackedA {
        let mut dst = PackedA::default();
        self.pack_a_into(m, k, a, &mut dst);
        dst
    }

    /// [`gemm`](Self::gemm) with `B` prepacked: `out += a · B`.
    ///
    /// Bit-identical to `gemm(m, k, n, a, b, out)` for the `b` the handle
    /// was packed from, on every deterministic backend.
    ///
    /// # Panics
    /// Panics when the handle's shape does not match `(k, n)`.
    fn gemm_prepacked(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f64],
        pb: &PackedB,
        out: &mut [f64],
    ) {
        assert_eq!((pb.k, pb.n), (k, n), "prepacked B shape mismatch");
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(out.len(), m * n);
        if m == 0 || k == 0 || n == 0 {
            return;
        }
        match pb.layout {
            PackLayout::Raw => self.gemm(m, k, n, a, &pb.data, out),
            PackLayout::Panels4 => BlockedKernel::packed_gemm(m, k, n, a, &pb.data, out),
            PackLayout::Panels8 => SimdKernel::packed_gemm(m, k, n, a, &pb.data, out),
        }
    }

    /// [`gemm_nt`](Self::gemm_nt) with `Bᵀ` prepacked: `out += a · bᵀ`
    /// where the handle came from [`pack_b_t`](Self::pack_b_t). The
    /// transpose was resolved at pack time, so this is the same packed
    /// walk as [`gemm_prepacked`](Self::gemm_prepacked) — and bit-identical
    /// to the pack-on-call `gemm_nt`.
    ///
    /// # Panics
    /// Panics when the handle's shape does not match `(k, n)`.
    fn gemm_nt_prepacked(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f64],
        pb: &PackedB,
        out: &mut [f64],
    ) {
        self.gemm_prepacked(m, k, n, a, pb, out);
    }

    /// [`gemm_prepacked`](Self::gemm_prepacked) with a **fused bias
    /// epilogue**: `out += a · B`, then `bias[j]` added to every row's
    /// column `j` — the affine forward `X·W + b` in one pass.
    ///
    /// **Bit identity.** The packed cores accumulate each output element
    /// in a single ascending-`k` register chain and store it exactly once;
    /// the epilogue appends `+ bias[j]` to the end of that chain at the
    /// write-back, which is precisely where a separate
    /// `add_bias_rows` pass would add it. The fused product is therefore
    /// `to_bits`-identical to `gemm_prepacked` followed by the separate
    /// bias pass on every deterministic backend (proptested). Paths whose
    /// cores store elements more than once (the `Raw` pack-on-call
    /// fallback) run the product first and an unfused bias pass after —
    /// same contract, no fusion.
    ///
    /// # Panics
    /// Panics when the handle's shape does not match `(k, n)` or
    /// `bias.len() != n`.
    #[allow(clippy::too_many_arguments)]
    fn gemm_prepacked_bias(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f64],
        pb: &PackedB,
        bias: &[f64],
        out: &mut [f64],
    ) {
        assert_eq!((pb.k, pb.n), (k, n), "prepacked B shape mismatch");
        assert_eq!(bias.len(), n, "bias length mismatch");
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(out.len(), m * n);
        if m == 0 || n == 0 {
            return;
        }
        if k == 0 {
            // Zero-length reduction: the product contributes nothing, but
            // the separate pass would still broadcast the bias.
            bias_rows(n, bias, out);
            return;
        }
        match pb.layout {
            PackLayout::Raw => {
                self.gemm(m, k, n, a, &pb.data, out);
                bias_rows(n, bias, out);
            }
            PackLayout::Panels4 => BlockedKernel::packed_gemm_bias(m, k, n, a, &pb.data, bias, out),
            PackLayout::Panels8 => SimdKernel::packed_gemm_bias(m, k, n, a, &pb.data, bias, out),
        }
    }

    /// [`gemm_prepacked_bias`](Self::gemm_prepacked_bias) with a **fused
    /// ReLU epilogue** appended after the bias: `out = relu(out + a·B +
    /// bias)` — the hidden-layer forward `relu(X·W + b)` in one pass.
    ///
    /// **Bit identity.** The packed cores store each output element
    /// exactly once, so clamping at the write-back reads the same value a
    /// separate ReLU pass would read; the clamp itself is the separate
    /// pass's `< 0` comparison (see [`relu_rows`] — `-0.0` and `NaN`
    /// survive untouched, a vector `max` would flip them). The fused call
    /// is therefore `to_bits`-identical to `gemm_prepacked_bias` followed
    /// by `relu_rows` on every deterministic backend (proptested).
    /// Multi-store paths (`Raw` pack-on-call, `k == 0`) run the unfused
    /// passes in that exact order instead.
    ///
    /// # Panics
    /// Panics when the handle's shape does not match `(k, n)` or
    /// `bias.len() != n`.
    #[allow(clippy::too_many_arguments)]
    fn gemm_prepacked_bias_relu(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f64],
        pb: &PackedB,
        bias: &[f64],
        out: &mut [f64],
    ) {
        assert_eq!((pb.k, pb.n), (k, n), "prepacked B shape mismatch");
        assert_eq!(bias.len(), n, "bias length mismatch");
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(out.len(), m * n);
        if m == 0 || n == 0 {
            return;
        }
        if k == 0 {
            bias_rows(n, bias, out);
            relu_rows(out);
            return;
        }
        match pb.layout {
            PackLayout::Raw => {
                self.gemm(m, k, n, a, &pb.data, out);
                bias_rows(n, bias, out);
                relu_rows(out);
            }
            PackLayout::Panels4 => {
                BlockedKernel::packed_gemm_bias_relu(m, k, n, a, &pb.data, bias, out)
            }
            PackLayout::Panels8 => {
                SimdKernel::packed_gemm_bias_relu(m, k, n, a, &pb.data, bias, out)
            }
        }
    }

    // ---- The batched product API --------------------------------------
    //
    // One call, many independent same-shape products. Operand lists are
    // broadcast-or-per-product: a length-1 list is the shared operand
    // every product reuses (the shared-A / shared-B cases), a
    // length-`batch` list gives each product its own operand (the
    // block-diagonal case). `outs.len()` fixes the batch. Every product
    // keeps its own per-element ascending-`k` accumulation chains, so a
    // batched call is bit-identical to the `batch` sequential single
    // calls it replaces on every deterministic backend (proptested) —
    // batching only changes which product's elements interleave and how
    // often operands are re-packed, never any summation chain. The
    // default implementations are exactly that sequential loop (what
    // `naive`/`blocked`/`fast` use); the packing backends override the
    // hot entries to hoist shared packs out of the loop, reuse one panel
    // allocation across the whole batch, and (`sharded`) fan products —
    // not rows — over the worker pool.

    /// Batched [`gemm`](Self::gemm): `outs[i] += a⟨i⟩ · b⟨i⟩` for every
    /// product `i`, where `⟨i⟩` broadcasts length-1 operand lists.
    fn gemm_batched(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[&[f64]],
        b: &[&[f64]],
        outs: &mut [&mut [f64]],
    ) {
        let batch = outs.len();
        check_batched_len("A", a.len(), batch);
        check_batched_len("B", b.len(), batch);
        for (i, out) in outs.iter_mut().enumerate() {
            self.gemm(m, k, n, batched_operand(a, i), batched_operand(b, i), out);
        }
    }

    /// Batched [`gemm_nt`](Self::gemm_nt): `outs[i] += a⟨i⟩ · bt⟨i⟩ᵀ`.
    fn gemm_batched_nt(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[&[f64]],
        bt: &[&[f64]],
        outs: &mut [&mut [f64]],
    ) {
        let batch = outs.len();
        check_batched_len("A", a.len(), batch);
        check_batched_len("Bᵀ", bt.len(), batch);
        for (i, out) in outs.iter_mut().enumerate() {
            self.gemm_nt(m, k, n, batched_operand(a, i), batched_operand(bt, i), out);
        }
    }

    /// Batched [`gemm_tn`](Self::gemm_tn): `outs[i] += a⟨i⟩ᵀ · b⟨i⟩`
    /// (each `outs[i]` is `k×n`).
    fn gemm_batched_tn(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[&[f64]],
        b: &[&[f64]],
        outs: &mut [&mut [f64]],
    ) {
        let batch = outs.len();
        check_batched_len("A", a.len(), batch);
        check_batched_len("B", b.len(), batch);
        for (i, out) in outs.iter_mut().enumerate() {
            self.gemm_tn(m, k, n, batched_operand(a, i), batched_operand(b, i), out);
        }
    }

    /// Batched [`gemm_prepacked`](Self::gemm_prepacked): every product's
    /// `B` is already packed (the estimator packs each model's weights
    /// once per optimizer step), so the batch walk adds no pack work at
    /// all — it amortizes the per-call dispatch and keeps a shared `a`
    /// hot across products.
    fn gemm_batched_prepacked(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[&[f64]],
        pbs: &[&PackedB],
        outs: &mut [&mut [f64]],
    ) {
        let batch = outs.len();
        check_batched_len("A", a.len(), batch);
        check_batched_len("packed B", pbs.len(), batch);
        for (i, out) in outs.iter_mut().enumerate() {
            self.gemm_prepacked(m, k, n, batched_operand(a, i), batched_operand(pbs, i), out);
        }
    }

    /// Batched [`gemm_prepacked_bias`](Self::gemm_prepacked_bias).
    #[allow(clippy::too_many_arguments)]
    fn gemm_batched_prepacked_bias(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[&[f64]],
        pbs: &[&PackedB],
        biases: &[&[f64]],
        outs: &mut [&mut [f64]],
    ) {
        let batch = outs.len();
        check_batched_len("A", a.len(), batch);
        check_batched_len("packed B", pbs.len(), batch);
        check_batched_len("bias", biases.len(), batch);
        for (i, out) in outs.iter_mut().enumerate() {
            self.gemm_prepacked_bias(
                m,
                k,
                n,
                batched_operand(a, i),
                batched_operand(pbs, i),
                batched_operand(biases, i),
                out,
            );
        }
    }

    /// Batched [`gemm_prepacked_bias_relu`](Self::gemm_prepacked_bias_relu).
    #[allow(clippy::too_many_arguments)]
    fn gemm_batched_prepacked_bias_relu(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[&[f64]],
        pbs: &[&PackedB],
        biases: &[&[f64]],
        outs: &mut [&mut [f64]],
    ) {
        let batch = outs.len();
        check_batched_len("A", a.len(), batch);
        check_batched_len("packed B", pbs.len(), batch);
        check_batched_len("bias", biases.len(), batch);
        for (i, out) in outs.iter_mut().enumerate() {
            self.gemm_prepacked_bias_relu(
                m,
                k,
                n,
                batched_operand(a, i),
                batched_operand(pbs, i),
                batched_operand(biases, i),
                out,
            );
        }
    }

    /// [`gemm_tn`](Self::gemm_tn) with `Aᵀ` prepacked: `out += Aᵀ · b`.
    ///
    /// Runs `gemm(k, m, n, Aᵀ, b)` on the materialized transpose — every
    /// output element reduces over the samples in the same ascending order
    /// as `gemm_tn`, so bits match the pack-on-call twin.
    ///
    /// # Panics
    /// Panics when the handle's shape does not match `(m, k)`.
    fn gemm_tn_prepacked(
        &self,
        m: usize,
        k: usize,
        n: usize,
        pa: &PackedA,
        b: &[f64],
        out: &mut [f64],
    ) {
        assert_eq!((pa.m, pa.k), (m, k), "prepacked A shape mismatch");
        debug_assert_eq!(b.len(), m * n);
        debug_assert_eq!(out.len(), k * n);
        if m == 0 || k == 0 || n == 0 {
            return;
        }
        self.gemm(k, m, n, &pa.data, b, out);
    }
}

/// The straight-line reference backend: textbook `ikj` loops, no blocking,
/// no branches. Every other backend is tested against this one bit-for-bit.
#[derive(Debug, Default, Clone, Copy)]
pub struct NaiveKernel;

impl GemmBackend for NaiveKernel {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn gemm(&self, m: usize, k: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(out.len(), m * n);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (p, &aip) in a_row.iter().enumerate() {
                let b_row = &b[p * n..(p + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += aip * bv;
                }
            }
        }
    }

    fn gemm_nt(&self, m: usize, k: usize, n: usize, a: &[f64], bt: &[f64], out: &mut [f64]) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(bt.len(), n * k);
        debug_assert_eq!(out.len(), m * n);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (j, o) in out_row.iter_mut().enumerate() {
                let bt_row = &bt[j * k..(j + 1) * k];
                let mut acc = *o;
                for (&x, &y) in a_row.iter().zip(bt_row) {
                    acc += x * y;
                }
                *o = acc;
            }
        }
    }

    fn gemm_tn(&self, m: usize, k: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), m * n);
        debug_assert_eq!(out.len(), k * n);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let b_row = &b[i * n..(i + 1) * n];
            for (p, &aip) in a_row.iter().enumerate() {
                let out_row = &mut out[p * n..(p + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += aip * bv;
                }
            }
        }
    }

    fn matvec(&self, rows: usize, cols: usize, a: &[f64], v: &[f64], out: &mut [f64]) {
        debug_assert_eq!(a.len(), rows * cols);
        debug_assert_eq!(v.len(), cols);
        debug_assert_eq!(out.len(), rows);
        for (r, o) in out.iter_mut().enumerate() {
            let row = &a[r * cols..(r + 1) * cols];
            let mut acc = 0.0;
            for (&x, &y) in row.iter().zip(v) {
                acc += x * y;
            }
            *o = acc;
        }
    }

    fn matvec_t(&self, rows: usize, cols: usize, a: &[f64], v: &[f64], out: &mut [f64]) {
        debug_assert_eq!(a.len(), rows * cols);
        debug_assert_eq!(v.len(), rows);
        debug_assert_eq!(out.len(), cols);
        for (r, &vr) in v.iter().enumerate() {
            let row = &a[r * cols..(r + 1) * cols];
            for (o, &x) in out.iter_mut().zip(row) {
                *o += vr * x;
            }
        }
    }

    fn transpose(&self, rows: usize, cols: usize, a: &[f64], out: &mut [f64]) {
        debug_assert_eq!(a.len(), rows * cols);
        debug_assert_eq!(out.len(), rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                out[c * rows + r] = a[r * cols + c];
            }
        }
    }
}

/// The cache-blocked, register-tiled backend (the default).
///
/// `gemm` tiles the output columns ([`NC`]) and the reduction dimension
/// ([`KC`]) so a `KC × NC` panel of `B` stays cache-resident, processes
/// [`MR`] rows of `A` per panel pass, and micro-tiles the reduction four
/// `k` steps at a time — each output element is loaded into a register
/// once per 4 products instead of once per product. The adds inside a
/// micro-tile are issued in ascending `k` order, so results are
/// bit-identical to [`NaiveKernel`] (asserted by proptests).
#[derive(Debug, Default, Clone, Copy)]
pub struct BlockedKernel;

impl BlockedKernel {
    /// Packs `B` (`k×n` row-major) into `PW`-wide interleaved column
    /// panels: panel `q` holds columns `PW·q ..` with layout
    /// `panel[step·PW + lane] = b[step][PW·q + lane]`, so the micro-kernel
    /// reads one contiguous lane group per reduction step. The final panel
    /// may be narrower than `PW`; every panel occupies `k·PW` slots so
    /// panel addressing stays uniform.
    fn pack_panels(k: usize, n: usize, b: &[f64]) -> Vec<f64> {
        let mut packed = Vec::new();
        Self::pack_panels_into(k, n, b, &mut packed);
        packed
    }

    /// [`Self::pack_panels`] into a reusable buffer (cleared, zero-filled,
    /// allocation reused) — same fill order, identical contents.
    fn pack_panels_into(k: usize, n: usize, b: &[f64], packed: &mut Vec<f64>) {
        let panels = n.div_ceil(PW);
        packed.clear();
        packed.resize(panels * k * PW, 0.0);
        for q in 0..panels {
            let j0 = q * PW;
            let w = PW.min(n - j0);
            let dst = &mut packed[q * k * PW..(q + 1) * k * PW];
            for step in 0..k {
                let src = &b[step * n + j0..step * n + j0 + w];
                dst[step * PW..step * PW + w].copy_from_slice(src);
            }
        }
    }

    /// Packs `Bᵀ` given `bt` (`n×k` row-major, i.e. row `j` of `bt` is
    /// column `j` of the logical `B`). Same layout as [`Self::pack_panels`].
    fn pack_panels_t(k: usize, n: usize, bt: &[f64]) -> Vec<f64> {
        let mut packed = Vec::new();
        Self::pack_panels_t_into(k, n, bt, &mut packed);
        packed
    }

    /// [`Self::pack_panels_t`] into a reusable buffer.
    fn pack_panels_t_into(k: usize, n: usize, bt: &[f64], packed: &mut Vec<f64>) {
        let panels = n.div_ceil(PW);
        packed.clear();
        packed.resize(panels * k * PW, 0.0);
        for q in 0..panels {
            let j0 = q * PW;
            let w = PW.min(n - j0);
            let dst = &mut packed[q * k * PW..(q + 1) * k * PW];
            for lane in 0..w {
                let src = &bt[(j0 + lane) * k..(j0 + lane + 1) * k];
                for (step, &x) in src.iter().enumerate() {
                    dst[step * PW + lane] = x;
                }
            }
        }
    }

    /// The packed dot core: `out += a · B` with `B` pre-packed into
    /// panels. Every output element is accumulated in one register across
    /// the whole reduction (ascending `k`, bit-identical to naive) and
    /// written exactly once; panels are walked in cache-sized blocks so
    /// they stay in L2 while all rows of `A` stream over them.
    /// Dispatches the packed core to the widest vector unit the CPU
    /// offers. The AVX copy is the *same* Rust body compiled with 256-bit
    /// lanes enabled — per-lane accumulation chains are untouched (and
    /// Rust never contracts mul+add into FMA), so both copies are
    /// bit-identical; only throughput changes.
    fn packed_gemm(m: usize, k: usize, n: usize, a: &[f64], packed: &[f64], out: &mut [f64]) {
        Self::packed_gemm_opt(m, k, n, a, packed, None, false, out);
    }

    /// [`Self::packed_gemm`] with the fused bias epilogue: `bias[j]` is
    /// appended to each output element's accumulation chain at its single
    /// write-back — the bits of a separate `add_bias_rows` pass.
    fn packed_gemm_bias(
        m: usize,
        k: usize,
        n: usize,
        a: &[f64],
        packed: &[f64],
        bias: &[f64],
        out: &mut [f64],
    ) {
        Self::packed_gemm_opt(m, k, n, a, packed, Some(bias), false, out);
    }

    /// [`Self::packed_gemm_bias`] with the fused ReLU epilogue appended
    /// after the bias: each element is clamped at zero (`< 0` compare,
    /// [`relu_rows`] semantics) at its single write-back — the bits of a
    /// separate ReLU pass.
    fn packed_gemm_bias_relu(
        m: usize,
        k: usize,
        n: usize,
        a: &[f64],
        packed: &[f64],
        bias: &[f64],
        out: &mut [f64],
    ) {
        Self::packed_gemm_opt(m, k, n, a, packed, Some(bias), true, out);
    }

    #[allow(clippy::too_many_arguments)]
    fn packed_gemm_opt(
        m: usize,
        k: usize,
        n: usize,
        a: &[f64],
        packed: &[f64],
        bias: Option<&[f64]>,
        relu: bool,
        out: &mut [f64],
    ) {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx") {
            // SAFETY: the `avx` target feature was just detected at runtime.
            unsafe { Self::packed_gemm_avx(m, k, n, a, packed, bias, relu, out) };
            return;
        }
        Self::packed_gemm_body(m, k, n, a, packed, bias, relu, out);
    }

    /// AVX-compiled instantiation of [`Self::packed_gemm_body`].
    ///
    /// # Safety
    /// The caller must ensure the CPU supports AVX.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn packed_gemm_avx(
        m: usize,
        k: usize,
        n: usize,
        a: &[f64],
        packed: &[f64],
        bias: Option<&[f64]>,
        relu: bool,
        out: &mut [f64],
    ) {
        Self::packed_gemm_body(m, k, n, a, packed, bias, relu, out);
    }

    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn packed_gemm_body(
        m: usize,
        k: usize,
        n: usize,
        a: &[f64],
        packed: &[f64],
        bias: Option<&[f64]>,
        relu: bool,
        out: &mut [f64],
    ) {
        let panels = n.div_ceil(PW);
        let panel_len = k * PW;
        let block = (PANEL_BLOCK_BYTES / (panel_len * 8)).max(1);
        for qb in (0..panels).step_by(block) {
            let qe = (qb + block).min(panels);
            // Row pairs share every panel load (the 2×2 micro-tile keeps
            // 16 accumulator lanes live); odd trailing rows take the
            // single-row kernel.
            let mut i = 0;
            while i + 2 <= m {
                let (head, tail) = out.split_at_mut((i + 1) * n);
                Self::row_pair_block(
                    k,
                    n,
                    qb,
                    qe,
                    &a[i * k..(i + 1) * k],
                    &a[(i + 1) * k..(i + 2) * k],
                    packed,
                    bias,
                    relu,
                    &mut head[i * n..],
                    &mut tail[..n],
                );
                i += 2;
            }
            if i < m {
                Self::row_block(
                    k,
                    n,
                    qb,
                    qe,
                    &a[i * k..(i + 1) * k],
                    packed,
                    bias,
                    relu,
                    &mut out[i * n..(i + 1) * n],
                );
            }
        }
    }

    /// One output row over the panel block `qb..qe` (single-row kernel).
    /// When `bias` is set, `bias[j]` is added after the reduction, right
    /// before each lane's single store; `relu` then clamps the lane with
    /// the [`relu_rows`] comparison at the same write-back.
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn row_block(
        k: usize,
        n: usize,
        qb: usize,
        qe: usize,
        a_row: &[f64],
        packed: &[f64],
        bias: Option<&[f64]>,
        relu: bool,
        out_row: &mut [f64],
    ) {
        let panel_len = k * PW;
        let mut q = qb;
        // Pairs of full panels: two 4-lane accumulator groups (8
        // independent chains) hide add latency; lane loads are contiguous
        // `[f64; PW]` groups, so the loop maps onto SIMD broadcast·panel.
        while q + 2 <= qe && (q + 2) * PW <= n {
            let p0 = &packed[q * panel_len..(q + 1) * panel_len];
            let p1 = &packed[(q + 1) * panel_len..(q + 2) * panel_len];
            let o = &mut out_row[q * PW..(q + 2) * PW];
            let mut acc0: [f64; PW] = o[..PW].try_into().expect("lane group");
            let mut acc1: [f64; PW] = o[PW..].try_into().expect("lane group");
            for ((&x, g0), g1) in a_row
                .iter()
                .zip(p0.chunks_exact(PW))
                .zip(p1.chunks_exact(PW))
            {
                for l in 0..PW {
                    acc0[l] += x * g0[l];
                }
                for l in 0..PW {
                    acc1[l] += x * g1[l];
                }
            }
            if let Some(b) = bias {
                for l in 0..PW {
                    acc0[l] += b[q * PW + l];
                }
                for l in 0..PW {
                    acc1[l] += b[(q + 1) * PW + l];
                }
            }
            if relu {
                for l in 0..PW {
                    if acc0[l] < 0.0 {
                        acc0[l] = 0.0;
                    }
                    if acc1[l] < 0.0 {
                        acc1[l] = 0.0;
                    }
                }
            }
            o[..PW].copy_from_slice(&acc0);
            o[PW..].copy_from_slice(&acc1);
            q += 2;
        }
        // Lone full panel.
        if q < qe && (q + 1) * PW <= n {
            let p0 = &packed[q * panel_len..(q + 1) * panel_len];
            let o = &mut out_row[q * PW..(q + 1) * PW];
            let mut acc: [f64; PW] = o[..].try_into().expect("lane group");
            for (&x, g) in a_row.iter().zip(p0.chunks_exact(PW)) {
                for l in 0..PW {
                    acc[l] += x * g[l];
                }
            }
            if let Some(b) = bias {
                for l in 0..PW {
                    acc[l] += b[q * PW + l];
                }
            }
            if relu {
                for l in 0..PW {
                    if acc[l] < 0.0 {
                        acc[l] = 0.0;
                    }
                }
            }
            o.copy_from_slice(&acc);
            q += 1;
        }
        // Narrow tail panel (n % PW columns).
        if q < qe {
            let w = n - q * PW;
            let p0 = &packed[q * panel_len..(q + 1) * panel_len];
            let o = &mut out_row[q * PW..q * PW + w];
            for (lane, ov) in o.iter_mut().enumerate() {
                let mut acc = *ov;
                for (step, &x) in a_row.iter().enumerate() {
                    acc += x * p0[step * PW + lane];
                }
                if let Some(b) = bias {
                    acc += b[q * PW + lane];
                }
                if relu && acc < 0.0 {
                    acc = 0.0;
                }
                *ov = acc;
            }
        }
    }

    /// Two output rows over the panel block `qb..qe`: the 2-row × 2-panel
    /// micro-tile loads each packed lane group once for both rows,
    /// halving panel traffic. Leftover panels fall back to the single-row
    /// kernel per row.
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn row_pair_block(
        k: usize,
        n: usize,
        qb: usize,
        qe: usize,
        a0: &[f64],
        a1: &[f64],
        packed: &[f64],
        bias: Option<&[f64]>,
        relu: bool,
        out0: &mut [f64],
        out1: &mut [f64],
    ) {
        let panel_len = k * PW;
        let mut q = qb;
        while q + 2 <= qe && (q + 2) * PW <= n {
            let p0 = &packed[q * panel_len..(q + 1) * panel_len];
            let p1 = &packed[(q + 1) * panel_len..(q + 2) * panel_len];
            let o0 = &mut out0[q * PW..(q + 2) * PW];
            let o1 = &mut out1[q * PW..(q + 2) * PW];
            let mut r0p0: [f64; PW] = o0[..PW].try_into().expect("lane group");
            let mut r0p1: [f64; PW] = o0[PW..].try_into().expect("lane group");
            let mut r1p0: [f64; PW] = o1[..PW].try_into().expect("lane group");
            let mut r1p1: [f64; PW] = o1[PW..].try_into().expect("lane group");
            for (((&x0, &x1), g0), g1) in a0
                .iter()
                .zip(a1)
                .zip(p0.chunks_exact(PW))
                .zip(p1.chunks_exact(PW))
            {
                for l in 0..PW {
                    r0p0[l] += x0 * g0[l];
                }
                for l in 0..PW {
                    r0p1[l] += x0 * g1[l];
                }
                for l in 0..PW {
                    r1p0[l] += x1 * g0[l];
                }
                for l in 0..PW {
                    r1p1[l] += x1 * g1[l];
                }
            }
            if let Some(b) = bias {
                for l in 0..PW {
                    r0p0[l] += b[q * PW + l];
                }
                for l in 0..PW {
                    r0p1[l] += b[(q + 1) * PW + l];
                }
                for l in 0..PW {
                    r1p0[l] += b[q * PW + l];
                }
                for l in 0..PW {
                    r1p1[l] += b[(q + 1) * PW + l];
                }
            }
            if relu {
                for l in 0..PW {
                    if r0p0[l] < 0.0 {
                        r0p0[l] = 0.0;
                    }
                    if r0p1[l] < 0.0 {
                        r0p1[l] = 0.0;
                    }
                    if r1p0[l] < 0.0 {
                        r1p0[l] = 0.0;
                    }
                    if r1p1[l] < 0.0 {
                        r1p1[l] = 0.0;
                    }
                }
            }
            o0[..PW].copy_from_slice(&r0p0);
            o0[PW..].copy_from_slice(&r0p1);
            o1[..PW].copy_from_slice(&r1p0);
            o1[PW..].copy_from_slice(&r1p1);
            q += 2;
        }
        if q < qe {
            Self::row_block(k, n, q, qe, a0, packed, bias, relu, out0);
            Self::row_block(k, n, q, qe, a1, packed, bias, relu, out1);
        }
    }

    /// Register-tiled axpy fallback for row counts too small to amortize
    /// packing: tiles `k` ([`KC`]) and the output columns ([`NC`]), and
    /// micro-tiles the reduction four steps at a time so each output
    /// element is loaded once per 4 products. Adds stay in ascending `k`
    /// order.
    fn axpy_gemm(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
        for jc in (0..n).step_by(NC) {
            let w = NC.min(n - jc);
            for kc in (0..k).step_by(KC) {
                let kw = KC.min(k - kc);
                for i in 0..m {
                    let out_row = &mut out[i * n + jc..i * n + jc + w];
                    let a_seg = &a[i * k + kc..i * k + kc + kw];
                    let mut p = 0;
                    while p + 4 <= kw {
                        let (x0, x1, x2, x3) = (a_seg[p], a_seg[p + 1], a_seg[p + 2], a_seg[p + 3]);
                        let b0 = &b[(kc + p) * n + jc..(kc + p) * n + jc + w];
                        let b1 = &b[(kc + p + 1) * n + jc..(kc + p + 1) * n + jc + w];
                        let b2 = &b[(kc + p + 2) * n + jc..(kc + p + 2) * n + jc + w];
                        let b3 = &b[(kc + p + 3) * n + jc..(kc + p + 3) * n + jc + w];
                        for j in 0..w {
                            let mut o = out_row[j];
                            o += x0 * b0[j];
                            o += x1 * b1[j];
                            o += x2 * b2[j];
                            o += x3 * b3[j];
                            out_row[j] = o;
                        }
                        p += 4;
                    }
                    while p < kw {
                        let x = a_seg[p];
                        let brow = &b[(kc + p) * n + jc..(kc + p) * n + jc + w];
                        for (o, &bv) in out_row.iter_mut().zip(brow) {
                            *o += x * bv;
                        }
                        p += 1;
                    }
                }
            }
        }
    }
}

impl GemmBackend for BlockedKernel {
    fn name(&self) -> &'static str {
        "blocked"
    }

    fn gemm(&self, m: usize, k: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(out.len(), m * n);
        if m == 0 || k == 0 || n == 0 {
            return;
        }
        if m < PACK_MIN_ROWS {
            Self::axpy_gemm(m, k, n, a, b, out);
            return;
        }
        let packed = Self::pack_panels(k, n, b);
        Self::packed_gemm(m, k, n, a, &packed, out);
    }

    fn gemm_nt(&self, m: usize, k: usize, n: usize, a: &[f64], bt: &[f64], out: &mut [f64]) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(bt.len(), n * k);
        debug_assert_eq!(out.len(), m * n);
        if m == 0 || k == 0 || n == 0 {
            return;
        }
        // Rows of `bt` are already the columns of the logical B, so the
        // panel packer reads them contiguously — no transpose pass needed.
        let packed = Self::pack_panels_t(k, n, bt);
        Self::packed_gemm(m, k, n, a, &packed, out);
    }

    fn gemm_tn(&self, m: usize, k: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), m * n);
        debug_assert_eq!(out.len(), k * n);
        if m == 0 || k == 0 || n == 0 {
            return;
        }
        // Process the samples in row blocks: transpose each block of `a`
        // (short strides, TLB-friendly), pack the matching `b` rows, and
        // let the packed core *accumulate* the block's k×n contribution.
        // Blocks ascend in `i` and the core reduces each block in
        // ascending `i`, so bits match the naive rank-1 formulation.
        let mut at_block = vec![0.0; k * IB.min(m)];
        for ib in (0..m).step_by(IB) {
            let h = IB.min(m - ib);
            self.transpose(h, k, &a[ib * k..(ib + h) * k], &mut at_block[..k * h]);
            let packed = Self::pack_panels(h, n, &b[ib * n..(ib + h) * n]);
            Self::packed_gemm(k, h, n, &at_block[..k * h], &packed, out);
        }
    }

    fn matvec(&self, rows: usize, cols: usize, a: &[f64], v: &[f64], out: &mut [f64]) {
        debug_assert_eq!(a.len(), rows * cols);
        debug_assert_eq!(v.len(), cols);
        debug_assert_eq!(out.len(), rows);
        // Row pairs share the streamed v loads; per-row accumulation stays
        // ascending-k, so bits match the naive dot.
        let mut r = 0;
        while r + 2 <= rows {
            let row0 = &a[r * cols..(r + 1) * cols];
            let row1 = &a[(r + 1) * cols..(r + 2) * cols];
            let mut acc0 = 0.0;
            let mut acc1 = 0.0;
            for (p, &vv) in v.iter().enumerate() {
                acc0 += row0[p] * vv;
                acc1 += row1[p] * vv;
            }
            out[r] = acc0;
            out[r + 1] = acc1;
            r += 2;
        }
        if r < rows {
            let row = &a[r * cols..(r + 1) * cols];
            let mut acc = 0.0;
            for (&x, &y) in row.iter().zip(v) {
                acc += x * y;
            }
            out[r] = acc;
        }
    }

    fn matvec_t(&self, rows: usize, cols: usize, a: &[f64], v: &[f64], out: &mut [f64]) {
        debug_assert_eq!(a.len(), rows * cols);
        debug_assert_eq!(v.len(), rows);
        debug_assert_eq!(out.len(), cols);
        let mut r = 0;
        while r + 2 <= rows {
            let (v0, v1) = (v[r], v[r + 1]);
            let row0 = &a[r * cols..(r + 1) * cols];
            let row1 = &a[(r + 1) * cols..(r + 2) * cols];
            for (c, o) in out.iter_mut().enumerate() {
                let mut acc = *o;
                acc += v0 * row0[c];
                acc += v1 * row1[c];
                *o = acc;
            }
            r += 2;
        }
        if r < rows {
            let vr = v[r];
            let row = &a[r * cols..(r + 1) * cols];
            for (o, &x) in out.iter_mut().zip(row) {
                *o += vr * x;
            }
        }
    }

    fn pack_b_into(&self, k: usize, n: usize, b: &[f64], dst: &mut PackedB) {
        debug_assert_eq!(b.len(), k * n);
        dst.layout = PackLayout::Panels4;
        dst.k = k;
        dst.n = n;
        Self::pack_panels_into(k, n, b, &mut dst.data);
    }

    fn pack_b_t_into(&self, k: usize, n: usize, bt: &[f64], dst: &mut PackedB) {
        debug_assert_eq!(bt.len(), n * k);
        dst.layout = PackLayout::Panels4;
        dst.k = k;
        dst.n = n;
        Self::pack_panels_t_into(k, n, bt, &mut dst.data);
    }

    fn transpose(&self, rows: usize, cols: usize, a: &[f64], out: &mut [f64]) {
        debug_assert_eq!(a.len(), rows * cols);
        debug_assert_eq!(out.len(), rows * cols);
        // Blocked swap: both the strided reads and the strided writes stay
        // inside a TB×TB tile that fits L1, instead of walking a whole
        // column per output row.
        for rb in (0..rows).step_by(TB) {
            let rh = TB.min(rows - rb);
            for cb in (0..cols).step_by(TB) {
                let cw = TB.min(cols - cb);
                for r in rb..rb + rh {
                    let row = &a[r * cols + cb..r * cols + cb + cw];
                    for (dc, &x) in row.iter().enumerate() {
                        out[(cb + dc) * rows + r] = x;
                    }
                }
            }
        }
    }
}

/// Vector-width cap for the [`SimdKernel`] dispatch (`ST_SIMD_FORCE`):
/// `avx2` → 256, `scalar` → 0, anything else / unset → unlimited. Read
/// once; used by CI to exercise every instantiation on one host.
#[cfg(target_arch = "x86_64")]
fn simd_width_cap() -> u32 {
    static CAP: OnceLock<u32> = OnceLock::new();
    *CAP.get_or_init(|| match std::env::var("ST_SIMD_FORCE").as_deref() {
        Ok("avx2") => 256,
        Ok("scalar") => 0,
        Ok(other) => {
            // A silent typo here would let CI green-light a path it never
            // ran; warn like unknown ST_KERNEL values do, listing the
            // accepted values from the same source the docs use.
            eprintln!(
                "warning: unknown ST_SIMD_FORCE '{other}', using full width (valid values: {})",
                simd_force_names()
            );
            u32::MAX
        }
        Err(_) => u32::MAX,
    })
}

/// The explicit-SIMD backend: AVX2 intrinsics with an AVX-512 path where
/// the CPU offers one, selected at runtime.
///
/// The vector lanes map to **distinct output columns** — eight at a time,
/// packed like [`BlockedKernel`]'s panels but [`SPW`]-wide — and every
/// output element keeps its own ascending-`k` multiply/add chain (no FMA
/// contraction, no horizontal reductions). The scalar fallback mirrors the
/// lane arithmetic exactly, so `simd` is bit-identical to [`NaiveKernel`]
/// on every target; only throughput differs between the AVX2, AVX-512, and
/// scalar instantiations.
#[derive(Debug, Default, Clone, Copy)]
pub struct SimdKernel;

impl SimdKernel {
    /// Packs `B` (`k×n` row-major) into [`SPW`]-wide interleaved column
    /// panels: `panel[step·SPW + lane] = b[step][SPW·q + lane]`, the same
    /// layout as [`BlockedKernel::pack_panels`] at double the width so one
    /// reduction step feeds a full 512-bit vector (or two 256-bit ones).
    fn pack_panels8(k: usize, n: usize, b: &[f64]) -> Vec<f64> {
        let mut packed = Vec::new();
        Self::pack_panels8_into(k, n, b, &mut packed);
        packed
    }

    /// [`Self::pack_panels8`] into a reusable buffer (cleared,
    /// zero-filled, allocation reused) — same fill order, identical
    /// contents.
    fn pack_panels8_into(k: usize, n: usize, b: &[f64], packed: &mut Vec<f64>) {
        let panels = n.div_ceil(SPW);
        packed.clear();
        packed.resize(panels * k * SPW, 0.0);
        for q in 0..panels {
            let j0 = q * SPW;
            let w = SPW.min(n - j0);
            let dst = &mut packed[q * k * SPW..(q + 1) * k * SPW];
            if w == SPW {
                // Const-length group copies compile to straight vector
                // moves instead of per-step memcpy calls.
                for step in 0..k {
                    let src: &[f64; SPW] = b[step * n + j0..step * n + j0 + SPW]
                        .try_into()
                        .expect("group");
                    dst[step * SPW..(step + 1) * SPW].copy_from_slice(src);
                }
            } else {
                for step in 0..k {
                    let src = &b[step * n + j0..step * n + j0 + w];
                    dst[step * SPW..step * SPW + w].copy_from_slice(src);
                }
            }
        }
    }

    /// Packs `Bᵀ` given `bt` (`n×k` row-major); layout of
    /// [`Self::pack_panels8`].
    fn pack_panels8_t(k: usize, n: usize, bt: &[f64]) -> Vec<f64> {
        let mut packed = Vec::new();
        Self::pack_panels8_t_into(k, n, bt, &mut packed);
        packed
    }

    /// [`Self::pack_panels8_t`] into a reusable buffer.
    fn pack_panels8_t_into(k: usize, n: usize, bt: &[f64], packed: &mut Vec<f64>) {
        let panels = n.div_ceil(SPW);
        packed.clear();
        packed.resize(panels * k * SPW, 0.0);
        for q in 0..panels {
            let j0 = q * SPW;
            let w = SPW.min(n - j0);
            let dst = &mut packed[q * k * SPW..(q + 1) * k * SPW];
            for lane in 0..w {
                let src = &bt[(j0 + lane) * k..(j0 + lane + 1) * k];
                for (step, &x) in src.iter().enumerate() {
                    dst[step * SPW + lane] = x;
                }
            }
        }
    }

    /// `out += a · B` with `B` pre-packed into [`SPW`]-wide panels.
    /// Dispatches to the widest vector unit detected; all three
    /// instantiations accumulate each output element in ascending `k`
    /// order in one register chain, so their bits agree.
    ///
    /// `ST_SIMD_FORCE=avx2|scalar` caps the dispatch below the detected
    /// width (never above it) so the narrower instantiations can be
    /// exercised — and their bit-identity CI-tested — on a wider host.
    fn packed_gemm(m: usize, k: usize, n: usize, a: &[f64], packed: &[f64], out: &mut [f64]) {
        Self::packed_gemm_opt(m, k, n, a, packed, None, false, out);
    }

    /// [`Self::packed_gemm`] with the fused bias epilogue: `bias[j]` is
    /// appended to each output element's accumulation chain at its single
    /// write-back — the bits of a separate `add_bias_rows` pass.
    fn packed_gemm_bias(
        m: usize,
        k: usize,
        n: usize,
        a: &[f64],
        packed: &[f64],
        bias: &[f64],
        out: &mut [f64],
    ) {
        Self::packed_gemm_opt(m, k, n, a, packed, Some(bias), false, out);
    }

    /// [`Self::packed_gemm_bias`] with the fused ReLU epilogue appended
    /// after the bias: each element is clamped at zero with the
    /// [`relu_rows`] comparison (`< 0` blend, not a `max`) at its single
    /// write-back — the bits of a separate ReLU pass.
    fn packed_gemm_bias_relu(
        m: usize,
        k: usize,
        n: usize,
        a: &[f64],
        packed: &[f64],
        bias: &[f64],
        out: &mut [f64],
    ) {
        Self::packed_gemm_opt(m, k, n, a, packed, Some(bias), true, out);
    }

    #[allow(clippy::too_many_arguments)]
    fn packed_gemm_opt(
        m: usize,
        k: usize,
        n: usize,
        a: &[f64],
        packed: &[f64],
        bias: Option<&[f64]>,
        relu: bool,
        out: &mut [f64],
    ) {
        #[cfg(target_arch = "x86_64")]
        {
            let cap = simd_width_cap();
            if cap >= 512 && std::arch::is_x86_feature_detected!("avx512f") {
                // SAFETY: avx512f was just detected at runtime.
                unsafe { Self::packed_gemm_avx512(m, k, n, a, packed, bias, relu, out) };
                return;
            }
            if cap >= 256 && std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: avx2 was just detected at runtime.
                unsafe { Self::packed_gemm_avx2(m, k, n, a, packed, bias, relu, out) };
                return;
            }
        }
        Self::packed_gemm_scalar(m, k, n, a, packed, bias, relu, out);
    }

    /// Scalar mirror of the vector paths: same panel walk, same per-element
    /// ascending-`k` chains, lane loops written out by hand.
    #[allow(clippy::too_many_arguments)]
    fn packed_gemm_scalar(
        m: usize,
        k: usize,
        n: usize,
        a: &[f64],
        packed: &[f64],
        bias: Option<&[f64]>,
        relu: bool,
        out: &mut [f64],
    ) {
        let panels = n.div_ceil(SPW);
        let panel_len = k * SPW;
        let block = (SIMD_PANEL_BLOCK_BYTES / (panel_len * 8).max(1)).max(1);
        for qb in (0..panels).step_by(block) {
            let qe = (qb + block).min(panels);
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                for q in qb..qe {
                    let j0 = q * SPW;
                    let w = SPW.min(n - j0);
                    let panel = &packed[q * panel_len..(q + 1) * panel_len];
                    Self::panel_row_scalar(
                        w,
                        a_row,
                        panel,
                        bias.map(|b| &b[j0..j0 + w]),
                        relu,
                        &mut out[i * n + j0..i * n + j0 + w],
                    );
                }
            }
        }
    }

    /// One output row × one panel, scalar: the shared tail/fallback body.
    /// `w` live lanes, each accumulated across the whole reduction in
    /// ascending `k` order and stored once; `bias` (already sliced to this
    /// panel's columns) is appended just before the store, and `relu`
    /// clamps each lane with the [`relu_rows`] comparison right after.
    #[inline(always)]
    fn panel_row_scalar(
        w: usize,
        a_row: &[f64],
        panel: &[f64],
        bias: Option<&[f64]>,
        relu: bool,
        out_seg: &mut [f64],
    ) {
        let mut acc = [0.0; SPW];
        acc[..w].copy_from_slice(out_seg);
        for (p, &x) in a_row.iter().enumerate() {
            let g = &panel[p * SPW..p * SPW + SPW];
            for l in 0..w {
                acc[l] += x * g[l];
            }
        }
        if let Some(b) = bias {
            for l in 0..w {
                acc[l] += b[l];
            }
        }
        if relu {
            for l in 0..w {
                if acc[l] < 0.0 {
                    acc[l] = 0.0;
                }
            }
        }
        out_seg.copy_from_slice(&acc[..w]);
    }

    /// AVX2 instantiation: 4 rows × 8 columns per micro-tile (eight 256-bit
    /// accumulators), remainder rows one at a time, narrow tail panels via
    /// the scalar body.
    ///
    /// # Safety
    /// The caller must ensure the CPU supports AVX2.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn packed_gemm_avx2(
        m: usize,
        k: usize,
        n: usize,
        a: &[f64],
        packed: &[f64],
        bias: Option<&[f64]>,
        relu: bool,
        out: &mut [f64],
    ) {
        let panels = n.div_ceil(SPW);
        let panel_len = k * SPW;
        let block = (SIMD_PANEL_BLOCK_BYTES / (panel_len * 8).max(1)).max(1);
        for qb in (0..panels).step_by(block) {
            let qe = (qb + block).min(panels);
            let mut i = 0;
            while i + 4 <= m {
                for q in qb..qe {
                    let j0 = q * SPW;
                    let panel = &packed[q * panel_len..(q + 1) * panel_len];
                    if n - j0 >= SPW {
                        Self::mk4x8_avx2(
                            k,
                            a.as_ptr().add(i * k),
                            k,
                            panel.as_ptr(),
                            bias_ptr(bias, j0),
                            relu,
                            out.as_mut_ptr().add(i * n + j0),
                            n,
                        );
                    } else {
                        for r in i..i + 4 {
                            let w = n - j0;
                            Self::panel_row_scalar(
                                w,
                                &a[r * k..(r + 1) * k],
                                panel,
                                bias.map(|b| &b[j0..j0 + w]),
                                relu,
                                &mut out[r * n + j0..r * n + j0 + w],
                            );
                        }
                    }
                }
                i += 4;
            }
            while i < m {
                for q in qb..qe {
                    let j0 = q * SPW;
                    let panel = &packed[q * panel_len..(q + 1) * panel_len];
                    if n - j0 >= SPW {
                        Self::mk1x8_avx2(
                            k,
                            a.as_ptr().add(i * k),
                            panel.as_ptr(),
                            bias_ptr(bias, j0),
                            relu,
                            out.as_mut_ptr().add(i * n + j0),
                        );
                    } else {
                        let w = n - j0;
                        Self::panel_row_scalar(
                            w,
                            &a[i * k..(i + 1) * k],
                            panel,
                            bias.map(|b| &b[j0..j0 + w]),
                            relu,
                            &mut out[i * n + j0..i * n + j0 + w],
                        );
                    }
                }
                i += 1;
            }
        }
    }

    /// 4-row × 8-column AVX2 micro-kernel over one full panel: eight
    /// independent accumulator vectors (one per row × half-panel), each
    /// lane one output element, loads/stores exactly once.
    ///
    /// # Safety
    /// Requires AVX2; `a` must have 4 rows of stride `lda` and length `k`,
    /// `panel` `k×SPW` packed values, `out` 4 rows of stride `ldo` with 8
    /// valid columns, and `bias` either null or pointing at 8 valid bias
    /// values for this panel's columns.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn mk4x8_avx2(
        k: usize,
        a: *const f64,
        lda: usize,
        panel: *const f64,
        bias: *const f64,
        relu: bool,
        out: *mut f64,
        ldo: usize,
    ) {
        use std::arch::x86_64::*;
        let mut acc00 = _mm256_loadu_pd(out);
        let mut acc01 = _mm256_loadu_pd(out.add(4));
        let mut acc10 = _mm256_loadu_pd(out.add(ldo));
        let mut acc11 = _mm256_loadu_pd(out.add(ldo + 4));
        let mut acc20 = _mm256_loadu_pd(out.add(2 * ldo));
        let mut acc21 = _mm256_loadu_pd(out.add(2 * ldo + 4));
        let mut acc30 = _mm256_loadu_pd(out.add(3 * ldo));
        let mut acc31 = _mm256_loadu_pd(out.add(3 * ldo + 4));
        for p in 0..k {
            let b0 = _mm256_loadu_pd(panel.add(p * SPW));
            let b1 = _mm256_loadu_pd(panel.add(p * SPW + 4));
            let a0 = _mm256_set1_pd(*a.add(p));
            acc00 = _mm256_add_pd(acc00, _mm256_mul_pd(a0, b0));
            acc01 = _mm256_add_pd(acc01, _mm256_mul_pd(a0, b1));
            let a1 = _mm256_set1_pd(*a.add(lda + p));
            acc10 = _mm256_add_pd(acc10, _mm256_mul_pd(a1, b0));
            acc11 = _mm256_add_pd(acc11, _mm256_mul_pd(a1, b1));
            let a2 = _mm256_set1_pd(*a.add(2 * lda + p));
            acc20 = _mm256_add_pd(acc20, _mm256_mul_pd(a2, b0));
            acc21 = _mm256_add_pd(acc21, _mm256_mul_pd(a2, b1));
            let a3 = _mm256_set1_pd(*a.add(3 * lda + p));
            acc30 = _mm256_add_pd(acc30, _mm256_mul_pd(a3, b0));
            acc31 = _mm256_add_pd(acc31, _mm256_mul_pd(a3, b1));
        }
        if !bias.is_null() {
            // Fused epilogue: append the bias to the end of each lane's
            // accumulation chain — exactly where the separate pass adds it.
            let bv0 = _mm256_loadu_pd(bias);
            let bv1 = _mm256_loadu_pd(bias.add(4));
            acc00 = _mm256_add_pd(acc00, bv0);
            acc01 = _mm256_add_pd(acc01, bv1);
            acc10 = _mm256_add_pd(acc10, bv0);
            acc11 = _mm256_add_pd(acc11, bv1);
            acc20 = _mm256_add_pd(acc20, bv0);
            acc21 = _mm256_add_pd(acc21, bv1);
            acc30 = _mm256_add_pd(acc30, bv0);
            acc31 = _mm256_add_pd(acc31, bv1);
        }
        if relu {
            // Fused ReLU epilogue: a `< 0` blend against zero — the exact
            // comparison the scalar pass uses, so `-0.0`/`NaN` lanes keep
            // their bits (a `max` would not).
            let z = _mm256_setzero_pd();
            acc00 = _mm256_blendv_pd(acc00, z, _mm256_cmp_pd(acc00, z, _CMP_LT_OQ));
            acc01 = _mm256_blendv_pd(acc01, z, _mm256_cmp_pd(acc01, z, _CMP_LT_OQ));
            acc10 = _mm256_blendv_pd(acc10, z, _mm256_cmp_pd(acc10, z, _CMP_LT_OQ));
            acc11 = _mm256_blendv_pd(acc11, z, _mm256_cmp_pd(acc11, z, _CMP_LT_OQ));
            acc20 = _mm256_blendv_pd(acc20, z, _mm256_cmp_pd(acc20, z, _CMP_LT_OQ));
            acc21 = _mm256_blendv_pd(acc21, z, _mm256_cmp_pd(acc21, z, _CMP_LT_OQ));
            acc30 = _mm256_blendv_pd(acc30, z, _mm256_cmp_pd(acc30, z, _CMP_LT_OQ));
            acc31 = _mm256_blendv_pd(acc31, z, _mm256_cmp_pd(acc31, z, _CMP_LT_OQ));
        }
        _mm256_storeu_pd(out, acc00);
        _mm256_storeu_pd(out.add(4), acc01);
        _mm256_storeu_pd(out.add(ldo), acc10);
        _mm256_storeu_pd(out.add(ldo + 4), acc11);
        _mm256_storeu_pd(out.add(2 * ldo), acc20);
        _mm256_storeu_pd(out.add(2 * ldo + 4), acc21);
        _mm256_storeu_pd(out.add(3 * ldo), acc30);
        _mm256_storeu_pd(out.add(3 * ldo + 4), acc31);
    }

    /// Single-row AVX2 micro-kernel over one full panel.
    ///
    /// # Safety
    /// Requires AVX2; `a` length `k`, `panel` `k×SPW`, `out` 8 valid
    /// columns, `bias` null or 8 valid values for this panel's columns.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn mk1x8_avx2(
        k: usize,
        a: *const f64,
        panel: *const f64,
        bias: *const f64,
        relu: bool,
        out: *mut f64,
    ) {
        use std::arch::x86_64::*;
        let mut acc0 = _mm256_loadu_pd(out);
        let mut acc1 = _mm256_loadu_pd(out.add(4));
        for p in 0..k {
            let av = _mm256_set1_pd(*a.add(p));
            let b0 = _mm256_loadu_pd(panel.add(p * SPW));
            let b1 = _mm256_loadu_pd(panel.add(p * SPW + 4));
            acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(av, b0));
            acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(av, b1));
        }
        if !bias.is_null() {
            acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(bias));
            acc1 = _mm256_add_pd(acc1, _mm256_loadu_pd(bias.add(4)));
        }
        if relu {
            let z = _mm256_setzero_pd();
            acc0 = _mm256_blendv_pd(acc0, z, _mm256_cmp_pd(acc0, z, _CMP_LT_OQ));
            acc1 = _mm256_blendv_pd(acc1, z, _mm256_cmp_pd(acc1, z, _CMP_LT_OQ));
        }
        _mm256_storeu_pd(out, acc0);
        _mm256_storeu_pd(out.add(4), acc1);
    }

    /// AVX-512 instantiation: a full panel is exactly one 512-bit vector,
    /// so the main micro-tile is 8 rows × 3 panels (24 zmm accumulators),
    /// with pair/single tiles for edges and remainder rows one at a time.
    ///
    /// # Safety
    /// The caller must ensure the CPU supports AVX-512F.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn packed_gemm_avx512(
        m: usize,
        k: usize,
        n: usize,
        a: &[f64],
        packed: &[f64],
        bias: Option<&[f64]>,
        relu: bool,
        out: &mut [f64],
    ) {
        let panels = n.div_ceil(SPW);
        let panel_len = k * SPW;
        // Round the L2 block down to a multiple of three panels so a full
        // block decomposes into the main (8×24) tiles only; narrower
        // tiles amortize the `A` broadcasts over less arithmetic and are
        // kept for the edges.
        let block = {
            let fit = (SIMD_PANEL_BLOCK_BYTES / (panel_len * 8).max(1)).max(3);
            (fit / 3) * 3
        };
        for qb in (0..panels).step_by(block) {
            let qe = (qb + block).min(panels);
            let mut i = 0;
            while i + 8 <= m {
                // Panel triples first (8 rows × 3 panels = 24 zmm
                // accumulators, each broadcast of `A` feeding three
                // vectors), then a pair and singles for the edges.
                let mut q = qb;
                while q + 3 <= qe && (q + 3) * SPW <= n {
                    Self::mk_avx512::<8, 3>(
                        k,
                        a.as_ptr().add(i * k),
                        1,
                        k,
                        packed.as_ptr().add(q * panel_len),
                        panel_len,
                        bias_ptr(bias, q * SPW),
                        relu,
                        out.as_mut_ptr().add(i * n + q * SPW),
                        n,
                    );
                    q += 3;
                }
                if q + 2 <= qe && (q + 2) * SPW <= n {
                    Self::mk_avx512::<8, 2>(
                        k,
                        a.as_ptr().add(i * k),
                        1,
                        k,
                        packed.as_ptr().add(q * panel_len),
                        panel_len,
                        bias_ptr(bias, q * SPW),
                        relu,
                        out.as_mut_ptr().add(i * n + q * SPW),
                        n,
                    );
                    q += 2;
                }
                while q < qe {
                    let j0 = q * SPW;
                    let panel = &packed[q * panel_len..(q + 1) * panel_len];
                    if n - j0 >= SPW {
                        Self::mk_avx512::<8, 1>(
                            k,
                            a.as_ptr().add(i * k),
                            1,
                            k,
                            panel.as_ptr(),
                            panel_len,
                            bias_ptr(bias, j0),
                            relu,
                            out.as_mut_ptr().add(i * n + j0),
                            n,
                        );
                    } else {
                        for r in i..i + 8 {
                            let w = n - j0;
                            Self::panel_row_scalar(
                                w,
                                &a[r * k..(r + 1) * k],
                                panel,
                                bias.map(|b| &b[j0..j0 + w]),
                                relu,
                                &mut out[r * n + j0..r * n + j0 + w],
                            );
                        }
                    }
                    q += 1;
                }
                i += 8;
            }
            while i < m {
                for q in qb..qe {
                    let j0 = q * SPW;
                    let panel = &packed[q * panel_len..(q + 1) * panel_len];
                    if n - j0 >= SPW {
                        Self::mk_avx512::<1, 1>(
                            k,
                            a.as_ptr().add(i * k),
                            1,
                            k,
                            panel.as_ptr(),
                            panel_len,
                            bias_ptr(bias, j0),
                            relu,
                            out.as_mut_ptr().add(i * n + j0),
                            n,
                        );
                    } else {
                        let w = n - j0;
                        Self::panel_row_scalar(
                            w,
                            &a[i * k..(i + 1) * k],
                            panel,
                            bias.map(|b| &b[j0..j0 + w]),
                            relu,
                            &mut out[i * n + j0..i * n + j0 + w],
                        );
                    }
                }
                i += 1;
            }
        }
    }

    /// The const-generic AVX-512 micro-kernel: `R` rows × `P` adjacent
    /// full panels (`R·P` zmm accumulators, one per 8-wide output group).
    /// Each broadcast of `A` feeds `P` vectors, so load-port µops per
    /// output update shrink as the tile widens; the main tile is 8×3
    /// (24 accumulators + 3 panel registers + 1 broadcast). Every
    /// accumulator is one output group's ascending-
    /// `k` chain, loaded and stored exactly once, so any `(R, P)` choice
    /// produces identical bits.
    ///
    /// # Safety
    /// Requires AVX-512F; `a` holds `R` rows of length `k` addressed as
    /// `a[p·astep + r·arow]` (`astep = 1, arow = lda` for plain row-major,
    /// `astep = R, arow = 1` for the k-major packed octet), `panels` `P`
    /// consecutive `k×SPW` packed panels (`panel_len` apart), `out` `R`
    /// rows of stride `ldo` with `8·P` valid columns, and `bias` null or
    /// `8·P` valid bias values starting at the first panel's first column.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    #[allow(clippy::needless_range_loop)]
    unsafe fn mk_avx512<const R: usize, const P: usize>(
        k: usize,
        a: *const f64,
        astep: usize,
        arow: usize,
        panels: *const f64,
        panel_len: usize,
        bias: *const f64,
        relu: bool,
        out: *mut f64,
        ldo: usize,
    ) {
        use std::arch::x86_64::*;
        let mut acc = [[_mm512_setzero_pd(); P]; R];
        for r in 0..R {
            for c in 0..P {
                acc[r][c] = _mm512_loadu_pd(out.add(r * ldo + c * SPW));
            }
        }
        // Two reduction steps per iteration (halved loop overhead); per
        // output element the adds still land in ascending `k` order, so
        // the unroll is invisible to the bit-identity contract.
        let mut p = 0;
        while p + 2 <= k {
            for step in [p, p + 1] {
                let mut b = [_mm512_setzero_pd(); P];
                for c in 0..P {
                    b[c] = _mm512_loadu_pd(panels.add(c * panel_len + step * SPW));
                }
                for r in 0..R {
                    let av = _mm512_set1_pd(*a.add(step * astep + r * arow));
                    for c in 0..P {
                        acc[r][c] = _mm512_add_pd(acc[r][c], _mm512_mul_pd(av, b[c]));
                    }
                }
            }
            p += 2;
        }
        if p < k {
            let mut b = [_mm512_setzero_pd(); P];
            for c in 0..P {
                b[c] = _mm512_loadu_pd(panels.add(c * panel_len + p * SPW));
            }
            for r in 0..R {
                let av = _mm512_set1_pd(*a.add(p * astep + r * arow));
                for c in 0..P {
                    acc[r][c] = _mm512_add_pd(acc[r][c], _mm512_mul_pd(av, b[c]));
                }
            }
        }
        if !bias.is_null() {
            // Fused epilogue: one bias vector per panel, appended to the
            // end of every row's accumulation chain before the store.
            let mut bv = [_mm512_setzero_pd(); P];
            for c in 0..P {
                bv[c] = _mm512_loadu_pd(bias.add(c * SPW));
            }
            for r in 0..R {
                for c in 0..P {
                    acc[r][c] = _mm512_add_pd(acc[r][c], bv[c]);
                }
            }
        }
        if relu {
            // Fused ReLU epilogue: a `< 0` masked move against zero — the
            // exact comparison of the scalar pass (`-0.0`/`NaN` lanes keep
            // their bits; a `max` would not).
            let z = _mm512_setzero_pd();
            for r in 0..R {
                for c in 0..P {
                    let neg = _mm512_cmp_pd_mask(acc[r][c], z, _CMP_LT_OQ);
                    acc[r][c] = _mm512_mask_mov_pd(acc[r][c], neg, z);
                }
            }
        }
        for r in 0..R {
            for c in 0..P {
                _mm512_storeu_pd(out.add(r * ldo + c * SPW), acc[r][c]);
            }
        }
    }

    /// `gemm_tn` restricted to `A` columns `c0..c1` (= output rows
    /// `c0..c1`): the unit [`ShardedKernel`] fans out over worker threads.
    /// `out` holds only the `c1 - c0` rows being computed.
    ///
    /// Per output element the reduction runs in ascending sample blocks
    /// and ascending rows within each block — the naive ascending-`i`
    /// chain — so any column split produces identical bits.
    #[allow(clippy::too_many_arguments)]
    fn gemm_tn_cols(
        m: usize,
        k: usize,
        n: usize,
        c0: usize,
        c1: usize,
        a: &[f64],
        b: &[f64],
        out: &mut [f64],
    ) {
        let kw = c1 - c0;
        debug_assert_eq!(out.len(), kw * n);
        if m == 0 || kw == 0 || n == 0 {
            return;
        }
        let mut at_block = vec![0.0; kw * IB.min(m)];
        for ib in (0..m).step_by(IB) {
            let h = IB.min(m - ib);
            // at_block[(p - c0)·h + r] = a[ib + r][p]: the block of Aᵀ
            // restricted to the requested columns. The full-width case
            // takes the tiled transpose (TLB-friendly); a column slice
            // falls back to the strided gather.
            if kw == k {
                BlockedKernel.transpose(h, k, &a[ib * k..(ib + h) * k], &mut at_block[..k * h]);
            } else {
                for r in 0..h {
                    let row = &a[(ib + r) * k + c0..(ib + r) * k + c1];
                    for (dp, &x) in row.iter().enumerate() {
                        at_block[dp * h + r] = x;
                    }
                }
            }
            let packed = Self::pack_panels8(h, n, &b[ib * n..(ib + h) * n]);
            Self::packed_gemm(kw, h, n, &at_block[..kw * h], &packed, out);
        }
    }
}

impl GemmBackend for SimdKernel {
    fn name(&self) -> &'static str {
        "simd"
    }

    fn gemm(&self, m: usize, k: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(out.len(), m * n);
        if m == 0 || k == 0 || n == 0 {
            return;
        }
        if m < PACK_MIN_ROWS {
            // Packing never amortizes on a handful of rows; the blocked
            // axpy fallback is bit-identical (ascending-k everywhere).
            BlockedKernel::axpy_gemm(m, k, n, a, b, out);
            return;
        }
        let packed = Self::pack_panels8(k, n, b);
        Self::packed_gemm(m, k, n, a, &packed, out);
    }

    fn gemm_nt(&self, m: usize, k: usize, n: usize, a: &[f64], bt: &[f64], out: &mut [f64]) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(bt.len(), n * k);
        debug_assert_eq!(out.len(), m * n);
        if m == 0 || k == 0 || n == 0 {
            return;
        }
        let packed = Self::pack_panels8_t(k, n, bt);
        Self::packed_gemm(m, k, n, a, &packed, out);
    }

    fn gemm_tn(&self, m: usize, k: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), m * n);
        debug_assert_eq!(out.len(), k * n);
        Self::gemm_tn_cols(m, k, n, 0, k, a, b, out);
    }

    fn gemm_batched(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[&[f64]],
        b: &[&[f64]],
        outs: &mut [&mut [f64]],
    ) {
        let batch = outs.len();
        check_batched_len("A", a.len(), batch);
        check_batched_len("B", b.len(), batch);
        if batch == 0 || m == 0 || k == 0 || n == 0 {
            return;
        }
        // One panel buffer serves the whole batch: packed once when `B`
        // is shared, re-packed in place (allocation reused, no per-call
        // `Vec`) when each product brings its own. The packed core is
        // bit-identical to the small-`m` axpy fallback the single-call
        // `gemm` would take, so routing every product through it keeps
        // the sequential-loop bits while letting tiny products share the
        // pack that a lone call could not amortize.
        let mut packed = Vec::new();
        if b.len() == 1 {
            Self::pack_panels8_into(k, n, b[0], &mut packed);
            for (i, out) in outs.iter_mut().enumerate() {
                Self::packed_gemm(m, k, n, batched_operand(a, i), &packed, out);
            }
        } else {
            for (i, out) in outs.iter_mut().enumerate() {
                Self::pack_panels8_into(k, n, b[i], &mut packed);
                Self::packed_gemm(m, k, n, batched_operand(a, i), &packed, out);
            }
        }
    }

    fn gemm_batched_nt(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[&[f64]],
        bt: &[&[f64]],
        outs: &mut [&mut [f64]],
    ) {
        let batch = outs.len();
        check_batched_len("A", a.len(), batch);
        check_batched_len("Bᵀ", bt.len(), batch);
        if batch == 0 || m == 0 || k == 0 || n == 0 {
            return;
        }
        let mut packed = Vec::new();
        if bt.len() == 1 {
            Self::pack_panels8_t_into(k, n, bt[0], &mut packed);
            for (i, out) in outs.iter_mut().enumerate() {
                Self::packed_gemm(m, k, n, batched_operand(a, i), &packed, out);
            }
        } else {
            for (i, out) in outs.iter_mut().enumerate() {
                Self::pack_panels8_t_into(k, n, bt[i], &mut packed);
                Self::packed_gemm(m, k, n, batched_operand(a, i), &packed, out);
            }
        }
    }

    fn pack_b_into(&self, k: usize, n: usize, b: &[f64], dst: &mut PackedB) {
        debug_assert_eq!(b.len(), k * n);
        dst.layout = PackLayout::Panels8;
        dst.k = k;
        dst.n = n;
        Self::pack_panels8_into(k, n, b, &mut dst.data);
    }

    fn pack_b_t_into(&self, k: usize, n: usize, bt: &[f64], dst: &mut PackedB) {
        debug_assert_eq!(bt.len(), n * k);
        dst.layout = PackLayout::Panels8;
        dst.k = k;
        dst.n = n;
        Self::pack_panels8_t_into(k, n, bt, &mut dst.data);
    }

    fn matvec(&self, rows: usize, cols: usize, a: &[f64], v: &[f64], out: &mut [f64]) {
        // A dot product vectorized across `k` would need partial-sum lanes
        // (a reassociation); the paired-row scalar walk is the fastest
        // schedule that keeps the naive chain. Shared with `blocked`.
        BlockedKernel.matvec(rows, cols, a, v, out);
    }

    fn matvec_t(&self, rows: usize, cols: usize, a: &[f64], v: &[f64], out: &mut [f64]) {
        BlockedKernel.matvec_t(rows, cols, a, v, out);
    }

    fn transpose(&self, rows: usize, cols: usize, a: &[f64], out: &mut [f64]) {
        BlockedKernel.transpose(rows, cols, a, out);
    }
}

/// Worker threads the sharded backend may use (see [`set_kernel_threads`]).
/// `0` means "not set explicitly": resolve `ST_KERNEL_THREADS`, falling
/// back to the detected core count.
static KERNEL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Fixes the worker-thread budget of the [`ShardedKernel`] (0 resets to
/// automatic: `ST_KERNEL_THREADS`, else all cores).
///
/// Unlike the kernel *kind*, the thread budget may change at any time —
/// sharding partitions output rows, so every thread count produces
/// identical bits. The trial executor uses this to hand its surplus
/// workers to the kernel instead of oversubscribing (see
/// `slice_tuner::plan_thread_budget`).
/// Returns the previous override (`0` = automatic) so scoped callers —
/// like the trial executor — can restore it afterwards instead of leaking
/// their share to the rest of the process.
pub fn set_kernel_threads(threads: usize) -> usize {
    KERNEL_THREADS.swap(threads, Ordering::Relaxed)
}

/// The active worker-thread budget of the [`ShardedKernel`].
pub fn kernel_threads() -> usize {
    let explicit = KERNEL_THREADS.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    static AUTO: OnceLock<usize> = OnceLock::new();
    *AUTO.get_or_init(|| {
        std::env::var("ST_KERNEL_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Splits `total` items into at most `workers` contiguous, near-equal,
/// non-empty ranges.
fn shard_ranges(total: usize, workers: usize) -> Vec<(usize, usize)> {
    let workers = workers.max(1).min(total.max(1));
    let base = total / workers;
    let rem = total % workers;
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let len = base + usize::from(w < rem);
        if len == 0 {
            break;
        }
        ranges.push((start, start + len));
        start += len;
    }
    ranges
}

/// The multi-core backend: partitions output rows across a scoped worker
/// pool and runs the [`SimdKernel`] packed core on each shard.
///
/// Every output element is computed by exactly one worker with exactly the
/// ascending-`k` chain of [`NaiveKernel`], so results are bit-identical at
/// **any** thread count — sharding changes who computes an element, never
/// how. Small products (under [`SHARD_MIN_WORK`] multiplies) run inline on
/// the calling thread; the worker count comes from [`kernel_threads`]
/// unless pinned per-instance via [`ShardedKernel::with_threads`].
#[derive(Debug, Default, Clone, Copy)]
pub struct ShardedKernel {
    threads: Option<usize>,
}

impl ShardedKernel {
    /// Backend following the process-wide thread budget
    /// ([`kernel_threads`]).
    pub const fn new() -> Self {
        ShardedKernel { threads: None }
    }

    /// Backend pinned to exactly `threads` workers (used by the
    /// equivalence tests; `0` falls back to the process budget).
    pub fn with_threads(threads: usize) -> Self {
        ShardedKernel {
            threads: (threads > 0).then_some(threads),
        }
    }

    fn threads(&self) -> usize {
        self.threads.unwrap_or_else(kernel_threads)
    }

    /// True when the product is too small (or the budget too narrow) to
    /// pay a fan-out; such calls run inline via [`SimdKernel`].
    fn run_inline(&self, rows: usize, work: usize) -> bool {
        self.threads() <= 1 || rows < 2 || work < SHARD_MIN_WORK
    }
}

impl GemmBackend for ShardedKernel {
    fn name(&self) -> &'static str {
        "sharded"
    }

    fn gemm(&self, m: usize, k: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(out.len(), m * n);
        if m == 0 || k == 0 || n == 0 {
            return;
        }
        if self.run_inline(m, m * k * n) || m < PACK_MIN_ROWS {
            SimdKernel.gemm(m, k, n, a, b, out);
            return;
        }
        // Pack once, then fan output-row shards over the pool; each worker
        // owns a disjoint slice of `out`.
        let packed = SimdKernel::pack_panels8(k, n, b);
        let packed = &packed;
        crossbeam::scope(|scope| {
            let mut rest = out;
            for (s, e) in shard_ranges(m, self.threads()) {
                let (chunk, tail) = rest.split_at_mut((e - s) * n);
                rest = tail;
                let a_rows = &a[s * k..e * k];
                scope.spawn(move |_| SimdKernel::packed_gemm(e - s, k, n, a_rows, packed, chunk));
            }
        })
        .expect("sharded gemm worker panicked");
    }

    fn gemm_nt(&self, m: usize, k: usize, n: usize, a: &[f64], bt: &[f64], out: &mut [f64]) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(bt.len(), n * k);
        debug_assert_eq!(out.len(), m * n);
        if m == 0 || k == 0 || n == 0 {
            return;
        }
        if self.run_inline(m, m * k * n) {
            SimdKernel.gemm_nt(m, k, n, a, bt, out);
            return;
        }
        let packed = SimdKernel::pack_panels8_t(k, n, bt);
        let packed = &packed;
        crossbeam::scope(|scope| {
            let mut rest = out;
            for (s, e) in shard_ranges(m, self.threads()) {
                let (chunk, tail) = rest.split_at_mut((e - s) * n);
                rest = tail;
                let a_rows = &a[s * k..e * k];
                scope.spawn(move |_| SimdKernel::packed_gemm(e - s, k, n, a_rows, packed, chunk));
            }
        })
        .expect("sharded gemm_nt worker panicked");
    }

    fn gemm_tn(&self, m: usize, k: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), m * n);
        debug_assert_eq!(out.len(), k * n);
        if m == 0 || k == 0 || n == 0 {
            return;
        }
        if self.run_inline(k, m * k * n) {
            SimdKernel.gemm_tn(m, k, n, a, b, out);
            return;
        }
        // Shard the *output* rows (= columns of A): each worker runs the
        // full ascending-sample-block reduction for its row range, so the
        // per-element chain is the sequential one regardless of the split.
        // Workers re-pack the shared B blocks redundantly — O(m·n) per
        // worker against the O(m·k·n/threads) product each performs.
        crossbeam::scope(|scope| {
            let mut rest = out;
            for (s, e) in shard_ranges(k, self.threads()) {
                let (chunk, tail) = rest.split_at_mut((e - s) * n);
                rest = tail;
                scope.spawn(move |_| SimdKernel::gemm_tn_cols(m, k, n, s, e, a, b, chunk));
            }
        })
        .expect("sharded gemm_tn worker panicked");
    }

    fn pack_b_into(&self, k: usize, n: usize, b: &[f64], dst: &mut PackedB) {
        // The per-worker core is the simd packed core, so the sharded
        // backend shares its panel layout.
        SimdKernel.pack_b_into(k, n, b, dst);
    }

    fn pack_b_t_into(&self, k: usize, n: usize, bt: &[f64], dst: &mut PackedB) {
        SimdKernel.pack_b_t_into(k, n, bt, dst);
    }

    fn gemm_prepacked(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f64],
        pb: &PackedB,
        out: &mut [f64],
    ) {
        assert_eq!((pb.k, pb.n), (k, n), "prepacked B shape mismatch");
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(out.len(), m * n);
        if m == 0 || k == 0 || n == 0 {
            return;
        }
        match pb.layout {
            // Pack-on-call handle: the ordinary sharded gemm packs and
            // fans out itself.
            PackLayout::Raw => self.gemm(m, k, n, a, &pb.data, out),
            // Foreign panel width (only reachable by mixing backends by
            // hand — the process kernel is fixed): run the matching core
            // inline; bits are identical either way.
            PackLayout::Panels4 => BlockedKernel::packed_gemm(m, k, n, a, &pb.data, out),
            PackLayout::Panels8 => {
                if self.run_inline(m, m * k * n) {
                    SimdKernel::packed_gemm(m, k, n, a, &pb.data, out);
                    return;
                }
                // The pack already happened — fan the output-row shards
                // straight over the pool.
                let packed = &pb.data;
                crossbeam::scope(|scope| {
                    let mut rest = out;
                    for (s, e) in shard_ranges(m, self.threads()) {
                        let (chunk, tail) = rest.split_at_mut((e - s) * n);
                        rest = tail;
                        let a_rows = &a[s * k..e * k];
                        scope.spawn(move |_| {
                            SimdKernel::packed_gemm(e - s, k, n, a_rows, packed, chunk)
                        });
                    }
                })
                .expect("sharded gemm_prepacked worker panicked");
            }
        }
    }

    fn gemm_prepacked_bias(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f64],
        pb: &PackedB,
        bias: &[f64],
        out: &mut [f64],
    ) {
        assert_eq!((pb.k, pb.n), (k, n), "prepacked B shape mismatch");
        assert_eq!(bias.len(), n, "bias length mismatch");
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(out.len(), m * n);
        if m == 0 || n == 0 {
            return;
        }
        if k == 0 {
            bias_rows(n, bias, out);
            return;
        }
        match pb.layout {
            PackLayout::Raw => {
                self.gemm(m, k, n, a, &pb.data, out);
                bias_rows(n, bias, out);
            }
            PackLayout::Panels4 => BlockedKernel::packed_gemm_bias(m, k, n, a, &pb.data, bias, out),
            PackLayout::Panels8 => {
                if self.run_inline(m, m * k * n) {
                    SimdKernel::packed_gemm_bias(m, k, n, a, &pb.data, bias, out);
                    return;
                }
                // Row shards own disjoint output rows; each worker runs
                // the fused core with the full bias slice (the epilogue is
                // per-row, so the split is invisible to the bits).
                let packed = &pb.data;
                crossbeam::scope(|scope| {
                    let mut rest = out;
                    for (s, e) in shard_ranges(m, self.threads()) {
                        let (chunk, tail) = rest.split_at_mut((e - s) * n);
                        rest = tail;
                        let a_rows = &a[s * k..e * k];
                        scope.spawn(move |_| {
                            SimdKernel::packed_gemm_bias(e - s, k, n, a_rows, packed, bias, chunk)
                        });
                    }
                })
                .expect("sharded gemm_prepacked_bias worker panicked");
            }
        }
    }

    fn gemm_prepacked_bias_relu(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f64],
        pb: &PackedB,
        bias: &[f64],
        out: &mut [f64],
    ) {
        assert_eq!((pb.k, pb.n), (k, n), "prepacked B shape mismatch");
        assert_eq!(bias.len(), n, "bias length mismatch");
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(out.len(), m * n);
        if m == 0 || n == 0 {
            return;
        }
        if k == 0 {
            bias_rows(n, bias, out);
            relu_rows(out);
            return;
        }
        match pb.layout {
            PackLayout::Raw => {
                self.gemm(m, k, n, a, &pb.data, out);
                bias_rows(n, bias, out);
                relu_rows(out);
            }
            PackLayout::Panels4 => {
                BlockedKernel::packed_gemm_bias_relu(m, k, n, a, &pb.data, bias, out)
            }
            PackLayout::Panels8 => {
                if self.run_inline(m, m * k * n) {
                    SimdKernel::packed_gemm_bias_relu(m, k, n, a, &pb.data, bias, out);
                    return;
                }
                // Both epilogues are per-element and the row shards own
                // disjoint output rows, so the fused clamp is invisible
                // to the split exactly like the bias is.
                let packed = &pb.data;
                crossbeam::scope(|scope| {
                    let mut rest = out;
                    for (s, e) in shard_ranges(m, self.threads()) {
                        let (chunk, tail) = rest.split_at_mut((e - s) * n);
                        rest = tail;
                        let a_rows = &a[s * k..e * k];
                        scope.spawn(move |_| {
                            SimdKernel::packed_gemm_bias_relu(
                                e - s,
                                k,
                                n,
                                a_rows,
                                packed,
                                bias,
                                chunk,
                            )
                        });
                    }
                })
                .expect("sharded gemm_prepacked_bias_relu worker panicked");
            }
        }
    }

    fn gemm_batched(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[&[f64]],
        b: &[&[f64]],
        outs: &mut [&mut [f64]],
    ) {
        let batch = outs.len();
        check_batched_len("A", a.len(), batch);
        check_batched_len("B", b.len(), batch);
        if batch == 0 || m == 0 || k == 0 || n == 0 {
            return;
        }
        // Fan whole *products* over the pool — each worker owns a
        // contiguous run of items and runs their complete ascending-`k`
        // chains, so any worker count produces the sequential-loop bits.
        // Batches too small to pay the spawn cost take the simd batched
        // walk inline (one reused pack buffer).
        if self.threads() <= 1 || batch < 2 || batch * m * k * n < SHARD_MIN_WORK {
            SimdKernel.gemm_batched(m, k, n, a, b, outs);
            return;
        }
        let shared_pack = (b.len() == 1).then(|| SimdKernel::pack_panels8(k, n, b[0]));
        let shared_pack = shared_pack.as_deref();
        crossbeam::scope(|scope| {
            let mut rest = outs;
            for (s, e) in shard_ranges(batch, self.threads()) {
                let (chunk, tail) = rest.split_at_mut(e - s);
                rest = tail;
                scope.spawn(move |_| {
                    let mut local = Vec::new();
                    for (off, out) in chunk.iter_mut().enumerate() {
                        let i = s + off;
                        match shared_pack {
                            Some(p) => {
                                SimdKernel::packed_gemm(m, k, n, batched_operand(a, i), p, out)
                            }
                            None => {
                                SimdKernel::pack_panels8_into(k, n, b[i], &mut local);
                                SimdKernel::packed_gemm(
                                    m,
                                    k,
                                    n,
                                    batched_operand(a, i),
                                    &local,
                                    out,
                                );
                            }
                        }
                    }
                });
            }
        })
        .expect("sharded gemm_batched worker panicked");
    }

    fn gemm_batched_prepacked_bias(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[&[f64]],
        pbs: &[&PackedB],
        biases: &[&[f64]],
        outs: &mut [&mut [f64]],
    ) {
        let batch = outs.len();
        check_batched_len("A", a.len(), batch);
        check_batched_len("packed B", pbs.len(), batch);
        check_batched_len("bias", biases.len(), batch);
        let all_panels8 = pbs.iter().all(|pb| pb.layout == PackLayout::Panels8);
        if !all_panels8
            || self.threads() <= 1
            || batch < 2
            || k == 0
            || batch * m * k * n < SHARD_MIN_WORK
        {
            // Foreign layouts and small batches: the per-product loop
            // (which re-dispatches per handle) is the bit-identity
            // baseline anyway.
            for (i, out) in outs.iter_mut().enumerate() {
                SimdKernel.gemm_prepacked_bias(
                    m,
                    k,
                    n,
                    batched_operand(a, i),
                    batched_operand(pbs, i),
                    batched_operand(biases, i),
                    out,
                );
            }
            return;
        }
        crossbeam::scope(|scope| {
            let mut rest = outs;
            for (s, e) in shard_ranges(batch, self.threads()) {
                let (chunk, tail) = rest.split_at_mut(e - s);
                rest = tail;
                scope.spawn(move |_| {
                    for (off, out) in chunk.iter_mut().enumerate() {
                        let i = s + off;
                        SimdKernel::packed_gemm_bias(
                            m,
                            k,
                            n,
                            batched_operand(a, i),
                            &batched_operand(pbs, i).data,
                            batched_operand(biases, i),
                            out,
                        );
                    }
                });
            }
        })
        .expect("sharded gemm_batched_prepacked_bias worker panicked");
    }

    fn gemm_batched_prepacked_bias_relu(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[&[f64]],
        pbs: &[&PackedB],
        biases: &[&[f64]],
        outs: &mut [&mut [f64]],
    ) {
        let batch = outs.len();
        check_batched_len("A", a.len(), batch);
        check_batched_len("packed B", pbs.len(), batch);
        check_batched_len("bias", biases.len(), batch);
        let all_panels8 = pbs.iter().all(|pb| pb.layout == PackLayout::Panels8);
        if !all_panels8
            || self.threads() <= 1
            || batch < 2
            || k == 0
            || batch * m * k * n < SHARD_MIN_WORK
        {
            for (i, out) in outs.iter_mut().enumerate() {
                SimdKernel.gemm_prepacked_bias_relu(
                    m,
                    k,
                    n,
                    batched_operand(a, i),
                    batched_operand(pbs, i),
                    batched_operand(biases, i),
                    out,
                );
            }
            return;
        }
        crossbeam::scope(|scope| {
            let mut rest = outs;
            for (s, e) in shard_ranges(batch, self.threads()) {
                let (chunk, tail) = rest.split_at_mut(e - s);
                rest = tail;
                scope.spawn(move |_| {
                    for (off, out) in chunk.iter_mut().enumerate() {
                        let i = s + off;
                        SimdKernel::packed_gemm_bias_relu(
                            m,
                            k,
                            n,
                            batched_operand(a, i),
                            &batched_operand(pbs, i).data,
                            batched_operand(biases, i),
                            out,
                        );
                    }
                });
            }
        })
        .expect("sharded gemm_batched_prepacked_bias_relu worker panicked");
    }

    fn matvec(&self, rows: usize, cols: usize, a: &[f64], v: &[f64], out: &mut [f64]) {
        // Memory-bound; a fan-out buys nothing. Inline simd schedule.
        SimdKernel.matvec(rows, cols, a, v, out);
    }

    fn matvec_t(&self, rows: usize, cols: usize, a: &[f64], v: &[f64], out: &mut [f64]) {
        SimdKernel.matvec_t(rows, cols, a, v, out);
    }

    fn transpose(&self, rows: usize, cols: usize, a: &[f64], out: &mut [f64]) {
        SimdKernel.transpose(rows, cols, a, out);
    }
}

/// The opt-in reassociating backend: FMA contraction and reassociated
/// reductions for callers that **waive the bit-determinism contract**.
///
/// `fast` is never selected by default, and the deterministic trial path
/// refuses to run under it unless explicitly allowed
/// (`--allow-nondeterministic-kernel`). Results are correct to normal
/// floating-point accuracy — typically *more* accurate than the plain
/// kernels thanks to fused rounding — but not reproducible bit-for-bit
/// against the other backends.
#[derive(Debug, Default, Clone, Copy)]
pub struct FastKernel;

impl FastKernel {
    /// `out += a · B` on packed panels with FMA where available. Falls back
    /// to the strict SIMD core on targets without FMA (the waiver permits
    /// reassociation, it does not require it).
    fn packed_gemm_fast(m: usize, k: usize, n: usize, a: &[f64], packed: &[f64], out: &mut [f64]) {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            // SAFETY: avx2 and fma were just detected at runtime.
            unsafe { Self::packed_gemm_fma(m, k, n, a, packed, out) };
            return;
        }
        SimdKernel::packed_gemm(m, k, n, a, packed, out);
    }

    /// FMA instantiation of the packed core: the same blocking driver as
    /// [`SimdKernel::packed_gemm_avx2`] — the two must stay in lockstep
    /// (same tiles, same [`SIMD_PANEL_BLOCK_BYTES`] L2 budget); only the
    /// micro-kernels differ, with every multiply/add pair contracted to
    /// one fused op.
    ///
    /// # Safety
    /// The caller must ensure the CPU supports AVX2 and FMA.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn packed_gemm_fma(
        m: usize,
        k: usize,
        n: usize,
        a: &[f64],
        packed: &[f64],
        out: &mut [f64],
    ) {
        let panels = n.div_ceil(SPW);
        let panel_len = k * SPW;
        let block = (SIMD_PANEL_BLOCK_BYTES / (panel_len * 8).max(1)).max(1);
        for qb in (0..panels).step_by(block) {
            let qe = (qb + block).min(panels);
            let mut i = 0;
            while i + 4 <= m {
                for q in qb..qe {
                    let j0 = q * SPW;
                    let panel = &packed[q * panel_len..(q + 1) * panel_len];
                    if n - j0 >= SPW {
                        Self::mk4x8_fma(
                            k,
                            a.as_ptr().add(i * k),
                            k,
                            panel.as_ptr(),
                            out.as_mut_ptr().add(i * n + j0),
                            n,
                        );
                    } else {
                        for r in i..i + 4 {
                            let w = n - j0;
                            SimdKernel::panel_row_scalar(
                                w,
                                &a[r * k..(r + 1) * k],
                                panel,
                                None,
                                false,
                                &mut out[r * n + j0..r * n + j0 + w],
                            );
                        }
                    }
                }
                i += 4;
            }
            while i < m {
                for q in qb..qe {
                    let j0 = q * SPW;
                    let panel = &packed[q * panel_len..(q + 1) * panel_len];
                    if n - j0 >= SPW {
                        Self::mk1x8_fma(
                            k,
                            a.as_ptr().add(i * k),
                            panel.as_ptr(),
                            out.as_mut_ptr().add(i * n + j0),
                        );
                    } else {
                        let w = n - j0;
                        SimdKernel::panel_row_scalar(
                            w,
                            &a[i * k..(i + 1) * k],
                            panel,
                            None,
                            false,
                            &mut out[i * n + j0..i * n + j0 + w],
                        );
                    }
                }
                i += 1;
            }
        }
    }

    /// 4-row × 8-column FMA micro-kernel (contracted twin of
    /// [`SimdKernel::mk4x8_avx2`]).
    ///
    /// # Safety
    /// Requires AVX2+FMA; same layout contract as
    /// [`SimdKernel::mk4x8_avx2`].
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn mk4x8_fma(
        k: usize,
        a: *const f64,
        lda: usize,
        panel: *const f64,
        out: *mut f64,
        ldo: usize,
    ) {
        use std::arch::x86_64::*;
        let mut acc00 = _mm256_loadu_pd(out);
        let mut acc01 = _mm256_loadu_pd(out.add(4));
        let mut acc10 = _mm256_loadu_pd(out.add(ldo));
        let mut acc11 = _mm256_loadu_pd(out.add(ldo + 4));
        let mut acc20 = _mm256_loadu_pd(out.add(2 * ldo));
        let mut acc21 = _mm256_loadu_pd(out.add(2 * ldo + 4));
        let mut acc30 = _mm256_loadu_pd(out.add(3 * ldo));
        let mut acc31 = _mm256_loadu_pd(out.add(3 * ldo + 4));
        for p in 0..k {
            let b0 = _mm256_loadu_pd(panel.add(p * SPW));
            let b1 = _mm256_loadu_pd(panel.add(p * SPW + 4));
            let a0 = _mm256_set1_pd(*a.add(p));
            acc00 = _mm256_fmadd_pd(a0, b0, acc00);
            acc01 = _mm256_fmadd_pd(a0, b1, acc01);
            let a1 = _mm256_set1_pd(*a.add(lda + p));
            acc10 = _mm256_fmadd_pd(a1, b0, acc10);
            acc11 = _mm256_fmadd_pd(a1, b1, acc11);
            let a2 = _mm256_set1_pd(*a.add(2 * lda + p));
            acc20 = _mm256_fmadd_pd(a2, b0, acc20);
            acc21 = _mm256_fmadd_pd(a2, b1, acc21);
            let a3 = _mm256_set1_pd(*a.add(3 * lda + p));
            acc30 = _mm256_fmadd_pd(a3, b0, acc30);
            acc31 = _mm256_fmadd_pd(a3, b1, acc31);
        }
        _mm256_storeu_pd(out, acc00);
        _mm256_storeu_pd(out.add(4), acc01);
        _mm256_storeu_pd(out.add(ldo), acc10);
        _mm256_storeu_pd(out.add(ldo + 4), acc11);
        _mm256_storeu_pd(out.add(2 * ldo), acc20);
        _mm256_storeu_pd(out.add(2 * ldo + 4), acc21);
        _mm256_storeu_pd(out.add(3 * ldo), acc30);
        _mm256_storeu_pd(out.add(3 * ldo + 4), acc31);
    }

    /// Single-row FMA micro-kernel.
    ///
    /// # Safety
    /// Requires AVX2+FMA; same layout contract as
    /// [`SimdKernel::mk1x8_avx2`].
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn mk1x8_fma(k: usize, a: *const f64, panel: *const f64, out: *mut f64) {
        use std::arch::x86_64::*;
        let mut acc0 = _mm256_loadu_pd(out);
        let mut acc1 = _mm256_loadu_pd(out.add(4));
        for p in 0..k {
            let av = _mm256_set1_pd(*a.add(p));
            acc0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(panel.add(p * SPW)), acc0);
            acc1 = _mm256_fmadd_pd(av, _mm256_loadu_pd(panel.add(p * SPW + 4)), acc1);
        }
        _mm256_storeu_pd(out, acc0);
        _mm256_storeu_pd(out.add(4), acc1);
    }

    /// Reassociated row dot: four independent FMA lanes over `k`, reduced
    /// horizontally at the end (the partial-sum tree the strict kernels
    /// must not use).
    ///
    /// # Safety
    /// The caller must ensure the CPU supports AVX2 and FMA.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn matvec_fma(rows: usize, cols: usize, a: &[f64], v: &[f64], out: &mut [f64]) {
        use std::arch::x86_64::*;
        debug_assert_eq!(a.len(), rows * cols);
        for (r, o) in out.iter_mut().enumerate() {
            let row = a.as_ptr().add(r * cols);
            let mut acc0 = _mm256_setzero_pd();
            let mut acc1 = _mm256_setzero_pd();
            let mut p = 0;
            while p + 8 <= cols {
                acc0 = _mm256_fmadd_pd(
                    _mm256_loadu_pd(row.add(p)),
                    _mm256_loadu_pd(v.as_ptr().add(p)),
                    acc0,
                );
                acc1 = _mm256_fmadd_pd(
                    _mm256_loadu_pd(row.add(p + 4)),
                    _mm256_loadu_pd(v.as_ptr().add(p + 4)),
                    acc1,
                );
                p += 8;
            }
            let sum = _mm256_add_pd(acc0, acc1);
            let mut lanes = [0.0; 4];
            _mm256_storeu_pd(lanes.as_mut_ptr(), sum);
            let mut acc = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
            while p < cols {
                acc = (*row.add(p)).mul_add(v[p], acc);
                p += 1;
            }
            *o = acc;
        }
    }
}

impl GemmBackend for FastKernel {
    fn name(&self) -> &'static str {
        "fast"
    }

    fn gemm(&self, m: usize, k: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(out.len(), m * n);
        if m == 0 || k == 0 || n == 0 {
            return;
        }
        if m < PACK_MIN_ROWS {
            BlockedKernel::axpy_gemm(m, k, n, a, b, out);
            return;
        }
        let packed = SimdKernel::pack_panels8(k, n, b);
        Self::packed_gemm_fast(m, k, n, a, &packed, out);
    }

    fn gemm_nt(&self, m: usize, k: usize, n: usize, a: &[f64], bt: &[f64], out: &mut [f64]) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(bt.len(), n * k);
        debug_assert_eq!(out.len(), m * n);
        if m == 0 || k == 0 || n == 0 {
            return;
        }
        let packed = SimdKernel::pack_panels8_t(k, n, bt);
        Self::packed_gemm_fast(m, k, n, a, &packed, out);
    }

    fn gemm_tn(&self, m: usize, k: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), m * n);
        debug_assert_eq!(out.len(), k * n);
        if m == 0 || k == 0 || n == 0 {
            return;
        }
        let mut at_block = vec![0.0; k * IB.min(m)];
        for ib in (0..m).step_by(IB) {
            let h = IB.min(m - ib);
            BlockedKernel.transpose(h, k, &a[ib * k..(ib + h) * k], &mut at_block[..k * h]);
            let packed = SimdKernel::pack_panels8(h, n, &b[ib * n..(ib + h) * n]);
            Self::packed_gemm_fast(k, h, n, &at_block[..k * h], &packed, out);
        }
    }

    fn matvec(&self, rows: usize, cols: usize, a: &[f64], v: &[f64], out: &mut [f64]) {
        debug_assert_eq!(a.len(), rows * cols);
        debug_assert_eq!(v.len(), cols);
        debug_assert_eq!(out.len(), rows);
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            // SAFETY: avx2 and fma were just detected at runtime.
            unsafe { Self::matvec_fma(rows, cols, a, v, out) };
            return;
        }
        BlockedKernel.matvec(rows, cols, a, v, out);
    }

    fn matvec_t(&self, rows: usize, cols: usize, a: &[f64], v: &[f64], out: &mut [f64]) {
        BlockedKernel.matvec_t(rows, cols, a, v, out);
    }

    fn transpose(&self, rows: usize, cols: usize, a: &[f64], out: &mut [f64]) {
        BlockedKernel.transpose(rows, cols, a, out);
    }
}

/// Which [`GemmBackend`] a process uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// The straight-line reference kernel.
    Naive,
    /// The cache-blocked kernel (default).
    Blocked,
    /// Explicit AVX2/AVX-512 intrinsics, bit-identical to naive.
    Simd,
    /// Multi-core row sharding over the SIMD core, bit-identical at any
    /// thread count.
    Sharded,
    /// Opt-in reassociating FMA kernel — **waives** the bit-determinism
    /// contract; the deterministic trial path refuses it.
    Fast,
}

impl KernelKind {
    /// Every selectable backend, in the order help strings list them.
    pub const ALL: [KernelKind; 5] = [
        KernelKind::Naive,
        KernelKind::Blocked,
        KernelKind::Simd,
        KernelKind::Sharded,
        KernelKind::Fast,
    ];

    /// Parses a kernel name as accepted by `ST_KERNEL` and `--kernel`.
    pub fn from_name(name: &str) -> Option<KernelKind> {
        let name = name.trim().to_ascii_lowercase();
        KernelKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// The canonical name.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Naive => "naive",
            KernelKind::Blocked => "blocked",
            KernelKind::Simd => "simd",
            KernelKind::Sharded => "sharded",
            KernelKind::Fast => "fast",
        }
    }

    /// A static reference to the backend of this kind.
    pub fn backend(self) -> &'static dyn GemmBackend {
        static SHARDED: ShardedKernel = ShardedKernel::new();
        match self {
            KernelKind::Naive => &NaiveKernel,
            KernelKind::Blocked => &BlockedKernel,
            KernelKind::Simd => &SimdKernel,
            KernelKind::Sharded => &SHARDED,
            KernelKind::Fast => &FastKernel,
        }
    }

    /// Whether this backend honors the bit-identity contract (every
    /// output bit equal to [`NaiveKernel`]'s). Only [`KernelKind::Fast`]
    /// waives it; determinism-sensitive paths (the trial runner) refuse
    /// non-deterministic kinds unless the caller explicitly opts in.
    pub fn bit_deterministic(self) -> bool {
        !matches!(self, KernelKind::Fast)
    }
}

/// The comma-separated list of valid kernel names, for error messages and
/// usage strings (`"naive | blocked | simd | sharded | fast"`).
pub fn kernel_names() -> String {
    KernelKind::ALL.map(KernelKind::name).join(" | ")
}

/// The list of valid `ST_SIMD_FORCE` values, for the unknown-value warning
/// and usage strings — the `kernel_names()` of the SIMD width cap.
pub fn simd_force_names() -> &'static str {
    "avx2 | scalar"
}

/// True when `ST_PREPACK=1`: the model stack routes even its single-use
/// forward products through the prepacked API (pack-on-call), so one CI
/// run exercises every prepacked code path across the whole suite.
/// Bit-identical by the prepacked contract; read once per process.
pub fn prepack_forced() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| std::env::var("ST_PREPACK").as_deref() == Ok("1"))
}

static ACTIVE_KERNEL: OnceLock<KernelKind> = OnceLock::new();

fn kind_from_env() -> KernelKind {
    match std::env::var("ST_KERNEL") {
        Ok(v) => KernelKind::from_name(&v).unwrap_or_else(|| {
            eprintln!(
                "warning: unknown ST_KERNEL '{v}', using blocked (valid kernels: {})",
                kernel_names()
            );
            KernelKind::Blocked
        }),
        Err(_) => KernelKind::Blocked,
    }
}

/// The process-wide kernel kind, fixed on first use (`ST_KERNEL`, default
/// blocked).
pub fn kernel_kind() -> KernelKind {
    *ACTIVE_KERNEL.get_or_init(kind_from_env)
}

/// The active backend every [`crate::Matrix`] operation dispatches to.
pub fn kernel() -> &'static dyn GemmBackend {
    kernel_kind().backend()
}

/// Fixes the process-wide kernel before first use (the CLI's `--kernel`).
///
/// # Errors
/// Returns the already-active kind when a *different* kernel was selected
/// earlier (by `ST_KERNEL`, a prior call, or first use); selecting the
/// active kind again is a no-op `Ok`.
pub fn set_kernel(kind: KernelKind) -> Result<(), KernelKind> {
    let active = *ACTIVE_KERNEL.get_or_init(|| kind);
    if active == kind {
        Ok(())
    } else {
        Err(active)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, seed: u64) -> Vec<f64> {
        let mut rng = crate::resample::SplitMix64::new(seed);
        (0..len).map(|_| rng.next_f64() * 4.0 - 2.0).collect()
    }

    fn assert_bits_eq(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn blocked_gemm_matches_naive_bitwise() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (2, 3, 4),
            (7, 5, 3),
            (17, 13, 11),
            (64, 64, 64),
            (65, 67, 66),
            (130, 70, 150),
        ] {
            let a = fill(m * k, 1 + m as u64);
            let b = fill(k * n, 2 + n as u64);
            let mut on = vec![0.0; m * n];
            let mut ob = vec![0.0; m * n];
            NaiveKernel.gemm(m, k, n, &a, &b, &mut on);
            BlockedKernel.gemm(m, k, n, &a, &b, &mut ob);
            assert_bits_eq(&on, &ob);
        }
    }

    #[test]
    fn blocked_nt_tn_match_naive_bitwise() {
        let (m, k, n) = (19, 23, 17);
        let a = fill(m * k, 3);
        let bt = fill(n * k, 4);
        let b = fill(m * n, 5);
        let mut x = vec![0.0; m * n];
        let mut y = vec![0.0; m * n];
        NaiveKernel.gemm_nt(m, k, n, &a, &bt, &mut x);
        BlockedKernel.gemm_nt(m, k, n, &a, &bt, &mut y);
        assert_bits_eq(&x, &y);
        let mut u = vec![0.0; k * n];
        let mut v = vec![0.0; k * n];
        NaiveKernel.gemm_tn(m, k, n, &a, &b, &mut u);
        BlockedKernel.gemm_tn(m, k, n, &a, &b, &mut v);
        assert_bits_eq(&u, &v);
    }

    #[test]
    fn gemm_tn_equals_explicit_transpose_product() {
        let (m, k, n) = (9, 4, 6);
        let a = fill(m * k, 6);
        let b = fill(m * n, 7);
        let mut at = vec![0.0; m * k];
        NaiveKernel.transpose(m, k, &a, &mut at);
        let mut want = vec![0.0; k * n];
        NaiveKernel.gemm(k, m, n, &at, &b, &mut want);
        let mut got = vec![0.0; k * n];
        NaiveKernel.gemm_tn(m, k, n, &a, &b, &mut got);
        assert_bits_eq(&want, &got);
    }

    #[test]
    fn gemm_nt_equals_explicit_transpose_product() {
        let (m, k, n) = (8, 5, 7);
        let a = fill(m * k, 8);
        let bt = fill(n * k, 9);
        let mut b = vec![0.0; n * k];
        NaiveKernel.transpose(n, k, &bt, &mut b);
        let mut want = vec![0.0; m * n];
        NaiveKernel.gemm(m, k, n, &a, &b, &mut want);
        let mut got = vec![0.0; m * n];
        NaiveKernel.gemm_nt(m, k, n, &a, &bt, &mut got);
        assert_bits_eq(&want, &got);
    }

    #[test]
    fn vector_ops_match_bitwise() {
        let (rows, cols) = (21, 15);
        let a = fill(rows * cols, 10);
        let v = fill(cols, 11);
        let w = fill(rows, 12);
        let mut x = vec![0.0; rows];
        let mut y = vec![0.0; rows];
        NaiveKernel.matvec(rows, cols, &a, &v, &mut x);
        BlockedKernel.matvec(rows, cols, &a, &v, &mut y);
        assert_bits_eq(&x, &y);
        let mut s = vec![0.0; cols];
        let mut t = vec![0.0; cols];
        NaiveKernel.matvec_t(rows, cols, &a, &w, &mut s);
        BlockedKernel.matvec_t(rows, cols, &a, &w, &mut t);
        assert_bits_eq(&s, &t);
    }

    #[test]
    fn transposes_match_and_invert() {
        let (rows, cols) = (37, 41);
        let a = fill(rows * cols, 13);
        let mut x = vec![0.0; rows * cols];
        let mut y = vec![0.0; rows * cols];
        NaiveKernel.transpose(rows, cols, &a, &mut x);
        BlockedKernel.transpose(rows, cols, &a, &mut y);
        assert_bits_eq(&x, &y);
        let mut back = vec![0.0; rows * cols];
        BlockedKernel.transpose(cols, rows, &y, &mut back);
        assert_bits_eq(&a, &back);
    }

    #[test]
    fn empty_shapes_are_noops() {
        let mut out: Vec<f64> = Vec::new();
        BlockedKernel.gemm(0, 3, 0, &[], &fill(0, 1), &mut out);
        NaiveKernel.gemm(0, 0, 0, &[], &[], &mut out);
        let mut o2 = vec![0.0; 4];
        // 0-row gemm_tn leaves the accumulator untouched.
        BlockedKernel.gemm_tn(0, 2, 2, &[], &[], &mut o2);
        assert!(o2.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn kind_parsing_round_trips() {
        for kind in KernelKind::ALL {
            assert_eq!(KernelKind::from_name(kind.name()), Some(kind));
            assert_eq!(kind.backend().name(), kind.name());
        }
        assert_eq!(
            KernelKind::from_name(" Blocked "),
            Some(KernelKind::Blocked)
        );
        assert_eq!(KernelKind::from_name("mkl"), None);
        assert!(kernel_names().contains("sharded"));
    }

    #[test]
    fn only_fast_waives_bit_determinism() {
        for kind in KernelKind::ALL {
            assert_eq!(kind.bit_deterministic(), kind != KernelKind::Fast);
        }
    }

    #[test]
    fn set_kernel_is_idempotent_and_sticky() {
        let active = kernel_kind();
        assert!(set_kernel(active).is_ok(), "re-selecting active is a no-op");
        let other = match active {
            KernelKind::Naive => KernelKind::Blocked,
            _ => KernelKind::Naive,
        };
        assert_eq!(set_kernel(other), Err(active));
    }

    #[test]
    fn simd_gemm_matches_naive_bitwise() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (2, 3, 4),
            (7, 5, 3),
            (17, 13, 11),
            (64, 64, 64),
            (65, 67, 66),
            (130, 70, 150),
        ] {
            let a = fill(m * k, 21 + m as u64);
            let b = fill(k * n, 22 + n as u64);
            let mut on = vec![0.0; m * n];
            let mut os = vec![0.0; m * n];
            NaiveKernel.gemm(m, k, n, &a, &b, &mut on);
            SimdKernel.gemm(m, k, n, &a, &b, &mut os);
            assert_bits_eq(&on, &os);
        }
    }

    #[test]
    fn simd_nt_tn_match_naive_bitwise() {
        let (m, k, n) = (19, 23, 17);
        let a = fill(m * k, 31);
        let bt = fill(n * k, 32);
        let b = fill(m * n, 33);
        let mut x = vec![0.0; m * n];
        let mut y = vec![0.0; m * n];
        NaiveKernel.gemm_nt(m, k, n, &a, &bt, &mut x);
        SimdKernel.gemm_nt(m, k, n, &a, &bt, &mut y);
        assert_bits_eq(&x, &y);
        let mut u = vec![0.0; k * n];
        let mut v = vec![0.0; k * n];
        NaiveKernel.gemm_tn(m, k, n, &a, &b, &mut u);
        SimdKernel.gemm_tn(m, k, n, &a, &b, &mut v);
        assert_bits_eq(&u, &v);
    }

    #[test]
    fn sharded_matches_naive_at_every_thread_count() {
        let (m, k, n) = (33, 29, 37);
        let a = fill(m * k, 41);
        let b = fill(k * n, 42);
        let bt = fill(n * k, 43);
        let c = fill(m * n, 44);
        let mut want_g = vec![0.0; m * n];
        let mut want_nt = vec![0.0; m * n];
        let mut want_tn = vec![0.0; k * n];
        NaiveKernel.gemm(m, k, n, &a, &b, &mut want_g);
        NaiveKernel.gemm_nt(m, k, n, &a, &bt, &mut want_nt);
        NaiveKernel.gemm_tn(m, k, n, &a, &c, &mut want_tn);
        for threads in [1, 2, 3, 8, 64] {
            let kernel = ShardedKernel::with_threads(threads);
            let mut g = vec![0.0; m * n];
            let mut nt = vec![0.0; m * n];
            let mut tn = vec![0.0; k * n];
            kernel.gemm(m, k, n, &a, &b, &mut g);
            kernel.gemm_nt(m, k, n, &a, &bt, &mut nt);
            kernel.gemm_tn(m, k, n, &a, &c, &mut tn);
            assert_bits_eq(&want_g, &g);
            assert_bits_eq(&want_nt, &nt);
            assert_bits_eq(&want_tn, &tn);
        }
    }

    #[test]
    fn sharded_fans_out_above_the_work_threshold() {
        // 128^3 > SHARD_MIN_WORK, so this exercises the actual spawn path
        // (with_threads(3) bypasses the process budget on 1-core hosts).
        let (m, k, n) = (128, 128, 128);
        let a = fill(m * k, 51);
        let b = fill(k * n, 52);
        let mut want = vec![0.0; m * n];
        NaiveKernel.gemm(m, k, n, &a, &b, &mut want);
        let mut got = vec![0.0; m * n];
        ShardedKernel::with_threads(3).gemm(m, k, n, &a, &b, &mut got);
        assert_bits_eq(&want, &got);
    }

    #[test]
    fn shard_ranges_cover_exactly_once() {
        for (total, workers) in [(10, 3), (1, 8), (0, 4), (7, 7), (64, 5), (3, 1)] {
            let ranges = shard_ranges(total, workers);
            let mut next = 0;
            for &(s, e) in &ranges {
                assert_eq!(s, next, "contiguous");
                assert!(e > s, "non-empty");
                next = e;
            }
            assert_eq!(next, total, "covers all of {total} with {workers}");
            assert!(ranges.len() <= workers.max(1));
        }
    }

    #[test]
    fn fast_kernel_is_accurate_if_not_bit_identical() {
        let (m, k, n) = (24, 31, 18);
        let a = fill(m * k, 61);
        let b = fill(k * n, 62);
        let mut want = vec![0.0; m * n];
        NaiveKernel.gemm(m, k, n, &a, &b, &mut want);
        let mut got = vec![0.0; m * n];
        FastKernel.gemm(m, k, n, &a, &b, &mut got);
        for (w, g) in want.iter().zip(&got) {
            assert!((w - g).abs() <= 1e-9 * (1.0 + w.abs()), "{w} vs {g}");
        }
        let mut mv_want = vec![0.0; m];
        let mut mv_got = vec![0.0; m];
        let v = fill(k, 63);
        NaiveKernel.matvec(m, k, &a, &v, &mut mv_want);
        FastKernel.matvec(m, k, &a, &v, &mut mv_got);
        for (w, g) in mv_want.iter().zip(&mv_got) {
            assert!((w - g).abs() <= 1e-9 * (1.0 + w.abs()), "{w} vs {g}");
        }
    }

    #[test]
    fn prepacked_matches_pack_on_call_bitwise() {
        // Every backend, every prepacked entry point, across degenerate,
        // small-m (axpy fallback boundary), and general shapes: the
        // prepacked product must equal its pack-on-call twin bit-for-bit.
        let sharded = ShardedKernel::with_threads(3);
        let backends: [&dyn GemmBackend; 5] = [
            &NaiveKernel,
            &BlockedKernel,
            &SimdKernel,
            &sharded,
            &FastKernel,
        ];
        for &(m, k, n) in &[(1, 1, 1), (3, 9, 8), (7, 5, 3), (17, 13, 11), (33, 29, 37)] {
            let a = fill(m * k, 71 + m as u64);
            let b = fill(k * n, 72 + n as u64);
            let bt = fill(n * k, 73 + k as u64);
            let c = fill(m * n, 74 + m as u64);
            for backend in backends {
                let name = backend.name();

                let mut plain = vec![0.0; m * n];
                backend.gemm(m, k, n, &a, &b, &mut plain);
                let pb = backend.pack_b(k, n, &b);
                assert_eq!((pb.k(), pb.n()), (k, n));
                let mut packed = vec![0.0; m * n];
                backend.gemm_prepacked(m, k, n, &a, &pb, &mut packed);
                assert_bits_eq(&plain, &packed);

                let mut plain_nt = vec![0.0; m * n];
                backend.gemm_nt(m, k, n, &a, &bt, &mut plain_nt);
                let pbt = backend.pack_b_t(k, n, &bt);
                let mut packed_nt = vec![0.0; m * n];
                backend.gemm_nt_prepacked(m, k, n, &a, &pbt, &mut packed_nt);
                // `fast` reassociates, so its nt twin is only guaranteed
                // close; every deterministic backend must match bitwise.
                if name != "fast" {
                    assert_bits_eq(&plain_nt, &packed_nt);
                } else {
                    for (x, y) in plain_nt.iter().zip(&packed_nt) {
                        assert!((x - y).abs() <= 1e-9 * (1.0 + x.abs()), "{x} vs {y}");
                    }
                }

                let mut plain_tn = vec![0.0; k * n];
                backend.gemm_tn(m, k, n, &a, &c, &mut plain_tn);
                let pa = backend.pack_a(m, k, &a);
                assert_eq!((pa.m(), pa.k()), (m, k));
                let mut packed_tn = vec![0.0; k * n];
                backend.gemm_tn_prepacked(m, k, n, &pa, &c, &mut packed_tn);
                if name != "fast" {
                    assert_bits_eq(&plain_tn, &packed_tn);
                } else {
                    for (x, y) in plain_tn.iter().zip(&packed_tn) {
                        assert!((x - y).abs() <= 1e-9 * (1.0 + x.abs()), "{x} vs {y}");
                    }
                }
            }
        }
    }

    #[test]
    fn fused_bias_matches_separate_pass_bitwise() {
        // The fused-bias contract: `gemm_prepacked_bias` must equal
        // `gemm_prepacked` followed by a separate bias pass, bit for bit,
        // on the same backend — including the k == 0 edge (bias only),
        // narrow tails, and the raw fallback handles.
        let sharded = ShardedKernel::with_threads(3);
        let backends: [&dyn GemmBackend; 5] = [
            &NaiveKernel,
            &BlockedKernel,
            &SimdKernel,
            &sharded,
            &FastKernel,
        ];
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 9, 8),
            (7, 5, 3),
            (17, 13, 11),
            (33, 29, 37),
            (4, 0, 6),
            (0, 3, 5),
            (5, 4, 0),
            (2, 8, 30),
        ] {
            let a = fill(m * k, 91 + m as u64);
            let b = fill(k * n, 92 + n as u64);
            let bias = fill(n, 93 + k as u64);
            for backend in backends {
                let pb = backend.pack_b(k, n, &b);
                let mut want = vec![0.0; m * n];
                backend.gemm_prepacked(m, k, n, &a, &pb, &mut want);
                for row in want.chunks_exact_mut(n.max(1)) {
                    for (o, &bv) in row.iter_mut().zip(&bias) {
                        *o += bv;
                    }
                }
                let mut got = vec![0.0; m * n];
                backend.gemm_prepacked_bias(m, k, n, &a, &pb, &bias, &mut got);
                assert_bits_eq(&want, &got);
            }
        }
    }

    #[test]
    fn fused_bias_fans_out_above_the_work_threshold() {
        // 128^3 > SHARD_MIN_WORK: exercises the fused sharded spawn path.
        let (m, k, n) = (128, 128, 128);
        let a = fill(m * k, 94);
        let b = fill(k * n, 95);
        let bias = fill(n, 96);
        let backend = ShardedKernel::with_threads(3);
        let pb = backend.pack_b(k, n, &b);
        let mut want = vec![0.0; m * n];
        backend.gemm_prepacked(m, k, n, &a, &pb, &mut want);
        for row in want.chunks_exact_mut(n) {
            for (o, &bv) in row.iter_mut().zip(&bias) {
                *o += bv;
            }
        }
        let mut got = vec![0.0; m * n];
        backend.gemm_prepacked_bias(m, k, n, &a, &pb, &bias, &mut got);
        assert_bits_eq(&want, &got);
    }

    #[test]
    #[should_panic(expected = "bias length mismatch")]
    fn fused_bias_rejects_wrong_bias_length() {
        let pb = SimdKernel.pack_b(4, 4, &fill(16, 97));
        let mut out = vec![0.0; 3 * 4];
        SimdKernel.gemm_prepacked_bias(3, 4, 4, &fill(12, 98), &pb, &fill(3, 99), &mut out);
    }

    fn relu_reference(out: &mut [f64]) {
        // Mirror of the model stack's epilogue: keeps -0.0 and NaN.
        for v in out {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
    }

    #[test]
    fn fused_relu_matches_separate_pass_bitwise() {
        // `gemm_prepacked_bias_relu` must equal `gemm_prepacked_bias`
        // followed by the model stack's scalar clamp, bit for bit, on the
        // same backend — the clamp happens at each element's single
        // write-back, never inside a summation chain.
        let sharded = ShardedKernel::with_threads(3);
        let backends: [&dyn GemmBackend; 5] = [
            &NaiveKernel,
            &BlockedKernel,
            &SimdKernel,
            &sharded,
            &FastKernel,
        ];
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 9, 8),
            (7, 5, 3),
            (17, 13, 11),
            (33, 29, 37),
            (4, 0, 6),
            (0, 3, 5),
            (5, 4, 0),
            (2, 8, 30),
        ] {
            let a = fill(m * k, 141 + m as u64);
            let b = fill(k * n, 142 + n as u64);
            let bias = fill(n, 143 + k as u64);
            for backend in backends {
                let pb = backend.pack_b(k, n, &b);
                let mut want = vec![0.0; m * n];
                backend.gemm_prepacked_bias(m, k, n, &a, &pb, &bias, &mut want);
                relu_reference(&mut want);
                let mut got = vec![0.0; m * n];
                backend.gemm_prepacked_bias_relu(m, k, n, &a, &pb, &bias, &mut got);
                assert_bits_eq(&want, &got);
            }
        }
    }

    #[test]
    fn fused_relu_keeps_negative_zero_and_fans_out() {
        // The clamp is `< 0.0`, not `max`: -0.0 and NaN pass through
        // unchanged, exactly like the model stack's scalar epilogue.
        let mut v = [-0.0, f64::NAN, -3.0, 2.0, 0.0];
        relu_rows(&mut v);
        assert_eq!(v[0].to_bits(), (-0.0f64).to_bits());
        assert!(v[1].is_nan());
        assert_eq!(v[2].to_bits(), 0.0f64.to_bits());
        assert_eq!(v[3].to_bits(), 2.0f64.to_bits());
        assert_eq!(v[4].to_bits(), 0.0f64.to_bits());
        // k == 0 broadcasts the bias into a caller-zeroed out, then clamps.
        let bias = [-1.0, 1.5, -2.0, 0.25];
        for backend in [
            &NaiveKernel as &dyn GemmBackend,
            &BlockedKernel,
            &SimdKernel,
            &ShardedKernel::with_threads(2),
        ] {
            let pb = backend.pack_b(0, 4, &[]);
            let mut out = vec![0.0; 2 * 4];
            backend.gemm_prepacked_bias_relu(2, 0, 4, &[], &pb, &bias, &mut out);
            for row in out.chunks_exact(4) {
                assert_eq!(row[0].to_bits(), 0.0f64.to_bits());
                assert_eq!(row[1].to_bits(), 1.5f64.to_bits());
                assert_eq!(row[2].to_bits(), 0.0f64.to_bits());
                assert_eq!(row[3].to_bits(), 0.25f64.to_bits());
            }
        }
        // 128^3 > SHARD_MIN_WORK: exercises the fused-relu sharded spawn.
        let (m, k, n) = (128, 128, 128);
        let a = fill(m * k, 144);
        let b = fill(k * n, 145);
        let bias = fill(n, 146);
        let backend = ShardedKernel::with_threads(3);
        let pb = backend.pack_b(k, n, &b);
        let mut want = vec![0.0; m * n];
        backend.gemm_prepacked_bias(m, k, n, &a, &pb, &bias, &mut want);
        relu_reference(&mut want);
        let mut got = vec![0.0; m * n];
        backend.gemm_prepacked_bias_relu(m, k, n, &a, &pb, &bias, &mut got);
        assert_bits_eq(&want, &got);
    }

    #[test]
    fn batched_gemm_matches_sequential_bitwise() {
        // All three operand modes (block-diagonal, shared-A, shared-B)
        // must reproduce the N-sequential-`gemm` bits on every backend.
        let sharded = ShardedKernel::with_threads(3);
        let backends: [&dyn GemmBackend; 5] = [
            &NaiveKernel,
            &BlockedKernel,
            &SimdKernel,
            &sharded,
            &FastKernel,
        ];
        let batch = 5usize;
        for &(m, k, n) in &[(1, 1, 1), (3, 9, 8), (7, 5, 3), (17, 13, 11), (2, 8, 30)] {
            let avs: Vec<Vec<f64>> = (0..batch)
                .map(|i| fill(m * k, 151 + (i * 7 + m) as u64))
                .collect();
            let bvs: Vec<Vec<f64>> = (0..batch)
                .map(|i| fill(k * n, 152 + (i * 11 + n) as u64))
                .collect();
            for backend in backends {
                for (shared_a, shared_b) in [(false, false), (true, false), (false, true)] {
                    let a: Vec<&[f64]> = if shared_a {
                        vec![avs[0].as_slice()]
                    } else {
                        avs.iter().map(|v| v.as_slice()).collect()
                    };
                    let b: Vec<&[f64]> = if shared_b {
                        vec![bvs[0].as_slice()]
                    } else {
                        bvs.iter().map(|v| v.as_slice()).collect()
                    };
                    let mut want = vec![vec![0.0; m * n]; batch];
                    for (i, w) in want.iter_mut().enumerate() {
                        let ai = if shared_a { 0 } else { i };
                        let bi = if shared_b { 0 } else { i };
                        backend.gemm(m, k, n, &avs[ai], &bvs[bi], w);
                    }
                    let mut store = vec![vec![0.0; m * n]; batch];
                    let mut outs: Vec<&mut [f64]> =
                        store.iter_mut().map(|v| v.as_mut_slice()).collect();
                    backend.gemm_batched(m, k, n, &a, &b, &mut outs);
                    for (w, g) in want.iter().zip(&store) {
                        assert_bits_eq(w, g);
                    }
                }
            }
        }
    }

    #[test]
    fn batched_nt_tn_match_sequential_bitwise() {
        let (m, k, n) = (9, 7, 6);
        let batch = 4usize;
        let avs: Vec<Vec<f64>> = (0..batch).map(|i| fill(m * k, 161 + i as u64)).collect();
        let btvs: Vec<Vec<f64>> = (0..batch).map(|i| fill(n * k, 162 + i as u64)).collect();
        let bvs: Vec<Vec<f64>> = (0..batch).map(|i| fill(m * n, 163 + i as u64)).collect();
        let sharded = ShardedKernel::with_threads(2);
        for backend in [
            &NaiveKernel as &dyn GemmBackend,
            &BlockedKernel,
            &SimdKernel,
            &sharded,
        ] {
            let a: Vec<&[f64]> = avs.iter().map(|v| v.as_slice()).collect();
            let bt: Vec<&[f64]> = btvs.iter().map(|v| v.as_slice()).collect();
            let mut want = vec![vec![0.0; m * n]; batch];
            for (i, w) in want.iter_mut().enumerate() {
                backend.gemm_nt(m, k, n, &avs[i], &btvs[i], w);
            }
            let mut store = vec![vec![0.0; m * n]; batch];
            let mut outs: Vec<&mut [f64]> = store.iter_mut().map(|v| v.as_mut_slice()).collect();
            backend.gemm_batched_nt(m, k, n, &a, &bt, &mut outs);
            for (w, g) in want.iter().zip(&store) {
                assert_bits_eq(w, g);
            }

            let b: Vec<&[f64]> = bvs.iter().map(|v| v.as_slice()).collect();
            let mut want_tn = vec![vec![0.0; k * n]; batch];
            for (i, w) in want_tn.iter_mut().enumerate() {
                backend.gemm_tn(m, k, n, &avs[i], &bvs[i], w);
            }
            let mut store_tn = vec![vec![0.0; k * n]; batch];
            let mut outs_tn: Vec<&mut [f64]> =
                store_tn.iter_mut().map(|v| v.as_mut_slice()).collect();
            backend.gemm_batched_tn(m, k, n, &a, &b, &mut outs_tn);
            for (w, g) in want_tn.iter().zip(&store_tn) {
                assert_bits_eq(w, g);
            }
        }
    }

    #[test]
    fn batched_prepacked_variants_match_sequential_bitwise() {
        let (m, k, n) = (6, 11, 9);
        let batch = 4usize;
        let avs: Vec<Vec<f64>> = (0..batch).map(|i| fill(m * k, 171 + i as u64)).collect();
        let bvs: Vec<Vec<f64>> = (0..batch).map(|i| fill(k * n, 172 + i as u64)).collect();
        let biasvs: Vec<Vec<f64>> = (0..batch).map(|i| fill(n, 173 + i as u64)).collect();
        let sharded = ShardedKernel::with_threads(2);
        for backend in [
            &NaiveKernel as &dyn GemmBackend,
            &BlockedKernel,
            &SimdKernel,
            &sharded,
        ] {
            let packs: Vec<PackedB> = bvs.iter().map(|b| backend.pack_b(k, n, b)).collect();
            let a: Vec<&[f64]> = avs.iter().map(|v| v.as_slice()).collect();
            let pbs: Vec<&PackedB> = packs.iter().collect();
            let biases: Vec<&[f64]> = biasvs.iter().map(|v| v.as_slice()).collect();

            let mut want = vec![vec![0.0; m * n]; batch];
            for (i, w) in want.iter_mut().enumerate() {
                backend.gemm_prepacked(m, k, n, &avs[i], &packs[i], w);
            }
            let mut store = vec![vec![0.0; m * n]; batch];
            let mut outs: Vec<&mut [f64]> = store.iter_mut().map(|v| v.as_mut_slice()).collect();
            backend.gemm_batched_prepacked(m, k, n, &a, &pbs, &mut outs);
            for (w, g) in want.iter().zip(&store) {
                assert_bits_eq(w, g);
            }

            let mut want_b = vec![vec![0.0; m * n]; batch];
            for (i, w) in want_b.iter_mut().enumerate() {
                backend.gemm_prepacked_bias(m, k, n, &avs[i], &packs[i], &biasvs[i], w);
            }
            let mut store_b = vec![vec![0.0; m * n]; batch];
            let mut outs_b: Vec<&mut [f64]> =
                store_b.iter_mut().map(|v| v.as_mut_slice()).collect();
            backend.gemm_batched_prepacked_bias(m, k, n, &a, &pbs, &biases, &mut outs_b);
            for (w, g) in want_b.iter().zip(&store_b) {
                assert_bits_eq(w, g);
            }

            let mut want_r = vec![vec![0.0; m * n]; batch];
            for (i, w) in want_r.iter_mut().enumerate() {
                backend.gemm_prepacked_bias_relu(m, k, n, &avs[i], &packs[i], &biasvs[i], w);
            }
            let mut store_r = vec![vec![0.0; m * n]; batch];
            let mut outs_r: Vec<&mut [f64]> =
                store_r.iter_mut().map(|v| v.as_mut_slice()).collect();
            backend.gemm_batched_prepacked_bias_relu(m, k, n, &a, &pbs, &biases, &mut outs_r);
            for (w, g) in want_r.iter().zip(&store_r) {
                assert_bits_eq(w, g);
            }
        }
    }

    #[test]
    fn sharded_batched_fans_products_above_the_work_threshold() {
        // 8 × 64^3 = 2 MiB of MACs > SHARD_MIN_WORK: exercises the
        // product-level fan-out, shared-B hoisted pack included.
        let (m, k, n) = (64, 64, 64);
        let batch = 8usize;
        let avs: Vec<Vec<f64>> = (0..batch).map(|i| fill(m * k, 181 + i as u64)).collect();
        let bvs: Vec<Vec<f64>> = (0..batch).map(|i| fill(k * n, 182 + i as u64)).collect();
        let backend = ShardedKernel::with_threads(3);
        for shared_b in [false, true] {
            let a: Vec<&[f64]> = avs.iter().map(|v| v.as_slice()).collect();
            let b: Vec<&[f64]> = if shared_b {
                vec![bvs[0].as_slice()]
            } else {
                bvs.iter().map(|v| v.as_slice()).collect()
            };
            let mut want = vec![vec![0.0; m * n]; batch];
            for (i, w) in want.iter_mut().enumerate() {
                let bi = if shared_b { 0 } else { i };
                NaiveKernel.gemm(m, k, n, &avs[i], &bvs[bi], w);
            }
            let mut store = vec![vec![0.0; m * n]; batch];
            let mut outs: Vec<&mut [f64]> = store.iter_mut().map(|v| v.as_mut_slice()).collect();
            backend.gemm_batched(m, k, n, &a, &b, &mut outs);
            for (w, g) in want.iter().zip(&store) {
                assert_bits_eq(w, g);
            }
        }
    }

    #[test]
    #[should_panic(expected = "batched A operand count mismatch")]
    fn batched_rejects_operand_count_mismatch() {
        let a1 = fill(6, 191);
        let a2 = fill(6, 192);
        let b1 = fill(6, 193);
        let mut o1 = vec![0.0; 4];
        let mut o2 = vec![0.0; 4];
        let mut o3 = vec![0.0; 4];
        let mut outs: Vec<&mut [f64]> = vec![&mut o1, &mut o2, &mut o3];
        SimdKernel.gemm_batched(2, 3, 2, &[&a1, &a2], &[&b1], &mut outs);
    }

    #[test]
    fn prepacked_handle_reused_across_calls() {
        // The point of the API: pack once, multiply many different
        // left-hand sides — each call must match its pack-on-call twin.
        let (k, n) = (23, 17);
        let b = fill(k * n, 81);
        for backend in [
            &BlockedKernel as &dyn GemmBackend,
            &SimdKernel,
            &ShardedKernel::with_threads(2),
        ] {
            let pb = backend.pack_b(k, n, &b);
            for (round, &m) in [1usize, 6, 13].iter().enumerate() {
                let a = fill(m * k, 82 + round as u64);
                let mut plain = vec![0.0; m * n];
                backend.gemm(m, k, n, &a, &b, &mut plain);
                let mut packed = vec![0.0; m * n];
                backend.gemm_prepacked(m, k, n, &a, &pb, &mut packed);
                assert_bits_eq(&plain, &packed);
            }
        }
    }

    #[test]
    fn sharded_prepacked_fans_out_above_the_work_threshold() {
        // 128^3 > SHARD_MIN_WORK: exercises the prepacked spawn path.
        let (m, k, n) = (128, 128, 128);
        let a = fill(m * k, 83);
        let b = fill(k * n, 84);
        let mut want = vec![0.0; m * n];
        NaiveKernel.gemm(m, k, n, &a, &b, &mut want);
        let backend = ShardedKernel::with_threads(3);
        let pb = backend.pack_b(k, n, &b);
        let mut got = vec![0.0; m * n];
        backend.gemm_prepacked(m, k, n, &a, &pb, &mut got);
        assert_bits_eq(&want, &got);
    }

    #[test]
    fn pack_b_into_reuses_allocation_and_repacks() {
        let (k, n) = (31, 24);
        let b1 = fill(k * n, 85);
        let b2 = fill(k * n, 86);
        let mut pb = PackedB::default();
        SimdKernel.pack_b_into(k, n, &b1, &mut pb);
        let cap = pb.data.capacity();
        let a = fill(9 * k, 87);
        let mut first = vec![0.0; 9 * n];
        SimdKernel.gemm_prepacked(9, k, n, &a, &pb, &mut first);
        // Re-pack (the optimizer-update invalidation path) into the same
        // allocation; results must track the new operand.
        SimdKernel.pack_b_into(k, n, &b2, &mut pb);
        assert_eq!(pb.data.capacity(), cap, "allocation reused");
        let mut second = vec![0.0; 9 * n];
        SimdKernel.gemm_prepacked(9, k, n, &a, &pb, &mut second);
        let mut want = vec![0.0; 9 * n];
        SimdKernel.gemm(9, k, n, &a, &b2, &mut want);
        assert_bits_eq(&want, &second);
    }

    #[test]
    fn prepacked_empty_shapes_are_noops() {
        let pb = BlockedKernel.pack_b(0, 4, &[]);
        let mut out = vec![1.0; 0];
        BlockedKernel.gemm_prepacked(0, 0, 4, &[], &pb, &mut out);
        let pb2 = SimdKernel.pack_b(3, 0, &[]);
        let mut out2: Vec<f64> = Vec::new();
        SimdKernel.gemm_prepacked(2, 3, 0, &fill(6, 1), &pb2, &mut out2);
        let pa = NaiveKernel.pack_a(0, 2, &[]);
        let mut out3 = vec![0.0; 2 * 3];
        NaiveKernel.gemm_tn_prepacked(0, 2, 3, &pa, &[], &mut out3);
        assert!(out3.iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "prepacked B shape mismatch")]
    fn prepacked_shape_mismatch_is_rejected() {
        let pb = BlockedKernel.pack_b(4, 4, &fill(16, 1));
        let mut out = vec![0.0; 3 * 5];
        BlockedKernel.gemm_prepacked(3, 4, 5, &fill(12, 2), &pb, &mut out);
    }

    #[test]
    fn simd_force_names_lists_both_values() {
        assert_eq!(simd_force_names(), "avx2 | scalar");
    }

    #[test]
    fn kernel_thread_budget_overrides_and_resets() {
        // Not run in parallel with anything that reads the budget: the
        // other kernel tests pin thread counts per-instance.
        let before = kernel_threads();
        set_kernel_threads(5);
        assert_eq!(kernel_threads(), 5);
        set_kernel_threads(0);
        assert_eq!(kernel_threads(), before, "0 resets to automatic");
    }
}
