//! Offline stand-in for the subset of `parking_lot` this workspace uses.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` returns a guard directly (a panicked holder does not poison the
//! lock — the data is recovered and handed to the next holder, matching
//! parking_lot semantics closely enough for this workspace, which never
//! relies on poisoning). See `vendor/README.md` for why this exists.

use std::sync::TryLockError;

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose acquisitions cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7, "no poisoning");
    }

    #[test]
    fn into_inner_returns_value() {
        let m = Mutex::new(vec![1, 2, 3]);
        m.lock().push(4);
        assert_eq!(m.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(l.into_inner(), 2);
    }
}
