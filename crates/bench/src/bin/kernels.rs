//! Microbenchmark of the pluggable compute-kernel layer: every backend on
//! the dense shapes the trainers actually hit, with a bit-identity
//! cross-check (or, for the reassociating `fast` backend, a relative-error
//! check) on every timed shape, plus a batched small-shape group timing
//! one `gemm_batched` call against its sequential per-product loop.
//!
//! ```text
//! cargo run --release -p st_bench --bin kernels
//! ```
//!
//! Gates enforced at the end (ST_QUICK=1 for a faster sweep, same checks):
//!
//! * `blocked` ≥ 2× `naive` on 256×256 matmul (PR 2's bar);
//! * `simd` ≥ 1.5× `blocked` on 256×256 matmul on hosts whose AVX-512
//!   path is live, measured as the best of several interleaved rounds;
//!   on AVX2-only hosts the bar is parity, because `blocked`'s
//!   auto-vectorized core already saturates the 256-bit mul/add ports
//!   (see docs/kernels.md), and the AVX2 `simd` path is gated on ≥ 1×;
//! * `sharded` bit-identical to `naive` at 1, 2, and 4 worker threads on
//!   every gated shape, and faster than `simd` on multi-core hosts (the
//!   speed half is skipped, with a note, on single-core containers).

use st_bench::{assert_bits_identical, bench_fill as fill, best_secs, rule};
use st_linalg::{
    kernel_threads, BlockedKernel, FastKernel, GemmBackend, NaiveKernel, ShardedKernel, SimdKernel,
};

/// `fast` waives bit-identity; it still has to be *numerically* right.
fn assert_close(op: &str, a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "{op}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= 1e-9 * (1.0 + x.abs()),
            "{op}: outputs diverge at {i}: {x} vs {y}"
        );
    }
}

/// One timed operation on one shape across all backends.
enum Op {
    /// `m×k · k×n`.
    Gemm(usize, usize, usize),
    /// `m×k · (n×k)ᵀ` (backprop `dZ·Wᵀ`).
    GemmNt(usize, usize, usize),
    /// `(m×k)ᵀ · m×n` (gradient `Xᵀ·dZ`).
    GemmTn(usize, usize, usize),
    /// `rows×cols · v`.
    Matvec(usize, usize),
}

impl Op {
    fn label(&self) -> String {
        match *self {
            Op::Gemm(m, k, n) if m == k && k == n => format!("matmul {m}x{n}"),
            Op::Gemm(m, k, n) => format!("gemm {m}x{k}x{n}"),
            Op::GemmNt(m, k, n) => format!("gemm_nt {m}x{k}x{n}"),
            Op::GemmTn(m, k, n) => format!("gemm_tn {m}x{k}x{n}"),
            Op::Matvec(r, c) => format!("matvec {r}x{c}"),
        }
    }

    fn flops(&self) -> f64 {
        match *self {
            Op::Gemm(m, k, n) | Op::GemmNt(m, k, n) | Op::GemmTn(m, k, n) => {
                2.0 * (m * k * n) as f64
            }
            Op::Matvec(r, c) => 2.0 * (r * c) as f64,
        }
    }

    /// Runs the op with `backend` once, returning the output buffer.
    fn run(&self, backend: &dyn GemmBackend, seed: u64, out: &mut Vec<f64>) {
        match *self {
            Op::Gemm(m, k, n) => {
                let a = fill(m * k, seed);
                let b = fill(k * n, seed ^ 1);
                out.clear();
                out.resize(m * n, 0.0);
                backend.gemm(m, k, n, &a, &b, out);
            }
            Op::GemmNt(m, k, n) => {
                let a = fill(m * k, seed);
                let bt = fill(n * k, seed ^ 2);
                out.clear();
                out.resize(m * n, 0.0);
                backend.gemm_nt(m, k, n, &a, &bt, out);
            }
            Op::GemmTn(m, k, n) => {
                let a = fill(m * k, seed);
                let b = fill(m * n, seed ^ 3);
                out.clear();
                out.resize(k * n, 0.0);
                backend.gemm_tn(m, k, n, &a, &b, out);
            }
            Op::Matvec(r, c) => {
                let a = fill(r * c, seed);
                let v = fill(c, seed ^ 4);
                out.clear();
                out.resize(r, 0.0);
                backend.matvec(r, c, &a, &v, out);
            }
        }
    }

    /// Times the op's core loop (inputs pre-built, output zeroed per rep).
    fn time(&self, backend: &dyn GemmBackend, seed: u64, reps: usize) -> f64 {
        match *self {
            Op::Gemm(m, k, n) => {
                let a = fill(m * k, seed);
                let b = fill(k * n, seed ^ 1);
                let mut out = vec![0.0; m * n];
                best_secs(reps, || {
                    out.fill(0.0);
                    backend.gemm(m, k, n, &a, &b, &mut out);
                })
            }
            Op::GemmNt(m, k, n) => {
                let a = fill(m * k, seed);
                let bt = fill(n * k, seed ^ 2);
                let mut out = vec![0.0; m * n];
                best_secs(reps, || {
                    out.fill(0.0);
                    backend.gemm_nt(m, k, n, &a, &bt, &mut out);
                })
            }
            Op::GemmTn(m, k, n) => {
                let a = fill(m * k, seed);
                let b = fill(m * n, seed ^ 3);
                let mut out = vec![0.0; k * n];
                best_secs(reps, || {
                    out.fill(0.0);
                    backend.gemm_tn(m, k, n, &a, &b, &mut out);
                })
            }
            Op::Matvec(r, c) => {
                let a = fill(r * c, seed);
                let v = fill(c, seed ^ 4);
                let mut out = vec![0.0; r];
                best_secs(reps, || {
                    backend.matvec(r, c, &a, &v, &mut out);
                })
            }
        }
    }
}

fn main() {
    let quick = std::env::var("ST_QUICK").is_ok();
    let reps = if quick { 3 } else { 7 };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let sharded = ShardedKernel::new();
    let backends: [&dyn GemmBackend; 5] = [
        &NaiveKernel,
        &BlockedKernel,
        &SimdKernel,
        &sharded,
        &FastKernel,
    ];

    println!("Compute-kernel microbench — all backends (best of {reps})");
    println!(
        "host: {cores} core(s), kernel thread budget {}; active process kernel: {} \
         (every backend timed explicitly below)",
        kernel_threads(),
        st_linalg::kernel_kind().name()
    );
    #[cfg(target_arch = "x86_64")]
    println!(
        "vector units: avx2={} avx512f={} fma={}\n",
        std::arch::is_x86_feature_detected!("avx2"),
        std::arch::is_x86_feature_detected!("avx512f"),
        std::arch::is_x86_feature_detected!("fma")
    );

    // The shape tour: square matmuls, the three trainer GEMM shapes, and
    // the solver/metric matvec, per the bench-gate checklist.
    let shapes = [
        Op::Gemm(64, 64, 64),
        Op::Gemm(128, 128, 128),
        Op::Gemm(256, 256, 256),
        Op::Gemm(512, 784, 64),
        Op::GemmTn(512, 784, 64),
        Op::GemmNt(512, 64, 784),
        Op::Matvec(2048, 512),
    ];

    println!(
        "{:<20} {:>10} {:>10} {:>10} {:>10} {:>10}   (ms, GF/s below)",
        "op", "naive", "blocked", "simd", "sharded", "fast"
    );
    rule(88);
    for (si, op) in shapes.iter().enumerate() {
        let seed = 0xC0FFEE + si as u64;
        // Correctness first: every deterministic backend must be
        // bit-identical to naive; `fast` must be numerically close.
        let mut reference = Vec::new();
        op.run(&NaiveKernel, seed, &mut reference);
        let mut got = Vec::new();
        for backend in backends.iter().skip(1) {
            op.run(*backend, seed, &mut got);
            let name = backend.name();
            if name == "fast" {
                assert_close(&format!("{} [{name}]", op.label()), &reference, &got);
            } else {
                assert_bits_identical(&format!("{} [{name}]", op.label()), &reference, &got);
            }
        }

        let times: Vec<f64> = backends.iter().map(|b| op.time(*b, seed, reps)).collect();
        print!("{:<20}", op.label());
        for t in &times {
            print!(" {:>9.3}m", t * 1e3);
        }
        println!();
        print!("{:<20}", "");
        for t in &times {
            print!(" {:>10.2}", op.flops() / t / 1e9);
        }
        println!();
    }

    // ---- Batched small-shape group ---------------------------------------
    //
    // 32 independent 64×32×16 products — estimation-plane minibatch scale,
    // where per-call pack/dispatch overhead rivals the arithmetic. Two
    // variants: every product with its own `B` (the lockstep-training
    // shape — batching can only reuse the pack *allocation*, so parity is
    // the honest expectation), and all products sharing one `B` (the
    // shared-weights shape — the packing backends hoist the single pack
    // out of the loop). Bit-identity of each one-call form against the
    // backend's own sequential loop is asserted before timing.
    let (bm, bk, bn, bbatch) = (64, 32, 16, 32);
    let bas: Vec<Vec<f64>> = (0..bbatch)
        .map(|i| fill(bm * bk, 0xBA7 + i as u64))
        .collect();
    let bbs: Vec<Vec<f64>> = (0..bbatch)
        .map(|i| fill(bk * bn, 0x7AB + i as u64))
        .collect();
    let ba_refs: Vec<&[f64]> = bas.iter().map(Vec::as_slice).collect();
    let bb_refs: Vec<&[f64]> = bbs.iter().map(Vec::as_slice).collect();
    println!("\nbatched group: {bbatch}x gemm {bm}x{bk}x{bn}, one call vs sequential loop (GF/s)");
    println!(
        "{:<10} {:>9} {:>9} {:>8} {:>11} {:>9} {:>8}",
        "backend", "looped", "batched", "ratio", "loop(shB)", "bat(shB)", "ratio"
    );
    rule(70);
    let bflops = 2.0 * (bbatch * bm * bk * bn) as f64;
    // The whole group is a few hundred µs per call, so reading through
    // scheduler noise takes more rounds than the big shapes need.
    let brounds = if quick { 10 } else { 15 };
    let mut batched_speedups: Vec<(&str, f64, f64)> = Vec::new();
    for backend in backends {
        // Reference: the sequential per-product loop, both variants.
        let mut looped = vec![vec![0.0; bm * bn]; bbatch];
        for (i, out) in looped.iter_mut().enumerate() {
            backend.gemm(bm, bk, bn, ba_refs[i], bb_refs[i], out);
        }
        let mut looped_shared = vec![vec![0.0; bm * bn]; bbatch];
        for (i, out) in looped_shared.iter_mut().enumerate() {
            backend.gemm(bm, bk, bn, ba_refs[i], bb_refs[0], out);
        }
        let mut outs_buf = vec![vec![0.0; bm * bn]; bbatch];
        {
            let mut outs: Vec<&mut [f64]> = outs_buf.iter_mut().map(Vec::as_mut_slice).collect();
            backend.gemm_batched(bm, bk, bn, &ba_refs, &bb_refs, &mut outs);
        }
        for (i, (want, got)) in looped.iter().zip(&outs_buf).enumerate() {
            // `fast` included: its batched default *is* the loop, so even
            // the reassociating backend owes bit-identity to itself here.
            assert_bits_identical(
                &format!("batched gemm product {i} [{}]", backend.name()),
                want,
                got,
            );
        }
        {
            let mut outs: Vec<&mut [f64]> = outs_buf.iter_mut().map(Vec::as_mut_slice).collect();
            for out in outs.iter_mut() {
                out.fill(0.0);
            }
            backend.gemm_batched(bm, bk, bn, &ba_refs, &bb_refs[..1], &mut outs);
        }
        for (i, (want, got)) in looped_shared.iter().zip(&outs_buf).enumerate() {
            assert_bits_identical(
                &format!("batched shared-B gemm product {i} [{}]", backend.name()),
                want,
                got,
            );
        }

        // Interleaved rounds, like the gates: contender order rotates
        // within each round, so clock drift and scheduler noise land on
        // every contender instead of whichever happens to be timed last.
        let mut outs: Vec<&mut [f64]> = outs_buf.iter_mut().map(Vec::as_mut_slice).collect();
        let (mut t_loop, mut t_loop_shared, mut t_batch, mut t_batch_shared) =
            (f64::INFINITY, f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for _ in 0..brounds {
            t_loop = t_loop.min(best_secs(reps, || {
                for (i, out) in looped.iter_mut().enumerate() {
                    out.fill(0.0);
                    backend.gemm(bm, bk, bn, ba_refs[i], bb_refs[i], out);
                }
            }));
            t_batch = t_batch.min(best_secs(reps, || {
                for out in outs.iter_mut() {
                    out.fill(0.0);
                }
                backend.gemm_batched(bm, bk, bn, &ba_refs, &bb_refs, &mut outs);
            }));
            t_loop_shared = t_loop_shared.min(best_secs(reps, || {
                for (i, out) in looped_shared.iter_mut().enumerate() {
                    out.fill(0.0);
                    backend.gemm(bm, bk, bn, ba_refs[i], bb_refs[0], out);
                }
            }));
            t_batch_shared = t_batch_shared.min(best_secs(reps, || {
                for out in outs.iter_mut() {
                    out.fill(0.0);
                }
                backend.gemm_batched(bm, bk, bn, &ba_refs, &bb_refs[..1], &mut outs);
            }));
        }
        let (r, rs) = (t_loop / t_batch, t_loop_shared / t_batch_shared);
        println!(
            "{:<10} {:>9.2} {:>9.2} {:>7.2}x {:>11.2} {:>9.2} {:>7.2}x",
            backend.name(),
            bflops / t_loop / 1e9,
            bflops / t_batch / 1e9,
            r,
            bflops / t_loop_shared / 1e9,
            bflops / t_batch_shared / 1e9,
            rs
        );
        batched_speedups.push((backend.name(), r, rs));
    }

    // ---- Gates -----------------------------------------------------------
    println!("\ngates:");
    let gate_rounds = if quick { 3 } else { 5 };

    // Gate 1 + 2: blocked vs naive, simd vs blocked on 256x256, measured
    // as the best of several interleaved rounds (round-robin timing keeps
    // scheduler noise from landing on one contender only).
    let (m, k, n) = (256, 256, 256);
    let a = fill(m * k, 0xA256);
    let b = fill(k * n, 0xB256);
    let mut out = vec![0.0; m * n];
    let (mut t_naive, mut t_blocked, mut t_simd) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..gate_rounds {
        t_naive = t_naive.min(best_secs(reps, || {
            out.fill(0.0);
            NaiveKernel.gemm(m, k, n, &a, &b, &mut out);
        }));
        t_blocked = t_blocked.min(best_secs(reps, || {
            out.fill(0.0);
            BlockedKernel.gemm(m, k, n, &a, &b, &mut out);
        }));
        t_simd = t_simd.min(best_secs(reps, || {
            out.fill(0.0);
            SimdKernel.gemm(m, k, n, &a, &b, &mut out);
        }));
    }
    let blocked_speedup = t_naive / t_blocked;
    println!("  blocked vs naive on 256x256: {blocked_speedup:.2}x (target >= 2x)");
    assert!(
        blocked_speedup >= 2.0,
        "blocked kernel must be >= 2x naive on 256x256 matmul, got {blocked_speedup:.2}x"
    );

    let simd_speedup = t_blocked / t_simd;
    #[cfg(target_arch = "x86_64")]
    let avx512 = std::arch::is_x86_feature_detected!("avx512f");
    #[cfg(not(target_arch = "x86_64"))]
    let avx512 = false;
    #[cfg(target_arch = "x86_64")]
    let avx2 = std::arch::is_x86_feature_detected!("avx2");
    #[cfg(not(target_arch = "x86_64"))]
    let avx2 = false;
    if avx512 {
        // The architectural uplift of the AVX-512 path over blocked's
        // 256-bit auto-vectorized core is 2x width x ~0.75x sustained
        // 512-bit license clock = ~1.5x, and the micro-kernel measures at
        // >= 95% of the throttled port ceiling — so the measured ratio
        // sits *on* the target and shared-runner noise swings it a few
        // percent either way. The gate therefore allows a 4% measurement
        // band below the 1.5x target.
        println!("  simd vs blocked on 256x256:  {simd_speedup:.2}x (AVX-512 path; target 1.5x, gate >= 1.44x)");
        assert!(
            simd_speedup >= 1.44,
            "simd kernel must reach the 1.5x-target band (>= 1.44x after noise) over blocked \
             on 256x256 matmul with AVX-512, got {simd_speedup:.2}x"
        );
    } else if avx2 {
        // Parity is the documented outcome here, so the gate needs the
        // same noise band the AVX-512 gate gets — a genuine tie measures
        // a few percent either side of 1x run to run.
        println!(
            "  simd vs blocked on 256x256:  {simd_speedup:.2}x (AVX2-only host; target 1x, \
             gate >= 0.95x — blocked's auto-vectorized core already saturates the 256-bit \
             mul/add ports, the 1.5x uplift needs the AVX-512 path)"
        );
        assert!(
            simd_speedup >= 0.95,
            "simd kernel must not lose to blocked on 256x256 matmul (>= 0.95x after noise), \
             got {simd_speedup:.2}x"
        );
    } else {
        println!(
            "  simd vs blocked on 256x256:  {simd_speedup:.2}x (no vector unit; bit gate only)"
        );
    }

    // Gate 3: sharded bit-identity at 1, 2, and 4 worker threads on the
    // heavy shapes (big enough to cross the fan-out threshold), plus the
    // multi-core speed half where cores exist.
    let (gm, gk, gn) = (512, 512, 512);
    let ga = fill(gm * gk, 0xA512);
    let gb = fill(gk * gn, 0xB512);
    let mut want = vec![0.0; gm * gn];
    NaiveKernel.gemm(gm, gk, gn, &ga, &gb, &mut want);
    let mut tn_want = vec![0.0; gk * gn];
    NaiveKernel.gemm_tn(gm, gk, gn, &ga, &gb, &mut tn_want);
    for threads in [1, 2, 4] {
        let kernel = ShardedKernel::with_threads(threads);
        let mut got = vec![0.0; gm * gn];
        kernel.gemm(gm, gk, gn, &ga, &gb, &mut got);
        assert_bits_identical(&format!("sharded({threads}) gemm 512"), &want, &got);
        let mut tn_got = vec![0.0; gk * gn];
        kernel.gemm_tn(gm, gk, gn, &ga, &gb, &mut tn_got);
        assert_bits_identical(
            &format!("sharded({threads}) gemm_tn 512"),
            &tn_want,
            &tn_got,
        );
    }
    println!("  sharded bit-identical to naive at 1/2/4 threads on 512x512 gemm + gemm_tn");

    let mut shard_speedup = None;
    if cores >= 2 {
        // Interleaved rounds like gates 1–2, and a gate band below the
        // >1x target: on 2-"core" hosts whose vCPUs are hyperthread
        // siblings, the second shard adds little FP throughput while
        // spawn/sync overhead is real, so near-parity is legitimate
        // there; with ≥4 cores real parallelism must show.
        let mut gout = vec![0.0; gm * gn];
        let (mut t_simd_big, mut t_shard_big) = (f64::INFINITY, f64::INFINITY);
        let shard_all = ShardedKernel::with_threads(cores);
        for _ in 0..gate_rounds {
            t_simd_big = t_simd_big.min(best_secs(reps, || {
                gout.fill(0.0);
                SimdKernel.gemm(gm, gk, gn, &ga, &gb, &mut gout);
            }));
            t_shard_big = t_shard_big.min(best_secs(reps, || {
                gout.fill(0.0);
                shard_all.gemm(gm, gk, gn, &ga, &gb, &mut gout);
            }));
        }
        let speedup = t_simd_big / t_shard_big;
        shard_speedup = Some(speedup);
        let floor = if cores >= 4 { 1.2 } else { 0.9 };
        println!(
            "  sharded({cores}) vs simd on 512x512: {speedup:.2}x (target > 1x on \
             multi-core hosts; gate >= {floor}x for {cores} cores)"
        );
        assert!(
            speedup >= floor,
            "sharded must reach {floor}x over simd on a {cores}-core host, \
             got {speedup:.2}x"
        );
    } else {
        println!(
            "  sharded vs simd speed gate skipped: single-core host (bit gate above still \
             enforced; the fan-out shows up on multi-core machines)"
        );
    }

    // Machine-readable gate readings for the trend reporter
    // (`st_bench --bin trend`; schema in docs/profiling.md). `ST_KERNELS_JSON`
    // overrides the path.
    let path =
        std::env::var("ST_KERNELS_JSON").unwrap_or_else(|_| "BENCH_kernels.json".to_string());
    let mut json = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"kernels\",");
    let _ = writeln!(json, "  \"schema_version\": 2,");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"blocked_speedup\": {blocked_speedup:.4},");
    let _ = writeln!(json, "  \"simd_speedup\": {simd_speedup:.4},");
    match shard_speedup {
        Some(s) => {
            let _ = writeln!(json, "  \"sharded_speedup\": {s:.4},");
        }
        None => {
            let _ = writeln!(json, "  \"sharded_speedup\": null,");
        }
    }
    let _ = writeln!(json, "  \"batched_group\": {{");
    let _ = writeln!(json, "    \"shape\": \"{bm}x{bk}x{bn}\",");
    let _ = writeln!(json, "    \"batch\": {bbatch},");
    let _ = writeln!(json, "    \"speedups\": {{");
    for (i, (name, s, _)) in batched_speedups.iter().enumerate() {
        let comma = if i + 1 < batched_speedups.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(json, "      \"{name}\": {s:.4}{comma}");
    }
    let _ = writeln!(json, "    }},");
    let _ = writeln!(json, "    \"shared_b_speedups\": {{");
    for (i, (name, _, s)) in batched_speedups.iter().enumerate() {
        let comma = if i + 1 < batched_speedups.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(json, "      \"{name}\": {s:.4}{comma}");
    }
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("\nwrote {path}");

    println!("\nall gates passed; deterministic backends bit-identical on every timed shape");
}
