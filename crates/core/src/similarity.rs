//! Content similarity between slices and influence-direction prediction.
//!
//! Section 5.2: "the direction of influence depends on the similarity of
//! data among slices" — growing a slice helps content-similar slices
//! (shared labels, nearby features) and hurts content-opposed ones. The
//! paper measures influence empirically (retrain and diff, [`crate::influence`]);
//! its conclusion lists "improve our influence estimation" as future work.
//! This module is that improvement: a *training-free* influence-direction
//! predictor from the data itself, validated against the measured sweep in
//! the integration tests.
//!
//! Similarity of slices `i, j` combines
//! - **label agreement**: the Bhattacharyya coefficient `Σ_c √(p_i(c)·p_j(c))`
//!   of their label distributions (1 = identical label usage), and
//! - **feature proximity**: per-class distance between the slices' class
//!   mean vectors, turned into a `(0, 1]` score.
//!
//! The signed score maps agreement above the cross-slice average to
//! "expected to improve" (negative influence) and below-average agreement
//! to "expected to degrade".

use st_data::SlicedDataset;

/// Pairwise slice similarity with prediction helpers.
#[derive(Debug, Clone)]
pub struct SimilarityMatrix {
    /// Number of slices.
    n: usize,
    /// Row-major `n × n` similarity in `[0, 1]`, 1 on the diagonal.
    values: Vec<f64>,
}

impl SimilarityMatrix {
    /// Similarity between slices `i` and `j`.
    ///
    /// # Panics
    /// Panics when an index is out of range.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "slice index out of range");
        self.values[i * self.n + j]
    }

    /// Number of slices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the matrix covers no slices (never constructed that way).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Indices of the other slices ranked most-similar-first to `target`.
    pub fn ranked_neighbors(&self, target: usize) -> Vec<usize> {
        let mut others: Vec<usize> = (0..self.n).filter(|&j| j != target).collect();
        others.sort_by(|&a, &b| {
            self.get(target, b)
                .partial_cmp(&self.get(target, a))
                .expect("finite similarity")
        });
        others
    }

    /// Predicted *sign* of the influence on slice `other` when `grown` is
    /// grown: negative (loss expected to drop) for similarity above the
    /// grown slice's average to all others, positive below.
    pub fn predicted_direction(&self, grown: usize, other: usize) -> f64 {
        assert_ne!(grown, other, "a slice always helps itself");
        let avg: f64 = (0..self.n)
            .filter(|&j| j != grown)
            .map(|j| self.get(grown, j))
            .sum::<f64>()
            / (self.n - 1) as f64;
        avg - self.get(grown, other) // similar ⇒ negative (improves)
    }
}

/// Bhattacharyya coefficient of two discrete distributions.
fn bhattacharyya(p: &[f64], q: &[f64]) -> f64 {
    p.iter().zip(q).map(|(a, b)| (a * b).sqrt()).sum()
}

/// Per-slice label distribution over `num_classes`.
fn label_distribution(ds: &SlicedDataset, slice: usize) -> Vec<f64> {
    let mut counts = vec![0.0; ds.num_classes];
    let train = &ds.slices[slice].train;
    for e in train {
        counts[e.label] += 1.0;
    }
    let total: f64 = counts.iter().sum();
    if total > 0.0 {
        for c in &mut counts {
            *c /= total;
        }
    }
    counts
}

/// Mean feature vector of a slice's examples with class `label`
/// (`None` if the slice has no such examples).
fn class_mean(ds: &SlicedDataset, slice: usize, label: usize) -> Option<Vec<f64>> {
    let mut mean = vec![0.0; ds.feature_dim];
    let mut count = 0usize;
    for e in &ds.slices[slice].train {
        if e.label == label {
            for (m, &v) in mean.iter_mut().zip(&e.features) {
                *m += v;
            }
            count += 1;
        }
    }
    if count == 0 {
        return None;
    }
    for m in &mut mean {
        *m /= count as f64;
    }
    Some(mean)
}

/// Average feature scale of the dataset (for normalizing distances).
fn feature_scale(ds: &SlicedDataset) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for s in &ds.slices {
        for e in &s.train {
            sum += e.features.iter().map(|v| v * v).sum::<f64>().sqrt();
            count += 1;
        }
    }
    if count == 0 {
        1.0
    } else {
        (sum / count as f64).max(1e-9)
    }
}

/// Computes the pairwise content-similarity matrix from the training data.
///
/// Similarity is `bhattacharyya(labels) · proximity(features)` where
/// `proximity = 1 / (1 + avg shared-class mean distance / feature scale)`.
/// Both factors are in `(0, 1]`, so the product is too; slices with
/// disjoint label sets score 0.
///
/// # Panics
/// Panics on a dataset with no slices.
pub fn similarity_matrix(ds: &SlicedDataset) -> SimilarityMatrix {
    let n = ds.num_slices();
    assert!(n > 0, "need at least one slice");
    let scale = feature_scale(ds);
    let dists: Vec<Vec<f64>> = (0..n).map(|s| label_distribution(ds, s)).collect();

    let mut values = vec![0.0; n * n];
    for i in 0..n {
        values[i * n + i] = 1.0;
        for j in i + 1..n {
            let label_sim = bhattacharyya(&dists[i], &dists[j]);
            // Feature proximity over the classes both slices use.
            let mut dist_sum = 0.0;
            let mut shared = 0usize;
            for c in 0..ds.num_classes {
                if let (Some(mi), Some(mj)) = (class_mean(ds, i, c), class_mean(ds, j, c)) {
                    let d: f64 = mi
                        .iter()
                        .zip(&mj)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>()
                        .sqrt();
                    dist_sum += d;
                    shared += 1;
                }
            }
            let proximity = if shared == 0 {
                0.0
            } else {
                1.0 / (1.0 + dist_sum / shared as f64 / scale)
            };
            let sim = label_sim * proximity;
            values[i * n + j] = sim;
            values[j * n + i] = sim;
        }
    }
    SimilarityMatrix { n, values }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_data::families::{census, faces};
    use st_data::SlicedDataset;

    fn faces_ds() -> SlicedDataset {
        SlicedDataset::generate(&faces(), &[200; 8], 0, 7)
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let m = similarity_matrix(&faces_ds());
        assert_eq!(m.len(), 8);
        for i in 0..8 {
            assert_eq!(m.get(i, i), 1.0);
            for j in 0..8 {
                assert_eq!(m.get(i, j), m.get(j, i));
                assert!((0.0..=1.0).contains(&m.get(i, j)));
            }
        }
    }

    #[test]
    fn same_race_slices_are_most_similar_in_faces() {
        // Faces family: slices 0/1 = White_{Male,Female}, 2/3 = Black_…, etc.
        // Same-race pairs share the class label (race classification), so
        // they must dominate cross-race pairs.
        let m = similarity_matrix(&faces_ds());
        for race in 0..4 {
            let (male, female) = (2 * race, 2 * race + 1);
            let within = m.get(male, female);
            for other in 0..8 {
                if other / 2 != race {
                    assert!(
                        within > m.get(male, other),
                        "race {race}: within {within} vs {} (slice {other})",
                        m.get(male, other)
                    );
                }
            }
            assert_eq!(m.ranked_neighbors(male)[0], female);
        }
    }

    #[test]
    fn predicted_direction_flags_similar_slices_as_helped() {
        let m = similarity_matrix(&faces_ds());
        // Growing White_Male (0): White_Female (1) predicted to improve
        // (negative), an opposite-race slice predicted to degrade.
        assert!(m.predicted_direction(0, 1) < 0.0);
        let worst = *m.ranked_neighbors(0).last().unwrap();
        assert!(m.predicted_direction(0, worst) > 0.0);
    }

    #[test]
    fn census_slices_share_labels_and_score_high() {
        // All census slices predict the same binary label, so label
        // agreement is high everywhere; similarities must all be well
        // above zero.
        let ds = SlicedDataset::generate(&census(), &[150; 4], 0, 9);
        let m = similarity_matrix(&ds);
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    assert!(m.get(i, j) > 0.2, "({i},{j}) = {}", m.get(i, j));
                }
            }
        }
    }

    #[test]
    fn empty_slices_contribute_zero_similarity() {
        let mut ds = faces_ds();
        ds.slices[3].train.clear();
        let m = similarity_matrix(&ds);
        for j in 0..8 {
            if j != 3 {
                assert_eq!(m.get(3, j), 0.0, "empty slice has no content to match");
            }
        }
    }

    #[test]
    fn deterministic_for_a_fixed_dataset() {
        let ds = faces_ds();
        let a = similarity_matrix(&ds);
        let b = similarity_matrix(&ds);
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(a.get(i, j), b.get(i, j));
            }
        }
    }
}
