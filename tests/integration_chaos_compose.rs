//! Integration: ST_FAULT × ST_DRIFT × checkpoint/resume composition.
//!
//! The chaos suite proves faults never abort a run, the drift suite proves
//! non-stationarity is detected and recovered, and the checkpoint suite
//! proves a killed run resumes bit-identically. This suite proves the
//! three axes compose: with a fault plan **and** a drift plan installed at
//! once, the parallel executor (`--jobs 4`) still aggregates bit-identical
//! to the sequential runner, warnings still come out in one canonical
//! order, and a run killed mid-flight still resumes bit-identically —
//! the injected chaos replays, it does not compound.
//!
//! Both plans are process-global, so every test holds one serial lock for
//! its whole body and clears both plans on drop (a failing test must not
//! poison its neighbours).

use slice_tuner::{
    run_trials, run_trials_parallel, AggregateResult, PoolSource, RunResult, SliceTuner, Strategy,
    TSchedule, TunerConfig, TuningWarning,
};
use st_curve::EstimationMode;
use st_data::{drift, families, SlicedDataset};
use st_linalg::fault;
use st_models::ModelSpec;
use std::sync::{Mutex, MutexGuard};

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Installs a fault plan and a drift plan together for a scope; clears
/// both on drop. The drift plan goes through the process-global override
/// (not [`PoolSource::with_drift`]) because `run_trials*` build their own
/// pool sources internally — the global path is exactly what an `ST_DRIFT`
/// environment plan would exercise.
struct ComposeGuard {
    _serial: MutexGuard<'static, ()>,
}

impl ComposeGuard {
    fn install(fault_spec: &str, drift_spec: &str) -> Self {
        let guard = ComposeGuard { _serial: serial() };
        fault::install(Some(
            fault::parse_plan(fault_spec).expect("valid fault plan"),
        ));
        drift::install(Some(
            drift::parse_plan(drift_spec).expect("valid drift plan"),
        ));
        guard
    }
}

impl Drop for ComposeGuard {
    fn drop(&mut self) {
        fault::install(None);
        drift::install(None);
    }
}

const SEED: u64 = 23;

fn quick_config() -> TunerConfig {
    let mut cfg = TunerConfig::new(ModelSpec::softmax()).with_seed(SEED);
    cfg.train.epochs = 8;
    cfg.fractions = vec![0.4, 0.7, 1.0];
    cfg.repeats = 1;
    cfg.threads = 1;
    cfg.max_iterations = 3;
    cfg.with_mode(EstimationMode::Exhaustive).with_incremental()
}

/// A fresh path under the system temp dir; removes stale files from
/// previous runs of this test (per-trial suffixed files included).
fn checkpoint_path(tag: &str) -> String {
    let dir = std::env::temp_dir().join("st_compose_tests");
    std::fs::create_dir_all(&dir).expect("create checkpoint dir");
    let base = dir.join(format!("{tag}.json"));
    for t in 0..8 {
        std::fs::remove_file(format!("{}.trial{t}", base.display())).ok();
    }
    std::fs::remove_file(&base).ok();
    base.display().to_string()
}

fn assert_bit_identical(a: &AggregateResult, b: &AggregateResult) {
    assert!(
        a.bits_identical_to(b),
        "aggregates diverged:\n{a:?}\nvs\n{b:?}"
    );
}

fn warning_key(w: &TuningWarning) -> (u64, usize, u8) {
    match w {
        TuningWarning::DriftDetected { round, slice, .. } => (*round, *slice, 0),
        TuningWarning::EstimationQuarantined { round, slice, .. } => {
            (*round, slice.unwrap_or(usize::MAX), 1)
        }
    }
}

fn assert_canonically_sorted(warnings: &[TuningWarning]) {
    assert!(
        warnings
            .windows(2)
            .all(|w| warning_key(&w[0]) <= warning_key(&w[1])),
        "warnings must sort by (round, slice, kind): {warnings:?}"
    );
}

/// The pinned two-slice drift scenario ([`families::driftbench`]) run
/// against the **global** drift plan installed by the guard — the same
/// plan `run_trials*` pool sources see.
fn run_drifting(cfg: TunerConfig) -> RunResult {
    let fam = families::driftbench();
    let ds = SlicedDataset::generate(&fam, &[100, 500], 400, SEED);
    let mut pool = PoolSource::new(fam, SEED);
    let mut tuner = SliceTuner::new(ds, &mut pool, cfg);
    tuner.run(Strategy::Iterative(TSchedule::conservative()), 300.0)
}

/// With a two-slice NaN fault plan **and** a label-drift plan installed at
/// once, the parallel executor at `--jobs 4` must aggregate bit-identical
/// to the sequential runner, and every trial's warnings must come out in
/// the same canonical (round, slice, kind) order from both.
#[test]
fn composed_fault_and_drift_plans_are_executor_invariant() {
    let _guard = ComposeGuard::install(
        "nan_loss@slice2:round1,nan_loss@slice1:round1",
        "label@slice0:round1:mag0.95",
    );
    let fam = families::census();
    let strategy = Strategy::Iterative(TSchedule::moderate());
    let cfg = quick_config().with_drift_detection(0.6);
    let seq = run_trials(&fam, &[40; 4], 50, 150.0, strategy, &cfg, 2);
    let par = run_trials_parallel(&fam, &[40; 4], 50, 150.0, strategy, &cfg, 2, 4);
    assert_bit_identical(&seq, &par);
    for (s, p) in seq.trials.iter().zip(&par.trials) {
        assert_eq!(s.warnings, p.warnings, "executor changed warning order");
        assert!(
            s.warnings.iter().any(|w| matches!(
                w,
                TuningWarning::EstimationQuarantined { slice: Some(1), .. }
            )) && s.warnings.iter().any(|w| matches!(
                w,
                TuningWarning::EstimationQuarantined { slice: Some(2), .. }
            )),
            "both faulted slices must quarantine under the composed plan, got {:?}",
            s.warnings
        );
        assert_canonically_sorted(&s.warnings);
    }
}

/// Killing a composed run (fault plan + drift plan active) after round 1
/// under `--jobs 4` and resuming must be bit-identical to the
/// uninterrupted run — under the parallel executor and, cross-runner, the
/// sequential one. The replayed rounds re-derive the same injected
/// faults and the same drift evidence; nothing fires twice.
#[test]
fn composed_kill_and_resume_is_bit_identical_jobs_four() {
    let _guard = ComposeGuard::install(
        "nan_loss@slice2:round1,nan_loss@slice1:round1",
        "label@slice0:round1:mag0.95",
    );
    let path = checkpoint_path("compose_par");
    let fam = families::census();
    let strategy = Strategy::Iterative(TSchedule::moderate());
    let cfg = quick_config().with_drift_detection(0.6);
    let run = |c: &TunerConfig, jobs: Option<usize>| match jobs {
        None => run_trials(&fam, &[40; 4], 50, 150.0, strategy, c, 2),
        Some(j) => run_trials_parallel(&fam, &[40; 4], 50, 150.0, strategy, c, 2, j),
    };

    let clean = run(&cfg, Some(4));
    assert!(
        clean.trials.iter().all(|t| t.iterations >= 2),
        "test cell too small for a meaningful kill: {:?}",
        clean
            .trials
            .iter()
            .map(|t| t.iterations)
            .collect::<Vec<_>>()
    );

    let halted_cfg = cfg.clone().with_checkpoint(&path).with_halt_after_rounds(1);
    let halted = run(&halted_cfg, Some(4));
    assert!(
        halted.trials.iter().all(|t| t.iterations == 1),
        "the crash simulation must stop after round 1"
    );

    let resumed_cfg = cfg.clone().with_checkpoint(&path).with_resume();
    let resumed = run(&resumed_cfg, Some(4));
    assert_bit_identical(&clean, &resumed);

    // Cross-runner: resume under the parallel executor equals the clean
    // sequential run too.
    let seq_clean = run(&cfg, None);
    assert_bit_identical(&seq_clean, &resumed);
}

/// The pinned driftbench scenario with a NaN fault on the steady slice
/// (round 1) on top of label drift on the drifter, killed after round 2
/// and resumed. The halted run's own log carries the pre-halt quarantine
/// (it executed round 1 live), the resumed run re-detects the drift at
/// the same post-halt round as the clean run, and every surfaced number
/// matches the uninterrupted run bit for bit — the checkpoint carries
/// the CUSUM state and quarantine flags through the composed event.
///
/// Warnings describe the *execution*: replay skips estimation for the
/// completed rounds, so the round-1 fault warning lives in the halted
/// run's log while the resumed log holds exactly the post-halt warnings.
#[test]
fn pinned_compose_scenario_resumes_with_both_warning_kinds() {
    let _guard = ComposeGuard::install("nan_loss@slice1:round1", "label@slice0:round1:mag0.95");
    let aware = || {
        let mut cfg = quick_config().with_drift_detection(0.15);
        cfg.drift_slack = 0.05;
        cfg.max_iterations = 12;
        cfg
    };
    let clean = run_drifting(aware());
    assert!(
        clean.iterations >= 3,
        "the kill must land before the composed events resolve, got {} rounds",
        clean.iterations
    );
    assert!(
        clean
            .warnings
            .iter()
            .any(|w| matches!(w, TuningWarning::DriftDetected { slice: 0, .. })),
        "the drift leg must fire, got {:?}",
        clean.warnings
    );
    assert!(
        clean.warnings.iter().any(|w| matches!(
            w,
            TuningWarning::EstimationQuarantined {
                slice: Some(1),
                round: 1,
                ..
            }
        )),
        "the fault leg must quarantine slice 1 in round 1, got {:?}",
        clean.warnings
    );
    assert_canonically_sorted(&clean.warnings);

    let path = checkpoint_path("compose_pinned");
    let halted = run_drifting(aware().with_checkpoint(&path).with_halt_after_rounds(2));
    assert_eq!(halted.iterations, 2, "crash simulation stops after round 2");
    assert!(
        halted.warnings.iter().any(|w| matches!(
            w,
            TuningWarning::EstimationQuarantined {
                slice: Some(1),
                round: 1,
                ..
            }
        )),
        "the halted run executed round 1 live, its log must carry the fault, got {:?}",
        halted.warnings
    );

    let resumed = run_drifting(aware().with_checkpoint(&path).with_resume());
    assert_eq!(resumed.acquired, clean.acquired);
    assert_eq!(resumed.iterations, clean.iterations);
    assert_eq!(resumed.spent.to_bits(), clean.spent.to_bits());
    assert_eq!(
        resumed.report.overall_loss.to_bits(),
        clean.report.overall_loss.to_bits()
    );
    for (a, b) in resumed
        .report
        .per_slice_losses
        .iter()
        .zip(&clean.report.per_slice_losses)
    {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    // Post-halt execution: the resumed log equals the clean run's
    // warnings from rounds after the kill point (the drift detection),
    // in the same canonical order.
    let post_halt: Vec<_> = clean
        .warnings
        .iter()
        .filter(|w| warning_key(w).0 > 2)
        .cloned()
        .collect();
    assert!(
        !post_halt.is_empty(),
        "detection must land post-halt or the replay proves nothing: {:?}",
        clean.warnings
    );
    assert_eq!(
        resumed.warnings, post_halt,
        "the resumed run must re-derive exactly the post-halt warnings"
    );
    assert_canonically_sorted(&resumed.warnings);
}
