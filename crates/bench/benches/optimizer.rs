//! Microbench: the convex acquisition solver (§5.1) and its pieces.
//!
//! Ablation: projected subgradient (general λ) vs the closed-form KKT water
//! filling (λ = 0) — the design tradeoff called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use st_curve::PowerLaw;
use st_optim::{
    change_ratio, project_weighted_simplex, solve_kkt, solve_projected, AcquisitionProblem,
    SolverOptions,
};
use std::hint::black_box;

fn problem(n: usize, lambda: f64) -> AcquisitionProblem {
    let curves: Vec<PowerLaw> = (0..n)
        .map(|i| PowerLaw::new(1.5 + (i % 7) as f64 * 0.4, 0.1 + (i % 5) as f64 * 0.15))
        .collect();
    let sizes: Vec<f64> = (0..n).map(|i| 100.0 + (i * 37 % 300) as f64).collect();
    let costs: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64 * 0.25).collect();
    AcquisitionProblem::new(curves, sizes, costs, 250.0 * n as f64, lambda)
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer");
    group.sample_size(20);
    for n in [4usize, 10, 20, 50] {
        let p = problem(n, 1.0);
        group.bench_with_input(BenchmarkId::new("projected_subgradient", n), &p, |b, p| {
            b.iter(|| solve_projected(black_box(p), &SolverOptions::default()))
        });
        let p0 = problem(n, 0.0);
        group.bench_with_input(BenchmarkId::new("kkt_water_filling", n), &p0, |b, p| {
            b.iter(|| solve_kkt(black_box(p)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("optimizer_pieces");
    group.sample_size(30);
    let y: Vec<f64> = (0..50).map(|i| (i as f64 * 0.37).sin() * 100.0).collect();
    let costs: Vec<f64> = (0..50).map(|i| 1.0 + (i % 4) as f64 * 0.2).collect();
    group.bench_function("simplex_projection_n50", |b| {
        b.iter(|| project_weighted_simplex(black_box(&y), black_box(&costs), 500.0))
    });
    let sizes: Vec<f64> = (0..20).map(|i| 50.0 + (i * 53 % 400) as f64).collect();
    let add: Vec<f64> = (0..20).map(|i| (i * 91 % 700) as f64).collect();
    group.bench_function("change_ratio_n20", |b| {
        b.iter(|| change_ratio(black_box(&sizes), black_box(&add), 6.0))
    });
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
