//! Declarative experiment specifications.
//!
//! Experiments are parameterized by a handful of values (family, budget,
//! strategies, trials, λ, …). [`ExperimentSpec`] captures them in one
//! struct parseable from a simple `key = value` text format, so runs can be
//! versioned next to their results instead of living in shell history:
//!
//! ```text
//! # census sweep, paper trial count
//! family     = census
//! strategies = uniform, waterfilling, moderate
//! budget     = 500
//! trials     = 10
//! lambda     = 0.1
//! ```
//!
//! Lines starting with `#` and blank lines are ignored. Unknown keys are
//! errors (typo guard). The format is deliberately not TOML/JSON — it needs
//! no dependencies and round-trips through [`ExperimentSpec::to_text`].

use crate::strategy::{BanditParams, Strategy, TSchedule};

/// A complete experiment description.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Dataset family name (`fashion` / `mixed` / `faces` / `census`).
    pub family: String,
    /// Strategies to compare, in report order.
    pub strategies: Vec<Strategy>,
    /// Acquisition budget `B`.
    pub budget: f64,
    /// Trials per strategy.
    pub trials: usize,
    /// Initial training size per slice.
    pub initial_size: usize,
    /// Validation size per slice.
    pub validation_size: usize,
    /// Fairness weight λ.
    pub lambda: f64,
    /// Master seed.
    pub seed: u64,
    /// Training epochs (0 = library default).
    pub epochs: usize,
}

impl Default for ExperimentSpec {
    fn default() -> Self {
        ExperimentSpec {
            family: "census".into(),
            strategies: vec![
                Strategy::Uniform,
                Strategy::WaterFilling,
                Strategy::Iterative(TSchedule::moderate()),
            ],
            budget: 500.0,
            trials: 3,
            initial_size: 150,
            validation_size: 300,
            lambda: 1.0,
            seed: 42,
            epochs: 0,
        }
    }
}

/// Errors from [`ExperimentSpec::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A line had no `=` separator.
    MissingEquals {
        /// 1-based line number.
        line: usize,
    },
    /// The key is not recognized.
    UnknownKey {
        /// 1-based line number.
        line: usize,
        /// The offending key.
        key: String,
    },
    /// The value failed to parse for its key.
    BadValue {
        /// 1-based line number.
        line: usize,
        /// The key whose value failed.
        key: String,
        /// The offending value.
        value: String,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::MissingEquals { line } => write!(f, "line {line}: expected key = value"),
            SpecError::UnknownKey { line, key } => write!(f, "line {line}: unknown key {key:?}"),
            SpecError::BadValue { line, key, value } => {
                write!(f, "line {line}: cannot parse {value:?} for {key}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// Parses a strategy name (the same vocabulary as the CLI).
pub fn strategy_from_name(name: &str) -> Option<Strategy> {
    match name {
        "uniform" => Some(Strategy::Uniform),
        "waterfilling" | "water-filling" => Some(Strategy::WaterFilling),
        "proportional" => Some(Strategy::Proportional),
        "oneshot" | "one-shot" => Some(Strategy::OneShot),
        "conservative" => Some(Strategy::Iterative(TSchedule::conservative())),
        "moderate" => Some(Strategy::Iterative(TSchedule::moderate())),
        "aggressive" => Some(Strategy::Iterative(TSchedule::aggressive())),
        "bandit" => Some(Strategy::RottingBandit(BanditParams::default())),
        _ => None,
    }
}

/// Canonical config name of a strategy (inverse of [`strategy_from_name`]).
pub fn strategy_to_name(s: Strategy) -> &'static str {
    match s {
        Strategy::Uniform => "uniform",
        Strategy::WaterFilling => "waterfilling",
        Strategy::Proportional => "proportional",
        Strategy::OneShot => "oneshot",
        Strategy::Iterative(TSchedule::Conservative) => "conservative",
        Strategy::Iterative(TSchedule::Moderate(_)) => "moderate",
        Strategy::Iterative(TSchedule::Aggressive(_)) => "aggressive",
        Strategy::RottingBandit(_) => "bandit",
    }
}

impl ExperimentSpec {
    /// Parses the `key = value` format, starting from the defaults.
    ///
    /// ```
    /// use slice_tuner::ExperimentSpec;
    /// let spec = ExperimentSpec::parse("family = faces\nbudget = 3000\n").unwrap();
    /// assert_eq!(spec.family, "faces");
    /// assert_eq!(spec.budget, 3000.0);
    /// assert_eq!(spec.trials, 3, "unspecified keys keep their defaults");
    /// ```
    ///
    /// # Errors
    /// Returns the first [`SpecError`] encountered.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let mut spec = ExperimentSpec::default();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let (key, value) = trimmed
                .split_once('=')
                .ok_or(SpecError::MissingEquals { line })?;
            let key = key.trim();
            let value = value.trim();
            let bad = || SpecError::BadValue {
                line,
                key: key.to_string(),
                value: value.to_string(),
            };
            match key {
                "family" => spec.family = value.to_string(),
                "strategies" => {
                    spec.strategies = value
                        .split(',')
                        .map(|s| strategy_from_name(s.trim()).ok_or_else(bad))
                        .collect::<Result<_, _>>()?;
                }
                // Numeric keys are range-checked at parse time: a negative
                // budget or NaN λ would not fail here but would corrupt the
                // allocation solve rounds later, far from the typo.
                "budget" => {
                    spec.budget = value.parse().map_err(|_| bad())?;
                    if !spec.budget.is_finite() || spec.budget <= 0.0 {
                        return Err(bad());
                    }
                }
                "trials" => {
                    spec.trials = value.parse().map_err(|_| bad())?;
                    if spec.trials == 0 {
                        return Err(bad());
                    }
                }
                "initial_size" => {
                    spec.initial_size = value.parse().map_err(|_| bad())?;
                    if spec.initial_size == 0 {
                        return Err(bad());
                    }
                }
                "validation_size" => {
                    spec.validation_size = value.parse().map_err(|_| bad())?;
                    if spec.validation_size == 0 {
                        return Err(bad());
                    }
                }
                "lambda" => {
                    spec.lambda = value.parse().map_err(|_| bad())?;
                    if !spec.lambda.is_finite() || spec.lambda < 0.0 {
                        return Err(bad());
                    }
                }
                "seed" => spec.seed = value.parse().map_err(|_| bad())?,
                "epochs" => spec.epochs = value.parse().map_err(|_| bad())?,
                other => {
                    return Err(SpecError::UnknownKey {
                        line,
                        key: other.to_string(),
                    })
                }
            }
        }
        Ok(spec)
    }

    /// Serializes back to the parseable text format.
    pub fn to_text(&self) -> String {
        let strategies: Vec<&str> = self
            .strategies
            .iter()
            .map(|&s| strategy_to_name(s))
            .collect();
        format!(
            "family = {}\nstrategies = {}\nbudget = {}\ntrials = {}\n\
             initial_size = {}\nvalidation_size = {}\nlambda = {}\nseed = {}\nepochs = {}\n",
            self.family,
            strategies.join(", "),
            self.budget,
            self.trials,
            self.initial_size,
            self.validation_size,
            self.lambda,
            self.seed,
            self.epochs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_text_yields_defaults() {
        assert_eq!(
            ExperimentSpec::parse("").unwrap(),
            ExperimentSpec::default()
        );
        assert_eq!(
            ExperimentSpec::parse("# just a comment\n\n").unwrap(),
            ExperimentSpec::default()
        );
    }

    #[test]
    fn full_spec_parses() {
        let text = "\
            family = faces\n\
            strategies = uniform, oneshot, aggressive\n\
            budget = 3000\n\
            trials = 10\n\
            initial_size = 400\n\
            validation_size = 500\n\
            lambda = 0.1\n\
            seed = 7\n\
            epochs = 20\n";
        let spec = ExperimentSpec::parse(text).unwrap();
        assert_eq!(spec.family, "faces");
        assert_eq!(
            spec.strategies,
            vec![
                Strategy::Uniform,
                Strategy::OneShot,
                Strategy::Iterative(TSchedule::aggressive())
            ]
        );
        assert_eq!(spec.budget, 3000.0);
        assert_eq!(spec.trials, 10);
        assert_eq!(spec.lambda, 0.1);
        assert_eq!(spec.epochs, 20);
    }

    #[test]
    fn round_trips_through_text() {
        let spec = ExperimentSpec {
            family: "mixed".into(),
            strategies: vec![Strategy::Proportional, Strategy::OneShot],
            budget: 6000.0,
            ..Default::default()
        };
        let back = ExperimentSpec::parse(&spec.to_text()).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn unknown_key_is_an_error_with_line_number() {
        let err = ExperimentSpec::parse("family = census\nbugdet = 5\n").unwrap_err();
        assert_eq!(
            err,
            SpecError::UnknownKey {
                line: 2,
                key: "bugdet".into()
            }
        );
    }

    #[test]
    fn bad_values_are_errors() {
        assert!(matches!(
            ExperimentSpec::parse("budget = lots").unwrap_err(),
            SpecError::BadValue { line: 1, .. }
        ));
        assert!(matches!(
            ExperimentSpec::parse("strategies = sideways").unwrap_err(),
            SpecError::BadValue { line: 1, .. }
        ));
    }

    #[test]
    fn out_of_range_numerics_are_rejected_at_parse_time() {
        for text in [
            "budget = 0",
            "budget = -5",
            "budget = inf",
            "budget = NaN",
            "trials = 0",
            "initial_size = 0",
            "validation_size = 0",
            "lambda = -0.5",
            "lambda = NaN",
        ] {
            assert!(
                matches!(
                    ExperimentSpec::parse(text).unwrap_err(),
                    SpecError::BadValue { line: 1, .. }
                ),
                "{text:?} must be rejected"
            );
        }
        // Valid boundary values stay accepted.
        assert!(ExperimentSpec::parse("lambda = 0").is_ok());
        assert!(ExperimentSpec::parse("budget = 0.5").is_ok());
    }

    #[test]
    fn missing_equals_is_an_error() {
        assert_eq!(
            ExperimentSpec::parse("family census").unwrap_err(),
            SpecError::MissingEquals { line: 1 }
        );
    }

    #[test]
    fn every_strategy_name_round_trips() {
        for name in [
            "uniform",
            "waterfilling",
            "proportional",
            "oneshot",
            "conservative",
            "moderate",
            "aggressive",
            "bandit",
        ] {
            let s = strategy_from_name(name).unwrap();
            assert_eq!(strategy_to_name(s), name, "{name}");
        }
        assert!(strategy_from_name("nope").is_none());
    }
}
