//! Ablation: how many curves should be averaged per slice?
//!
//! Section 4.1: "We further improve reliability by drawing multiple curves
//! (we use 5) and averaging them at the expense of more computation." This
//! bin quantifies that tradeoff: for R ∈ {1, 2, 5}, re-estimate each
//! slice's curve across several independent streams and report the spread
//! of the fitted decay exponent `a` (the quantity the optimizer ranks
//! slices by) and the number of model trainings paid.

use slice_tuner::{PoolSource, SliceTuner, Strategy};
use st_bench::{rule, FamilySetup};
use st_data::SlicedDataset;
use st_linalg::RunningStats;

fn main() {
    // Bench-wide kernel default: `sharded` on multi-core hosts, `simd`
    // on single-core containers; `ST_KERNEL` overrides (see docs/kernels.md).
    st_bench::init_bench_kernel();
    let setup = FamilySetup::fashion();
    let streams = 5u64; // independent re-estimates to measure spread
    println!(
        "Ablation: curve-averaging count R (fashion, init {}, {} streams)\n",
        setup.initial, streams
    );
    println!(
        "{:<4} {:>22} {:>22} {:>12}",
        "R", "mean std(a) per slice", "worst std(a)", "trainings"
    );
    rule(66);

    for repeats in [1usize, 2, 5] {
        let mut per_slice_stats: Vec<RunningStats> =
            vec![RunningStats::new(); setup.family.num_slices()];
        let mut trainings = 0usize;

        for stream in 0..streams {
            let ds =
                SlicedDataset::generate(&setup.family, &setup.equal_sizes(), setup.validation, 42);
            let mut src = PoolSource::new(setup.family.clone(), 42);
            let mut cfg = setup.config(7);
            cfg.repeats = repeats;
            let tuner = SliceTuner::new(ds, &mut src, cfg);
            let curves = tuner.estimate_curves(stream);
            trainings += tuner.trainings();
            for (stat, c) in per_slice_stats.iter_mut().zip(&curves) {
                stat.push(c.a);
            }
        }

        let stds: Vec<f64> = per_slice_stats.iter().map(|s| s.std_dev()).collect();
        let mean_std = st_linalg::mean(&stds);
        let worst = stds.iter().cloned().fold(0.0, f64::max);
        println!(
            "{:<4} {:>22.4} {:>22.4} {:>12}",
            repeats, mean_std, worst, trainings
        );
    }

    println!();
    println!("(expected shape: std(a) shrinks as R grows; trainings scale linearly in R —");
    println!(" the paper's R = 5 buys reliability with compute, not with data budget)");

    // Downstream check: does R actually change what One-shot does?
    println!("\nDownstream allocations (One-shot, same seed, varying R):");
    for repeats in [1usize, 5] {
        let ds = SlicedDataset::generate(&setup.family, &setup.equal_sizes(), setup.validation, 42);
        let mut src = PoolSource::new(setup.family.clone(), 42);
        let mut cfg = setup.config(7);
        cfg.repeats = repeats;
        let mut tuner = SliceTuner::new(ds, &mut src, cfg);
        let result = tuner.run(Strategy::OneShot, setup.scaled_budget());
        println!(
            "  R = {repeats}: {}",
            st_bench::fmt_counts(
                &result
                    .acquired
                    .iter()
                    .map(|&a| a as f64)
                    .collect::<Vec<_>>(),
            )
        );
    }
}
