//! Root crate of the Slice Tuner reproduction workspace.
//!
//! This crate intentionally contains no code: it exists so the
//! repository-level integration tests (`tests/integration_*.rs`) and the
//! runnable examples (`examples/*.rs`) have a Cargo target to hang off.
//! The functionality lives in the workspace crates:
//!
//! - [`st_linalg`](../st_linalg) — dense linear algebra kernels
//! - [`st_data`](../st_data) — seeded sliced-dataset generator families
//! - [`st_curve`](../st_curve) — power-law learning-curve estimation
//! - [`st_models`](../st_models) — from-scratch trainable classifiers
//! - [`st_optim`](../st_optim) — the convex acquisition optimizer
//! - [`slice_tuner`](../slice_tuner) — the engine, strategies, and runner
//! - `st_bench` — paper table/figure regeneration binaries
//! - `st_cli` — the `slice-tuner-cli` command line interface
