//! The λ accuracy–fairness dial (Section 6.3.2, Table 4): sweep λ and watch
//! loss rise while unfairness falls.
//!
//! ```sh
//! cargo run --release --example lambda_tradeoff
//! ```

use slice_tuner::{run_trials, Strategy, TSchedule, TunerConfig};
use st_data::families;
use st_models::ModelSpec;

fn main() {
    let family = families::census();
    let initial_sizes = [40, 80, 120, 160];
    let budget = 400.0;
    let trials = 3;

    println!("census analog, sizes {initial_sizes:?}, budget {budget}, {trials} trials\n");
    println!(
        "{:>6}  {:>14}  {:>14}  {:>14}",
        "λ", "loss", "avg EER", "max EER"
    );
    for lambda in [0.0, 0.1, 1.0, 10.0] {
        let config = TunerConfig::new(ModelSpec::softmax())
            .with_seed(99)
            .with_lambda(lambda);
        let agg = run_trials(
            &family,
            &initial_sizes,
            300,
            budget,
            Strategy::Iterative(TSchedule::moderate()),
            &config,
            trials,
        );
        println!(
            "{lambda:>6}  {:>14}  {:>14}  {:>14}",
            agg.loss.to_string(),
            agg.avg_eer.to_string(),
            agg.max_eer.to_string()
        );
    }
    println!("\nHigher λ pushes the optimizer toward equalized error rates at some cost in loss.");
}
