//! Parametric learning-curve models.

/// The power-law learning curve `loss(n) = b · n^(-a)` with `b, a > 0`
/// (paper Section 4.1, following Hestness et al.).
///
/// ```
/// use st_curve::PowerLaw;
/// let curve = PowerLaw::new(2.0, 0.5);
/// assert_eq!(curve.eval(100.0), 0.2);           // 2·100^(-1/2)
/// assert!(curve.eval(400.0) < curve.eval(100.0)); // more data, lower loss
/// let n = curve.examples_for_loss(0.1).unwrap();
/// assert_eq!(n, 400.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLaw {
    /// Scale coefficient `b`.
    pub b: f64,
    /// Decay exponent `a`.
    pub a: f64,
}

impl PowerLaw {
    /// Constructs a curve, validating positivity.
    ///
    /// # Panics
    /// Panics unless `b > 0` and `a > 0`.
    pub fn new(b: f64, a: f64) -> Self {
        assert!(b > 0.0 && b.is_finite(), "b must be positive, got {b}");
        assert!(a > 0.0 && a.is_finite(), "a must be positive, got {a}");
        PowerLaw { b, a }
    }

    /// Predicted loss at `n` examples (`n` clamped to at least 1).
    pub fn eval(&self, n: f64) -> f64 {
        self.b * n.max(1.0).powf(-self.a)
    }

    /// Derivative `d loss / d n` at `n` (non-positive: more data never hurts
    /// under the model).
    pub fn slope(&self, n: f64) -> f64 {
        -self.a * self.b * n.max(1.0).powf(-self.a - 1.0)
    }

    /// Second derivative `d² loss / d n²` at `n` (non-negative: the curve
    /// is convex in `n`, which is what makes the acquisition program convex).
    pub fn curvature(&self, n: f64) -> f64 {
        self.a * (self.a + 1.0) * self.b * n.max(1.0).powf(-self.a - 2.0)
    }

    /// Examples needed to reach a target loss (inverse of [`eval`]).
    ///
    /// Returns `None` if `target` is non-positive.
    ///
    /// [`eval`]: PowerLaw::eval
    pub fn examples_for_loss(&self, target: f64) -> Option<f64> {
        if target <= 0.0 {
            return None;
        }
        Some((self.b / target).powf(1.0 / self.a))
    }

    /// Averages curves in log space: mean of `ln b` and mean of `a`.
    ///
    /// This is the paper's "drawing multiple curves and averaging them":
    /// averaging `ln loss` predictions pointwise across fitted curves is
    /// exactly averaging their `(ln b, a)` parameters.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn log_mean(curves: &[PowerLaw]) -> PowerLaw {
        assert!(!curves.is_empty(), "cannot average zero curves");
        let n = curves.len() as f64;
        let ln_b = curves.iter().map(|c| c.b.ln()).sum::<f64>() / n;
        let a = curves.iter().map(|c| c.a).sum::<f64>() / n;
        PowerLaw::new(ln_b.exp(), a)
    }
}

/// Power law with an irreducible floor: `loss(n) = b · n^(-a) + c`.
///
/// The paper notes this variant fits better once the diminishing-returns
/// region is visible, but prefers the plain power law when it is not; both
/// are provided.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawWithFloor {
    /// Scale coefficient `b`.
    pub b: f64,
    /// Decay exponent `a`.
    pub a: f64,
    /// Lower-bound loss `c ≥ 0`.
    pub c: f64,
}

impl PowerLawWithFloor {
    /// Constructs a curve, validating ranges.
    ///
    /// # Panics
    /// Panics unless `b > 0`, `a > 0`, `c ≥ 0`.
    pub fn new(b: f64, a: f64, c: f64) -> Self {
        assert!(b > 0.0 && b.is_finite(), "b must be positive");
        assert!(a > 0.0 && a.is_finite(), "a must be positive");
        assert!(c >= 0.0 && c.is_finite(), "c must be non-negative");
        PowerLawWithFloor { b, a, c }
    }

    /// Predicted loss at `n` examples.
    pub fn eval(&self, n: f64) -> f64 {
        self.b * n.max(1.0).powf(-self.a) + self.c
    }

    /// Drops the floor, keeping `(b, a)`.
    pub fn without_floor(&self) -> PowerLaw {
        PowerLaw::new(self.b, self.a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_decreases_monotonically() {
        let c = PowerLaw::new(2.0, 0.5);
        assert!(c.eval(10.0) > c.eval(100.0));
        assert!(c.eval(100.0) > c.eval(1000.0));
    }

    #[test]
    fn eval_matches_formula() {
        let c = PowerLaw::new(3.0, 1.0);
        assert!((c.eval(10.0) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn eval_clamps_below_one_example() {
        let c = PowerLaw::new(2.0, 0.5);
        assert_eq!(c.eval(0.0), c.eval(1.0));
        assert_eq!(c.eval(-5.0), c.eval(1.0));
    }

    #[test]
    fn slope_is_negative_and_flattens() {
        let c = PowerLaw::new(2.0, 0.7);
        assert!(c.slope(10.0) < 0.0);
        assert!(c.slope(10.0).abs() > c.slope(100.0).abs());
    }

    #[test]
    fn examples_for_loss_inverts_eval() {
        let c = PowerLaw::new(2.5, 0.4);
        let n = c.examples_for_loss(0.8).unwrap();
        assert!((c.eval(n) - 0.8).abs() < 1e-9);
        assert!(c.examples_for_loss(0.0).is_none());
    }

    #[test]
    fn log_mean_of_identical_curves_is_identity() {
        let c = PowerLaw::new(1.7, 0.33);
        let m = PowerLaw::log_mean(&[c, c, c]);
        assert!((m.b - c.b).abs() < 1e-12);
        assert!((m.a - c.a).abs() < 1e-12);
    }

    #[test]
    fn log_mean_averages_exponents() {
        let m = PowerLaw::log_mean(&[PowerLaw::new(1.0, 0.2), PowerLaw::new(1.0, 0.4)]);
        assert!((m.a - 0.3).abs() < 1e-12);
        assert!((m.b - 1.0).abs() < 1e-12);
    }

    #[test]
    fn floor_variant_approaches_c() {
        let c = PowerLawWithFloor::new(5.0, 0.9, 0.25);
        assert!((c.eval(1e9) - 0.25).abs() < 1e-6);
        assert_eq!(c.without_floor(), PowerLaw::new(5.0, 0.9));
    }

    #[test]
    #[should_panic(expected = "a must be positive")]
    fn rejects_non_positive_exponent() {
        let _ = PowerLaw::new(1.0, 0.0);
    }
}
