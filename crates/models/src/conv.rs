//! A small convolutional network — the native analog of the paper's "basic
//! CNNs with 2–3 hidden layers".
//!
//! The main experiments use MLPs because Slice Tuner only reads per-slice
//! losses, but the CNN path exists to validate that substitution: the
//! `cnn_compare` bench shows the method ranking (Moderate > baselines) is
//! unchanged when the shared model is an actual convolution over the
//! synthetic image families.
//!
//! Architecture: `conv 3×3 (valid) → ReLU → maxpool 2×2 → flatten → dense
//! softmax`. Batches are row-major [`Matrix`] values whose rows are
//! flattened `channels × height × width` images, so the rest of the stack
//! (loss functions, estimators) is unchanged.

use crate::classifier::Classifier;
use crate::network::Layer;
use crate::optimizer::{OptimizerKind, OptimizerState};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use st_data::rng::normal;
use st_data::seeded_rng;
use st_linalg::{softmax_in_place, Matrix, PackedB};

/// Shape of one input image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImageShape {
    /// Input channels.
    pub channels: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Image width in pixels.
    pub width: usize,
}

impl ImageShape {
    /// Flattened length of one image.
    pub fn flat_len(&self) -> usize {
        self.channels * self.height * self.width
    }
}

/// Convolution kernel bank: `out_ch × in_ch × k × k` weights plus one bias
/// per output channel.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvKernels {
    /// Flat weights indexed `[o][i][ky][kx]`.
    pub w: Vec<f64>,
    /// Per-output-channel bias.
    pub b: Vec<f64>,
    /// Output channels.
    pub out_ch: usize,
    /// Input channels.
    pub in_ch: usize,
    /// Kernel side length.
    pub k: usize,
}

impl ConvKernels {
    /// He-initialized kernels.
    pub fn he_init(out_ch: usize, in_ch: usize, k: usize, rng: &mut StdRng) -> Self {
        let fan_in = in_ch * k * k;
        let scale = (2.0 / fan_in.max(1) as f64).sqrt();
        let w = (0..out_ch * fan_in).map(|_| scale * normal(rng)).collect();
        ConvKernels {
            w,
            b: vec![0.0; out_ch],
            out_ch,
            in_ch,
            k,
        }
    }
}

/// The convolutional classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvNet {
    /// Input image shape.
    pub shape: ImageShape,
    /// The single convolution block.
    pub conv: ConvKernels,
    /// Dense softmax head on the flattened pooled features.
    pub head: Layer,
}

/// Hyperparameters for [`ConvNet::train`].
#[derive(Debug, Clone, PartialEq)]
pub struct ConvTrainConfig {
    /// Output channels of the conv block.
    pub filters: usize,
    /// Kernel side length (3 reproduces the paper's 3×3 kernels).
    pub kernel: usize,
    /// Passes over the data.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Learning rate (constant; these nets train for few epochs).
    pub lr: f64,
    /// Update rule.
    pub optimizer: OptimizerKind,
    /// Seed for init and shuffling.
    pub seed: u64,
}

impl Default for ConvTrainConfig {
    fn default() -> Self {
        ConvTrainConfig {
            filters: 8,
            kernel: 3,
            epochs: 15,
            batch_size: 32,
            lr: 0.05,
            optimizer: OptimizerKind::default_momentum(),
            seed: 0,
        }
    }
}

/// Reusable buffers for the conv minibatch loop.
///
/// The dominant per-batch allocation used to be the im2col patch matrix —
/// `(n · ch · cw) × (in_ch · k · k)` values rebuilt for every minibatch of
/// every epoch. One scratch threaded through the loop keeps it (and every
/// other intermediate) allocation-free in steady state without changing a
/// single arithmetic operation. The scratch also keeps the prepacked
/// convolution kernel bank and head weights alive across forwards;
/// `packs_dirty` invalidates them exactly when the optimizer updates the
/// weights (the [`PackedB`] snapshot contract), and re-packing reuses the
/// handles' buffers.
#[derive(Debug, Default)]
struct ConvScratch {
    /// The im2col patch matrix, `(n · ch · cw) × (in_ch · k · k)`: one row
    /// per output position, reused by the backward pass as the GEMM
    /// operand for kernel gradients.
    cols: Matrix,
    /// Bias-seeded conv GEMM output, position-major.
    conv_out: Matrix,
    /// Post-ReLU conv activations, `n × (out_ch · ch · cw)`.
    relu: Matrix,
    /// Pooled features, `n × (out_ch · ph · pw)`.
    pooled: Matrix,
    /// Flat index (into the relu row) of each pooled maximum.
    argmax: Vec<usize>,
    /// Head logits of the forward pass (becomes `dZ` via pointer swap).
    logits: Matrix,
    /// Softmax cross-entropy gradient on the logits.
    dz: Matrix,
    /// Conv-space gradients routed back through pool + ReLU.
    dconv: Matrix,
    /// Position-major regrouping of `dconv` (the im2col-matching layout).
    d: Matrix,
    /// Head weight/bias gradients.
    grad_head_w: Matrix,
    grad_head_b: Vec<f64>,
    /// Gradient w.r.t. the pooled features.
    dpooled: Matrix,
    /// Kernel-bank weight/bias gradients.
    gw: Matrix,
    gb: Vec<f64>,
    /// Prepacked kernel bank (`cols · Wᵀ` operand, packed transposed).
    w_pack: PackedB,
    /// Prepacked dense-head weights.
    head_pack: PackedB,
    /// True when the weights changed since the packs were built.
    packs_dirty: bool,
}

impl ConvScratch {
    fn fresh() -> Self {
        ConvScratch {
            packs_dirty: true,
            ..Default::default()
        }
    }
}

impl ConvNet {
    /// Builds a seeded, He-initialized network.
    ///
    /// # Panics
    /// Panics when the convolution or pooling would not fit the image
    /// (needs `height, width ≥ kernel` and pooled dims ≥ 1).
    pub fn new(
        shape: ImageShape,
        filters: usize,
        kernel: usize,
        num_classes: usize,
        rng: &mut StdRng,
    ) -> Self {
        assert!(
            shape.height >= kernel && shape.width >= kernel,
            "kernel larger than image"
        );
        let (ch, cw) = (shape.height - kernel + 1, shape.width - kernel + 1);
        let (ph, pw) = (ch / 2, cw / 2);
        assert!(ph >= 1 && pw >= 1, "image too small to pool");
        let conv = ConvKernels::he_init(filters, shape.channels, kernel, rng);
        let head = Layer::he_init(filters * ph * pw, num_classes, rng);
        ConvNet { shape, conv, head }
    }

    /// Conv output spatial dims (valid padding).
    fn conv_dims(&self) -> (usize, usize) {
        (
            self.shape.height - self.conv.k + 1,
            self.shape.width - self.conv.k + 1,
        )
    }

    /// Pooled spatial dims (2×2, stride 2, floor).
    fn pool_dims(&self) -> (usize, usize) {
        let (ch, cw) = self.conv_dims();
        (ch / 2, cw / 2)
    }

    /// Total trainable parameter count.
    pub fn num_params(&self) -> usize {
        self.conv.w.len()
            + self.conv.b.len()
            + self.head.w.rows() * self.head.w.cols()
            + self.head.b.len()
    }

    /// Lowers a batch of flattened images to the im2col patch matrix: one
    /// row per output position `(ex, y, x)` holding the receptive field in
    /// `(in_ch, ky, kx)` order — exactly the layout of one kernel row in
    /// [`ConvKernels::w`], so convolution becomes `cols · Wᵀ`.
    fn im2col_into(&self, x: &Matrix, cols: &mut Matrix) {
        let n = x.rows();
        let (ch, cw) = self.conv_dims();
        let s = &self.shape;
        let k = self.conv.k;
        let patch = self.conv.in_ch * k * k;
        cols.reset_to_zeros(n * ch * cw, patch);
        for ex in 0..n {
            let img = x.row(ex);
            for y in 0..ch {
                for xx in 0..cw {
                    let dst = cols.row_mut((ex * ch + y) * cw + xx);
                    let mut w_off = 0;
                    for i in 0..s.channels {
                        let plane = &img[i * s.height * s.width..];
                        for ky in 0..k {
                            let src = &plane[(y + ky) * s.width + xx..(y + ky) * s.width + xx + k];
                            dst[w_off..w_off + k].copy_from_slice(src);
                            w_off += k;
                        }
                    }
                }
            }
        }
    }

    /// Forward pass into the scratch, keeping the intermediates backprop
    /// needs (`cols`, `relu`, `pooled`, `argmax`, `logits`).
    ///
    /// The convolution itself is one batched GEMM over the im2col matrix:
    /// the output accumulator is seeded with the bias and then reduced in
    /// `(in_ch, ky, kx)` order, matching the nested-loop formulation
    /// bit-for-bit. The kernel bank and head weights come from the
    /// scratch's prepacked handles, re-packed only when `packs_dirty` says
    /// an optimizer step invalidated them.
    fn forward_scratch(&self, x: &Matrix, s: &mut ConvScratch) {
        let k = self.conv.k;
        let patch = self.conv.in_ch * k * k;
        if s.packs_dirty {
            // `conv.w` rows are kernel banks = columns of the logical B,
            // exactly the transposed-storage shape `pack_b_t` consumes.
            st_linalg::kernel().pack_b_t_into(patch, self.conv.out_ch, &self.conv.w, &mut s.w_pack);
            self.head.pack_weights_into(&mut s.head_pack);
            s.packs_dirty = false;
        }
        let ConvScratch {
            cols,
            conv_out,
            relu,
            pooled,
            argmax,
            logits,
            w_pack,
            head_pack,
            ..
        } = s;
        self.forward_core(
            x, w_pack, head_pack, cols, conv_out, relu, pooled, argmax, logits,
        );
    }

    /// The pack-agnostic forward body shared by the training path
    /// ([`Self::forward_scratch`], packs cached in the train scratch) and
    /// the evaluation view ([`PackedConvNet`], packs owned by the view) —
    /// identical ops either way, so the two paths are bit-identical.
    #[allow(clippy::too_many_arguments)]
    fn forward_core(
        &self,
        x: &Matrix,
        w_pack: &PackedB,
        head_pack: &PackedB,
        cols: &mut Matrix,
        conv_out: &mut Matrix,
        relu: &mut Matrix,
        pooled: &mut Matrix,
        argmax: &mut Vec<usize>,
        logits: &mut Matrix,
    ) {
        let n = x.rows();
        let (ch, cw) = self.conv_dims();
        let (ph, pw) = self.pool_dims();
        let k = self.conv.k;
        let patch = self.conv.in_ch * k * k;
        let positions = n * ch * cw;

        self.im2col_into(x, cols);

        // conv_out[pos][o] = b[o] + cols.row(pos) · w.row(o).
        conv_out.reset_to_zeros(positions, self.conv.out_ch);
        conv_out.add_bias_rows(&self.conv.b);
        st_linalg::kernel().gemm_nt_prepacked(
            positions,
            patch,
            self.conv.out_ch,
            cols.as_slice(),
            w_pack,
            conv_out.as_mut_slice(),
        );

        // Scatter position-major GEMM output into the per-example
        // `(o, y, x)` activation layout, applying the ReLU.
        relu.reset_to_zeros(n, self.conv.out_ch * ch * cw);
        pooled.reset_to_zeros(n, self.conv.out_ch * ph * pw);
        argmax.clear();
        argmax.resize(n * self.conv.out_ch * ph * pw, 0);
        for ex in 0..n {
            let relu_row = relu.row_mut(ex);
            for y in 0..ch {
                for xx in 0..cw {
                    let src = conv_out.row((ex * ch + y) * cw + xx);
                    for (o, &v) in src.iter().enumerate() {
                        relu_row[(o * ch + y) * cw + xx] = v.max(0.0);
                    }
                }
            }
            // 2×2 max pool with argmax bookkeeping.
            let pooled_row = pooled.row_mut(ex);
            for o in 0..self.conv.out_ch {
                for py in 0..ph {
                    for px in 0..pw {
                        let mut best = f64::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let idx = (o * ch + 2 * py + dy) * cw + 2 * px + dx;
                                if relu_row[idx] > best {
                                    best = relu_row[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let p_idx = (o * ph + py) * pw + px;
                        pooled_row[p_idx] = best;
                        argmax[ex * self.conv.out_ch * ph * pw + p_idx] = best_idx;
                    }
                }
            }
        }
        self.head.forward_prepacked_into(head_pack, pooled, logits);
    }

    /// Batch logits.
    pub fn logits(&self, x: &Matrix) -> Matrix {
        let mut s = ConvEvalScratch::default();
        self.packed().logits_into(x, &mut s);
        s.logits
    }

    /// An evaluation view with the kernel bank and head weights packed
    /// **once** for reuse across many forward passes — the conv analog of
    /// [`crate::Mlp::packed`]. The view borrows the network immutably, so
    /// the packs cannot go stale while it lives; outputs are bit-identical
    /// to [`Self::logits`] (identical ops through
    /// [`Self::forward_core`], identical packed bytes).
    pub fn packed(&self) -> PackedConvNet<'_> {
        let patch = self.conv.in_ch * self.conv.k * self.conv.k;
        let mut w_pack = PackedB::default();
        st_linalg::kernel().pack_b_t_into(patch, self.conv.out_ch, &self.conv.w, &mut w_pack);
        let mut head_pack = PackedB::default();
        self.head.pack_weights_into(&mut head_pack);
        PackedConvNet {
            net: self,
            w_pack,
            head_pack,
        }
    }

    /// Trains a `ConvNet` on flattened-image rows. Deterministic in
    /// `(x, y, shape, config)`.
    ///
    /// # Panics
    /// Panics on shape/label mismatches.
    pub fn train(
        x: &Matrix,
        y: &[usize],
        shape: ImageShape,
        num_classes: usize,
        config: &ConvTrainConfig,
    ) -> ConvNet {
        assert_eq!(x.rows(), y.len(), "feature/label count mismatch");
        assert_eq!(
            x.cols(),
            shape.flat_len(),
            "row length does not match image shape"
        );
        assert!(y.iter().all(|&l| l < num_classes), "label out of range");

        let mut rng = seeded_rng(config.seed);
        let mut net = ConvNet::new(shape, config.filters, config.kernel, num_classes, &mut rng);
        let n = x.rows();
        if n == 0 {
            return net;
        }
        let lens = [
            net.conv.w.len(),
            net.conv.b.len(),
            net.head.w.rows() * net.head.w.cols(),
            net.head.b.len(),
        ];
        let mut opt = OptimizerState::new(config.optimizer, &lens);
        let mut order: Vec<usize> = (0..n).collect();
        let mut scratch = ConvScratch::fresh();
        let mut bx = Matrix::zeros(0, 0);
        let mut by: Vec<usize> = Vec::new();

        for _epoch in 0..config.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(config.batch_size.max(1)) {
                x.gather_rows_into(chunk, &mut bx);
                by.clear();
                by.extend(chunk.iter().map(|&i| y[i]));
                opt.next_step();
                net.step(&bx, &by, config.lr, &mut opt, &mut scratch);
            }
        }
        net
    }

    /// One optimizer step on a minibatch, entirely in scratch space.
    fn step(
        &mut self,
        bx: &Matrix,
        by: &[usize],
        lr: f64,
        opt: &mut OptimizerState,
        s: &mut ConvScratch,
    ) {
        let m = bx.rows();
        self.forward_scratch(bx, s);
        let (ch, cw) = self.conv_dims();
        let (ph, pw) = self.pool_dims();

        // Softmax cross-entropy gradient. The logits buffer *becomes* dZ
        // (a pointer swap, not a copy).
        std::mem::swap(&mut s.dz, &mut s.logits);
        for r in 0..m {
            let row = s.dz.row_mut(r);
            softmax_in_place(row);
            row[by[r]] -= 1.0;
            for v in row.iter_mut() {
                *v /= m as f64;
            }
        }

        // Dense head gradients, via the transpose-free GEMM shapes.
        s.pooled.matmul_tn_into(&s.dz, &mut s.grad_head_w);
        s.dz.col_sums_into(&mut s.grad_head_b);
        // Gradient wrt pooled features, before updating the head.
        s.dz.matmul_nt_into(&self.head.w, &mut s.dpooled);

        // Route through the max pool and the ReLU into conv-space gradients.
        s.dconv.reset_to_zeros(m, self.conv.out_ch * ch * cw);
        for ex in 0..m {
            let drow = s.dpooled.row(ex);
            let dconv_row = s.dconv.row_mut(ex);
            for p_idx in 0..self.conv.out_ch * ph * pw {
                let src = s.argmax[ex * self.conv.out_ch * ph * pw + p_idx];
                // ReLU: the stored activation is post-ReLU; zero activations
                // pass no gradient.
                if s.relu[(ex, src)] > 0.0 {
                    dconv_row[src] += drow[p_idx];
                }
            }
        }

        // Kernel gradients: regroup the conv-space gradients to the
        // position-major layout of the im2col matrix, then one batched
        // `Dᵀ · cols` GEMM yields all kernel rows at once (`gw[o] =
        // Σ_pos D[pos][o] · cols[pos]`), and the bias gradient is the
        // column sum of `D` — both reduce positions in ascending order,
        // exactly like the nested-loop formulation.
        let positions = m * ch * cw;
        s.d.reset_to_zeros(positions, self.conv.out_ch);
        for ex in 0..m {
            let drow = s.dconv.row(ex);
            for o in 0..self.conv.out_ch {
                for y in 0..ch {
                    for xx in 0..cw {
                        s.d[((ex * ch + y) * cw + xx, o)] = drow[(o * ch + y) * cw + xx];
                    }
                }
            }
        }
        s.d.matmul_tn_into(&s.cols, &mut s.gw);
        s.d.col_sums_into(&mut s.gb);

        opt.update(0, &mut self.conv.w, s.gw.as_slice(), lr, 0.0);
        opt.update(1, &mut self.conv.b, &s.gb, lr, 0.0);
        opt.update(
            2,
            self.head.w.as_mut_slice(),
            s.grad_head_w.as_slice(),
            lr,
            0.0,
        );
        opt.update(3, &mut self.head.b, &s.grad_head_b, lr, 0.0);
        // Every weight tensor just changed; invalidate the packs.
        s.packs_dirty = true;
    }
}

/// A read-only [`ConvNet`] evaluation view with prepacked weights (see
/// [`ConvNet::packed`]): the per-slice evaluation loops score one trained
/// model against every slice's cached validation matrix, and re-packing
/// identical weight bytes per call was the conv path's last avoidable
/// per-evaluation cost.
#[derive(Debug)]
pub struct PackedConvNet<'a> {
    net: &'a ConvNet,
    w_pack: PackedB,
    head_pack: PackedB,
}

/// Reusable forward buffers for [`PackedConvNet`] — the conv analog of
/// [`crate::EvalScratch`]: one scratch serves any number of batches and
/// models, keeping repeated evaluation allocation-free in steady state.
#[derive(Debug, Default)]
pub struct ConvEvalScratch {
    cols: Matrix,
    conv_out: Matrix,
    relu: Matrix,
    pooled: Matrix,
    argmax: Vec<usize>,
    logits: Matrix,
}

impl PackedConvNet<'_> {
    /// The underlying network.
    pub fn network(&self) -> &ConvNet {
        self.net
    }

    /// Batch logits into the scratch's `logits` buffer — bit-identical to
    /// [`ConvNet::logits`].
    pub fn logits_into(&self, x: &Matrix, s: &mut ConvEvalScratch) {
        self.net.forward_core(
            x,
            &self.w_pack,
            &self.head_pack,
            &mut s.cols,
            &mut s.conv_out,
            &mut s.relu,
            &mut s.pooled,
            &mut s.argmax,
            &mut s.logits,
        );
    }

    /// Mean clamped negative log-likelihood on one validation batch —
    /// bit-identical to [`crate::log_loss_of`] on the unpacked network
    /// (same logits bits, same softmax/clamp arithmetic). Returns `NaN`
    /// for an empty batch.
    ///
    /// # Panics
    /// Panics when `x.rows() != y.len()`.
    pub fn log_loss_scratch(&self, x: &Matrix, y: &[usize], s: &mut ConvEvalScratch) -> f64 {
        assert_eq!(x.rows(), y.len(), "feature/label count mismatch");
        if y.is_empty() {
            return f64::NAN;
        }
        self.logits_into(x, s);
        for r in 0..s.logits.rows() {
            softmax_in_place(s.logits.row_mut(r));
        }
        crate::loss::nll_of_proba(&s.logits, y)
    }
}

impl Classifier for ConvNet {
    fn predict_proba(&self, x: &Matrix) -> Matrix {
        let mut logits = self.logits(x);
        for r in 0..logits.rows() {
            softmax_in_place(logits.row_mut(r));
        }
        logits
    }

    fn num_classes(&self) -> usize {
        self.head.fan_out()
    }

    fn input_dim(&self) -> usize {
        self.shape.flat_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::{accuracy_of, log_loss_of};

    const SHAPE: ImageShape = ImageShape {
        channels: 1,
        height: 8,
        width: 8,
    };

    /// Class 0: bright vertical bar; class 1: bright horizontal bar.
    fn bars(n_per: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = seeded_rng(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for label in [0usize, 1] {
            for _ in 0..n_per {
                let mut img = vec![0.0; SHAPE.flat_len()];
                for v in img.iter_mut() {
                    *v = 0.1 * normal(&mut rng);
                }
                let pos = 2 + (rng.next_u32() as usize) % 4;
                for t in 0..8 {
                    let idx = if label == 0 { t * 8 + pos } else { pos * 8 + t };
                    img[idx] += 1.0;
                }
                rows.extend_from_slice(&img);
                labels.push(label);
            }
        }
        (
            Matrix::from_vec(labels.len(), SHAPE.flat_len(), rows),
            labels,
        )
    }

    use rand::RngCore;

    #[test]
    fn shapes_and_param_count() {
        let mut rng = seeded_rng(1);
        let net = ConvNet::new(SHAPE, 4, 3, 2, &mut rng);
        // conv out 6×6, pooled 3×3 → head input 4·9 = 36.
        assert_eq!(net.conv_dims(), (6, 6));
        assert_eq!(net.pool_dims(), (3, 3));
        assert_eq!(net.head.fan_in(), 36);
        assert_eq!(net.num_params(), 4 * 9 + 4 + 36 * 2 + 2);
    }

    #[test]
    fn forward_produces_distributions() {
        let mut rng = seeded_rng(2);
        let net = ConvNet::new(SHAPE, 3, 3, 4, &mut rng);
        let (x, _) = bars(3, 3);
        let p = net.predict_proba(&x);
        assert_eq!((p.rows(), p.cols()), (6, 4));
        for r in 0..p.rows() {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn learns_oriented_bars() {
        let (x, y) = bars(40, 4);
        let cfg = ConvTrainConfig {
            epochs: 12,
            ..Default::default()
        };
        let net = ConvNet::train(&x, &y, SHAPE, 2, &cfg);
        let acc = accuracy_of(&net, &x, &y);
        assert!(acc > 0.95, "train accuracy {acc}");
        // Generalizes to a fresh sample of the same distribution.
        let (tx, ty) = bars(40, 5);
        assert!(accuracy_of(&net, &tx, &ty) > 0.9);
        assert!(log_loss_of(&net, &tx, &ty) < 0.35);
    }

    #[test]
    fn training_is_deterministic() {
        let (x, y) = bars(10, 6);
        let cfg = ConvTrainConfig {
            epochs: 3,
            ..Default::default()
        };
        let a = ConvNet::train(&x, &y, SHAPE, 2, &cfg);
        let b = ConvNet::train(&x, &y, SHAPE, 2, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn conv_beats_untrained_baseline() {
        let (x, y) = bars(30, 7);
        let cfg = ConvTrainConfig {
            epochs: 10,
            ..Default::default()
        };
        let trained = ConvNet::train(&x, &y, SHAPE, 2, &cfg);
        let mut rng = seeded_rng(cfg.seed);
        let init = ConvNet::new(SHAPE, cfg.filters, cfg.kernel, 2, &mut rng);
        assert!(log_loss_of(&trained, &x, &y) < 0.5 * log_loss_of(&init, &x, &y));
    }

    #[test]
    fn packed_view_is_bit_identical_and_scratch_is_shareable() {
        let (x, y) = bars(12, 9);
        let cfg = ConvTrainConfig {
            epochs: 2,
            ..Default::default()
        };
        let a = ConvNet::train(&x, &y, SHAPE, 2, &cfg);
        let b = ConvNet::train(
            &x,
            &y,
            SHAPE,
            2,
            &ConvTrainConfig {
                seed: 7,
                ..cfg.clone()
            },
        );
        // One scratch across two different models and two batch sizes: the
        // packs live in the views, so scratch reuse cannot go stale.
        let mut s = ConvEvalScratch::default();
        for net in [&a, &b] {
            let packed = net.packed();
            for rows in [1usize, 5] {
                let xs = x.gather_rows(&(0..rows).collect::<Vec<_>>());
                let want = net.logits(&xs);
                packed.logits_into(&xs, &mut s);
                for (w, g) in want.as_slice().iter().zip(s.logits.as_slice()) {
                    assert_eq!(w.to_bits(), g.to_bits());
                }
            }
            let want = log_loss_of(net, &x, &y);
            let got = packed.log_loss_scratch(&x, &y, &mut s);
            assert_eq!(want.to_bits(), got.to_bits());
        }
        // Empty batch keeps the NaN convention.
        assert!(a
            .packed()
            .log_loss_scratch(&Matrix::zeros(0, SHAPE.flat_len()), &[], &mut s)
            .is_nan());
    }

    #[test]
    #[should_panic(expected = "kernel larger than image")]
    fn rejects_oversized_kernel() {
        let mut rng = seeded_rng(8);
        let tiny = ImageShape {
            channels: 1,
            height: 2,
            width: 2,
        };
        let _ = ConvNet::new(tiny, 2, 3, 2, &mut rng);
    }

    #[test]
    #[should_panic(expected = "row length does not match image shape")]
    fn rejects_wrong_row_length() {
        let x = Matrix::zeros(1, 10);
        let _ = ConvNet::train(&x, &[0], SHAPE, 2, &ConvTrainConfig::default());
    }
}
