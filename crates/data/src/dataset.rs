//! Materialized train/validation data, organized by slice.

use crate::example::{Example, SliceId};
use crate::generator::DatasetFamily;
use crate::rng::{seeded_rng, split_seed};
use rand::seq::SliceRandom;
use rand::Rng;

/// Train and validation examples for one slice.
#[derive(Debug, Clone, Default)]
pub struct SliceData {
    /// Slice name (copied from the family for reporting).
    pub name: String,
    /// Acquisition cost `C(s)` of one example.
    pub cost: f64,
    /// Training examples (grows as data is acquired).
    pub train: Vec<Example>,
    /// Validation examples (fixed; the paper uses 500 per slice).
    pub validation: Vec<Example>,
}

impl SliceData {
    /// Current training-set size `|s_i|`.
    pub fn train_size(&self) -> usize {
        self.train.len()
    }
}

/// A dataset partitioned into slices, with per-slice train/validation splits.
///
/// This is the object Slice Tuner operates on: strategies inspect
/// [`SlicedDataset::train_sizes`], training consumes
/// [`SlicedDataset::all_train`], and evaluation uses the fixed per-slice
/// validation sets.
#[derive(Debug, Clone)]
pub struct SlicedDataset {
    /// Feature dimensionality.
    pub feature_dim: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Per-slice data, indexed by [`SliceId`].
    pub slices: Vec<SliceData>,
}

impl SlicedDataset {
    /// Generates a dataset from `family` with the given initial train sizes
    /// and a fixed validation size per slice.
    ///
    /// Streams are derived from `seed` so the result is deterministic;
    /// validation draws never overlap the training streams.
    ///
    /// # Panics
    /// Panics if `train_sizes.len()` differs from the slice count.
    pub fn generate(
        family: &DatasetFamily,
        train_sizes: &[usize],
        validation_size: usize,
        seed: u64,
    ) -> Self {
        assert_eq!(
            train_sizes.len(),
            family.num_slices(),
            "train_sizes length must match slice count"
        );
        let slices = family
            .slices
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let id = SliceId(i);
                // Stream 0: initial train data. Stream 1: validation data.
                let train = family.sample_slice_seeded(id, train_sizes[i], seed, 0);
                let validation = family.sample_slice_seeded(id, validation_size, seed, 1);
                SliceData {
                    name: spec.name.clone(),
                    cost: spec.cost,
                    train,
                    validation,
                }
            })
            .collect();
        Self {
            feature_dim: family.feature_dim,
            num_classes: family.num_classes,
            slices,
        }
    }

    /// Builds an empty dataset shell with named slices and costs — for
    /// callers assembling data from their own sources (e.g. after
    /// [`auto_slice`](crate::auto_slice) rediscovers slice structure).
    ///
    /// # Panics
    /// Panics when `names` and `costs` lengths differ or are empty.
    pub fn empty<S: AsRef<str>>(
        names: &[S],
        costs: &[f64],
        feature_dim: usize,
        num_classes: usize,
    ) -> Self {
        assert!(!names.is_empty(), "need at least one slice");
        assert_eq!(names.len(), costs.len(), "names/costs length mismatch");
        let slices = names
            .iter()
            .zip(costs)
            .map(|(name, &cost)| SliceData {
                name: name.as_ref().to_string(),
                cost,
                train: Vec::new(),
                validation: Vec::new(),
            })
            .collect();
        Self {
            feature_dim,
            num_classes,
            slices,
        }
    }

    /// Number of slices.
    pub fn num_slices(&self) -> usize {
        self.slices.len()
    }

    /// Current per-slice training sizes `{|s_i|}`.
    pub fn train_sizes(&self) -> Vec<usize> {
        self.slices.iter().map(|s| s.train_size()).collect()
    }

    /// Per-slice acquisition costs.
    pub fn costs(&self) -> Vec<f64> {
        self.slices.iter().map(|s| s.cost).collect()
    }

    /// Imbalance ratio `max |s_i| / min |s_i|` (Buda et al.; Section 5.2).
    ///
    /// Returns `f64::INFINITY` when the smallest slice is empty.
    pub fn imbalance_ratio(&self) -> f64 {
        imbalance_ratio_of(&self.train_sizes())
    }

    /// Order-sensitive content hash over every training and validation
    /// example (bit-exact features, labels, slice ids) plus the shape.
    ///
    /// Two datasets with equal fingerprints produce identical training
    /// subsets, models, and losses for the same seeds, which is what lets
    /// curve-estimation caches key on `(fingerprint, seed)` without risking
    /// collisions between same-sized datasets with different content.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over little-endian words; cheap relative to one training.
        const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = OFFSET;
        let mut mix = |word: u64| {
            for byte in word.to_le_bytes() {
                h = (h ^ byte as u64).wrapping_mul(PRIME);
            }
        };
        mix(self.feature_dim as u64);
        mix(self.num_classes as u64);
        for slice in &self.slices {
            mix(slice.train.len() as u64);
            mix(slice.validation.len() as u64);
            for e in slice.train.iter().chain(&slice.validation) {
                mix(e.label as u64);
                mix(e.slice.0 as u64);
                for &f in &e.features {
                    mix(f.to_bits());
                }
            }
        }
        h
    }

    /// All training examples across slices, cloned into one buffer in slice
    /// order. The shared model trains on this.
    pub fn all_train(&self) -> Vec<Example> {
        let total: usize = self.slices.iter().map(|s| s.train.len()).sum();
        let mut out = Vec::with_capacity(total);
        for s in &self.slices {
            out.extend(s.train.iter().cloned());
        }
        out
    }

    /// All validation examples across slices.
    pub fn all_validation(&self) -> Vec<Example> {
        let total: usize = self.slices.iter().map(|s| s.validation.len()).sum();
        let mut out = Vec::with_capacity(total);
        for s in &self.slices {
            out.extend(s.validation.iter().cloned());
        }
        out
    }

    /// Appends acquired examples to their slices' training sets.
    ///
    /// # Panics
    /// Panics if an example's slice id is out of range.
    pub fn absorb(&mut self, acquired: Vec<Example>) {
        for e in acquired {
            let idx = e.slice.index();
            assert!(
                idx < self.slices.len(),
                "acquired example for unknown slice {idx}"
            );
            self.slices[idx].train.push(e);
        }
    }

    /// Takes an X% random subset of *every* slice's training data jointly —
    /// the amortized subset used by the efficient curve estimation of
    /// Section 4.2. Fractions are clamped so each non-empty slice keeps at
    /// least one example.
    pub fn joint_train_subset<R: Rng + ?Sized>(&self, frac: f64, rng: &mut R) -> Vec<Example> {
        assert!((0.0..=1.0).contains(&frac), "frac must be in [0,1]");
        let mut out = Vec::new();
        for s in &self.slices {
            let n = s.train.len();
            if n == 0 {
                continue;
            }
            let take = ((n as f64 * frac).round() as usize).clamp(1, n);
            let mut idx: Vec<usize> = (0..n).collect();
            idx.shuffle(rng);
            out.extend(idx[..take].iter().map(|&i| s.train[i].clone()));
        }
        out
    }

    /// Takes a random subset of size `k` from one slice's training data and
    /// returns it together with the *full* training data of every other
    /// slice — the exhaustive per-slice subset of Section 4.1.
    pub fn exhaustive_train_subset<R: Rng + ?Sized>(
        &self,
        slice: SliceId,
        k: usize,
        rng: &mut R,
    ) -> Vec<Example> {
        let mut out = Vec::new();
        for (i, s) in self.slices.iter().enumerate() {
            if i == slice.index() {
                let n = s.train.len();
                let take = k.min(n);
                let mut idx: Vec<usize> = (0..n).collect();
                idx.shuffle(rng);
                out.extend(idx[..take].iter().map(|&j| s.train[j].clone()));
            } else {
                out.extend(s.train.iter().cloned());
            }
        }
        out
    }

    /// Deterministic helper: a seeded joint subset (stream-split from `seed`).
    pub fn joint_train_subset_seeded(&self, frac: f64, seed: u64, stream: u64) -> Vec<Example> {
        let mut rng = seeded_rng(split_seed(seed, stream));
        self.joint_train_subset(frac, &mut rng)
    }
}

/// Imbalance ratio of a size vector: `max / min`.
///
/// Returns 1.0 for an empty vector and `f64::INFINITY` when the minimum is
/// zero but the maximum is not.
pub fn imbalance_ratio_of(sizes: &[usize]) -> f64 {
    if sizes.is_empty() {
        return 1.0;
    }
    let max = *sizes.iter().max().expect("nonempty") as f64;
    let min = *sizes.iter().min().expect("nonempty") as f64;
    if min == 0.0 {
        if max == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        max / min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GaussianSliceModel, LabelCluster, SliceSpec};

    fn family() -> DatasetFamily {
        let mk = |label: usize, x: f64| {
            GaussianSliceModel::new(vec![LabelCluster::new(label, 1.0, vec![x, -x], 0.2)], 0.0)
        };
        DatasetFamily::new(
            "fam",
            2,
            3,
            vec![
                SliceSpec::new("a", 1.0, mk(0, 0.0)),
                SliceSpec::new("b", 1.5, mk(1, 2.0)),
                SliceSpec::new("c", 2.0, mk(2, -2.0)),
            ],
        )
    }

    #[test]
    fn generate_respects_sizes() {
        let ds = SlicedDataset::generate(&family(), &[10, 20, 30], 5, 7);
        assert_eq!(ds.train_sizes(), vec![10, 20, 30]);
        assert!(ds.slices.iter().all(|s| s.validation.len() == 5));
        assert_eq!(ds.all_train().len(), 60);
        assert_eq!(ds.all_validation().len(), 15);
    }

    #[test]
    fn generate_is_deterministic() {
        let a = SlicedDataset::generate(&family(), &[5, 5, 5], 3, 11);
        let b = SlicedDataset::generate(&family(), &[5, 5, 5], 3, 11);
        assert_eq!(a.all_train(), b.all_train());
        assert_eq!(a.all_validation(), b.all_validation());
    }

    #[test]
    fn validation_disjoint_from_train_stream() {
        let ds = SlicedDataset::generate(&family(), &[50, 50, 50], 50, 13);
        let train = ds.slices[0].train.clone();
        let val = ds.slices[0].validation.clone();
        // Exact feature collisions between independent continuous draws are
        // measure-zero; any overlap means the streams are shared.
        for t in &train {
            assert!(val.iter().all(|v| v.features != t.features));
        }
    }

    #[test]
    fn imbalance_ratio_basics() {
        assert_eq!(imbalance_ratio_of(&[10, 20, 30]), 3.0);
        assert_eq!(imbalance_ratio_of(&[7, 7]), 1.0);
        assert_eq!(imbalance_ratio_of(&[]), 1.0);
        assert_eq!(imbalance_ratio_of(&[0, 0]), 1.0);
        assert!(imbalance_ratio_of(&[0, 5]).is_infinite());
    }

    #[test]
    fn absorb_grows_right_slice() {
        let mut ds = SlicedDataset::generate(&family(), &[2, 2, 2], 2, 3);
        let extra = vec![Example::new(vec![0.0, 0.0], 0, SliceId(1))];
        ds.absorb(extra);
        assert_eq!(ds.train_sizes(), vec![2, 3, 2]);
    }

    #[test]
    fn joint_subset_scales_each_slice() {
        let ds = SlicedDataset::generate(&family(), &[100, 50, 10], 2, 5);
        let sub = ds.joint_train_subset_seeded(0.5, 1, 0);
        let count = |id: usize| sub.iter().filter(|e| e.slice == SliceId(id)).count();
        assert_eq!(count(0), 50);
        assert_eq!(count(1), 25);
        assert_eq!(count(2), 5);
    }

    #[test]
    fn joint_subset_keeps_at_least_one() {
        let ds = SlicedDataset::generate(&family(), &[3, 3, 3], 2, 5);
        let sub = ds.joint_train_subset_seeded(0.01, 1, 0);
        assert_eq!(
            sub.len(),
            3,
            "one example per slice survives tiny fractions"
        );
    }

    #[test]
    fn exhaustive_subset_only_shrinks_target_slice() {
        let ds = SlicedDataset::generate(&family(), &[40, 40, 40], 2, 5);
        let mut rng = seeded_rng(2);
        let sub = ds.exhaustive_train_subset(SliceId(1), 10, &mut rng);
        let count = |id: usize| sub.iter().filter(|e| e.slice == SliceId(id)).count();
        assert_eq!(count(0), 40);
        assert_eq!(count(1), 10);
        assert_eq!(count(2), 40);
    }

    #[test]
    fn fingerprint_is_deterministic_and_content_sensitive() {
        let a = SlicedDataset::generate(&family(), &[20, 20, 20], 5, 7);
        let b = SlicedDataset::generate(&family(), &[20, 20, 20], 5, 7);
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "same generation, same hash"
        );

        // Same shape, different seed: the content differs, so must the hash.
        let c = SlicedDataset::generate(&family(), &[20, 20, 20], 5, 8);
        assert_eq!(a.train_sizes(), c.train_sizes());
        assert_ne!(
            a.fingerprint(),
            c.fingerprint(),
            "content must be hashed, not shape"
        );
    }

    #[test]
    fn fingerprint_tracks_acquisition() {
        let fam = family();
        let mut ds = SlicedDataset::generate(&fam, &[10, 10, 10], 5, 9);
        let before = ds.fingerprint();
        ds.absorb(fam.sample_slice_seeded(SliceId(0), 4, 9, 42));
        assert_ne!(
            before,
            ds.fingerprint(),
            "absorbed data must change the hash"
        );
    }
}
