//! The workspace's unified error type.
//!
//! Every layer already reports failures through its own typed error
//! (`FitError`, `SolveError`, `CsvError`, `ModelIoError`, `SpecError`,
//! `TrainError`, …, all implementing [`std::error::Error`]). [`Error`]
//! folds them into one enum with `From` conversions, so the CLI — and any
//! embedding application — can propagate any of them with `?` and print a
//! single one-line diagnostic before exiting nonzero.

use std::fmt;

/// Any failure a Slice Tuner run can surface.
#[derive(Debug)]
pub enum Error {
    /// Power-law fitting failed.
    Fit(st_curve::FitError),
    /// The linear-algebra layer's solver failed.
    Solve(st_linalg::SolveError),
    /// CSV ingestion failed.
    Csv(st_data::CsvError),
    /// Model serialization failed.
    ModelIo(st_models::ModelIoError),
    /// An experiment spec failed to parse.
    Spec(crate::config::SpecError),
    /// Training hit a numeric guard.
    Train(st_models::TrainError),
    /// A trial exhausted its retries.
    Trial(crate::trials::TrialError),
    /// An estimation measurement exhausted its retries.
    Estimate(st_curve::EstimateError),
    /// A checkpoint could not be written, read, or applied.
    Checkpoint(crate::checkpoint::CheckpointError),
    /// A configuration value failed validation.
    Config(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Fit(e) => write!(f, "{e}"),
            Error::Solve(e) => write!(f, "{e}"),
            Error::Csv(e) => write!(f, "{e}"),
            Error::ModelIo(e) => write!(f, "{e}"),
            Error::Spec(e) => write!(f, "{e}"),
            Error::Train(e) => write!(f, "{e}"),
            Error::Trial(e) => write!(f, "{e}"),
            Error::Estimate(e) => write!(f, "{e}"),
            Error::Checkpoint(e) => write!(f, "{e}"),
            Error::Config(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Fit(e) => Some(e),
            Error::Solve(e) => Some(e),
            Error::Csv(e) => Some(e),
            Error::ModelIo(e) => Some(e),
            Error::Spec(e) => Some(e),
            Error::Train(e) => Some(e),
            Error::Trial(e) => Some(e),
            Error::Estimate(e) => Some(e),
            Error::Checkpoint(e) => Some(e),
            Error::Config(_) => None,
        }
    }
}

macro_rules! from_impl {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for Error {
            fn from(e: $ty) -> Self {
                Error::$variant(e)
            }
        }
    };
}

from_impl!(Fit, st_curve::FitError);
from_impl!(Solve, st_linalg::SolveError);
from_impl!(Csv, st_data::CsvError);
from_impl!(ModelIo, st_models::ModelIoError);
from_impl!(Spec, crate::config::SpecError);
from_impl!(Train, st_models::TrainError);
from_impl!(Trial, crate::trials::TrialError);
from_impl!(Estimate, st_curve::EstimateError);
from_impl!(Checkpoint, crate::checkpoint::CheckpointError);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_displays_one_line() {
        let errs: Vec<Error> = vec![
            st_curve::FitError::NotEnoughPoints.into(),
            st_data::CsvError::TooFewColumns { line: 3 }.into(),
            crate::config::SpecError::MissingEquals { line: 1 }.into(),
            st_models::TrainError::NonFiniteLoss { epoch: 2 }.into(),
            crate::checkpoint::CheckpointError::Version { found: 9 }.into(),
            Error::Config("budget must be positive".to_string()),
        ];
        for e in errs {
            let line = e.to_string();
            assert!(!line.is_empty());
            assert!(!line.contains('\n'), "one-line diagnostics only: {line}");
        }
    }

    #[test]
    fn sources_chain_to_the_underlying_error() {
        use std::error::Error as _;
        let e: Error = st_models::TrainError::NonFiniteLoss { epoch: 0 }.into();
        assert!(e.source().is_some());
        assert!(Error::Config("x".into()).source().is_none());
    }
}
