//! Cross-round state for incremental curve re-estimation.
//!
//! Algorithm 1 re-estimates every slice's learning curve on every
//! iteration, but an iteration's acquisition usually touches only a few
//! slices — the others' training data is bit-for-bit unchanged. Under the
//! exhaustive schedule every measurement belongs to exactly one slice, and
//! the tuner pins the estimator seed across rounds in incremental mode, so
//! re-measuring an unchanged slice would reproduce its cached measurements
//! exactly. [`IncrementalState`] is therefore a pure memo: it carries the
//! previous round's estimates, a per-slice dirty set that
//! [`SliceTuner::run_iterative`](crate::SliceTuner) refreshes after each
//! acquisition, and (opt-in) the warm-start model store.
//!
//! Results that depend on this history must never be inserted into the
//! shared [`CurveCache`](crate::CurveCache) — see the cache module docs.

use st_curve::SliceEstimate;
use st_models::Mlp;
use std::collections::HashMap;
use std::sync::Mutex;

/// Identity of one exhaustive-schedule measurement: the target slice, the
/// subset fraction's bits, and the repeat index. Request seeds are a pure
/// function of schedule position, so this triple names "the same training"
/// across rounds — the warm-start store is keyed by it.
pub type WarmKey = (Option<usize>, u64, usize);

/// Warm-start model store: the most recent model trained for each
/// measurement key, to seed the next re-measurement of that key.
pub(crate) type WarmStore = Mutex<HashMap<WarmKey, Mlp>>;

/// Per-run state threaded through incremental re-estimation
/// ([`SliceTuner::estimate_curves_incremental`](crate::SliceTuner)).
pub struct IncrementalState {
    /// The last round's estimates (`None` before the first estimation).
    pub(crate) prev: Option<Vec<SliceEstimate>>,
    /// Which slices' training data changed since the last estimation.
    /// Starts all-true so the first round measures everything.
    pub(crate) dirty: Vec<bool>,
    /// Warm-start store, consulted only when
    /// [`TunerConfig::warm_start`](crate::TunerConfig) is set.
    pub(crate) warm: WarmStore,
    /// Per-slice measurement-seed bump, raised by drift recovery so a
    /// flagged slice's next re-measure draws from a fresh seed stream
    /// instead of replaying the pinned pre-drift one. Zero (the default
    /// everywhere drift never fires) leaves the pinned seed untouched.
    pub(crate) seed_bumps: Vec<u64>,
}

impl IncrementalState {
    /// Fresh state for `num_slices` slices; every slice starts dirty.
    pub fn new(num_slices: usize) -> Self {
        IncrementalState {
            prev: None,
            dirty: vec![true; num_slices],
            warm: Mutex::new(HashMap::new()),
            seed_bumps: vec![0; num_slices],
        }
    }

    /// Unconditionally invalidates one slice's memoized estimate — the
    /// drift layer's hook for "this slice's evidence is no longer
    /// trustworthy even though its training data did not change".
    pub fn force_dirty(&mut self, slice: usize) {
        self.dirty[slice] = true;
    }

    /// Flags every slice whose training size changed between two
    /// [`train_sizes`](st_data::SlicedDataset::train_sizes) snapshots.
    /// Growth is the only change the tuner performs (absorb is
    /// append-only), so a size delta is exactly "this slice's train data
    /// changed".
    pub fn mark_dirty(&mut self, before: &[usize], after: &[usize]) {
        assert_eq!(before.len(), self.dirty.len(), "size snapshot mismatch");
        assert_eq!(after.len(), self.dirty.len(), "size snapshot mismatch");
        for (d, (b, a)) in self.dirty.iter_mut().zip(before.iter().zip(after)) {
            if b != a {
                *d = true;
            }
        }
    }

    /// The current dirty flags (for diagnostics and tests).
    pub fn dirty(&self) -> &[bool] {
        &self.dirty
    }

    /// Whether a previous round's estimates are available.
    pub fn has_estimates(&self) -> bool {
        self.prev.is_some()
    }

    /// Serializable view for the round checkpoint. The warm-start store is
    /// deliberately not captured: warm starts are a tolerance-mode feature
    /// (they already change bits round to round), and re-deriving the
    /// models on resume costs one extra cold training per key at worst.
    pub(crate) fn snapshot(&self) -> crate::checkpoint::IncSnapshot {
        crate::checkpoint::IncSnapshot {
            dirty: self.dirty.clone(),
            prev: self
                .prev
                .as_ref()
                .map(|p| crate::checkpoint::snapshot_estimates(p)),
            seed_bumps: self.seed_bumps.clone(),
        }
    }

    /// Restores a [`snapshot`](Self::snapshot) taken by a compatible run
    /// (the checkpoint's fingerprint check precedes this, so the widths
    /// always line up).
    pub(crate) fn restore(&mut self, snap: &crate::checkpoint::IncSnapshot) {
        assert_eq!(
            snap.dirty.len(),
            self.dirty.len(),
            "checkpoint sized for a different dataset"
        );
        self.dirty = snap.dirty.clone();
        self.prev = snap
            .prev
            .as_ref()
            .map(|p| crate::checkpoint::restore_estimates(p));
        self.seed_bumps = snap.seed_bumps.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_all_dirty() {
        let st = IncrementalState::new(3);
        assert_eq!(st.dirty(), &[true; 3]);
        assert!(!st.has_estimates());
    }

    #[test]
    fn marks_only_changed_slices() {
        let mut st = IncrementalState::new(4);
        st.dirty = vec![false; 4];
        st.mark_dirty(&[10, 20, 30, 40], &[10, 25, 30, 41]);
        assert_eq!(st.dirty(), &[false, true, false, true]);
    }

    #[test]
    fn dirty_flags_are_sticky_until_reset() {
        let mut st = IncrementalState::new(2);
        st.dirty = vec![true, false];
        st.mark_dirty(&[5, 5], &[5, 5]);
        assert_eq!(st.dirty(), &[true, false]);
    }

    #[test]
    #[should_panic(expected = "size snapshot mismatch")]
    fn rejects_wrong_width_snapshots() {
        let mut st = IncrementalState::new(2);
        st.mark_dirty(&[1, 2, 3], &[1, 2, 3]);
    }
}
