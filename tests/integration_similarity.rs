//! Integration: the training-free influence-direction predictor vs the
//! measured influence sweep (Figure 7's protocol).
//!
//! The paper hypothesizes that the *direction* of cross-slice influence
//! follows content similarity; `slice_tuner::similarity` predicts that
//! direction from the data alone. Here we grow one slice, measure the real
//! loss changes by retraining, and check the predictor got the most
//! important call right: which slice benefits.

use slice_tuner::{influence_sweep, similarity_matrix};
use st_data::{families, SliceId, SlicedDataset};
use st_models::{ModelSpec, TrainConfig};

#[test]
fn predictor_identifies_the_helped_slice_in_the_faces_sweep() {
    let fam = families::faces();
    // Figure 7's protocol scaled down: everyone at 150, White_Male from 40.
    let mut sizes = vec![150usize; 8];
    sizes[0] = 40;

    let cfg = TrainConfig {
        epochs: 12,
        ..Default::default()
    };
    let sweep = influence_sweep(
        &fam,
        &sizes,
        SliceId(0),
        &[800],
        120,
        &ModelSpec::small(),
        &cfg,
        3,
        11,
    );
    let influence = &sweep.points[0].influence;

    let ds = SlicedDataset::generate(&fam, &sizes, 0, 11);
    let sim = similarity_matrix(&ds);

    // The most-similar neighbor of White_Male must be White_Female...
    let best = sim.ranked_neighbors(0)[0];
    assert_eq!(best, 1, "White_Female should be the top neighbor");
    // ...and the measured influence on it must be the smallest (most
    // negative) among all non-target slices — it benefits the most.
    let min_other = (1..8)
        .min_by(|&a, &b| influence[a].partial_cmp(&influence[b]).unwrap())
        .unwrap();
    assert_eq!(
        min_other, best,
        "measured influences {influence:?} should single out slice {best}"
    );
    // The predictor also marks it as helped (negative direction).
    assert!(sim.predicted_direction(0, best) < 0.0);
}

#[test]
fn predicted_directions_correlate_with_measured_influence() {
    let fam = families::faces();
    let mut sizes = vec![150usize; 8];
    sizes[0] = 40;

    let cfg = TrainConfig {
        epochs: 12,
        ..Default::default()
    };
    let sweep = influence_sweep(
        &fam,
        &sizes,
        SliceId(0),
        &[800],
        120,
        &ModelSpec::small(),
        &cfg,
        3,
        13,
    );
    let ds = SlicedDataset::generate(&fam, &sizes, 0, 13);
    let sim = similarity_matrix(&ds);

    let measured: Vec<f64> = (1..8).map(|j| sweep.points[0].influence[j]).collect();
    let predicted: Vec<f64> = (1..8).map(|j| sim.predicted_direction(0, j)).collect();
    let rho = st_linalg::spearman(&predicted, &measured);
    // A training-free predictor cannot be perfect, but it must carry real
    // signal: positive rank correlation with the retrain-and-diff truth.
    assert!(
        rho > 0.0,
        "Spearman ρ = {rho}; predicted {predicted:?} measured {measured:?}"
    );
}
