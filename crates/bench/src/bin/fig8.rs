//! Figure 8: fitted learning curves for two slices of each dataset.
//!
//! For each family we subsample the initial data at K sizes, fit power-law
//! curves with the paper's weighted NLLS, and print both the raw points and
//! the fitted `y = b·x^(-a)` for two contrasting slices.

use slice_tuner::{PoolSource, SliceTuner};
use st_bench::FamilySetup;
use st_data::SlicedDataset;

fn main() {
    // Bench-wide kernel default: `sharded` on multi-core hosts, `simd`
    // on single-core containers; `ST_KERNEL` overrides (see docs/kernels.md).
    st_bench::init_bench_kernel();
    println!("Figure 8: learning curves (two slices per dataset)\n");
    for setup in FamilySetup::all() {
        let ds = SlicedDataset::generate(
            &setup.family,
            &vec![300; setup.family.num_slices()],
            setup.validation,
            88,
        );
        let mut src = PoolSource::new(setup.family.clone(), 88);
        let mut cfg = setup.config(88);
        cfg.fractions = (1..=10).map(|i| i as f64 / 10.0).collect();
        cfg.repeats = if st_bench::quick() { 1 } else { 3 };
        let tuner = SliceTuner::new(ds, &mut src, cfg);
        let curves = tuner.estimate_curves(0);

        // Pick the steepest and shallowest slices — the contrast the paper
        // highlights (e.g. Sandal vs Digit-0).
        let mut order: Vec<usize> = (0..curves.len()).collect();
        order.sort_by(|&i, &j| curves[i].a.partial_cmp(&curves[j].a).expect("finite"));
        let flat = order[0];
        let steep = *order.last().expect("nonempty");

        println!("== {} ==", setup.label);
        for &s in &[steep, flat] {
            let name = setup.family.slice_names()[s];
            let c = &curves[s];
            println!("  slice {name:<14} y = {:.3}x^(-{:.3})", c.b, c.a);
            let preds: Vec<String> = [30.0, 100.0, 200.0, 300.0]
                .iter()
                .map(|&n| format!("loss({n:.0})={:.3}", c.eval(n)))
                .collect();
            println!("    {}", preds.join("  "));
        }
        println!();
    }
    println!("paper reference fits:");
    println!("  Fashion-MNIST  Shirt: 2.894x^-0.204      Pullover: 2.035x^-0.195");
    println!("  Mixed-MNIST    Sandal: 1.875x^-0.446     Digit 0: 2.592x^-0.928");
    println!("  UTKFace        White-Male: 2.273x^-0.199 Black-Female: 3.502x^-0.314");
    println!("  AdultCensus    Black-Male: 0.447x^-0.060 White-Female: 0.356x^-0.097");
}
