//! Table 9 (Appendix B): the ResNet-18 stand-in — an overparameterized
//! model on Fashion-MNIST. Absolute losses rise (the model is too big for
//! the data), but the method ranking is unchanged.

use slice_tuner::{Strategy, TSchedule};
use st_bench::{rule, run_cell, trials, FamilySetup};
use st_models::ModelSpec;

fn main() {
    // Bench-wide kernel default: `sharded` on multi-core hosts, `simd`
    // on single-core containers; `ST_KERNEL` overrides (see docs/kernels.md).
    st_bench::init_bench_kernel();
    let mut setup = FamilySetup::fashion();
    setup.spec = ModelSpec::deep();
    let init = 400usize;
    let budget = if st_bench::quick() { 750.0 } else { 3000.0 };
    let trials = trials();

    println!(
        "Table 9: overparameterized model ({}) on Fashion-MNIST (init {init}, B = {budget}, {trials} trials)\n",
        setup.spec.repr()
    );
    println!(
        "{:<14} {:>8} {:>10} {:>10}",
        "Method", "Loss", "Avg EER", "Max EER"
    );
    rule(46);

    let cfg = setup.config(9);
    let orig = run_cell(
        &setup.family,
        &[init; 10],
        setup.validation,
        0.0,
        Strategy::Uniform,
        &cfg,
        trials,
    );
    println!(
        "{:<14} {:>8.3} {:>10.3} {:>10.3}",
        "Original", orig.original_loss.mean, orig.original_avg_eer.mean, orig.original_max_eer.mean
    );
    for (name, strategy) in [
        ("Uniform", Strategy::Uniform),
        ("Water filling", Strategy::WaterFilling),
        ("Moderate", Strategy::Iterative(TSchedule::moderate())),
    ] {
        let agg = run_cell(
            &setup.family,
            &[init; 10],
            setup.validation,
            budget,
            strategy,
            &cfg,
            trials,
        );
        println!(
            "{name:<14} {:>8.3} {:>10.3} {:>10.3}",
            agg.loss.mean, agg.avg_eer.mean, agg.max_eer.mean
        );
    }
    println!("\n(paper shape: same ranking as Table 6's basic setting, higher absolute losses)");
}
