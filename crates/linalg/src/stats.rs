//! Descriptive statistics used by the experiment harness and curve fitter.

/// Arithmetic mean; `NaN` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Weighted mean `Σ w_i x_i / Σ w_i`; `NaN` when the weights sum to zero.
///
/// # Panics
/// Panics if the lengths differ.
pub fn weighted_mean(xs: &[f64], ws: &[f64]) -> f64 {
    assert_eq!(xs.len(), ws.len(), "weighted_mean length mismatch");
    let wsum: f64 = ws.iter().sum();
    if wsum == 0.0 {
        return f64::NAN;
    }
    xs.iter().zip(ws).map(|(x, w)| x * w).sum::<f64>() / wsum
}

/// Population variance; `NaN` for an empty slice.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Linear-interpolation quantile for `q` in `[0, 1]`.
///
/// # Panics
/// Panics for an empty slice or `q` outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile q out of range");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_constant_is_constant() {
        assert_eq!(mean(&[2.0, 2.0, 2.0]), 2.0);
    }

    #[test]
    fn mean_of_empty_is_nan() {
        assert!(mean(&[]).is_nan());
    }

    #[test]
    fn weighted_mean_with_equal_weights_is_mean() {
        let xs = [1.0, 2.0, 6.0];
        assert!((weighted_mean(&xs, &[1.0; 3]) - mean(&xs)).abs() < 1e-12);
    }

    #[test]
    fn weighted_mean_respects_weights() {
        assert_eq!(weighted_mean(&[0.0, 10.0], &[3.0, 1.0]), 2.5);
    }

    #[test]
    fn variance_of_symmetric_pair() {
        assert_eq!(variance(&[-1.0, 1.0]), 1.0);
        assert_eq!(std_dev(&[-2.0, 2.0]), 2.0);
    }

    #[test]
    fn quantile_endpoints_and_median() {
        let xs = [3.0, 1.0, 2.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 0.5), 2.0);
        assert_eq!(quantile(&xs, 1.0), 3.0);
    }

    #[test]
    fn quantile_interpolates() {
        assert_eq!(quantile(&[0.0, 10.0], 0.25), 2.5);
    }
}
