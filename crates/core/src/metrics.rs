//! Accuracy and fairness measures (Section 2.1, Definition 1).

use st_data::SlicedDataset;
use st_models::{log_loss_packed_on, per_slice_validation_losses, Mlp};

/// Evaluation of one trained model against a sliced dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalReport {
    /// `ψ(s_i, M)` per slice, in slice-id order.
    pub per_slice_losses: Vec<f64>,
    /// `ψ(D, M)` on the pooled validation data.
    pub overall_loss: f64,
    /// Average equalized error rates: `avg_i |ψ(s_i) − ψ(D)|` (Definition 1).
    pub avg_eer: f64,
    /// Maximum equalized error rates: `max_i |ψ(s_i) − ψ(D)|`.
    pub max_eer: f64,
}

impl EvalReport {
    /// Evaluates `model` on the dataset's validation slices (via the
    /// cached dense snapshot, `SlicedDataset::matrices`).
    ///
    /// The overall loss is the size-weighted mean of the per-slice losses
    /// (what `overall_validation_loss` computes), derived from the
    /// per-slice vector instead of re-running every slice's forward pass
    /// a second time — identical bits, half the evaluation GEMMs.
    pub fn evaluate(model: &Mlp, ds: &SlicedDataset) -> Self {
        let per_slice_losses = per_slice_validation_losses(model, ds);
        let m = ds.matrices();
        let mut total = 0.0;
        let mut count = 0usize;
        for (loss, y) in per_slice_losses.iter().zip(m.val_y.iter()) {
            if y.is_empty() {
                continue;
            }
            total += loss * y.len() as f64;
            count += y.len();
        }
        let overall_loss = if count == 0 {
            f64::NAN
        } else {
            total / count as f64
        };
        let avg_eer = avg_eer(&per_slice_losses, overall_loss);
        let max_eer = max_eer(&per_slice_losses, overall_loss);
        EvalReport {
            per_slice_losses,
            overall_loss,
            avg_eer,
            max_eer,
        }
    }

    /// [`Self::evaluate`] built from per-call gathers of each slice's
    /// validation examples — the PR-4 baseline the pipeline bench's
    /// data-plane gate times against. Bit-identical to
    /// [`Self::evaluate`]: the gathered matrices hold the same bytes the
    /// snapshot caches.
    pub fn evaluate_per_call(model: &Mlp, ds: &SlicedDataset) -> Self {
        let packed = model.packed();
        let per_slice_losses: Vec<f64> = ds
            .slices
            .iter()
            .map(|s| log_loss_packed_on(&packed, &s.validation))
            .collect();
        let mut total = 0.0;
        let mut count = 0usize;
        for (loss, s) in per_slice_losses.iter().zip(&ds.slices) {
            if s.validation.is_empty() {
                continue;
            }
            total += loss * s.validation.len() as f64;
            count += s.validation.len();
        }
        let overall_loss = if count == 0 {
            f64::NAN
        } else {
            total / count as f64
        };
        let avg_eer = avg_eer(&per_slice_losses, overall_loss);
        let max_eer = max_eer(&per_slice_losses, overall_loss);
        EvalReport {
            per_slice_losses,
            overall_loss,
            avg_eer,
            max_eer,
        }
    }

    /// Per-slice health flags: `true` where the slice's validation loss is
    /// finite. A `false` entry means that slice's evaluation degenerated
    /// (empty validation set, or a numeric fault the guards let through in
    /// unguarded mode) — reports surface these instead of averaging NaNs
    /// away silently.
    pub fn slice_health(&self) -> Vec<bool> {
        self.per_slice_losses
            .iter()
            .map(|l| l.is_finite())
            .collect()
    }

    /// True when every slice is healthy (see
    /// [`slice_health`](Self::slice_health)) and the overall loss is
    /// finite.
    pub fn is_healthy(&self) -> bool {
        self.overall_loss.is_finite() && self.per_slice_losses.iter().all(|l| l.is_finite())
    }
}

/// Definition 1: the average absolute difference between each slice's loss
/// and the overall loss.
pub fn avg_eer(per_slice: &[f64], overall: f64) -> f64 {
    if per_slice.is_empty() {
        return f64::NAN;
    }
    per_slice.iter().map(|l| (l - overall).abs()).sum::<f64>() / per_slice.len() as f64
}

/// The worst-case variant of Definition 1: the maximum absolute difference.
pub fn max_eer(per_slice: &[f64], overall: f64) -> f64 {
    per_slice
        .iter()
        .map(|l| (l - overall).abs())
        .fold(f64::NAN, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_example_from_paper_section1() {
        // Losses 5 and 3, overall 4 ⇒ unfairness avg{|5−4|, |3−4|} = 1.
        assert_eq!(avg_eer(&[5.0, 3.0], 4.0), 1.0);
        assert_eq!(max_eer(&[5.0, 3.0], 4.0), 1.0);
        // After acquisition: losses 2 and 3, overall 2.4 ⇒ 0.5.
        assert!((avg_eer(&[2.0, 3.0], 2.4) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn equal_losses_are_perfectly_fair() {
        assert_eq!(avg_eer(&[0.7, 0.7, 0.7], 0.7), 0.0);
        assert_eq!(max_eer(&[0.7, 0.7, 0.7], 0.7), 0.0);
    }

    #[test]
    fn max_dominates_avg() {
        let per = [1.0, 2.0, 10.0];
        let overall = 3.0;
        assert!(max_eer(&per, overall) >= avg_eer(&per, overall));
        assert_eq!(max_eer(&per, overall), 7.0);
    }

    #[test]
    fn empty_slices_are_nan() {
        assert!(avg_eer(&[], 1.0).is_nan());
        assert!(max_eer(&[], 1.0).is_nan());
    }
}
