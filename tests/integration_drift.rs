//! Integration: drift-robust tuning over non-stationary pools.
//!
//! The drift suite's contract mirrors the chaos suite's: an `ST_DRIFT`
//! plan must never abort a run. A drifting slice is detected from the
//! residual run-up on its re-measured curve, walked through the recovery
//! ladder (re-measure, reset, quarantine), and the run completes with
//! structured warnings. A clean pool with the detector on behaves
//! bit-identically to one with the detector off, drift composes with
//! `ST_FAULT` injection, warnings come out in one canonical order under
//! every executor, and checkpoint/resume through a drift event stays
//! bit-identical.
//!
//! Local drift plans ([`PoolSource::with_drift`]) need no global state,
//! but every test still holds one lock for its whole body — process-global
//! fault installs (and any `ST_DRIFT` override) must not leak between
//! tests, exactly like the chaos suite.

use slice_tuner::{
    run_trials, run_trials_parallel, AggregateResult, PoolSource, RunResult, SliceTuner, Strategy,
    TSchedule, TunerConfig, TuningWarning,
};
use st_curve::EstimationMode;
use st_data::{drift, families, SlicedDataset};
use st_linalg::fault;
use st_models::ModelSpec;
use std::sync::{Mutex, MutexGuard};

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Installs a process-global drift plan for a scope; clears it on drop so
/// a failing test cannot poison its neighbours.
struct DriftGuard {
    _serial: MutexGuard<'static, ()>,
}

impl DriftGuard {
    /// Holds the serial lock and clears any process-global plan, so tests
    /// using source-local plans cannot race or observe one another.
    fn clean() -> Self {
        let guard = DriftGuard { _serial: serial() };
        drift::install(None);
        guard
    }
}

impl Drop for DriftGuard {
    fn drop(&mut self) {
        drift::install(None);
    }
}

const SEED: u64 = 23;
const BUDGET: f64 = 300.0;
const SPEC: &str = "label@slice0:round1:mag0.95";

fn quick_config() -> TunerConfig {
    let mut cfg = TunerConfig::new(ModelSpec::softmax()).with_seed(SEED);
    cfg.train.epochs = 8;
    cfg.fractions = vec![0.4, 0.7, 1.0];
    cfg.repeats = 1;
    cfg.threads = 1;
    cfg.max_iterations = 12;
    cfg.with_mode(EstimationMode::Exhaustive).with_incremental()
}

/// The bench's detector settings: low threshold + low slack so the pinned
/// scenario's residual creep crosses within the run.
fn aware_config() -> TunerConfig {
    let mut cfg = quick_config().with_drift_detection(0.15);
    cfg.drift_slack = 0.05;
    cfg
}

/// One run of the two-slice drift scenario ([`families::driftbench`] — a
/// small easy "drifter" and a large hard "steady" slice in orthogonal
/// feature subspaces) with a source-local drift plan. Label drift on the
/// drifter is reliably detectable under the pinned seed.
fn run_drifting(cfg: TunerConfig) -> RunResult {
    let fam = families::driftbench();
    let ds = SlicedDataset::generate(&fam, &[100, 500], 400, SEED);
    let plan = drift::parse_plan(SPEC).expect("valid test plan");
    let mut pool = PoolSource::new(fam, SEED).with_drift(plan);
    let mut tuner = SliceTuner::new(ds, &mut pool, cfg);
    tuner.run(Strategy::Iterative(TSchedule::conservative()), BUDGET)
}

fn assert_bit_identical(a: &AggregateResult, b: &AggregateResult) {
    assert!(
        a.bits_identical_to(b),
        "aggregates diverged:\n{a:?}\nvs\n{b:?}"
    );
}

fn warning_key(w: &TuningWarning) -> (u64, usize, u8) {
    match w {
        TuningWarning::DriftDetected { round, slice, .. } => (*round, *slice, 0),
        TuningWarning::EstimationQuarantined { round, slice, .. } => {
            (*round, slice.unwrap_or(usize::MAX), 1)
        }
    }
}

/// The no-drift path must be bit-identical with the detector on: on a
/// stationary pool no flag ever fires, so detection adds bookkeeping but
/// zero behavioral delta.
#[test]
fn clean_pool_with_detector_on_is_bit_identical_to_detector_off() {
    let _guard = DriftGuard::clean();
    let fam = families::census();
    let strategy = Strategy::Iterative(TSchedule::moderate());
    let off = run_trials(&fam, &[40; 4], 50, 150.0, strategy, &quick_config(), 2);
    let on_cfg = quick_config()
        .with_drift_detection(0.6)
        .with_max_staleness(10_000);
    let on = run_trials(&fam, &[40; 4], 50, 150.0, strategy, &on_cfg, 2);
    assert_bit_identical(&off, &on);
    assert!(
        on.trials.iter().all(|t| t.warnings.is_empty()),
        "a stationary pool must not trip the detector: {:?}",
        on.trials[0].warnings
    );
}

/// A drifting pool trips the detector: the run completes with a
/// `DriftDetected` warning naming the drifted slice.
#[test]
fn drifting_pool_surfaces_a_detection_warning_and_completes() {
    let _guard = DriftGuard::clean();
    let res = run_drifting(aware_config());
    assert!(res.report.overall_loss.is_finite());
    assert!(
        res.warnings
            .iter()
            .any(|w| matches!(w, TuningWarning::DriftDetected { slice: 0, .. })),
        "slice 0 drifts from round 1; the detector must flag it, got {:?}",
        res.warnings
    );
}

/// With a zero recovery budget a persistently drifting slice is
/// quarantined on first detection and stops receiving budget; the freed
/// budget flows to the clean slice instead of being stranded.
#[test]
fn persistent_drift_exhausts_recovery_budget_and_quarantines() {
    let _guard = DriftGuard::clean();
    let aware = run_drifting(aware_config().with_max_drift_resets(0));
    assert!(
        aware.warnings.iter().any(|w| matches!(
            w,
            TuningWarning::EstimationQuarantined { slice: Some(0), .. }
        )),
        "recovery budget 0 must escalate straight to quarantine, got {:?}",
        aware.warnings
    );
    let naive = run_drifting(quick_config());
    assert!(
        aware.acquired[0] < naive.acquired[0],
        "quarantine must cut the poisoned slice's acquisitions ({} vs naive {})",
        aware.acquired[0],
        naive.acquired[0]
    );
    assert!(
        aware.acquired[1] > naive.acquired[1],
        "the freed budget must be re-routed to the clean slice ({} vs naive {})",
        aware.acquired[1],
        naive.acquired[1]
    );
    assert!(
        (aware.spent - naive.spent).abs() < 1.0,
        "no stranded budget"
    );
}

/// ST_DRIFT composes with ST_FAULT: a run facing both a drifting slice and
/// an injected persistent NaN fault on another slice completes with both
/// warning kinds.
#[test]
fn drift_and_fault_plans_compose() {
    let _guard = DriftGuard::clean();
    fault::install(Some(
        fault::parse_plan("nan_loss@slice1:round1").expect("valid fault plan"),
    ));
    let res = run_drifting(aware_config());
    fault::install(None);
    assert!(res.report.overall_loss.is_finite());
    assert!(
        res.warnings
            .iter()
            .any(|w| matches!(w, TuningWarning::DriftDetected { slice: 0, .. })),
        "the drift leg must still fire under faults, got {:?}",
        res.warnings
    );
    assert!(
        res.warnings.iter().any(|w| matches!(
            w,
            TuningWarning::EstimationQuarantined { slice: Some(1), .. }
        )),
        "the fault leg must still quarantine slice 1, got {:?}",
        res.warnings
    );
}

/// `RunResult::warnings` comes out sorted by (round, slice) with a slice's
/// drift warning ahead of its same-round quarantine escalation — under the
/// sequential runner and the parallel executor alike, byte for byte. The
/// warnings are fault-injected (two NaN quarantines on different slices,
/// where parallel estimation records them in nondeterministic completion
/// order) so the scenario is robust across per-trial derived seeds.
#[test]
fn warnings_are_canonically_ordered_under_both_executors() {
    let _guard = DriftGuard::clean();
    fault::install(Some(
        fault::parse_plan("nan_loss@slice2:round1,nan_loss@slice1:round1")
            .expect("valid fault plan"),
    ));
    let fam = families::census();
    let strategy = Strategy::Iterative(TSchedule::moderate());
    let cfg = {
        let mut c = quick_config().with_drift_detection(0.6);
        c.max_iterations = 3;
        c
    };
    let seq = run_trials(&fam, &[40; 4], 50, 150.0, strategy, &cfg, 2);
    let par = run_trials_parallel(&fam, &[40; 4], 50, 150.0, strategy, &cfg, 2, 4);
    fault::install(None);
    assert_bit_identical(&seq, &par);
    for (s, p) in seq.trials.iter().zip(&par.trials) {
        assert!(
            s.warnings.len() >= 2,
            "both faulted slices must surface warnings, got {:?}",
            s.warnings
        );
        assert_eq!(s.warnings, p.warnings, "executor changed warning order");
        assert!(
            s.warnings
                .windows(2)
                .all(|w| warning_key(&w[0]) <= warning_key(&w[1])),
            "warnings must sort by (round, slice, kind): {:?}",
            s.warnings
        );
    }
}

/// Killing the run mid-accumulation (after round 2: drift evidence exists
/// but has not crossed the threshold yet) and resuming must replay to the
/// same detection round, the same warnings, and bit-identical losses — the
/// checkpoint carries the CUSUM state, the residual baselines, and the
/// quarantine flags.
#[test]
fn resume_through_a_drift_event_is_bit_identical() {
    let _guard = DriftGuard::clean();
    let dir = std::env::temp_dir().join("st_drift_tests");
    std::fs::create_dir_all(&dir).expect("create checkpoint dir");
    let path = dir.join("resume.json");
    std::fs::remove_file(&path).ok();
    let path = path.display().to_string();

    let aware = || aware_config().with_max_drift_resets(0);
    let clean = run_drifting(aware());
    assert!(
        clean.iterations >= 3,
        "the kill must land before detection or the test is vacuous"
    );

    let halted = run_drifting(aware().with_checkpoint(&path).with_halt_after_rounds(2));
    assert_eq!(halted.iterations, 2, "crash simulation stops after round 2");

    let resumed = run_drifting(aware().with_checkpoint(&path).with_resume());
    assert_eq!(resumed.acquired, clean.acquired);
    assert_eq!(resumed.iterations, clean.iterations);
    assert_eq!(resumed.spent.to_bits(), clean.spent.to_bits());
    assert_eq!(
        resumed.report.overall_loss.to_bits(),
        clean.report.overall_loss.to_bits()
    );
    for (a, b) in resumed
        .report
        .per_slice_losses
        .iter()
        .zip(&clean.report.per_slice_losses)
    {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert_eq!(
        resumed.warnings, clean.warnings,
        "the resumed run must re-detect at the same round with the same score"
    );
}
