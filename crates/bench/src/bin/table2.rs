//! Tables 2 and 3: Slice Tuner method comparison on the four datasets
//! (loss, avg/max EER) plus the per-slice acquisition counts and iteration
//! counts behind them.

use slice_tuner::{Strategy, TSchedule};
use st_bench::{fmt_counts, rule, run_cell, trials, FamilySetup};

fn main() {
    // Bench-wide kernel default: `sharded` on multi-core hosts, `simd`
    // on single-core containers; `ST_KERNEL` overrides (see docs/kernels.md).
    st_bench::init_bench_kernel();
    let methods = [
        ("Original", None),
        ("One-shot", Some(Strategy::OneShot)),
        (
            "Aggressive",
            Some(Strategy::Iterative(TSchedule::aggressive())),
        ),
        ("Moderate", Some(Strategy::Iterative(TSchedule::moderate()))),
        (
            "Conservative",
            Some(Strategy::Iterative(TSchedule::conservative())),
        ),
    ];
    let trials = trials();

    println!("Table 2: Slice Tuner methods comparison ({trials} trials)");
    println!(
        "{:<14} {:<14} {:>8} {:>10} {:>10}",
        "Dataset", "Method", "Loss", "Avg EER", "Max EER"
    );
    rule(60);

    let mut table3: Vec<(String, Vec<(String, Vec<f64>, f64)>)> = Vec::new();

    for setup in FamilySetup::all() {
        let sizes = setup.equal_sizes();
        let budget = setup.scaled_budget();
        let mut rows = Vec::new();
        for (name, strategy) in &methods {
            match strategy {
                None => {
                    // "Original": evaluate with zero budget via any strategy.
                    let agg = run_cell(
                        &setup.family,
                        &sizes,
                        setup.validation,
                        0.0,
                        Strategy::Uniform,
                        &setup.config(1),
                        trials,
                    );
                    println!(
                        "{:<14} {:<14} {:>8.3} {:>10.3} {:>10.3}",
                        setup.label,
                        name,
                        agg.original_loss.mean,
                        agg.original_avg_eer.mean,
                        agg.original_max_eer.mean
                    );
                }
                Some(s) => {
                    let agg = run_cell(
                        &setup.family,
                        &sizes,
                        setup.validation,
                        budget,
                        *s,
                        &setup.config(1),
                        trials,
                    );
                    println!(
                        "{:<14} {:<14} {:>8.3} {:>10.3} {:>10.3}",
                        setup.label, name, agg.loss.mean, agg.avg_eer.mean, agg.max_eer.mean
                    );
                    rows.push((name.to_string(), agg.acquired_mean.clone(), agg.iterations));
                }
            }
        }
        rule(60);
        table3.push((format!("{} (B = {})", setup.label, budget), rows));
    }

    println!("\nTable 3: data acquired per slice and iteration counts");
    for (label, rows) in &table3 {
        println!("\n== {label} ==");
        for (name, counts, iters) in rows {
            println!("{name:<14} {}  ({iters:.1} iters)", fmt_counts(counts));
        }
    }
}
