//! From-scratch trainable classifiers for the Slice Tuner reproduction.
//!
//! The paper trains small Keras CNNs (2–3 hidden layers) on images and a
//! single fully-connected layer on tabular data, always reading back one
//! signal: the *log loss of a shared model evaluated per slice*. This crate
//! provides that substrate natively:
//!
//! - [`Mlp`] — a multi-layer perceptron with ReLU hidden layers and a
//!   softmax output, covering everything from plain softmax regression
//!   (no hidden layers, the AdultCensus model) to the deliberately
//!   overparameterized "deep" variant used for the ResNet-18 experiment of
//!   Appendix B.
//! - [`ConvNet`] — a real convolutional classifier (3×3 kernels, max pool)
//!   used to validate that the MLP substitution preserves the method
//!   ranking on the synthetic image families.
//! - [`train`] / [`train_validated`] — minibatch training with pluggable
//!   update rules ([`OptimizerKind`]), learning-rate schedules
//!   ([`LrSchedule`]), dropout, optional early stopping, and seeded
//!   shuffling/initialization, so every training run is replayable.
//! - [`loss`] — log-loss and accuracy evaluation, including the per-slice
//!   validation losses `ψ(s_i, M)` that all of Slice Tuner consumes; the
//!   [`Classifier`] trait generalizes them over architectures.
//! - [`io`] — exact (bit-preserving) text serialization of trained MLPs.

pub mod batch;
pub mod classifier;
pub mod conv;
pub mod io;
pub mod loss;
pub mod network;
pub mod optimizer;
pub mod residual;
pub mod spec;
pub mod trainer;

pub use batch::{examples_to_matrix, labels_of};
pub use classifier::{accuracy_of, log_loss_of, Classifier};
pub use conv::{ConvEvalScratch, ConvNet, ConvTrainConfig, ImageShape, PackedConvNet};
pub use io::{read_mlp, write_mlp, ModelIoError};
pub use loss::{
    accuracy, log_loss, log_loss_packed, log_loss_packed_on, log_loss_packed_scratch,
    overall_validation_loss, per_slice_validation_losses, EvalScratch, MultiEval, MultiEvalScratch,
};
pub use network::{Layer, Mlp, PackedMlp};
pub use optimizer::{LrSchedule, OptimizerKind, OptimizerState};
pub use residual::{
    PackedResidualMlp, ResidualBlock, ResidualEvalScratch, ResidualMlp, ResidualTrainConfig,
};
pub use spec::ModelSpec;
pub use trainer::{
    train, train_on_examples, train_on_rows, train_on_rows_batched, train_on_rows_warm,
    train_validated, try_train_on_rows, try_train_on_rows_batched, try_train_validated,
    TrainConfig, TrainError, TrainOutcome,
};
