//! Fault-injecting acquisition source for robustness testing.
//!
//! Real acquisition under-delivers: crowdsourcing rounds come back short,
//! dataset searches dry up, and some slices are simply exhaustible. The
//! paper's framework charges only for delivered examples; [`FaultySource`]
//! wraps any source with configurable under-delivery and per-slice
//! exhaustion so tests can assert Slice Tuner degrades gracefully instead
//! of overspending or looping forever.

use super::AcquisitionSource;
use rand::rngs::StdRng;
use rand::Rng;
use st_data::{seeded_rng, Example, SliceId};

/// Failure model applied on top of an inner source.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Fraction of each request that is independently dropped (0 = reliable).
    pub drop_rate: f64,
    /// Hard cap on the total examples each slice can ever deliver
    /// (`usize::MAX` = unbounded).
    pub capacity_per_slice: usize,
    /// Seed for the drop draws.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            drop_rate: 0.0,
            capacity_per_slice: usize::MAX,
            seed: 0,
        }
    }
}

/// An [`AcquisitionSource`] decorator that under-delivers.
pub struct FaultySource<S> {
    inner: S,
    config: FaultConfig,
    delivered: Vec<usize>,
    rng: StdRng,
}

impl<S: AcquisitionSource> FaultySource<S> {
    /// Wraps `inner` with the given failure model.
    ///
    /// # Panics
    /// Panics when `drop_rate` is outside `[0, 1]`.
    pub fn new(inner: S, config: FaultConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.drop_rate),
            "drop_rate must be a probability"
        );
        let rng = seeded_rng(config.seed);
        FaultySource {
            inner,
            config,
            delivered: Vec::new(),
            rng,
        }
    }

    /// Total examples delivered so far for `slice`.
    pub fn delivered(&self, slice: SliceId) -> usize {
        self.delivered.get(slice.index()).copied().unwrap_or(0)
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: AcquisitionSource> AcquisitionSource for FaultySource<S> {
    fn cost(&self, slice: SliceId) -> f64 {
        self.inner.cost(slice)
    }

    fn acquire(&mut self, slice: SliceId, n: usize) -> Vec<Example> {
        let idx = slice.index();
        if self.delivered.len() <= idx {
            self.delivered.resize(idx + 1, 0);
        }
        let remaining_capacity = self
            .config
            .capacity_per_slice
            .saturating_sub(self.delivered[idx]);
        let want = n.min(remaining_capacity);
        let mut got = self.inner.acquire(slice, want);
        if self.config.drop_rate > 0.0 {
            got.retain(|_| self.rng.gen::<f64>() >= self.config.drop_rate);
        }
        self.delivered[idx] += got.len();
        got
    }

    fn name(&self) -> &'static str {
        "faulty"
    }

    fn note_round(&mut self, round: u64) {
        self.inner.note_round(round);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acquire::PoolSource;
    use st_data::families::census;

    fn pool() -> PoolSource {
        PoolSource::new(census(), 7)
    }

    #[test]
    fn zero_faults_is_transparent() {
        let mut src = FaultySource::new(pool(), FaultConfig::default());
        let got = src.acquire(SliceId(0), 25);
        assert_eq!(got.len(), 25);
        assert_eq!(src.delivered(SliceId(0)), 25);
        assert_eq!(src.cost(SliceId(0)), 1.0);
    }

    #[test]
    fn drop_rate_shrinks_deliveries() {
        let cfg = FaultConfig {
            drop_rate: 0.5,
            seed: 3,
            ..Default::default()
        };
        let mut src = FaultySource::new(pool(), cfg);
        let got = src.acquire(SliceId(1), 400);
        assert!(
            got.len() < 300,
            "expected heavy shrinkage, got {}",
            got.len()
        );
        assert!(
            got.len() > 100,
            "should not drop nearly everything: {}",
            got.len()
        );
    }

    #[test]
    fn capacity_exhausts_a_slice() {
        let cfg = FaultConfig {
            capacity_per_slice: 30,
            ..Default::default()
        };
        let mut src = FaultySource::new(pool(), cfg);
        assert_eq!(src.acquire(SliceId(0), 20).len(), 20);
        assert_eq!(src.acquire(SliceId(0), 20).len(), 10, "only 10 remain");
        assert_eq!(src.acquire(SliceId(0), 20).len(), 0, "slice exhausted");
        // Other slices are unaffected.
        assert_eq!(src.acquire(SliceId(1), 20).len(), 20);
    }

    #[test]
    fn faults_are_deterministic_per_seed() {
        let cfg = FaultConfig {
            drop_rate: 0.3,
            seed: 11,
            ..Default::default()
        };
        let a = FaultySource::new(pool(), cfg.clone())
            .acquire(SliceId(2), 100)
            .len();
        let b = FaultySource::new(pool(), cfg)
            .acquire(SliceId(2), 100)
            .len();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_invalid_drop_rate() {
        let _ = FaultySource::new(
            pool(),
            FaultConfig {
                drop_rate: 1.5,
                ..Default::default()
            },
        );
    }
}
