//! The parallel multi-trial executor.
//!
//! The paper reports means over 10 trials; trials are embarrassingly
//! parallel (each builds its own dataset, source, and tuner from a seed
//! derived with `split_seed`). This module fans the *same* unit of work the
//! sequential runner uses ([`runner::run_single_trial`]) out over scoped
//! worker threads, collecting results into per-trial slots so aggregation
//! order — and therefore every aggregated bit — is independent of thread
//! count and scheduling.
//!
//! When a [`CurveCache`](crate::cache::CurveCache) rides along in the
//! config it is shared by all workers; distinct trials derive distinct
//! seeds, so their cache keys are disjoint and the cache cannot couple
//! trials to each other.

use crate::runner::{aggregate, run_single_trial, AggregateResult};
use crate::strategy::Strategy;
use crate::tuner::{RunResult, TunerConfig};
use parking_lot::Mutex;
use st_data::DatasetFamily;

/// Parallel version of [`run_trials`](crate::runner::run_trials): runs
/// `trials` independent seeds across `jobs` workers (0 = all cores) and
/// aggregates bit-identically to the sequential runner.
///
/// # Panics
/// Panics when `trials == 0`.
#[allow(clippy::too_many_arguments)]
pub fn run_trials_parallel(
    family: &DatasetFamily,
    initial_sizes: &[usize],
    validation_size: usize,
    budget: f64,
    strategy: Strategy,
    config: &TunerConfig,
    trials: usize,
    jobs: usize,
) -> AggregateResult {
    assert!(trials > 0, "need at least one trial");
    let workers = if jobs == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        jobs
    }
    .min(trials);

    // Trials already saturate the workers; keep each tuner's internal
    // estimator single-threaded to avoid oversubscription. With a single
    // worker the config passes through untouched, so `jobs = 1` behaves
    // exactly like the sequential runner down to its thread usage.
    let limited;
    let config = if workers > 1 {
        limited = TunerConfig {
            threads: 1,
            ..config.clone()
        };
        &limited
    } else {
        config
    };

    let slots: Mutex<Vec<Option<RunResult>>> = Mutex::new(vec![None; trials]);
    let next: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let t = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if t >= trials {
                    break;
                }
                let result = run_single_trial(
                    family,
                    initial_sizes,
                    validation_size,
                    budget,
                    strategy,
                    config,
                    t,
                );
                slots.lock()[t] = Some(result);
            });
        }
    })
    .expect("trial worker panicked");

    let results: Vec<RunResult> = slots
        .into_inner()
        .into_iter()
        .map(|r| r.expect("all trials ran"))
        .collect();
    aggregate(strategy, results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CurveCache;
    use crate::runner::run_trials;
    use crate::tuner::TunerConfig;
    use st_data::families::census;
    use st_models::ModelSpec;

    fn quick_config() -> TunerConfig {
        let mut cfg = TunerConfig::new(ModelSpec::softmax());
        cfg.train.epochs = 8;
        cfg.fractions = vec![0.4, 0.7, 1.0];
        cfg.repeats = 1;
        cfg.threads = 1;
        cfg
    }

    fn assert_bit_identical(a: &AggregateResult, b: &AggregateResult) {
        assert!(
            a.bits_identical_to(b),
            "aggregates diverged:\n{a:?}\nvs\n{b:?}"
        );
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let fam = census();
        let seq = run_trials(
            &fam,
            &[50; 4],
            60,
            100.0,
            Strategy::Uniform,
            &quick_config(),
            3,
        );
        let par = run_trials_parallel(
            &fam,
            &[50; 4],
            60,
            100.0,
            Strategy::Uniform,
            &quick_config(),
            3,
            2,
        );
        assert_bit_identical(&seq, &par);
    }

    /// The determinism regression the workspace's CI gate relies on: one
    /// worker and eight workers must aggregate to bit-identical results,
    /// with an iterative strategy (the heaviest path through the tuner).
    #[test]
    fn jobs_one_and_jobs_eight_are_bit_identical() {
        let fam = census();
        let run = |jobs: usize| {
            run_trials_parallel(
                &fam,
                &[40; 4],
                50,
                120.0,
                Strategy::Iterative(crate::strategy::TSchedule::moderate()),
                &quick_config(),
                4,
                jobs,
            )
        };
        assert_bit_identical(&run(1), &run(8));
    }

    /// A shared curve cache must not perturb results: cached and uncached
    /// runs, at any worker count, aggregate bit-identically.
    #[test]
    fn shared_cache_preserves_bitwise_determinism() {
        let fam = census();
        let plain = run_trials_parallel(
            &fam,
            &[40; 4],
            50,
            100.0,
            Strategy::OneShot,
            &quick_config(),
            3,
            2,
        );
        let cache = CurveCache::shared();
        let cached_cfg = quick_config().with_cache(cache.clone());
        let first = run_trials_parallel(
            &fam,
            &[40; 4],
            50,
            100.0,
            Strategy::OneShot,
            &cached_cfg,
            3,
            2,
        );
        // Second run over the same settings is answered from the cache...
        let second = run_trials_parallel(
            &fam,
            &[40; 4],
            50,
            100.0,
            Strategy::OneShot,
            &cached_cfg,
            3,
            1,
        );
        assert_bit_identical(&plain, &first);
        assert_bit_identical(&first, &second);
        // ...which is observable in the hit counter (one estimation per
        // trial; the second sweep hits all three).
        assert_eq!(cache.misses(), 3);
        assert!(cache.hits() >= 3, "hits {}", cache.hits());
    }

    #[test]
    fn single_worker_still_completes_all_trials() {
        let fam = census();
        let agg = run_trials_parallel(
            &fam,
            &[40; 4],
            50,
            80.0,
            Strategy::WaterFilling,
            &quick_config(),
            4,
            1,
        );
        assert_eq!(agg.trials.len(), 4);
        assert!(agg.loss.mean.is_finite());
    }

    #[test]
    fn more_workers_than_trials_is_fine() {
        let fam = census();
        let agg = run_trials_parallel(
            &fam,
            &[40; 4],
            50,
            80.0,
            Strategy::Uniform,
            &quick_config(),
            2,
            16,
        );
        assert_eq!(agg.trials.len(), 2);
    }

    #[test]
    #[should_panic(expected = "need at least one trial")]
    fn zero_trials_is_rejected() {
        let fam = census();
        let _ = run_trials_parallel(
            &fam,
            &[40; 4],
            50,
            80.0,
            Strategy::Uniform,
            &quick_config(),
            0,
            1,
        );
    }
}
