//! The [`Classifier`] abstraction: anything that yields class probabilities.
//!
//! Slice Tuner only ever consumes per-slice log losses of a shared model, so
//! every architecture (the MLPs standing in for the paper's small CNNs, the
//! real [`ConvNet`](crate::ConvNet), future models) plugs in through this
//! one trait.

use st_linalg::{argmax, Matrix, EPS_PROB};

/// A trained multi-class classifier over dense feature batches.
pub trait Classifier {
    /// Batch class probabilities: `n × num_classes`, rows summing to one.
    fn predict_proba(&self, x: &Matrix) -> Matrix;

    /// Number of output classes.
    fn num_classes(&self) -> usize;

    /// Expected input dimensionality.
    fn input_dim(&self) -> usize;

    /// Argmax class predictions.
    fn predict(&self, x: &Matrix) -> Vec<usize> {
        let p = self.predict_proba(x);
        (0..p.rows()).map(|r| argmax(p.row(r))).collect()
    }
}

impl Classifier for crate::Mlp {
    fn predict_proba(&self, x: &Matrix) -> Matrix {
        crate::Mlp::predict_proba(self, x)
    }

    fn num_classes(&self) -> usize {
        crate::Mlp::num_classes(self)
    }

    fn input_dim(&self) -> usize {
        crate::Mlp::input_dim(self)
    }
}

impl Classifier for crate::PackedMlp<'_> {
    fn predict_proba(&self, x: &Matrix) -> Matrix {
        crate::PackedMlp::predict_proba(self, x)
    }

    fn num_classes(&self) -> usize {
        self.network().num_classes()
    }

    fn input_dim(&self) -> usize {
        self.network().input_dim()
    }
}

/// Mean negative log-likelihood for any [`Classifier`] (clamped like
/// [`crate::log_loss`]). Returns `NaN` for an empty batch.
///
/// # Panics
/// Panics when `x.rows() != y.len()`.
pub fn log_loss_of<C: Classifier + ?Sized>(model: &C, x: &Matrix, y: &[usize]) -> f64 {
    assert_eq!(x.rows(), y.len(), "feature/label count mismatch");
    if y.is_empty() {
        return f64::NAN;
    }
    let p = model.predict_proba(x);
    let mut total = 0.0;
    for (r, &label) in y.iter().enumerate() {
        total -= p[(r, label)].clamp(EPS_PROB, 1.0 - EPS_PROB).ln();
    }
    total / y.len() as f64
}

/// Argmax accuracy for any [`Classifier`]. Returns `NaN` for an empty batch.
///
/// # Panics
/// Panics when `x.rows() != y.len()`.
pub fn accuracy_of<C: Classifier + ?Sized>(model: &C, x: &Matrix, y: &[usize]) -> f64 {
    assert_eq!(x.rows(), y.len(), "feature/label count mismatch");
    if y.is_empty() {
        return f64::NAN;
    }
    let pred = model.predict(x);
    pred.iter().zip(y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mlp, ModelSpec, TrainConfig};
    use st_data::seeded_rng;

    #[test]
    fn trait_object_usable_for_mlp() {
        let mut rng = seeded_rng(1);
        let net = Mlp::new(3, &[4], 2, &mut rng);
        let dynamic: &dyn Classifier = &net;
        assert_eq!(dynamic.num_classes(), 2);
        assert_eq!(dynamic.input_dim(), 3);
        let x = Matrix::from_fn(5, 3, |r, c| (r + c) as f64 * 0.1);
        let p = dynamic.predict_proba(&x);
        assert_eq!((p.rows(), p.cols()), (5, 2));
    }

    #[test]
    fn generic_loss_matches_concrete_loss() {
        let mut rng = seeded_rng(2);
        let net = Mlp::new(2, &[5], 3, &mut rng);
        let x = Matrix::from_fn(8, 2, |r, c| ((r * 2 + c) as f64 * 0.3).sin());
        let y: Vec<usize> = (0..8).map(|i| i % 3).collect();
        let a = log_loss_of(&net, &x, &y);
        let b = crate::log_loss(&net, &x, &y);
        assert!((a - b).abs() < 1e-15);
    }

    #[test]
    fn generic_accuracy_matches_concrete() {
        let mut rng = seeded_rng(3);
        let net = Mlp::new(2, &[], 2, &mut rng);
        let x = Matrix::from_fn(10, 2, |r, _| r as f64 - 5.0);
        let y: Vec<usize> = (0..10).map(|i| usize::from(i >= 5)).collect();
        assert_eq!(accuracy_of(&net, &x, &y), crate::accuracy(&net, &x, &y));
    }

    #[test]
    fn empty_batch_is_nan_generic() {
        let mut rng = seeded_rng(4);
        let net = Mlp::new(2, &[], 2, &mut rng);
        assert!(log_loss_of(&net, &Matrix::zeros(0, 0), &[]).is_nan());
        assert!(accuracy_of(&net, &Matrix::zeros(0, 0), &[]).is_nan());
    }

    #[test]
    fn trained_model_scores_well_through_the_trait() {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let mut rng = seeded_rng(5);
        for i in 0..100 {
            let sign = if i % 2 == 0 { -1.0 } else { 1.0 };
            rows.push(sign * 2.0 + 0.2 * st_data::normal(&mut rng));
            rows.push(0.2 * st_data::normal(&mut rng));
            labels.push(usize::from(i % 2 == 1));
        }
        let x = Matrix::from_vec(100, 2, rows);
        let net = crate::train(
            &x,
            &labels,
            2,
            2,
            &ModelSpec::softmax(),
            &TrainConfig::default(),
        );
        assert!(accuracy_of(&net, &x, &labels) > 0.95);
        assert!(log_loss_of(&net, &x, &labels) < 0.15);
    }
}
