//! Run configuration, the deterministic test RNG, and the shrink driver.

use crate::strategy::Strategy;
use std::any::Any;
use std::cell::Cell;
use std::sync::Once;

/// Upper bound on candidate evaluations during one shrink search, so a
/// pathological strategy cannot loop a failing test forever.
const MAX_SHRINK_ATTEMPTS: usize = 512;

/// The panic message carried by a payload, for reporting the minimized
/// case (panics carry `&str` or `String` unless `panic_any` was used).
fn payload_message(payload: &(dyn Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

/// Drives one `proptest!` property: generates `config.cases` inputs from
/// `strategy`, runs `runner` on each, and on the first failure minimizes
/// the input with [`shrink_failure`] before re-raising the panic.
///
/// Exists as a generic function (rather than macro-expanded inline) so
/// the runner closure's argument type is fixed by the signature — the
/// macro can then pass `|vals| { ... }` without annotating the tuple
/// type it cannot name.
pub fn run_proptest<S: Strategy, F: Fn(&S::Value)>(
    config: &ProptestConfig,
    name: &str,
    strategy: &S,
    runner: F,
) {
    for case in 0..config.cases {
        let case_seed = derive_case_seed(config.seed, name, case);
        let mut rng = TestRng::new(case_seed);
        let vals = strategy.generate(&mut rng);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| runner(&vals)));
        if let Err(payload) = outcome {
            let (payload, steps) = shrink_failure(strategy, vals, payload, &runner);
            // `resume_unwind` does not re-run the panic hook, so the
            // minimized case's message is reported here (the hook already
            // printed the *original* case's message above).
            eprintln!(
                "proptest {name}: case {}/{} failed; minimized by {steps} halving-shrink \
                 step(s) to: {} (master seed {}; rerun with PROPTEST_SEED={} to replay)",
                case + 1,
                config.cases,
                payload_message(payload.as_ref()),
                config.seed,
                config.seed,
            );
            std::panic::resume_unwind(payload);
        }
    }
}

thread_local! {
    /// Shrink searches in flight *on this thread* (panic output is
    /// silenced while non-zero). Panic hooks run on the panicking
    /// thread, and the shrink loop re-runs the test body on its own
    /// thread, so a thread-local flag scopes the silencing exactly:
    /// a genuine panic in a concurrently-running test on another thread
    /// still prints its message and location.
    static SUPPRESSED: Cell<usize> = const { Cell::new(0) };
}

static INSTALL_WRAPPER: Once = Once::new();

/// Installs (once per process) a delegating panic hook that stays silent
/// on threads with a shrink search in flight. Take-and-restore around
/// the search would race between concurrently failing tests and could
/// leave a silent hook installed forever; the install-once wrapper with
/// thread-local gating is immune to both.
fn install_quiet_wrapper() {
    INSTALL_WRAPPER.call_once(|| {
        let original = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if SUPPRESSED.with(|c| c.get()) == 0 {
                original(info);
            }
        }));
    });
}

/// Decrements the suppression counter even if the search itself unwinds.
struct SuppressGuard;

impl SuppressGuard {
    fn new() -> Self {
        install_quiet_wrapper();
        SUPPRESSED.with(|c| c.set(c.get() + 1));
        SuppressGuard
    }
}

impl Drop for SuppressGuard {
    fn drop(&mut self) {
        SUPPRESSED.with(|c| c.set(c.get() - 1));
    }
}

/// Minimizes a failing input by halving-shrink: repeatedly asks the
/// strategy for simpler candidates and adopts the first one that still
/// makes `runner` panic, until no candidate fails (a local minimum) or
/// the attempt budget runs out. Returns the panic payload of the
/// minimized case and the number of successful shrink steps.
///
/// Panic-hook output is suppressed for the duration of the search —
/// every failing candidate panics by design, and dozens of
/// "thread panicked at …" lines would bury the minimized report.
///
/// Used by the [`proptest!`](crate::proptest) macro; exposed for tests.
pub fn shrink_failure<S: Strategy, F: Fn(&S::Value)>(
    strategy: &S,
    mut current: S::Value,
    mut payload: Box<dyn Any + Send>,
    runner: &F,
) -> (Box<dyn Any + Send>, usize) {
    let _quiet = SuppressGuard::new();
    let mut steps = 0;
    let mut attempts = 0;
    loop {
        let mut progressed = false;
        for candidate in strategy.shrink(&current) {
            if attempts >= MAX_SHRINK_ATTEMPTS {
                break;
            }
            attempts += 1;
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| runner(&candidate)));
            if let Err(p) = outcome {
                current = candidate;
                payload = p;
                steps += 1;
                progressed = true;
                break;
            }
        }
        if !progressed || attempts >= MAX_SHRINK_ATTEMPTS {
            return (payload, steps);
        }
    }
}

/// Configuration for one `proptest!` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Master seed. Defaults to a fixed constant so CI is reproducible;
    /// override with the `PROPTEST_SEED` environment variable.
    pub seed: u64,
}

/// The fixed master seed used when `PROPTEST_SEED` is not set.
pub const DEFAULT_SEED: u64 = 0x51_1CE7_0DE5_EED5;

impl Default for ProptestConfig {
    fn default() -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_SEED);
        ProptestConfig { cases: 256, seed }
    }
}

impl ProptestConfig {
    /// Default configuration with a custom case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// Derives the per-case RNG seed from the master seed, the test name, and
/// the case index, so every test gets an independent deterministic stream.
pub fn derive_case_seed(master: u64, test_name: &str, case: u32) -> u64 {
    let mut h = master ^ 0x9E37_79B9_7F4A_7C15;
    for b in test_name.bytes() {
        h = splitmix(h ^ b as u64);
    }
    splitmix(h ^ ((case as u64) << 32))
}

fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic generator handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seeds_differ_by_test_and_case() {
        let a = derive_case_seed(1, "alpha", 0);
        let b = derive_case_seed(1, "beta", 0);
        let c = derive_case_seed(1, "alpha", 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_case_seed(1, "alpha", 0), "deterministic");
    }

    #[test]
    fn default_config_is_pinned() {
        // (Assumes PROPTEST_SEED is unset in the test environment.)
        if std::env::var("PROPTEST_SEED").is_err() {
            assert_eq!(ProptestConfig::default().seed, DEFAULT_SEED);
        }
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
    }
}
