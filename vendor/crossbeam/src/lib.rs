//! Offline stand-in for `crossbeam::scope`, built on `std::thread::scope`
//! (stable since Rust 1.63). See `vendor/README.md` for why this exists.
//!
//! API parity notes:
//! - `scope` returns `Ok(r)` like crossbeam. A panicking child thread
//!   propagates the panic out of `scope` (std semantics) instead of
//!   surfacing as `Err`; every call site in this workspace immediately
//!   `expect`s the result, so the observable behavior — abort with the
//!   panic payload — is the same.
//! - `Scope::spawn` passes the scope handle to the closure, as crossbeam
//!   does, so nested spawns work.

/// Error type of a failed scope (kept for signature compatibility).
pub type ScopeError = Box<dyn std::any::Any + Send + 'static>;

/// A handle for spawning scoped threads.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope handle so it
    /// can spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = Scope { inner: self.inner };
        self.inner.spawn(move || f(&handle))
    }
}

/// Creates a scope in which threads borrowing from the environment can be
/// spawned; all are joined before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_environment() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_spawn_through_handle() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn scope_returns_closure_value() {
        assert_eq!(scope(|_| 42).unwrap(), 42);
    }
}
