//! Property-based tests for the core strategies and metrics.

use proptest::prelude::*;
use slice_tuner::{avg_eer, max_eer, uniform_allocation, water_filling_allocation};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn uniform_allocation_spends_budget(
        costs in prop::collection::vec(0.5f64..3.0, 1..12),
        budget in 0.0f64..5000.0,
    ) {
        let d = uniform_allocation(&costs, budget);
        // Same count everywhere.
        for w in d.windows(2) {
            prop_assert!((w[0] - w[1]).abs() < 1e-9);
        }
        let total: f64 = d.iter().zip(&costs).map(|(x, c)| x * c).sum();
        prop_assert!((total - budget).abs() < 1e-6 * budget.max(1.0));
    }

    #[test]
    fn water_filling_spends_budget_and_levels(
        sizes in prop::collection::vec(0.0f64..500.0, 2..10),
        budget in 1.0f64..5000.0,
    ) {
        let costs = vec![1.0; sizes.len()];
        let d = water_filling_allocation(&sizes, &costs, budget);
        prop_assert!(d.iter().all(|&x| x >= 0.0));
        let total: f64 = d.iter().sum();
        prop_assert!((total - budget).abs() < 1e-4 * budget.max(1.0), "{total} vs {budget}");

        // Every slice that received data ends at (approximately) the same
        // level, and no untouched slice sits below that level.
        let after: Vec<f64> = sizes.iter().zip(&d).map(|(s, x)| s + x).collect();
        let level = after
            .iter()
            .zip(&d)
            .filter(|(_, &x)| x > 1e-9)
            .map(|(&a, _)| a)
            .fold(f64::NAN, f64::max);
        for (&a, &x) in after.iter().zip(&d) {
            if x > 1e-9 {
                prop_assert!((a - level).abs() < 1e-4 * level.max(1.0));
            } else {
                prop_assert!(a >= level - 1e-4 * level.max(1.0) || level.is_nan());
            }
        }
    }

    #[test]
    fn water_filling_never_exceeds_larger_slices_needlessly(
        base in 10.0f64..200.0,
        budget in 1.0f64..100.0,
    ) {
        // Two slices, one twice the other; small budgets go entirely to the
        // smaller slice.
        let sizes = [base, base * 2.0];
        let d = water_filling_allocation(&sizes, &[1.0, 1.0], budget.min(base));
        prop_assert!(d[1].abs() < 1e-6, "{d:?}");
    }

    #[test]
    fn eer_metrics_are_translation_invariant(
        losses in prop::collection::vec(0.0f64..5.0, 1..10),
        overall in 0.0f64..5.0,
        shift in -2.0f64..2.0,
    ) {
        let shifted: Vec<f64> = losses.iter().map(|l| l + shift).collect();
        let a1 = avg_eer(&losses, overall);
        let a2 = avg_eer(&shifted, overall + shift);
        prop_assert!((a1 - a2).abs() < 1e-9);
        let m1 = max_eer(&losses, overall);
        let m2 = max_eer(&shifted, overall + shift);
        prop_assert!((m1 - m2).abs() < 1e-9);
    }

    #[test]
    fn avg_eer_bounded_by_max(losses in prop::collection::vec(0.0f64..5.0, 1..10), overall in 0.0f64..5.0) {
        prop_assert!(avg_eer(&losses, overall) <= max_eer(&losses, overall) + 1e-12);
        prop_assert!(avg_eer(&losses, overall) >= 0.0);
    }
}

// Checkpoint documents must be a serialization *fixpoint*: parsing a
// written checkpoint and re-serializing it reproduces the original text
// byte for byte, and the parsed value equals the source value exactly
// (f64 scalars travel as bit patterns, so even NaN payloads survive).
// This is what makes resume-of-a-resume identical to a single resume.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn checkpoint_serialization_is_a_fixpoint(
        ids in (0u64..=u64::MAX, 0u64..=u64::MAX, 1u64..8),
        pre_pass in prop::collection::vec(0usize..5000, 0..6),
        rounds in prop::collection::vec(prop::collection::vec(0usize..5000, 1..6), 0..4),
        scalars in (0u64..=u64::MAX, 0u64..=u64::MAX, 0u64..=u64::MAX, 0u64..100),
        shapes in (
            0usize..3,
            prop::collection::vec(0usize..2, 1..6),
            0usize..5,
            0usize..2,
            prop::collection::vec((0u64..=u64::MAX, 0u64..=u64::MAX, 0u64..50, 0usize..3), 1..6),
        ),
    ) {
        use slice_tuner::checkpoint::{DriftSnapshot, EstimateSnapshot, IncSnapshot, RoundCheckpoint};

        let (seed, budget_bits, num_slices) = ids;
        let (remaining_bits, total_spent_bits, t_bits, iterations) = scalars;
        let (inc_sel, dirty_bits, fit_sel, drift_sel, drift_rows) = shapes;

        let fit = match fit_sel {
            0 => Ok((remaining_bits, t_bits)),
            1 => Err("not_enough_points".to_string()),
            2 => Err("degenerate_losses".to_string()),
            3 => Err("non_finite_point".to_string()),
            _ => Err("diverged".to_string()),
        };
        let snapshot = EstimateSnapshot {
            fit,
            repeat_fits: vec![(total_spent_bits, t_bits)],
            points: vec![(remaining_bits, total_spent_bits, t_bits)],
        };
        let dirty: Vec<bool> = dirty_bits.iter().map(|&b| b == 1).collect();
        let inc = match inc_sel {
            0 => None,
            1 => Some(IncSnapshot { seed_bumps: vec![0; dirty.len()], dirty, prev: None }),
            _ => Some(IncSnapshot {
                prev: Some(vec![snapshot; dirty.len()]),
                seed_bumps: (0..dirty.len() as u64).collect(),
                dirty,
            }),
        };

        let drift = match drift_sel {
            0 => None,
            _ => Some(DriftSnapshot {
                cusum: drift_rows.iter().map(|&(a, b, c, _)| (a, b, c)).collect(),
                staleness: drift_rows.iter().map(|&(_, _, c, _)| c * 7).collect(),
                resets: drift_rows.iter().map(|&(_, _, c, _)| c % 3).collect(),
                quarantined: drift_rows.iter().map(|&(_, _, _, q)| q == 1).collect(),
                prev_fit: drift_rows
                    .iter()
                    .map(|&(a, b, c, q)| if q == 2 { None } else { Some((a, b, c)) })
                    .collect(),
            }),
        };

        let cp = RoundCheckpoint {
            seed,
            budget_bits,
            num_slices,
            pre_pass,
            rounds,
            remaining_bits,
            total_spent_bits,
            t_bits,
            iterations,
            inc,
            drift,
        };

        let text = cp.to_json();
        let parsed = RoundCheckpoint::parse(&text, "<prop>").expect("own output parses");
        prop_assert_eq!(&parsed, &cp, "parse inverts to_json");
        prop_assert_eq!(parsed.to_json(), text, "serialize-parse-serialize is a fixpoint");
    }
}

// Crash-only serving reads checkpoints written by arbitrary interrupted
// processes, so the loader must treat the file as hostile: any truncation,
// byte flip, deletion, or insertion — at any offset, against v1 or v2
// documents — must come back as a typed `CheckpointError`, never a panic.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn mutilated_checkpoints_error_typed_never_panic(
        seed in 0u64..=u64::MAX,
        iterations in 0u64..50,
        version in 1usize..3,
        mutations in prop::collection::vec((0usize..3000, 0usize..4, 0u8..=255), 1..4),
    ) {
        use slice_tuner::checkpoint::{DriftSnapshot, EstimateSnapshot, IncSnapshot, RoundCheckpoint};

        let cp = RoundCheckpoint {
            seed,
            budget_bits: 400.0_f64.to_bits(),
            num_slices: 4,
            pre_pass: vec![3, 0, 1, 2],
            rounds: vec![vec![10, 0, 2, 5], vec![0, 7, 0, 0]],
            remaining_bits: 123.456_f64.to_bits(),
            total_spent_bits: 276.544_f64.to_bits(),
            t_bits: 4.0_f64.to_bits(),
            iterations,
            inc: Some(IncSnapshot {
                dirty: vec![false, true, false, false],
                prev: Some(vec![EstimateSnapshot {
                    fit: Ok((2.0_f64.to_bits(), 0.3_f64.to_bits())),
                    repeat_fits: vec![(2.1_f64.to_bits(), 0.31_f64.to_bits())],
                    points: vec![(10.0_f64.to_bits(), 0.5_f64.to_bits(), 10.0_f64.to_bits())],
                }; 4]),
                seed_bumps: vec![0; 4],
            }),
            drift: (version == 2).then(|| DriftSnapshot {
                cusum: vec![(0.7_f64.to_bits(), 0.1_f64.to_bits(), 3); 4],
                staleness: vec![0, 120, 0, 55],
                resets: vec![0, 2, 0, 0],
                quarantined: vec![false, false, true, false],
                prev_fit: vec![None; 4],
            }),
        };
        // A v1 document predates seed_bumps and drift state.
        let doc = if version == 1 {
            cp.to_json()
                .replace("\"version\":2", "\"version\":1")
                .replace("\"seed_bumps\":[0,0,0,0],", "")
        } else {
            cp.to_json()
        };
        prop_assert!(RoundCheckpoint::parse(&doc, "<prop>").is_ok(), "pristine doc parses");

        let mut bytes = doc.into_bytes();
        for &(offset, kind, byte) in &mutations {
            if bytes.is_empty() {
                break;
            }
            let at = offset % bytes.len();
            match kind {
                0 => bytes.truncate(at),              // killed mid-write
                1 => bytes[at] = byte,                // bit rot / overwrite
                2 => { bytes.remove(at); }            // dropped byte
                _ => bytes.insert(at, byte),          // injected byte
            }
        }
        let mutated = String::from_utf8_lossy(&bytes);
        // The only acceptable outcomes are a clean parse (the mutation was
        // benign, e.g. whitespace) or a typed error. A panic fails the test.
        match RoundCheckpoint::parse(&mutated, "<prop>") {
            Ok(parsed) => { let _ = parsed.to_json(); }
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }
}
