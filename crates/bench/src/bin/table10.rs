//! Tables 10 and 11 (Appendix C): the method comparison when initial slice
//! sizes follow the paper's decaying ("exponential") distribution instead of
//! being equal.

use slice_tuner::{Strategy, TSchedule};
use st_bench::{fmt_counts, rule, run_cell, trials, FamilySetup};
use st_data::decaying_sizes;

fn main() {
    // Bench-wide kernel default: `sharded` on multi-core hosts, `simd`
    // on single-core containers; `ST_KERNEL` overrides (see docs/kernels.md).
    st_bench::init_bench_kernel();
    let methods = [
        ("One-shot", Strategy::OneShot),
        ("Aggressive", Strategy::Iterative(TSchedule::aggressive())),
        ("Moderate", Strategy::Iterative(TSchedule::moderate())),
        (
            "Conservative",
            Strategy::Iterative(TSchedule::conservative()),
        ),
    ];
    let trials = trials();

    println!("Table 10: methods with decaying initial slice sizes ({trials} trials)");
    println!(
        "{:<14} {:<14} {:>8} {:>10} {:>10}",
        "Dataset", "Method", "Loss", "Avg EER", "Max EER"
    );
    rule(60);

    let mut table11: Vec<(String, Vec<usize>, Vec<(String, Vec<f64>, f64)>)> = Vec::new();
    for setup in FamilySetup::all() {
        // Paper's Appendix C bases: Fashion 400, Mixed 600, UTKFace 400,
        // AdultCensus 150 (the first slice's size).
        let base = match setup.label {
            "Fashion-MNIST" => 400,
            "Mixed-MNIST" => 600,
            "UTKFace" => 400,
            _ => 150,
        };
        let sizes = decaying_sizes(setup.family.num_slices(), base);
        let budget = setup.scaled_budget();

        let orig = run_cell(
            &setup.family,
            &sizes,
            setup.validation,
            0.0,
            Strategy::Uniform,
            &setup.config(10),
            trials,
        );
        println!(
            "{:<14} {:<14} {:>8.3} {:>10.3} {:>10.3}",
            setup.label,
            "Original",
            orig.original_loss.mean,
            orig.original_avg_eer.mean,
            orig.original_max_eer.mean
        );
        let mut rows = Vec::new();
        for (name, strategy) in &methods {
            let agg = run_cell(
                &setup.family,
                &sizes,
                setup.validation,
                budget,
                *strategy,
                &setup.config(10),
                trials,
            );
            println!(
                "{:<14} {:<14} {:>8.3} {:>10.3} {:>10.3}",
                setup.label, name, agg.loss.mean, agg.avg_eer.mean, agg.max_eer.mean
            );
            rows.push((name.to_string(), agg.acquired_mean.clone(), agg.iterations));
        }
        rule(60);
        table11.push((format!("{} (B = {budget})", setup.label), sizes, rows));
    }

    println!("\nTable 11: initial sizes and acquisitions per slice");
    for (label, sizes, rows) in &table11 {
        println!("\n== {label} ==");
        let as_f: Vec<f64> = sizes.iter().map(|&s| s as f64).collect();
        println!("{:<14} {}", "Original", fmt_counts(&as_f));
        for (name, counts, iters) in rows {
            println!("{name:<14} {}  ({iters:.1} iters)", fmt_counts(counts));
        }
    }
}
