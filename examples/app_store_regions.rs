//! The paper's motivating scenario (Figure 1): an online app store with
//! customer slices per region, where American data is abundant and the other
//! regions are under-represented.
//!
//! ```sh
//! cargo run --release --example app_store_regions
//! ```
//!
//! Builds a five-region dataset with a heavily skewed size distribution,
//! then compares what each strategy does with the same budget — showing
//! that Slice Tuner acquires (possibly different) amounts only where they
//! help, instead of "more American data".

use slice_tuner::{PoolSource, SliceTuner, Strategy, TSchedule, TunerConfig};
use st_data::{DatasetFamily, GaussianSliceModel, LabelCluster, SliceSpec, SlicedDataset};
use st_models::ModelSpec;

/// Builds the Figure 1 world: five regional slices, binary purchase label,
/// regions differ in both difficulty and starting size.
fn app_store_family() -> DatasetFamily {
    let dim = 12;
    let regions: [(&str, f64); 5] = [
        ("America", 0.9), // abundant, easy
        ("Europe", 1.1),
        ("APAC", 1.25),
        ("Africa", 1.4), // scarce, hard
        ("Middle-East", 1.3),
    ];
    let centers = |seed: u64| -> Vec<Vec<f64>> {
        // Two class directions per region, offset per region.
        let mut rng = st_data::seeded_rng(seed);
        (0..12)
            .map(|_| (0..dim).map(|_| st_data::normal(&mut rng)).collect())
            .collect()
    };
    let base = centers(0xA99);
    let slices = regions
        .iter()
        .enumerate()
        .map(|(i, (name, sigma))| {
            let mk = |label: usize| -> Vec<f64> {
                base[label]
                    .iter()
                    .zip(&base[2 + i])
                    .map(|(c, o)| c + 0.8 * o)
                    .collect()
            };
            let neg = LabelCluster::new(0, 0.6, mk(0), *sigma);
            let pos = LabelCluster::new(1, 0.4, mk(1), *sigma);
            SliceSpec::new(*name, 1.0, GaussianSliceModel::new(vec![neg, pos], 0.04))
        })
        .collect();
    DatasetFamily::new("app-store", dim, 2, slices)
}

fn main() {
    let family = app_store_family();
    // Figure 1's skew: America dwarfs everyone else.
    let initial_sizes = [1200, 300, 220, 90, 140];
    let budget = 1000.0;
    println!("regions: {:?}", family.slice_names());
    println!("initial sizes: {initial_sizes:?}  budget: {budget}\n");

    for strategy in [
        Strategy::Uniform,
        Strategy::WaterFilling,
        Strategy::Iterative(TSchedule::moderate()),
    ] {
        let dataset = SlicedDataset::generate(&family, &initial_sizes, 300, 7);
        let mut pool = PoolSource::new(family.clone(), 7);
        let config = TunerConfig::new(ModelSpec::softmax()).with_seed(7);
        let mut tuner = SliceTuner::new(dataset, &mut pool, config);
        let result = tuner.run(strategy, budget);

        println!("== {} ==", strategy.name());
        for (name, &got) in family.slice_names().iter().zip(&result.acquired) {
            println!("  {name:<12} +{got}");
        }
        println!(
            "  loss {:.4} -> {:.4}   avg EER {:.4} -> {:.4}\n",
            result.original.overall_loss,
            result.report.overall_loss,
            result.original.avg_eer,
            result.report.avg_eer
        );
    }
    println!(
        "Note how the baselines either dump budget on America (Uniform) or \n\
         blindly level sizes (Water filling), while Slice Tuner routes data \n\
         to the regions whose learning curves say it pays off."
    );
}
