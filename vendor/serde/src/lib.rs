//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The repository builds in a container with no crates.io access, so
//! external dependencies are vendored as minimal API-compatible crates
//! (see `vendor/README.md`). The workspace only derives `Serialize` /
//! `Deserialize` as forward-looking markers — nothing serializes through
//! serde at runtime — so the traits are empty and the derives emit no code.
//! Swapping this for real serde is a one-line change in the workspace
//! manifest and requires no source edits.

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
