//! Measured (size, loss) observations.

/// One measured point of a slice's learning curve: a model trained with `n`
/// examples of the slice scored `loss` on the slice's validation set.
///
/// `weight` carries the fitting weight. The paper weights subsets
/// proportionally to their sizes because losses measured on smaller subsets
/// have higher variance (Figure 5's small-data region).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Training examples of the slice used for this measurement.
    pub n: f64,
    /// Measured validation loss.
    pub loss: f64,
    /// Non-negative fitting weight.
    pub weight: f64,
}

impl CurvePoint {
    /// Point with the paper's default weighting (`weight = n`).
    pub fn size_weighted(n: f64, loss: f64) -> Self {
        CurvePoint { n, loss, weight: n }
    }

    /// Point with an explicit weight.
    pub fn weighted(n: f64, loss: f64, weight: f64) -> Self {
        CurvePoint { n, loss, weight }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_weighted_uses_n_as_weight() {
        let p = CurvePoint::size_weighted(50.0, 0.4);
        assert_eq!(p.weight, 50.0);
        assert_eq!(p.n, 50.0);
        assert_eq!(p.loss, 0.4);
    }

    #[test]
    fn weighted_sets_explicit_weight() {
        let p = CurvePoint::weighted(10.0, 1.0, 3.0);
        assert_eq!(p.weight, 3.0);
    }
}
