//! Acquisition strategies: the two baselines, One-shot, and the iterative
//! `T` schedules (Sections 2.2, 5.1, 5.2).

/// How the imbalance-ratio change limit `T` grows per iteration
/// (Section 5.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TSchedule {
    /// `T` stays constant: most iterations, most reliable curves.
    Conservative,
    /// `T += c` per iteration (paper uses `c = 1`).
    Moderate(f64),
    /// `T *= c` per iteration (paper uses `c = 2`).
    Aggressive(f64),
}

impl TSchedule {
    /// The paper's three configurations.
    pub fn conservative() -> Self {
        TSchedule::Conservative
    }

    /// Moderate with the paper's constant (`+1`).
    pub fn moderate() -> Self {
        TSchedule::Moderate(1.0)
    }

    /// Aggressive with the paper's constant (`×2`).
    pub fn aggressive() -> Self {
        TSchedule::Aggressive(2.0)
    }

    /// Applies one iteration's increase to `t`.
    pub fn increase(&self, t: f64) -> f64 {
        match *self {
            TSchedule::Conservative => t,
            TSchedule::Moderate(c) => t + c,
            TSchedule::Aggressive(c) => t * c,
        }
    }

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            TSchedule::Conservative => "Conservative",
            TSchedule::Moderate(_) => "Moderate",
            TSchedule::Aggressive(_) => "Aggressive",
        }
    }
}

/// Parameters of the model-free rotting-bandit baseline (an extension: the
/// paper's Section 7 frames Slice Tuner as a specialized multi-armed bandit
/// with rotting arms; this is the natural model-free competitor).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BanditParams {
    /// Budget spent per pull (one arm per round).
    pub batch: f64,
    /// ε-greedy exploration probability.
    pub epsilon: f64,
}

impl Default for BanditParams {
    fn default() -> Self {
        BanditParams {
            batch: 100.0,
            epsilon: 0.1,
        }
    }
}

/// A complete data acquisition strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// Baseline 1: acquire similar amounts per slice (Figure 3a).
    Uniform,
    /// Baseline 2: acquire so final sizes are similar (Figure 3b).
    WaterFilling,
    /// Baseline 3 (reference \[12\] of the paper): acquire in proportion to
    /// the original data distribution. The paper calls this "strictly
    /// worse" because it does not fix data bias at all; it is included so
    /// that claim can be measured rather than assumed.
    Proportional,
    /// Estimate curves once, solve the convex program once, spend the whole
    /// budget (Section 5.1).
    OneShot,
    /// Algorithm 1: iterate, bounding each round's imbalance-ratio change.
    Iterative(TSchedule),
    /// Extension: ε-greedy rotting bandit that spends one batch per round on
    /// the arm with the best observed loss reduction per unit cost. Needs a
    /// full retraining per pull — the inefficiency Slice Tuner's learning
    /// curves avoid.
    RottingBandit(BanditParams),
}

impl Strategy {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Uniform => "Uniform",
            Strategy::WaterFilling => "Water filling",
            Strategy::Proportional => "Proportional",
            Strategy::OneShot => "One-shot",
            Strategy::Iterative(s) => s.name(),
            Strategy::RottingBandit(_) => "Rotting bandit",
        }
    }
}

/// Proportional baseline (reference \[12\]): counts proportional to the
/// current slice sizes, spending the budget exactly:
/// `d_i = k·s_i` with `k = B / Σ c_j s_j`.
///
/// All-empty slices degrade to the uniform allocation (there is no
/// distribution to be proportional to).
pub fn proportional_allocation(sizes: &[f64], costs: &[f64], budget: f64) -> Vec<f64> {
    assert_eq!(sizes.len(), costs.len(), "length mismatch");
    assert!(!sizes.is_empty(), "need at least one slice");
    let weighted: f64 = sizes.iter().zip(costs).map(|(s, c)| s * c).sum();
    if weighted <= 0.0 {
        return uniform_allocation(costs, budget);
    }
    let k = budget / weighted;
    sizes.iter().map(|&s| k * s).collect()
}

/// Uniform baseline: the same (cost-weighted) count per slice, spending the
/// budget exactly: `d_i = B / Σ c_j`.
pub fn uniform_allocation(costs: &[f64], budget: f64) -> Vec<f64> {
    assert!(!costs.is_empty(), "need at least one slice");
    let total: f64 = costs.iter().sum();
    vec![budget / total; costs.len()]
}

/// Water-filling baseline: raise every slice to a common level `L*` with
/// `Σ c_i · max(0, L* − s_i) = B` (Figure 3b), found by bisection.
pub fn water_filling_allocation(sizes: &[f64], costs: &[f64], budget: f64) -> Vec<f64> {
    assert_eq!(sizes.len(), costs.len(), "length mismatch");
    assert!(!sizes.is_empty(), "need at least one slice");
    let spend = |level: f64| -> f64 {
        sizes
            .iter()
            .zip(costs)
            .map(|(&s, &c)| c * (level - s).max(0.0))
            .sum()
    };
    let mut lo = sizes.iter().cloned().fold(f64::INFINITY, f64::min);
    let mut hi = sizes.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        + budget
            / costs
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min)
                .max(1e-12);
    debug_assert!(spend(lo) <= budget && spend(hi) >= budget);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if spend(mid) < budget {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let level = 0.5 * (lo + hi);
    sizes.iter().map(|&s| (level - s).max(0.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_updates_match_paper() {
        assert_eq!(TSchedule::conservative().increase(1.0), 1.0);
        assert_eq!(TSchedule::moderate().increase(1.0), 2.0);
        assert_eq!(TSchedule::moderate().increase(2.0), 3.0);
        assert_eq!(TSchedule::aggressive().increase(1.0), 2.0);
        assert_eq!(TSchedule::aggressive().increase(2.0), 4.0);
    }

    #[test]
    fn uniform_spends_budget_equally() {
        let d = uniform_allocation(&[1.0, 1.0, 1.0], 300.0);
        assert_eq!(d, vec![100.0; 3]);
        // Heterogeneous costs: equal counts, total = budget.
        let d = uniform_allocation(&[1.0, 2.0], 30.0);
        assert_eq!(d, vec![10.0, 10.0]);
        assert!((d[0] * 1.0 + d[1] * 2.0 - 30.0).abs() < 1e-9);
    }

    #[test]
    fn water_filling_levels_slices() {
        let sizes = [10.0, 40.0, 70.0];
        let d = water_filling_allocation(&sizes, &[1.0; 3], 60.0);
        let after: Vec<f64> = sizes.iter().zip(&d).map(|(s, x)| s + x).collect();
        // Budget 60 fills 10→?, 40→?: level = (10+40+60)/2 = 55 < 70.
        assert!((after[0] - 55.0).abs() < 1e-6, "{after:?}");
        assert!((after[1] - 55.0).abs() < 1e-6);
        assert_eq!(d[2], 0.0, "the largest slice receives nothing");
        assert!((d.iter().sum::<f64>() - 60.0).abs() < 1e-6);
    }

    #[test]
    fn water_filling_with_costs() {
        let sizes = [0.0, 100.0];
        let costs = [2.0, 1.0];
        let d = water_filling_allocation(&sizes, &costs, 100.0);
        // All budget goes to slice 0 (level ≤ 100): 2·d0 = 100 ⇒ d0 = 50.
        assert!((d[0] - 50.0).abs() < 1e-6, "{d:?}");
        assert_eq!(d[1], 0.0);
    }

    #[test]
    fn water_filling_equal_sizes_degenerates_to_uniform() {
        let d = water_filling_allocation(&[50.0; 4], &[1.0; 4], 100.0);
        for &x in &d {
            assert!((x - 25.0).abs() < 1e-6);
        }
    }

    #[test]
    fn strategy_names() {
        assert_eq!(Strategy::Uniform.name(), "Uniform");
        assert_eq!(Strategy::Proportional.name(), "Proportional");
        assert_eq!(
            Strategy::Iterative(TSchedule::moderate()).name(),
            "Moderate"
        );
    }

    #[test]
    fn proportional_mirrors_the_existing_distribution() {
        let d = proportional_allocation(&[10.0, 30.0], &[1.0, 1.0], 80.0);
        assert_eq!(d, vec![20.0, 60.0]);
        // Relative bias is untouched: 10/30 == 30/90.
        assert_eq!((10.0 + d[0]) / (30.0 + d[1]), 10.0 / 30.0);
    }

    #[test]
    fn proportional_respects_costs_on_the_budget() {
        let d = proportional_allocation(&[10.0, 10.0], &[1.0, 3.0], 80.0);
        assert!((d[0] * 1.0 + d[1] * 3.0 - 80.0).abs() < 1e-9);
        assert_eq!(d[0], d[1], "equal sizes get equal counts");
    }

    #[test]
    fn proportional_on_empty_slices_degrades_to_uniform() {
        let d = proportional_allocation(&[0.0, 0.0], &[1.0, 1.0], 40.0);
        assert_eq!(d, vec![20.0, 20.0]);
    }
}
