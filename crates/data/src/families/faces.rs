//! UTKFace analog: 8 race×gender slices, 4-way race classification.
//!
//! This family reproduces the two UTKFace-specific mechanics:
//!
//! - **Slice dependence** (Figure 7): slices of the same race share a class
//!   label and nearly identical feature clusters (gender is a small offset),
//!   so acquiring data for `White_Male` *lowers* the shared model's loss on
//!   `White_Female` while the induced bias *raises* losses on the other
//!   races.
//! - **Heterogeneous acquisition cost** (Table 1): the paper's crowdsourcing
//!   costs, proportional to the mean seconds per MTurk task, are carried
//!   verbatim on the slice specs.

use super::random_centers;
use crate::generator::{DatasetFamily, GaussianSliceModel, LabelCluster, SliceSpec};

/// Feature dimensionality of the faces family.
pub const FACES_DIM: usize = 16;

/// Slice names in paper order (W=White, B=Black, A=Asian, I=Indian).
pub const FACE_SLICES: [&str; 8] = [
    "White_Male",
    "White_Female",
    "Black_Male",
    "Black_Female",
    "Asian_Male",
    "Asian_Female",
    "Indian_Male",
    "Indian_Female",
];

/// Mean seconds to complete one MTurk acquisition task per slice (Table 1).
pub const FACE_TASK_SECONDS: [f64; 8] = [82.1, 81.9, 67.6, 79.3, 94.8, 77.5, 91.6, 104.6];

/// Acquisition costs from Table 1, i.e. task seconds normalized by the
/// cheapest slice (Black_Male) and rounded to one decimal.
pub const FACE_COSTS: [f64; 8] = [1.2, 1.2, 1.0, 1.2, 1.4, 1.1, 1.4, 1.5];

/// Canonical faces family.
pub fn faces() -> DatasetFamily {
    faces_with_seed(0xFACE_0000)
}

/// Faces family with an explicit geometry seed.
pub fn faces_with_seed(seed: u64) -> DatasetFamily {
    // Four race centers; genders sit a small offset apart within each race.
    let race_centers = random_centers(4, FACES_DIM, 2.1, seed);
    let gender_offsets = random_centers(2, FACES_DIM, 0.55, seed ^ 0xD1FF);
    // Per-race spread: White easiest, Black hardest — Figure 8c fits
    // White-Male (b=2.27, a=0.20) vs Black-Female (b=3.50, a=0.31).
    let race_sigma = [1.05, 1.45, 1.25, 1.3];

    let mut slices = Vec::with_capacity(8);
    for (i, name) in FACE_SLICES.iter().enumerate() {
        let race = i / 2;
        let gender = i % 2;
        let center: Vec<f64> = race_centers[race]
            .iter()
            .zip(&gender_offsets[gender])
            .map(|(r, g)| r + g)
            .collect();
        let cluster = LabelCluster::new(race, 1.0, center, race_sigma[race]);
        let model = GaussianSliceModel::new(vec![cluster], 0.05);
        slices.push(SliceSpec::new(*name, FACE_COSTS[i], model));
    }
    DatasetFamily::new("faces", FACES_DIM, 4, slices)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_slices_four_classes_paper_costs() {
        let fam = faces();
        assert_eq!(fam.num_slices(), 8);
        assert_eq!(fam.num_classes, 4);
        assert_eq!(fam.costs(), FACE_COSTS.to_vec());
    }

    #[test]
    fn costs_are_task_seconds_normalized() {
        let min = FACE_TASK_SECONDS
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        for (i, &secs) in FACE_TASK_SECONDS.iter().enumerate() {
            let expected = (secs / min * 10.0).round() / 10.0;
            assert!(
                (expected - FACE_COSTS[i]).abs() < 0.11,
                "slice {i}: {expected} vs {}",
                FACE_COSTS[i]
            );
        }
    }

    #[test]
    fn same_race_slices_share_label_and_sit_close() {
        let fam = faces();
        let dist = |a: usize, b: usize| {
            let ca = &fam.slices[a].model.clusters[0].center;
            let cb = &fam.slices[b].model.clusters[0].center;
            ca.iter()
                .zip(cb)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        };
        // Same race (WM vs WF) must be much closer than cross race (WM vs BM).
        assert!(
            dist(0, 1) < dist(0, 2) * 0.6,
            "{} vs {}",
            dist(0, 1),
            dist(0, 2)
        );
        assert_eq!(
            fam.slices[0].model.clusters[0].label,
            fam.slices[1].model.clusters[0].label
        );
        assert_ne!(
            fam.slices[0].model.clusters[0].label,
            fam.slices[2].model.clusters[0].label
        );
    }

    #[test]
    fn white_slices_are_tightest() {
        let fam = faces();
        let sigma = |i: usize| fam.slices[i].model.clusters[0].sigma;
        assert!(sigma(0) < sigma(2) && sigma(0) < sigma(4) && sigma(0) < sigma(6));
    }
}
