//! Gaussian-mixture slice generators.
//!
//! Each slice is modeled as a mixture over `(label, cluster)` pairs: a
//! [`LabelCluster`] is an isotropic Gaussian blob in feature space carrying
//! one class label. A slice samples a cluster according to its mixture
//! weights and then samples features around the cluster center.
//!
//! Difficulty (and hence learning-curve steepness, Figure 8) is controlled
//! by the cluster spread `sigma` relative to the distance between centers of
//! different classes. Content similarity between slices (the driver of the
//! influence effect in Figure 7) is controlled by how close two slices'
//! cluster centers are and whether they share labels.

use crate::example::{Example, SliceId};
use crate::rng::{normal, seeded_rng, split_seed};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One Gaussian blob with a class label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabelCluster {
    /// Class label of examples drawn from this cluster.
    pub label: usize,
    /// Mixture weight (normalized over the slice's clusters at sample time).
    pub weight: f64,
    /// Cluster center in feature space.
    pub center: Vec<f64>,
    /// Isotropic standard deviation.
    pub sigma: f64,
}

impl LabelCluster {
    /// Convenience constructor.
    pub fn new(label: usize, weight: f64, center: Vec<f64>, sigma: f64) -> Self {
        assert!(weight > 0.0, "cluster weight must be positive");
        assert!(sigma >= 0.0, "sigma must be non-negative");
        Self {
            label,
            weight,
            center,
            sigma,
        }
    }
}

/// The generative model behind one slice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianSliceModel {
    /// Mixture components.
    pub clusters: Vec<LabelCluster>,
    /// Label-noise rate: with this probability a sampled example's label is
    /// replaced by a uniformly random class. Produces the irreducible-loss
    /// floor of the diminishing-returns region (Figure 5).
    pub label_noise: f64,
}

impl GaussianSliceModel {
    /// Builds a model from clusters, validating shapes.
    ///
    /// # Panics
    /// Panics if `clusters` is empty, dimensions are inconsistent, or
    /// `label_noise` is outside `[0, 1)`.
    pub fn new(clusters: Vec<LabelCluster>, label_noise: f64) -> Self {
        assert!(
            !clusters.is_empty(),
            "slice model needs at least one cluster"
        );
        let dim = clusters[0].center.len();
        assert!(
            clusters.iter().all(|c| c.center.len() == dim),
            "all cluster centers must share a dimension"
        );
        assert!(
            (0.0..1.0).contains(&label_noise),
            "label_noise must be in [0,1)"
        );
        Self {
            clusters,
            label_noise,
        }
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.clusters[0].center.len()
    }

    /// Samples one example for slice `slice` with `num_classes` total classes.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        slice: SliceId,
        num_classes: usize,
        rng: &mut R,
    ) -> Example {
        let total: f64 = self.clusters.iter().map(|c| c.weight).sum();
        let mut pick = rng.gen::<f64>() * total;
        let mut chosen = &self.clusters[0];
        for c in &self.clusters {
            if pick < c.weight {
                chosen = c;
                break;
            }
            pick -= c.weight;
        }
        let features: Vec<f64> = chosen
            .center
            .iter()
            .map(|&m| m + chosen.sigma * normal(rng))
            .collect();
        let label = if self.label_noise > 0.0 && rng.gen::<f64>() < self.label_noise {
            rng.gen_range(0..num_classes)
        } else {
            chosen.label
        };
        Example::new(features, label, slice)
    }
}

/// A named slice with an acquisition cost and its generative model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SliceSpec {
    /// Human-readable slice name (e.g. `"White_Male"`, `"Sandal"`).
    pub name: String,
    /// Cost `C(s)` of acquiring one example of this slice (Section 2.1).
    pub cost: f64,
    /// Generative model.
    pub model: GaussianSliceModel,
}

impl SliceSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, cost: f64, model: GaussianSliceModel) -> Self {
        assert!(cost > 0.0, "acquisition cost must be positive");
        Self {
            name: name.into(),
            cost,
            model,
        }
    }
}

/// A complete dataset family: the synthetic analog of one of the paper's
/// four benchmark datasets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetFamily {
    /// Family name (e.g. `"fashion"`).
    pub name: String,
    /// Feature dimensionality shared by all slices.
    pub feature_dim: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// The slices, in id order.
    pub slices: Vec<SliceSpec>,
}

impl DatasetFamily {
    /// Builds a family, validating slice models against `feature_dim` and
    /// `num_classes`.
    ///
    /// # Panics
    /// Panics on dimension mismatch or out-of-range labels.
    pub fn new(
        name: impl Into<String>,
        feature_dim: usize,
        num_classes: usize,
        slices: Vec<SliceSpec>,
    ) -> Self {
        assert!(!slices.is_empty(), "family needs at least one slice");
        for s in &slices {
            assert_eq!(
                s.model.dim(),
                feature_dim,
                "slice {} dimension mismatch",
                s.name
            );
            assert!(
                s.model.clusters.iter().all(|c| c.label < num_classes),
                "slice {} has a label >= num_classes",
                s.name
            );
        }
        Self {
            name: name.into(),
            feature_dim,
            num_classes,
            slices,
        }
    }

    /// Number of slices.
    pub fn num_slices(&self) -> usize {
        self.slices.len()
    }

    /// Per-slice acquisition costs, in slice-id order.
    pub fn costs(&self) -> Vec<f64> {
        self.slices.iter().map(|s| s.cost).collect()
    }

    /// Slice names in slice-id order.
    pub fn slice_names(&self) -> Vec<&str> {
        self.slices.iter().map(|s| s.name.as_str()).collect()
    }

    /// Samples `n` fresh examples for slice `slice` using the given RNG.
    ///
    /// # Panics
    /// Panics if `slice` is out of range.
    pub fn sample_slice<R: Rng + ?Sized>(
        &self,
        slice: SliceId,
        n: usize,
        rng: &mut R,
    ) -> Vec<Example> {
        let spec = &self.slices[slice.index()];
        (0..n)
            .map(|_| spec.model.sample(slice, self.num_classes, rng))
            .collect()
    }

    /// Samples `n` fresh examples for `slice` from a deterministic stream
    /// derived from `(seed, slice, stream)`.
    pub fn sample_slice_seeded(
        &self,
        slice: SliceId,
        n: usize,
        seed: u64,
        stream: u64,
    ) -> Vec<Example> {
        let child = split_seed(seed, (slice.index() as u64) << 32 | stream);
        let mut rng: StdRng = seeded_rng(child);
        self.sample_slice(slice, n, &mut rng)
    }

    /// Like [`sample_slice_seeded`](Self::sample_slice_seeded), but draws
    /// from a caller-provided model (e.g. a drifted variant from
    /// [`crate::drift::DriftPlan`]) instead of the slice's own. The seed
    /// derivation is identical, so passing the slice's base model reproduces
    /// `sample_slice_seeded` bit for bit.
    pub fn sample_slice_seeded_as(
        &self,
        model: &GaussianSliceModel,
        slice: SliceId,
        n: usize,
        seed: u64,
        stream: u64,
    ) -> Vec<Example> {
        let child = split_seed(seed, (slice.index() as u64) << 32 | stream);
        let mut rng: StdRng = seeded_rng(child);
        (0..n)
            .map(|_| model.sample(slice, self.num_classes, &mut rng))
            .collect()
    }

    /// Restricts the family to the given slice ids (used by Mixed-MNIST
    /// experiments that select 10 of 20 slices).
    ///
    /// # Panics
    /// Panics if any index is out of range or `keep` is empty.
    pub fn select_slices(&self, keep: &[usize]) -> DatasetFamily {
        assert!(!keep.is_empty(), "must keep at least one slice");
        let slices: Vec<SliceSpec> = keep
            .iter()
            .map(|&i| {
                assert!(i < self.slices.len(), "slice index {i} out of range");
                self.slices[i].clone()
            })
            .collect();
        DatasetFamily::new(
            format!("{}-subset", self.name),
            self.feature_dim,
            self.num_classes,
            slices,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_family() -> DatasetFamily {
        let c0 = LabelCluster::new(0, 1.0, vec![0.0, 0.0], 0.1);
        let c1 = LabelCluster::new(1, 1.0, vec![3.0, 3.0], 0.1);
        DatasetFamily::new(
            "tiny",
            2,
            2,
            vec![
                SliceSpec::new("a", 1.0, GaussianSliceModel::new(vec![c0], 0.0)),
                SliceSpec::new("b", 2.0, GaussianSliceModel::new(vec![c1], 0.0)),
            ],
        )
    }

    #[test]
    fn sampling_respects_slice_and_label() {
        let fam = tiny_family();
        let mut rng = seeded_rng(1);
        let ex = fam.sample_slice(SliceId(0), 50, &mut rng);
        assert_eq!(ex.len(), 50);
        assert!(ex.iter().all(|e| e.slice == SliceId(0) && e.label == 0));
        // Features concentrate near the center.
        let mean_x = ex.iter().map(|e| e.features[0]).sum::<f64>() / 50.0;
        assert!(mean_x.abs() < 0.2, "mean_x {mean_x}");
    }

    #[test]
    fn seeded_sampling_is_replayable() {
        let fam = tiny_family();
        let a = fam.sample_slice_seeded(SliceId(1), 10, 99, 0);
        let b = fam.sample_slice_seeded(SliceId(1), 10, 99, 0);
        assert_eq!(a, b);
        let c = fam.sample_slice_seeded(SliceId(1), 10, 99, 1);
        assert_ne!(a, c, "different streams must differ");
    }

    #[test]
    fn label_noise_flips_some_labels() {
        let c = LabelCluster::new(0, 1.0, vec![0.0], 1.0);
        let model = GaussianSliceModel::new(vec![c], 0.5);
        let mut rng = seeded_rng(3);
        let flipped = (0..1000)
            .map(|_| model.sample(SliceId(0), 4, &mut rng))
            .filter(|e| e.label != 0)
            .count();
        // 50% noise over 4 classes flips 3/8 of labels in expectation.
        assert!((250..500).contains(&flipped), "flipped {flipped}");
    }

    #[test]
    fn mixture_weights_are_respected() {
        let c0 = LabelCluster::new(0, 3.0, vec![0.0], 0.01);
        let c1 = LabelCluster::new(1, 1.0, vec![10.0], 0.01);
        let model = GaussianSliceModel::new(vec![c0, c1], 0.0);
        let mut rng = seeded_rng(5);
        let ones = (0..4000)
            .map(|_| model.sample(SliceId(0), 2, &mut rng))
            .filter(|e| e.label == 1)
            .count();
        let frac = ones as f64 / 4000.0;
        assert!((frac - 0.25).abs() < 0.04, "frac {frac}");
    }

    #[test]
    fn select_slices_keeps_order_and_costs() {
        let fam = tiny_family();
        let sub = fam.select_slices(&[1]);
        assert_eq!(sub.num_slices(), 1);
        assert_eq!(sub.slices[0].name, "b");
        assert_eq!(sub.costs(), vec![2.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn family_rejects_dim_mismatch() {
        let c = LabelCluster::new(0, 1.0, vec![0.0], 0.1);
        let _ = DatasetFamily::new(
            "bad",
            2,
            1,
            vec![SliceSpec::new(
                "a",
                1.0,
                GaussianSliceModel::new(vec![c], 0.0),
            )],
        );
    }
}
