//! Plain-text model serialization.
//!
//! A tiny line-oriented format (`mlp-v1`) so trained models can be saved,
//! diffed, and reloaded without adding binary-format dependencies:
//!
//! ```text
//! mlp-v1 <num_layers>
//! layer <fan_in> <fan_out>
//! <w row 0: fan_out hex-f64 words> ...
//! b <fan_out hex words>
//! ```
//!
//! Floats are serialized as hexadecimal bit patterns so round-trips are
//! exact (decimal formatting would drop bits and break replay equality).

use crate::network::{Layer, Mlp};
use st_linalg::Matrix;

/// Errors from [`read_mlp`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelIoError {
    /// First line is not an `mlp-v1` header.
    BadHeader,
    /// A structural line (counts, `layer`, `b`) was malformed.
    BadStructure(String),
    /// A float token could not be parsed.
    BadNumber(String),
    /// Fewer lines/tokens than the header promised.
    Truncated,
}

impl std::fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelIoError::BadHeader => write!(f, "missing or invalid mlp-v1 header"),
            ModelIoError::BadStructure(s) => write!(f, "malformed structure line: {s}"),
            ModelIoError::BadNumber(s) => write!(f, "unparseable float token: {s}"),
            ModelIoError::Truncated => write!(f, "input ended before the declared layers"),
        }
    }
}

impl std::error::Error for ModelIoError {}

fn write_floats(out: &mut String, xs: &[f64]) {
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(&format!("{:016x}", x.to_bits()));
    }
    out.push('\n');
}

fn parse_floats(line: &str, expect: usize) -> Result<Vec<f64>, ModelIoError> {
    let vals: Result<Vec<f64>, _> = line
        .split_whitespace()
        .map(|t| u64::from_str_radix(t, 16).map(f64::from_bits))
        .collect();
    let vals = vals.map_err(|_| ModelIoError::BadNumber(line.to_string()))?;
    if vals.len() != expect {
        return Err(ModelIoError::BadStructure(format!(
            "expected {expect} floats, got {}",
            vals.len()
        )));
    }
    Ok(vals)
}

/// Serializes an [`Mlp`] to the `mlp-v1` text format.
pub fn write_mlp(net: &Mlp) -> String {
    let mut out = String::new();
    out.push_str(&format!("mlp-v1 {}\n", net.layers.len()));
    for layer in &net.layers {
        out.push_str(&format!("layer {} {}\n", layer.fan_in(), layer.fan_out()));
        for r in 0..layer.w.rows() {
            write_floats(&mut out, layer.w.row(r));
        }
        out.push_str("b ");
        write_floats(&mut out, &layer.b);
    }
    out
}

/// Parses an `mlp-v1` document back into a network.
///
/// # Errors
/// Returns a [`ModelIoError`] describing the first malformed line.
pub fn read_mlp(text: &str) -> Result<Mlp, ModelIoError> {
    let mut lines = text.lines();
    let header = lines.next().ok_or(ModelIoError::BadHeader)?;
    let mut hp = header.split_whitespace();
    if hp.next() != Some("mlp-v1") {
        return Err(ModelIoError::BadHeader);
    }
    let num_layers: usize = hp
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ModelIoError::BadStructure(header.to_string()))?;

    let mut layers = Vec::with_capacity(num_layers);
    for _ in 0..num_layers {
        let decl = lines.next().ok_or(ModelIoError::Truncated)?;
        let mut dp = decl.split_whitespace();
        if dp.next() != Some("layer") {
            return Err(ModelIoError::BadStructure(decl.to_string()));
        }
        let fan_in: usize = dp
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| ModelIoError::BadStructure(decl.to_string()))?;
        let fan_out: usize = dp
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| ModelIoError::BadStructure(decl.to_string()))?;

        let mut w = Matrix::zeros(fan_in, fan_out);
        for r in 0..fan_in {
            let line = lines.next().ok_or(ModelIoError::Truncated)?;
            let vals = parse_floats(line, fan_out)?;
            w.row_mut(r).copy_from_slice(&vals);
        }
        let bline = lines.next().ok_or(ModelIoError::Truncated)?;
        let rest = bline
            .strip_prefix("b ")
            .ok_or_else(|| ModelIoError::BadStructure(bline.to_string()))?;
        let b = parse_floats(rest, fan_out)?;
        layers.push(Layer { w, b });
    }
    Ok(Mlp { layers })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModelSpec, TrainConfig};
    use st_data::seeded_rng;

    #[test]
    fn round_trip_is_bit_exact() {
        let mut rng = seeded_rng(1);
        let net = Mlp::new(5, &[7, 3], 4, &mut rng);
        let text = write_mlp(&net);
        let back = read_mlp(&text).unwrap();
        assert_eq!(net, back);
    }

    #[test]
    fn round_trip_of_trained_model_preserves_predictions() {
        let x = Matrix::from_fn(30, 2, |r, c| ((r + c) as f64 * 0.7).sin());
        let y: Vec<usize> = (0..30).map(|i| i % 2).collect();
        let net = crate::train(&x, &y, 2, 2, &ModelSpec::small(), &TrainConfig::default());
        let back = read_mlp(&write_mlp(&net)).unwrap();
        assert_eq!(net.predict(&x), back.predict(&x));
        assert_eq!(
            crate::log_loss(&net, &x, &y).to_bits(),
            crate::log_loss(&back, &x, &y).to_bits(),
            "losses must agree to the last bit"
        );
    }

    #[test]
    fn special_values_survive() {
        let mut rng = seeded_rng(2);
        let mut net = Mlp::new(2, &[], 2, &mut rng);
        net.layers[0].w[(0, 0)] = f64::MIN_POSITIVE;
        net.layers[0].w[(0, 1)] = -0.0;
        net.layers[0].b[0] = 1e308;
        let back = read_mlp(&write_mlp(&net)).unwrap();
        assert_eq!(net, back);
        assert_eq!(back.layers[0].w[(0, 1)].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn rejects_missing_header() {
        assert_eq!(read_mlp(""), Err(ModelIoError::BadHeader));
        assert_eq!(read_mlp("mlp-v2 1\n"), Err(ModelIoError::BadHeader));
    }

    #[test]
    fn rejects_truncated_document() {
        let mut rng = seeded_rng(3);
        let net = Mlp::new(3, &[4], 2, &mut rng);
        let text = write_mlp(&net);
        let cut: String = text.lines().take(3).collect::<Vec<_>>().join("\n");
        assert_eq!(read_mlp(&cut), Err(ModelIoError::Truncated));
    }

    #[test]
    fn rejects_garbage_floats() {
        let doc = "mlp-v1 1\nlayer 1 1\nzzzz\nb 0000000000000000\n";
        assert!(matches!(read_mlp(doc), Err(ModelIoError::BadNumber(_))));
    }

    #[test]
    fn rejects_wrong_width_rows() {
        let doc = "mlp-v1 1\nlayer 1 2\n0000000000000000\nb 0000000000000000 0000000000000000\n";
        assert!(matches!(read_mlp(doc), Err(ModelIoError::BadStructure(_))));
    }
}
