//! The UTKFace crowdsourcing scenario (Section 6.1): acquire face images for
//! race×gender slices through a simulated Amazon Mechanical Turk pipeline
//! with per-slice task latencies, duplicates, and mistakes.
//!
//! ```sh
//! cargo run --release --example crowdsourced_faces
//! ```

use slice_tuner::{
    AcquisitionSource, CrowdConfig, CrowdSimulator, SliceTuner, Strategy, TSchedule, TunerConfig,
};
use st_data::{families, SlicedDataset};
use st_models::ModelSpec;

fn main() {
    let family = families::faces();
    let dataset = SlicedDataset::generate(&family, &[400; 8], 300, 2021);
    let mut crowd = CrowdSimulator::new(family.clone(), CrowdConfig::utkface(), 2021);

    // Show the cost model before tuning (Table 1).
    println!("slice            cost C(s)");
    for (i, name) in family.slice_names().iter().enumerate() {
        println!("  {name:<15} {:.1}", crowd.cost(st_data::SliceId(i)));
    }

    let config = TunerConfig::new(ModelSpec::basic()).with_seed(2021);
    let mut tuner = SliceTuner::new(dataset, &mut crowd, config);
    let budget = 1500.0;
    let result = tuner.run(Strategy::Iterative(TSchedule::moderate()), budget);

    println!(
        "\nbudget {budget} -> spent {:.1} in {} iterations",
        result.spent, result.iterations
    );
    println!("\nslice            acquired");
    for (name, &got) in family.slice_names().iter().zip(&result.acquired) {
        println!("  {name:<15} +{got}");
    }

    let stats = tuner.dataset().train_sizes();
    println!("\nfinal sizes: {stats:?}");
    println!(
        "loss {:.4} -> {:.4}   avg EER {:.4} -> {:.4}   max EER {:.4} -> {:.4}",
        result.original.overall_loss,
        result.report.overall_loss,
        result.original.avg_eer,
        result.report.avg_eer,
        result.original.max_eer,
        result.report.max_eer,
    );
}
