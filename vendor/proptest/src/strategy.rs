//! The [`Strategy`] trait and its implementations for ranges and tuples.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of some type.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the RNG state.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds from
    /// it (dependent generation).
    fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        O: Strategy,
        F: Fn(Self::Value) -> O,
    {
        FlatMap { source: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
    type Value = O::Value;
    fn generate(&self, rng: &mut TestRng) -> O::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, G);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(42)
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3usize..9).generate(&mut r);
            assert!((3..9).contains(&v));
            let w = (-2i64..=2).generate(&mut r);
            assert!((-2..=2).contains(&w));
            let f = (0.5f64..1.5).generate(&mut r);
            assert!((0.5..1.5).contains(&f));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut r = rng();
        let doubled = (1usize..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = doubled.generate(&mut r);
            assert!(v % 2 == 0 && (2..20).contains(&v));
        }
        let dependent = (1usize..4).prop_flat_map(|n| crate::collection::vec(0.0f64..1.0, n..=n));
        for _ in 0..50 {
            let v = dependent.generate(&mut r);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut r = rng();
        let (a, b, c) = (0u64..5, 0.0f64..1.0, 1i32..=1).generate(&mut r);
        assert!(a < 5);
        assert!((0.0..1.0).contains(&b));
        assert_eq!(c, 1);
    }
}
