//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// An inclusive size window for generated collections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let span = (self.hi - self.lo) as u64 + 1;
        self.lo + (rng.next_u64() % span) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_honor_all_three_forms() {
        let mut rng = TestRng::new(7);
        for _ in 0..200 {
            assert_eq!(vec(0.0f64..1.0, 4usize).generate(&mut rng).len(), 4);
            let a = vec(0u32..9, 1..5).generate(&mut rng).len();
            assert!((1..5).contains(&a));
            let b = vec(0u32..9, 2..=3).generate(&mut rng).len();
            assert!((2..=3).contains(&b));
        }
    }

    #[test]
    fn elements_come_from_element_strategy() {
        let mut rng = TestRng::new(8);
        let v = vec(5i32..=5, 100usize).generate(&mut rng);
        assert!(v.iter().all(|&x| x == 5));
    }
}
