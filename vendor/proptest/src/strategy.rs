//! The [`Strategy`] trait and its implementations for ranges and tuples.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of some type.
///
/// Unlike upstream proptest there is no value tree: a strategy is a
/// deterministic function of the RNG state, plus an optional *halving
/// shrinker* — given a failing value, [`shrink`](Strategy::shrink)
/// proposes simpler candidates (range start, halfway point, one step
/// down), and the runner keeps the candidates that still fail until no
/// candidate does. Mapped strategies cannot invert their closures and
/// fall back to the default (no shrinking).
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes simpler candidates for a failing value, most aggressive
    /// first. An empty vector means the value is already minimal (or the
    /// strategy cannot shrink).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds from
    /// it (dependent generation).
    fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        O: Strategy,
        F: Fn(Self::Value) -> O,
    {
        FlatMap { source: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
    type Value = O::Value;
    fn generate(&self, rng: &mut TestRng) -> O::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Halving-shrink candidates for an integer above a lower bound: the
/// bound itself, then a geometric ladder approaching the value
/// (`v − d/2, v − d/4, …, v − 1`). The runner adopts the first failing
/// candidate per round, so wherever the failure boundary lies — even
/// just below `v` — some rung lands past it within `log₂(d)` probes and
/// the next round restarts from a smaller value: convergence is
/// O(log²), never a `−1` linear crawl.
fn shrink_int(lo: i128, v: i128) -> Vec<i128> {
    if v == lo {
        return Vec::new();
    }
    let mut out = vec![lo];
    let mut step = (v - lo) / 2;
    while step > 0 {
        let candidate = v - step;
        if candidate != lo && out.last() != Some(&candidate) {
            out.push(candidate);
        }
        step /= 2;
    }
    out
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int(self.start as i128, *value as i128)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int(*self.start() as i128, *value as i128)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Halving-shrink candidates for a float above a lower bound: the bound,
/// then a geometric ladder approaching the value (see [`shrink_int`];
/// the ladder is capped at 20 rungs, which brings the gap below one
/// millionth of the original distance).
fn shrink_f64(lo: f64, v: f64) -> Vec<f64> {
    // NaN (incomparable) is treated as unshrinkable, like v <= lo.
    if v.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
        return Vec::new();
    }
    let mut out = vec![lo];
    let mut step = (v - lo) / 2.0;
    for _ in 0..20 {
        let candidate = v - step;
        if candidate > lo && candidate < v && out.last() != Some(&candidate) {
            out.push(candidate);
        }
        step /= 2.0;
    }
    out
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
    fn shrink(&self, value: &f64) -> Vec<f64> {
        shrink_f64(self.start, *value)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        lo + rng.unit_f64() * (hi - lo)
    }
    fn shrink(&self, value: &f64) -> Vec<f64> {
        shrink_f64(*self.start(), *value)
    }
}

// Every tuple arity (1–6, matching what `proptest!` accepts) shrinks
// componentwise: one component simplified per candidate, the rest
// cloned. The `proptest!` runner clones generated values anyway, so the
// `Clone` bounds cost nothing in practice. Explicit impls: a macro
// cannot splice "candidate at position i, clones elsewhere" without
// ill-typed branches.
impl<A: Strategy> Strategy for (A,)
where
    A::Value: Clone,
{
    type Value = (A::Value,);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng),)
    }
    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        self.0.shrink(&v.0).into_iter().map(|a| (a,)).collect()
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B)
where
    A::Value: Clone,
    B::Value: Clone,
{
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        for a in self.0.shrink(&v.0) {
            out.push((a, v.1.clone()));
        }
        for b in self.1.shrink(&v.1) {
            out.push((v.0.clone(), b));
        }
        out
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C)
where
    A::Value: Clone,
    B::Value: Clone,
    C::Value: Clone,
{
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        for a in self.0.shrink(&v.0) {
            out.push((a, v.1.clone(), v.2.clone()));
        }
        for b in self.1.shrink(&v.1) {
            out.push((v.0.clone(), b, v.2.clone()));
        }
        for c in self.2.shrink(&v.2) {
            out.push((v.0.clone(), v.1.clone(), c));
        }
        out
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D)
where
    A::Value: Clone,
    B::Value: Clone,
    C::Value: Clone,
    D::Value: Clone,
{
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        for a in self.0.shrink(&v.0) {
            out.push((a, v.1.clone(), v.2.clone(), v.3.clone()));
        }
        for b in self.1.shrink(&v.1) {
            out.push((v.0.clone(), b, v.2.clone(), v.3.clone()));
        }
        for c in self.2.shrink(&v.2) {
            out.push((v.0.clone(), v.1.clone(), c, v.3.clone()));
        }
        for d in self.3.shrink(&v.3) {
            out.push((v.0.clone(), v.1.clone(), v.2.clone(), d));
        }
        out
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy> Strategy for (A, B, C, D, E)
where
    A::Value: Clone,
    B::Value: Clone,
    C::Value: Clone,
    D::Value: Clone,
    E::Value: Clone,
{
    type Value = (A::Value, B::Value, C::Value, D::Value, E::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
            self.4.generate(rng),
        )
    }
    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        for a in self.0.shrink(&v.0) {
            out.push((a, v.1.clone(), v.2.clone(), v.3.clone(), v.4.clone()));
        }
        for b in self.1.shrink(&v.1) {
            out.push((v.0.clone(), b, v.2.clone(), v.3.clone(), v.4.clone()));
        }
        for c in self.2.shrink(&v.2) {
            out.push((v.0.clone(), v.1.clone(), c, v.3.clone(), v.4.clone()));
        }
        for d in self.3.shrink(&v.3) {
            out.push((v.0.clone(), v.1.clone(), v.2.clone(), d, v.4.clone()));
        }
        for e in self.4.shrink(&v.4) {
            out.push((v.0.clone(), v.1.clone(), v.2.clone(), v.3.clone(), e));
        }
        out
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy, G: Strategy> Strategy
    for (A, B, C, D, E, G)
where
    A::Value: Clone,
    B::Value: Clone,
    C::Value: Clone,
    D::Value: Clone,
    E::Value: Clone,
    G::Value: Clone,
{
    type Value = (A::Value, B::Value, C::Value, D::Value, E::Value, G::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
            self.4.generate(rng),
            self.5.generate(rng),
        )
    }
    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        for a in self.0.shrink(&v.0) {
            out.push((
                a,
                v.1.clone(),
                v.2.clone(),
                v.3.clone(),
                v.4.clone(),
                v.5.clone(),
            ));
        }
        for b in self.1.shrink(&v.1) {
            out.push((
                v.0.clone(),
                b,
                v.2.clone(),
                v.3.clone(),
                v.4.clone(),
                v.5.clone(),
            ));
        }
        for c in self.2.shrink(&v.2) {
            out.push((
                v.0.clone(),
                v.1.clone(),
                c,
                v.3.clone(),
                v.4.clone(),
                v.5.clone(),
            ));
        }
        for d in self.3.shrink(&v.3) {
            out.push((
                v.0.clone(),
                v.1.clone(),
                v.2.clone(),
                d,
                v.4.clone(),
                v.5.clone(),
            ));
        }
        for e in self.4.shrink(&v.4) {
            out.push((
                v.0.clone(),
                v.1.clone(),
                v.2.clone(),
                v.3.clone(),
                e,
                v.5.clone(),
            ));
        }
        for g in self.5.shrink(&v.5) {
            out.push((
                v.0.clone(),
                v.1.clone(),
                v.2.clone(),
                v.3.clone(),
                v.4.clone(),
                g,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(42)
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3usize..9).generate(&mut r);
            assert!((3..9).contains(&v));
            let w = (-2i64..=2).generate(&mut r);
            assert!((-2..=2).contains(&w));
            let f = (0.5f64..1.5).generate(&mut r);
            assert!((0.5..1.5).contains(&f));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut r = rng();
        let doubled = (1usize..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = doubled.generate(&mut r);
            assert!(v % 2 == 0 && (2..20).contains(&v));
        }
        let dependent = (1usize..4).prop_flat_map(|n| crate::collection::vec(0.0f64..1.0, n..=n));
        for _ in 0..50 {
            let v = dependent.generate(&mut r);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut r = rng();
        let (a, b, c) = (0u64..5, 0.0f64..1.0, 1i32..=1).generate(&mut r);
        assert!(a < 5);
        assert!((0.0..1.0).contains(&b));
        assert_eq!(c, 1);
    }

    #[test]
    fn int_shrink_ladders_toward_the_value() {
        let s = 10u64..1000;
        assert_eq!(s.shrink(&10), Vec::<u64>::new(), "start is minimal");
        let c = s.shrink(&100);
        // Bound first, then the geometric ladder up to v − 1.
        assert_eq!(c, vec![10, 55, 78, 89, 95, 98, 99]);
        let signed = -5i64..=5;
        assert_eq!(signed.shrink(&-5), Vec::<i64>::new());
        assert_eq!(signed.shrink(&5), vec![-5, 0, 3, 4]);
    }

    #[test]
    fn int_shrink_reaches_boundaries_above_the_midpoint() {
        // A failure boundary just below the value must be reachable in one
        // round (the v − 1 rung), and one far above the midpoint within a
        // handful of rungs — no linear crawl.
        let s = 0u64..1000;
        let c = s.shrink(&950);
        assert_eq!(*c.last().unwrap(), 949);
        assert!(c.iter().any(|&x| (700..950).contains(&x)));
        assert!(c.len() <= 11, "ladder is logarithmic, got {}", c.len());
    }

    #[test]
    fn float_shrink_ladders_toward_the_value() {
        let s = 1.0f64..8.0;
        assert!(s.shrink(&1.0).is_empty());
        let c = s.shrink(&5.0);
        assert_eq!(c[0], 1.0);
        assert_eq!(c[1], 3.0);
        assert_eq!(c[2], 4.0);
        assert!(c.len() <= 21);
        assert!(c.windows(2).all(|w| w[0] < w[1]), "strictly ascending");
    }

    #[test]
    fn tuple_shrink_moves_one_component_at_a_time() {
        let s = (0u64..10, 0u64..10);
        let c = s.shrink(&(4, 6));
        assert!(c.contains(&(0, 6)), "first component to its minimum");
        assert!(c.contains(&(4, 0)), "second component to its minimum");
        assert!(c.iter().all(|&(a, b)| a == 4 || b == 6), "one at a time");
    }

    #[test]
    fn four_tuple_shrink_moves_one_component_at_a_time() {
        let s = (0u64..10, 0u64..10, 0u64..10, 0u64..10);
        let c = s.shrink(&(4, 6, 2, 9));
        assert!(c.contains(&(0, 6, 2, 9)));
        assert!(c.contains(&(4, 6, 2, 0)));
        assert!(c
            .iter()
            .all(|&(a, b, x, y)| [a != 4, b != 6, x != 2, y != 9]
                .iter()
                .filter(|&&moved| moved)
                .count()
                == 1));
    }

    #[test]
    fn mapped_strategies_do_not_shrink() {
        let s = (1usize..100).prop_map(|x| x * 2);
        assert!(s.shrink(&42).is_empty());
    }
}
