//! Householder QR factorization and linear least squares.
//!
//! The curve model zoo fits multi-parameter models whose Gauss–Newton /
//! Levenberg–Marquardt steps need an overdetermined solve `min ‖J·x − r‖₂`.
//! Normal equations (`JᵀJ x = Jᵀr`) square the condition number; Householder
//! QR solves the same problem stably and is still tiny for our shapes
//! (tens of rows, 2–4 columns).
//!
//! The factorization is organized as *row sweeps* over the row-major
//! buffer (matvec_t-style dot accumulation plus a rank-1 update), the same
//! access pattern the kernel layer uses — a column-walking formulation
//! would stride by `cols` on every element. Per-column accumulation still
//! runs in ascending row order, so the restructuring is bit-preserving.

use crate::matrix::Matrix;
use crate::solve::SolveError;

/// Compact Householder QR factorization of a `m × n` matrix with `m ≥ n`.
///
/// Stores `R` in the upper triangle and the Householder vectors below the
/// diagonal (LAPACK-style), with the scalar `tau` factors kept separately.
#[derive(Debug, Clone)]
pub struct QrFactorization {
    qr: Matrix,
    tau: Vec<f64>,
}

impl QrFactorization {
    /// Factors `a` (consumed). Requires `rows ≥ cols` and a non-empty shape.
    ///
    /// # Errors
    /// Returns [`SolveError::Singular`] when a diagonal of `R` collapses to
    /// (numerical) zero, i.e. the columns are linearly dependent.
    pub fn new(mut a: Matrix) -> Result<Self, SolveError> {
        let m = a.rows();
        let n = a.cols();
        assert!(m >= n && n > 0, "QR needs rows >= cols > 0, got {m}x{n}");
        let mut tau = vec![0.0; n];

        // Scale for the relative rank test: the largest column norm,
        // accumulated in one row-major sweep (per-column order is still
        // ascending rows, as in the column-walking formulation).
        let mut norms2 = vec![0.0; n];
        for i in 0..m {
            for (s, &x) in norms2.iter_mut().zip(a.row(i)) {
                *s += x * x;
            }
        }
        let scale = norms2.iter().map(|s| s.sqrt()).fold(0.0, f64::max);

        // Reusable buffer for the reflector dots against trailing columns.
        let mut dots = vec![0.0; n];
        for k in 0..n {
            // Norm of the k-th column below (and including) the diagonal.
            let mut norm2 = 0.0;
            for i in k..m {
                norm2 += a[(i, k)] * a[(i, k)];
            }
            let norm = norm2.sqrt();
            if norm <= scale * 1e-12 {
                return Err(SolveError::Singular { pivot: k });
            }
            let alpha = if a[(k, k)] >= 0.0 { -norm } else { norm };
            // v = x - alpha * e1, normalized so v[0] = 1.
            let v0 = a[(k, k)] - alpha;
            tau[k] = -v0 / alpha; // = 2 / (vᵀv) * v0² scaling under v0-normalization
            for i in k + 1..m {
                a[(i, k)] /= v0;
            }
            a[(k, k)] = alpha;

            // Apply the reflector to the trailing columns in two row
            // sweeps: dots[j] = Σ_i v_i·a[i][j] (matvec_t shape), then the
            // rank-1 update a[i][j] -= (tau·dots[j])·v_i.
            let width = n - (k + 1);
            if width == 0 {
                continue;
            }
            let t = &mut dots[k + 1..n];
            t.copy_from_slice(&a.row(k)[k + 1..n]);
            for i in k + 1..m {
                let vik = a[(i, k)];
                for (d, &x) in t.iter_mut().zip(&a.row(i)[k + 1..n]) {
                    *d += vik * x;
                }
            }
            for d in t.iter_mut() {
                *d *= tau[k];
            }
            let t = &dots[k + 1..n];
            for (o, &tv) in a.row_mut(k)[k + 1..n].iter_mut().zip(t) {
                *o -= tv;
            }
            for i in k + 1..m {
                let vik = a[(i, k)];
                for (o, &tv) in a.row_mut(i)[k + 1..n].iter_mut().zip(t) {
                    *o -= tv * vik;
                }
            }
        }
        Ok(QrFactorization { qr: a, tau })
    }

    /// Number of rows of the factored matrix.
    pub fn rows(&self) -> usize {
        self.qr.rows()
    }

    /// Number of columns of the factored matrix.
    pub fn cols(&self) -> usize {
        self.qr.cols()
    }

    /// Applies `Qᵀ` to `b` in place (`b` keeps length `m`).
    fn apply_qt(&self, b: &mut [f64]) {
        let m = self.rows();
        let n = self.cols();
        assert_eq!(b.len(), m, "rhs length mismatch");
        for k in 0..n {
            let mut dot = b[k];
            for i in k + 1..m {
                dot += self.qr[(i, k)] * b[i];
            }
            let t = self.tau[k] * dot;
            b[k] -= t;
            for i in k + 1..m {
                b[i] -= t * self.qr[(i, k)];
            }
        }
    }

    /// Solves the least-squares problem `min ‖A·x − b‖₂`.
    ///
    /// # Errors
    /// Returns [`SolveError::Singular`] for a rank-deficient `R`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SolveError> {
        let n = self.cols();
        let mut rhs = b.to_vec();
        self.apply_qt(&mut rhs);
        // Back-substitute R x = (Qᵀ b)[..n].
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = rhs[i];
            for j in i + 1..n {
                s -= self.qr[(i, j)] * x[j];
            }
            let d = self.qr[(i, i)];
            if d.abs() < 1e-300 {
                return Err(SolveError::Singular { pivot: i });
            }
            x[i] = s / d;
        }
        Ok(x)
    }

    /// The `R` factor (upper-triangular `n × n`).
    pub fn r(&self) -> Matrix {
        let n = self.cols();
        Matrix::from_fn(n, n, |r, c| if c >= r { self.qr[(r, c)] } else { 0.0 })
    }
}

/// One-call linear least squares `argmin_x ‖A·x − b‖₂` via Householder QR.
///
/// # Errors
/// Returns [`SolveError::Singular`] for rank-deficient `A`.
///
/// # Panics
/// Panics when `b.len() != A.rows()` or `A.rows() < A.cols()`.
pub fn least_squares(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, SolveError> {
    QrFactorization::new(a.clone())?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(xs: &[f64], ys: &[f64], tol: f64) {
        assert_eq!(xs.len(), ys.len());
        for (x, y) in xs.iter().zip(ys) {
            assert!((x - y).abs() < tol, "{xs:?} vs {ys:?}");
        }
    }

    #[test]
    fn solves_square_system_exactly() {
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        let x = least_squares(&a, &[5.0, 10.0]).unwrap();
        assert_close(&x, &[1.0, 3.0], 1e-12);
    }

    #[test]
    fn overdetermined_consistent_system_recovers_solution() {
        // y = 2 + 3 t sampled at 5 points, design [1, t].
        let ts = [0.0, 1.0, 2.0, 3.0, 4.0];
        let a = Matrix::from_fn(5, 2, |r, c| if c == 0 { 1.0 } else { ts[r] });
        let b: Vec<f64> = ts.iter().map(|t| 2.0 + 3.0 * t).collect();
        let x = least_squares(&a, &b).unwrap();
        assert_close(&x, &[2.0, 3.0], 1e-10);
    }

    #[test]
    fn least_squares_minimizes_residual() {
        // Inconsistent system: the solution must satisfy the normal equations.
        let a = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let b = [1.0, 1.0, 0.0];
        let x = least_squares(&a, &b).unwrap();
        // Normal equations: AᵀA x = Aᵀ b → [[2,1],[1,2]] x = [1,1] → x = [1/3, 1/3].
        assert_close(&x, &[1.0 / 3.0, 1.0 / 3.0], 1e-12);
    }

    #[test]
    fn r_factor_is_upper_triangular_with_correct_gram() {
        let a = Matrix::from_fn(6, 3, |r, c| ((r * 3 + c) as f64 * 0.37).sin() + 0.1);
        let f = QrFactorization::new(a.clone()).unwrap();
        let r = f.r();
        for i in 0..3 {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
        // RᵀR must equal AᵀA (Q is orthogonal).
        let rtr = r.transpose().matmul(&r);
        let ata = a.transpose().matmul(&a);
        for i in 0..3 {
            for j in 0..3 {
                assert!((rtr[(i, j)] - ata[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn singular_matrix_is_rejected() {
        // Second column is 2x the first.
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 2.0, 4.0, 3.0, 6.0]);
        assert!(matches!(
            least_squares(&a, &[1.0, 2.0, 3.0]),
            Err(SolveError::Singular { .. })
        ));
    }

    #[test]
    fn zero_column_is_rejected() {
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 0.0, 2.0]);
        assert!(QrFactorization::new(a).is_err());
    }

    #[test]
    fn matches_gaussian_solver_on_random_square_systems() {
        for seed in 0..5u64 {
            let mut rng = crate::resample::SplitMix64::new(seed + 1);
            let a = Matrix::from_fn(4, 4, |_, _| rng.next_f64() * 2.0 - 1.0);
            let b: Vec<f64> = (0..4).map(|i| (i as f64 - 1.5) * 0.8).collect();
            let qr = least_squares(&a, &b).unwrap();
            let ge = crate::solve::gaussian_solve(a, &b).unwrap();
            assert_close(&qr, &ge, 1e-8);
        }
    }
}
