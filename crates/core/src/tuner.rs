//! The Slice Tuner engine (Figure 4): learning-curve estimation plus the
//! selective data acquisition optimizer, wired to an acquisition source.

use crate::acquire::AcquisitionSource;
use crate::cache::{CurveCache, CurveKey};
use crate::metrics::EvalReport;
use crate::strategy::{uniform_allocation, water_filling_allocation, Strategy, TSchedule};
use st_curve::{
    CurveEstimator, EstimationMode, FitError, MeasureRequest, PowerLaw, SliceLossMeasurement,
};
use st_data::dataset::imbalance_ratio_of;
use st_data::{seeded_rng, split_seed, SliceId, SlicedDataset};
use st_models::{train_on_examples, Mlp, ModelSpec, TrainConfig};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Everything configurable about a Slice Tuner run.
#[derive(Debug, Clone)]
pub struct TunerConfig {
    /// Shared-model architecture.
    pub spec: ModelSpec,
    /// Training hyperparameters (fixed once per dataset, like the paper).
    pub train: TrainConfig,
    /// Subset fractions for curve estimation (the paper's `K` sizes).
    pub fractions: Vec<f64>,
    /// Curves averaged per slice (the paper uses 5).
    pub repeats: usize,
    /// Amortized (Section 4.2) or exhaustive (Section 4.1) estimation.
    pub mode: EstimationMode,
    /// Convex-solver options.
    pub solver: st_optim::SolverOptions,
    /// Fairness weight λ (paper default 1).
    pub lambda: f64,
    /// Minimum slice size `L` enforced by Algorithm 1.
    pub min_slice_size: usize,
    /// Safety cap on Algorithm 1 iterations.
    pub max_iterations: usize,
    /// Master seed; all internal randomness derives from it.
    pub seed: u64,
    /// Estimator worker threads (0 = all cores).
    pub threads: usize,
    /// Optional shared memo table for curve estimations. Keys include the
    /// dataset's content fingerprint and the derived estimator seed, so a
    /// hit is bit-identical to recomputation; share one cache across every
    /// strategy/trial of an experiment (see [`crate::cache`]).
    pub cache: Option<std::sync::Arc<CurveCache>>,
    /// Waives the bit-determinism contract for the compute kernel: the
    /// trial runner refuses to run under a non-deterministic backend
    /// (`ST_KERNEL=fast`) unless this is set (the CLI's
    /// `--allow-nondeterministic-kernel`). Off by default — `fast` trades
    /// reproducible bits for speed, and every determinism regression gate
    /// in the workspace assumes bit-identical kernels.
    pub allow_nondeterministic_kernel: bool,
    /// Forces the estimator back onto the per-call gather path: clone the
    /// subset examples and rebuild every slice's validation matrix on
    /// every `measure` call, instead of riding the dataset's cached dense
    /// snapshot and row-id subsets. Bit-identical either way (the data
    /// plane contract); exists as the baseline for the `pipeline` bench's
    /// data-plane gate and regression tests. Off by default.
    pub per_call_gather: bool,
    /// Incremental re-estimation across acquisition rounds: the working
    /// dataset switches to append-only snapshots, the iterative loop tracks
    /// a per-slice dirty set, and (under the exhaustive schedule) each
    /// round re-measures only slices whose training data changed since the
    /// last estimation, reusing the previous round's estimates for the
    /// rest. The estimator seed is pinned across rounds in this mode, so
    /// skipping a clean slice is a pure memo — re-measuring it would
    /// reproduce the cached bits exactly. Defaults to `ST_INCREMENTAL=1`
    /// in the environment, else off. Incremental estimations bypass
    /// [`TunerConfig::cache`] (their results are history-dependent; see
    /// [`crate::cache`]).
    pub incremental: bool,
    /// Warm-start re-measurements from the model the same measurement key
    /// trained last round instead of a fresh He initialization. Opt-in and
    /// off by default because warm-starting reorders the math: the skipped
    /// init draws shift the RNG stream, so warm results are
    /// tolerance-comparable to cold ones, never bit-identical —
    /// from-scratch training stays the bit-identity baseline (the same
    /// posture as [`TunerConfig::per_call_gather`]). Only consulted when
    /// [`TunerConfig::incremental`] is set and the dense data plane is in
    /// use.
    pub warm_start: bool,
    /// Keeps every incremental-mode semantic (pinned estimator seed,
    /// accumulator-seeded fits, append-only snapshots, optional
    /// warm-start) but re-measures **every** slice every round instead of
    /// only the dirty ones. This is the from-scratch cost baseline the
    /// `pipeline` bench's incremental gate compares against: identical
    /// math, none of the skipping. Off by default.
    pub incremental_refit_all: bool,
    /// Batched estimation plane: one estimation round's same-shape subset
    /// trainings are grouped ([`st_curve::BatchedTrainPlan`]) and run in
    /// lockstep through the batched GEMM family
    /// (`st_models::train_on_rows_batched`), and the trained group is
    /// evaluated through one stacked-weight product per validation matrix
    /// (`st_models::MultiEval`) instead of one narrow product per model.
    /// Bit-identical per request to the sequential plane — batching is an
    /// execution strategy, not a different schedule — which the `pipeline`
    /// bench's `batched` gate asserts. Engaged only on the dense data
    /// plane's full schedule (the per-call gather baseline, partial
    /// incremental re-estimation, and warm-started rounds keep the
    /// sequential path). Defaults to on; `ST_BATCH=0` in the environment
    /// opts default-constructed configs out (the CI baseline leg).
    pub batched_plane: bool,
    /// Panic-isolation retries for estimation measurements and trial
    /// workers (CLI `--retries`, default 2). Retries are **bit-identical**
    /// re-executions — every measurement is a pure function of its
    /// seed-pinned request — so a transient fault recovers exactly; a
    /// persistent one exhausts the retries and the affected slice is
    /// quarantined (see [`TuningWarning`]) instead of aborting the run.
    pub max_retries: usize,
    /// Checkpoint path: iterative runs serialize their round state here
    /// after every acquisition round (see [`crate::checkpoint`]). `None`
    /// disables checkpointing. Multi-trial runs suffix the path with
    /// `.trial<t>` so trials never clobber each other's files.
    pub checkpoint: Option<String>,
    /// Resume from [`TunerConfig::checkpoint`] when that file exists (a
    /// missing file is simply a fresh run). The resumed run replays the
    /// recorded acquisition rounds — consuming the identical source RNG
    /// stream — and continues bit-identically to an uninterrupted run.
    pub resume: bool,
    /// Stops the iterative loop once this many rounds have completed: the
    /// test harness's "kill at round k" crash simulation. The checkpoint
    /// for the completed rounds is on disk; a resumed run continues from
    /// it exactly where the "crash" happened.
    pub halt_after_rounds: Option<usize>,
    /// Disables the fault-tolerance layer's guards (the trainer's finite
    /// scans, the estimator's and executor's `catch_unwind` isolation) —
    /// the fault-free cost baseline the pipeline bench's `guards_overhead`
    /// gate compares against. Guards only *read*, so guarded and unguarded
    /// runs are bit-identical; this knob exists to price them.
    pub unguarded: bool,
    /// Automated drift detection (see [`crate::drift`]): every iterative
    /// round, each re-measured slice's observed full-size loss is scored
    /// against the slice's previous fitted curve through a one-sided
    /// log-residual CUSUM; crossing [`TunerConfig::drift_threshold`] flags
    /// the slice ([`TuningWarning::DriftDetected`]) and starts targeted
    /// recovery. Off by default — the stationary path is untouched, bit
    /// for bit.
    pub drift_detection: bool,
    /// CUSUM score at which a slice is flagged as drifting. The score
    /// accumulates log-loss residuals, so a threshold of `t` roughly means
    /// "the slice's measured loss has run `e^t`× above its curve, net of
    /// slack".
    pub drift_threshold: f64,
    /// Per-observation residual allowance subtracted inside the CUSUM —
    /// ordinary measurement noise drains instead of accumulating.
    pub drift_slack: f64,
    /// Bounded staleness for incremental re-estimation: once the examples
    /// acquired for *other* slices since a slice's last measurement exceed
    /// this bound, the slice is force-re-measured even though its own data
    /// never changed (its curve's allocation context has). `usize::MAX`
    /// (the default) keeps the documented unbounded-staleness memo
    /// semantics.
    pub max_staleness: usize,
    /// Drift recoveries (invalidate + fresh-seed re-measure) a slice may
    /// consume before it is treated as persistently drifting and
    /// quarantined: excluded from further acquisition and flagged via
    /// [`TuningWarning::EstimationQuarantined`].
    pub max_drift_resets: usize,
}

/// `ST_INCREMENTAL=1` opts every default-constructed [`TunerConfig`] into
/// incremental re-estimation (the CI matrix's incremental leg).
fn incremental_env_default() -> bool {
    static FLAG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FLAG.get_or_init(|| std::env::var("ST_INCREMENTAL").is_ok_and(|v| v == "1"))
}

/// The list of valid `ST_BATCH` values, for the unknown-value warning and
/// usage strings — the `st_linalg::kernel_names()` of the batched-plane
/// toggle.
pub fn batch_plane_names() -> &'static str {
    "0 | 1"
}

/// `ST_BATCH=0` opts every default-constructed [`TunerConfig`] out of the
/// batched estimation plane, pinning the sequential bit-identity baseline
/// (the CI matrix's `ST_BATCH=0` leg). `ST_BATCH=1` and an unset variable
/// keep the default. A silent typo here would let CI green-light a plane it
/// never ran, so unknown values warn like unknown `ST_KERNEL` /
/// `ST_SIMD_FORCE` values do, listing the accepted settings.
fn batched_env_default() -> bool {
    static FLAG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FLAG.get_or_init(|| match std::env::var("ST_BATCH") {
        Ok(v) if v == "0" => false,
        Ok(v) if v == "1" => true,
        Ok(other) => {
            eprintln!(
                "warning: unknown ST_BATCH '{other}', using the batched plane (valid values: {})",
                batch_plane_names()
            );
            true
        }
        Err(_) => true,
    })
}

impl TunerConfig {
    /// Baseline configuration around a model spec.
    pub fn new(spec: ModelSpec) -> Self {
        TunerConfig {
            spec,
            train: TrainConfig::default(),
            fractions: vec![0.2, 0.4, 0.6, 0.8, 1.0],
            repeats: 2,
            mode: EstimationMode::Amortized,
            solver: st_optim::SolverOptions::default(),
            lambda: 1.0,
            min_slice_size: 20,
            max_iterations: 20,
            seed: 0,
            threads: 0,
            cache: None,
            allow_nondeterministic_kernel: false,
            per_call_gather: false,
            incremental: incremental_env_default(),
            warm_start: false,
            incremental_refit_all: false,
            batched_plane: batched_env_default(),
            max_retries: 2,
            checkpoint: None,
            resume: false,
            halt_after_rounds: None,
            unguarded: false,
            drift_detection: false,
            drift_threshold: 0.6,
            drift_slack: 0.1,
            max_staleness: usize::MAX,
            max_drift_resets: 3,
        }
    }

    /// The paper's estimation setting: `K = 10` fractions, 5 curves.
    pub fn paper_estimation(mut self) -> Self {
        self.fractions = (1..=10).map(|i| i as f64 / 10.0).collect();
        self.repeats = 5;
        self
    }

    /// Sets the fairness weight λ.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the estimation mode.
    pub fn with_mode(mut self, mode: EstimationMode) -> Self {
        self.mode = mode;
        self
    }

    /// Attaches a shared curve-estimation cache.
    pub fn with_cache(mut self, cache: std::sync::Arc<CurveCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Opts this run into non-deterministic compute kernels (`fast`).
    pub fn allowing_nondeterministic_kernel(mut self) -> Self {
        self.allow_nondeterministic_kernel = true;
        self
    }

    /// Forces the estimator onto the legacy per-call gather path (see
    /// [`TunerConfig::per_call_gather`]).
    pub fn with_per_call_gather(mut self) -> Self {
        self.per_call_gather = true;
        self
    }

    /// Opts into incremental re-estimation across acquisition rounds (see
    /// [`TunerConfig::incremental`]).
    pub fn with_incremental(mut self) -> Self {
        self.incremental = true;
        self
    }

    /// Opts incremental re-measurements into warm-started training (see
    /// [`TunerConfig::warm_start`]).
    pub fn with_warm_start(mut self) -> Self {
        self.warm_start = true;
        self
    }

    /// Disables dirty-slice skipping while keeping every other
    /// incremental-mode semantic (see
    /// [`TunerConfig::incremental_refit_all`]).
    pub fn with_incremental_refit_all(mut self) -> Self {
        self.incremental_refit_all = true;
        self
    }

    /// Forces the estimator onto the sequential (one training per
    /// `measure` call) plane, the bit-identity baseline the batched plane
    /// is gated against (see [`TunerConfig::batched_plane`]).
    pub fn with_sequential_plane(mut self) -> Self {
        self.batched_plane = false;
        self
    }

    /// Sets the panic-isolation retry budget (see
    /// [`TunerConfig::max_retries`]).
    pub fn with_max_retries(mut self, retries: usize) -> Self {
        self.max_retries = retries;
        self
    }

    /// Enables round checkpointing to `path` (see
    /// [`TunerConfig::checkpoint`]).
    pub fn with_checkpoint(mut self, path: impl Into<String>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// Resumes from the checkpoint when it exists (see
    /// [`TunerConfig::resume`]).
    pub fn with_resume(mut self) -> Self {
        self.resume = true;
        self
    }

    /// Halts the iterative loop after `rounds` completed rounds — the
    /// crash simulation (see [`TunerConfig::halt_after_rounds`]).
    pub fn with_halt_after_rounds(mut self, rounds: usize) -> Self {
        self.halt_after_rounds = Some(rounds);
        self
    }

    /// Disables numeric guards and panic isolation — the bench's
    /// fault-free cost baseline (see [`TunerConfig::unguarded`]).
    pub fn without_guards(mut self) -> Self {
        self.unguarded = true;
        self
    }

    /// Enables drift detection at the given CUSUM threshold (see
    /// [`TunerConfig::drift_detection`]).
    pub fn with_drift_detection(mut self, threshold: f64) -> Self {
        self.drift_detection = true;
        self.drift_threshold = threshold;
        self
    }

    /// Bounds incremental staleness to `bound` foreign examples (see
    /// [`TunerConfig::max_staleness`]).
    pub fn with_max_staleness(mut self, bound: usize) -> Self {
        self.max_staleness = bound;
        self
    }

    /// Sets the drift-recovery budget before quarantine (see
    /// [`TunerConfig::max_drift_resets`]).
    pub fn with_max_drift_resets(mut self, resets: usize) -> Self {
        self.max_drift_resets = resets;
        self
    }
}

/// A structured, non-fatal problem a run survived; surfaced in
/// [`RunResult::warnings`] so reports can show *what degraded* instead of
/// the run aborting.
#[derive(Debug, Clone, PartialEq)]
pub enum TuningWarning {
    /// An estimation measurement exhausted its retries. The affected
    /// slice's curve fell back to its last good fit (incremental mode) or
    /// to the cross-slice fallback of [`resolve_fallbacks`] — allocation
    /// continued without this round's evidence for that slice.
    EstimationQuarantined {
        /// The targeted slice (`None` = a joint amortized measurement).
        slice: Option<usize>,
        /// The estimation round (the tuner's stream number; round `r`
        /// matches `ST_FAULT=nan_loss@slice<S>:round<r>`).
        round: u64,
        /// Attempts spent before quarantining.
        attempts: usize,
        /// The captured panic message.
        cause: String,
    },
    /// The drift detector's residual CUSUM for a slice crossed
    /// [`TunerConfig::drift_threshold`]: the slice's measured losses have
    /// run persistently above its previously fitted curve. The tuner
    /// responded with a targeted recovery (invalidate + fresh-seed
    /// re-measure); see [`crate::drift`].
    DriftDetected {
        /// The drifting slice.
        slice: usize,
        /// The iterative round whose measurement crossed the threshold
        /// (same numbering as estimation rounds: `r` matches
        /// `ST_DRIFT=...@slice<S>:round<r'>` events with `r' <= r`).
        round: u64,
        /// The CUSUM score at detection.
        score: f64,
    },
}

impl std::fmt::Display for TuningWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuningWarning::EstimationQuarantined {
                slice,
                round,
                attempts,
                cause,
            } => match slice {
                Some(s) => write!(
                    f,
                    "slice {s} quarantined in estimation round {round} after {attempts} \
                     attempt(s): {cause}"
                ),
                None => write!(
                    f,
                    "joint measurement dropped in estimation round {round} after {attempts} \
                     attempt(s): {cause}"
                ),
            },
            TuningWarning::DriftDetected {
                slice,
                round,
                score,
            } => write!(
                f,
                "drift detected on slice {slice} in round {round} (score {score:.3})"
            ),
        }
    }
}

/// Outcome of one strategy run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Evaluation before any acquisition ("Original" in the tables).
    pub original: EvalReport,
    /// Evaluation after acquisition and retraining.
    pub report: EvalReport,
    /// Examples acquired per slice.
    pub acquired: Vec<usize>,
    /// Iterations performed (1 for One-shot and the baselines).
    pub iterations: usize,
    /// Budget actually spent.
    pub spent: f64,
    /// Model trainings performed (estimation + evaluation), for Table 8.
    pub trainings: usize,
    /// Non-fatal problems the run survived (quarantined slices, dropped
    /// measurements). Empty on a healthy run. Excluded — like `trainings`
    /// — from [`AggregateResult::bits_identical_to`]'s result-bit
    /// comparison: warnings describe the execution, not the outcome.
    ///
    /// [`AggregateResult::bits_identical_to`]: crate::runner::AggregateResult::bits_identical_to
    pub warnings: Vec<TuningWarning>,
}

/// The Slice Tuner engine bound to a working dataset and a source.
pub struct SliceTuner<'a, S: AcquisitionSource> {
    ds: SlicedDataset,
    source: &'a mut S,
    config: TunerConfig,
    trainings: AtomicUsize,
    warnings: parking_lot::Mutex<Vec<TuningWarning>>,
}

impl<'a, S: AcquisitionSource> SliceTuner<'a, S> {
    /// Binds the engine to a dataset snapshot and an acquisition source.
    ///
    /// Every tuner path — the CLI's direct commands, the sequential trial
    /// runner, and each worker of the parallel executor — funnels through
    /// here, so this is where the estimator fan-out is reconciled with the
    /// compute kernel: under the `sharded` kernel each dense product
    /// already fans out to `kernel_threads()` workers, and running the
    /// estimator batches multi-threaded on top would oversubscribe
    /// (`threads × kernel_threads` runnable threads). The kernel layer
    /// keeps the whole budget in that case; estimator threading is
    /// bit-invariant, so results are unchanged.
    pub fn new(mut ds: SlicedDataset, source: &'a mut S, mut config: TunerConfig) -> Self {
        if st_linalg::kernel_kind() == st_linalg::KernelKind::Sharded {
            config.threads = 1;
        }
        if config.incremental {
            // Acquired rows append below the existing train matrix instead
            // of forcing a full snapshot re-stack each round.
            ds.enable_incremental_snapshot();
        }
        if config.unguarded {
            // The bench's fault-free baseline drops the trainer's finite
            // scans along with the estimator's catch_unwind isolation.
            config.train.guards = false;
        }
        SliceTuner {
            ds,
            source,
            config,
            trainings: AtomicUsize::new(0),
            warnings: parking_lot::Mutex::new(Vec::new()),
        }
    }

    /// The current working dataset.
    pub fn dataset(&self) -> &SlicedDataset {
        &self.ds
    }

    /// The configuration in effect.
    pub fn config(&self) -> &TunerConfig {
        &self.config
    }

    /// Model trainings performed so far.
    pub fn trainings(&self) -> usize {
        self.trainings.load(Ordering::Relaxed)
    }

    /// Trains the shared model on all current training data and evaluates it.
    ///
    /// Rides the dataset's dense snapshot: the stacked training matrix is
    /// reused instead of cloning every example into a fresh buffer, and
    /// the evaluation reuses the cached per-slice validation matrices.
    /// Bit-identical to the per-call gather baseline
    /// ([`TunerConfig::per_call_gather`]), which clones and re-gathers
    /// like PR 4 did.
    pub fn train_and_eval(&self, stream: u64) -> (Mlp, EvalReport) {
        let cfg = self
            .config
            .train
            .with_seed(split_seed(self.config.seed, 0xE0A1 ^ stream));
        if self.config.per_call_gather {
            let model = train_on_examples(
                &self.ds.all_train(),
                self.ds.feature_dim,
                self.ds.num_classes,
                &self.config.spec,
                &cfg,
            );
            self.trainings.fetch_add(1, Ordering::Relaxed);
            let report = EvalReport::evaluate_per_call(&model, &self.ds);
            return (model, report);
        }
        let dense = self.ds.matrices();
        // The stacked matrix holds all_train()'s rows in the same order,
        // so training on it is bit-identical to the cloning path (an
        // empty dataset falls through `train`'s n == 0 early return with
        // the same freshly-initialized network). An appended-layout
        // snapshot (incremental mode) is no longer slice-major, so the
        // minibatch gathers go through the canonical row order instead —
        // the gathered bytes, and therefore the training bits, still match
        // the re-stacked matrix exactly (the data-plane gather contract).
        let model = if dense.is_slice_major() {
            st_models::train(
                &dense.train_x,
                &dense.train_y,
                self.ds.feature_dim,
                self.ds.num_classes,
                &self.config.spec,
                &cfg,
            )
        } else {
            st_models::train_on_rows(
                &dense.train_x,
                &dense.train_y,
                &dense.canonical_row_order(),
                self.ds.feature_dim,
                self.ds.num_classes,
                &self.config.spec,
                &cfg,
            )
        };
        self.trainings.fetch_add(1, Ordering::Relaxed);
        let report = EvalReport::evaluate(&model, &self.ds);
        (model, report)
    }

    /// Estimates one power-law learning curve per slice (Section 4).
    ///
    /// `stream` decorrelates successive updates (Algorithm 1 re-estimates
    /// every iteration). Slices whose fit fails — e.g. a saturated slice
    /// with degenerate losses — fall back to the log-mean of the successful
    /// fits (relative comparisons still work, which is all Slice Tuner
    /// needs), or to a mild default curve when every fit fails.
    pub fn estimate_curves(&self, stream: u64) -> Vec<PowerLaw> {
        let fits = self
            .estimate_curves_detailed(stream)
            .into_iter()
            .map(|e| e.fit)
            .collect();
        resolve_fallbacks(fits)
    }

    /// [`estimate_curves`](Self::estimate_curves) keeping the evidence: raw
    /// measured points and per-repeat fits per slice, for reliability
    /// diagnostics (Section 6.3.4's "are my curves trustworthy?" question)
    /// — see [`st_curve::SliceEstimate::bands`].
    pub fn estimate_curves_detailed(&self, stream: u64) -> Vec<st_curve::SliceEstimate> {
        let estimator = CurveEstimator {
            fractions: self.config.fractions.clone(),
            repeats: self.config.repeats,
            mode: self.config.mode,
            seed: split_seed(self.config.seed, 0xC04E ^ stream),
            threads: self.config.threads,
            retries: self.config.max_retries,
            guards: !self.config.unguarded,
        };
        match &self.config.cache {
            // An active fault plan makes results round-dependent (the plan
            // targets specific rounds), so memoizing them under standard
            // keys would leak injected faults across rounds and runs.
            Some(cache) if !st_linalg::fault::active() => {
                let key = CurveKey::new(
                    self.ds.fingerprint(),
                    crate::cache::model_fingerprint(&self.config.spec, &self.config.train),
                    estimator.seed,
                    &estimator.fractions,
                    estimator.repeats,
                    estimator.mode,
                );
                let cached = cache.get_or_compute(key, || self.run_estimator(&estimator, stream));
                cached.as_ref().clone()
            }
            _ => self.run_estimator(&estimator, stream),
        }
    }

    /// Incremental re-estimation (the [`TunerConfig::incremental`] mode):
    /// under the exhaustive schedule, re-measures only the slices `state`
    /// flags dirty, reusing the previous round's estimates for the rest,
    /// then resets the dirty set.
    ///
    /// The exhaustive estimator seed is **pinned across rounds** (to the
    /// first iterative round's derivation), so a clean slice's cached
    /// estimate is bit-identical to what re-measuring it *on its own
    /// data* would produce. The reuse is still an approximation in one
    /// documented sense: an exhaustive measurement trains on the target
    /// slice's subset plus every *other* slice whole, so when other
    /// slices grow, a clean slice's true curve drifts (cross-slice
    /// influence, Section 5.2). That staleness has the same character as
    /// Algorithm 1's between-round staleness — curves are always acted on
    /// one acquisition behind the data — which is why incremental mode is
    /// opt-in. Every exhaustive-mode fit goes through the partial
    /// schedule's accumulator-seeded path (including the first, all-dirty
    /// round), so fit bits never depend on *when* a slice was last
    /// measured.
    ///
    /// Under [`EstimationMode::Amortized`] one joint training measures
    /// every slice — nothing can be skipped — so this delegates to the
    /// plain full schedule at the caller's `stream`, making amortized
    /// incremental runs bit-identical to from-scratch ones (only the
    /// append-only data plane differs, and that is gather-contract
    /// bit-identical).
    ///
    /// Exhaustive results are history-dependent (they splice in estimates
    /// from earlier rounds), so this path never consults
    /// [`TunerConfig::cache`] — see [`crate::cache`] for why such results
    /// must not be memoized under standard keys.
    pub fn estimate_curves_incremental(
        &self,
        stream: u64,
        state: &mut crate::incremental::IncrementalState,
    ) -> Vec<st_curve::SliceEstimate> {
        let n = self.ds.num_slices();
        assert_eq!(state.dirty.len(), n, "state sized for a different dataset");
        if self.config.mode == EstimationMode::Amortized {
            for d in &mut state.dirty {
                *d = false;
            }
            return self.estimate_curves_detailed(stream);
        }
        let estimator = CurveEstimator {
            fractions: self.config.fractions.clone(),
            repeats: self.config.repeats,
            mode: self.config.mode,
            // Pinned: request seeds depend only on schedule position, so an
            // unchanged slice's re-measurement reproduces its cached bits.
            // Round-to-round decorrelation comes from the data changing.
            seed: split_seed(self.config.seed, 0xC04E ^ 1),
            threads: self.config.threads,
            retries: self.config.max_retries,
            guards: !self.config.unguarded,
        };
        let warm = self.config.warm_start.then_some(&state.warm);
        let estimates: Vec<st_curve::SliceEstimate> = match &state.prev {
            Some(prev) => {
                let targets: Vec<bool> = if self.config.incremental_refit_all {
                    vec![true; n]
                } else {
                    state.dirty.clone()
                };
                let (partial, errors) = self.run_estimator_with(
                    &estimator,
                    Some(&targets),
                    warm,
                    Some(&state.seed_bumps),
                    stream,
                );
                // A quarantined slice (retries exhausted) keeps its last
                // good fit: the previous round's estimate is stale but
                // finite evidence, strictly better than no curve. Slices
                // whose fit merely failed numerically (no panic) keep the
                // normal resolve_fallbacks treatment downstream.
                let quarantined: std::collections::HashSet<usize> =
                    errors.iter().filter_map(|e| e.target_slice).collect();
                self.record_quarantines(errors, stream);
                partial
                    .into_iter()
                    .zip(prev.iter())
                    .enumerate()
                    .map(|(s, (new, old))| match new {
                        Some(est) if quarantined.contains(&s) && est.fit.is_err() => old.clone(),
                        Some(est) => est,
                        None => old.clone(),
                    })
                    .collect()
            }
            None => {
                let (full, errors) = self.run_estimator_with(
                    &estimator,
                    Some(&vec![true; n]),
                    warm,
                    Some(&state.seed_bumps),
                    stream,
                );
                self.record_quarantines(errors, stream);
                full.into_iter()
                    .map(|e| e.expect("all slices targeted"))
                    .collect()
            }
        };
        state.prev = Some(estimates.clone());
        for d in &mut state.dirty {
            *d = false;
        }
        estimates
    }

    /// Executes one full (uncached) estimation with the given schedule.
    ///
    /// The hot path is matrix-native: the dataset's dense snapshot
    /// ([`SlicedDataset::matrices`]) is fetched **once** per estimation —
    /// per-slice validation matrices, label vectors, and the stacked
    /// training matrix are built at most once per acquisition step instead
    /// of once per `measure` call — subsets are sampled as row ids (no
    /// `Example` clones), training gathers minibatches straight from the
    /// stacked matrix ([`st_models::train_on_rows`]), and the per-slice
    /// subset counts fall out of the sampling pass instead of an
    /// O(slices × subset) re-scan. Bit-identical to the per-call gather
    /// baseline ([`TunerConfig::per_call_gather`]), which the pipeline
    /// bench gates.
    fn run_estimator(
        &self,
        estimator: &CurveEstimator,
        round: u64,
    ) -> Vec<st_curve::SliceEstimate> {
        let (estimates, errors) = self.run_estimator_with(estimator, None, None, None, round);
        self.record_quarantines(errors, round);
        estimates
            .into_iter()
            .map(|e| e.expect("full estimation yields every slice"))
            .collect()
    }

    /// Converts estimation-layer quarantine errors into the run's
    /// structured warnings ([`RunResult::warnings`]).
    fn record_quarantines(&self, errors: Vec<st_curve::EstimateError>, round: u64) {
        if errors.is_empty() {
            return;
        }
        let mut warnings = self.warnings.lock();
        for e in errors {
            warnings.push(TuningWarning::EstimationQuarantined {
                slice: e.target_slice,
                round,
                attempts: e.attempts,
                cause: e.cause,
            });
        }
    }

    /// [`run_estimator`](Self::run_estimator) generalized for incremental
    /// re-estimation: `targets = Some(flags)` re-measures only the flagged
    /// slices through the exhaustive schedule's full request list (so the
    /// flagged slices' request seeds — and bits — match a full run), and
    /// `warm = Some(store)` warm-starts each measurement from the model
    /// its key trained last time (dense data plane only; the per-call
    /// gather baseline ignores it, staying the bit-identity reference).
    /// `bumps = Some(per_slice)` applies drift-recovery seed bumps: a slice
    /// with a non-zero bump derives its measurement seeds from a bumped
    /// request seed, so its post-drift re-measurement draws fresh subsets
    /// instead of replaying the pinned pre-drift ones. A zero bump leaves
    /// the request seed untouched — the no-drift path is bit-identical.
    fn run_estimator_with(
        &self,
        estimator: &CurveEstimator,
        targets: Option<&[bool]>,
        warm: Option<&crate::incremental::WarmStore>,
        bumps: Option<&[u64]>,
        round: u64,
    ) -> (
        Vec<Option<st_curve::SliceEstimate>>,
        Vec<st_curve::EstimateError>,
    ) {
        if self.config.per_call_gather {
            return self.run_estimator_per_call(estimator, targets, bumps, round);
        }
        // The batched plane covers the dense data plane's *full* schedule:
        // a partial (incremental) round re-measures sparse request subsets
        // whose grouping rarely pays, and warm starts give each model a
        // different initial network, which breaks the lockstep precondition.
        // An active ST_FAULT plan also forces the sequential plane: its
        // injection points are armed per request, which lockstep group
        // training cannot honor.
        if self.config.batched_plane
            && targets.is_none()
            && warm.is_none()
            && !st_linalg::fault::active()
        {
            let (estimates, errors) = self.run_estimator_batched(estimator);
            return (estimates.into_iter().map(Some).collect(), errors);
        }
        let n = self.ds.num_slices();
        let ds = &self.ds;
        let dense = self.ds.matrices();
        let spec = &self.config.spec;
        let train_cfg = &self.config.train;
        let counter = &self.trainings;
        let warm_models = warm;

        let measure = move |req: &MeasureRequest| -> Vec<SliceLossMeasurement> {
            // ST_FAULT nan_loss injection point: arms the trainer's loss
            // corruption for this (slice, round) for the duration of the
            // measurement. A no-op unless a matching plan entry exists.
            let _nan_guard = st_linalg::fault::arm_nan_loss(req.target_slice, round);
            let seed = bumped_seed(req, bumps);
            let subset = match req.target_slice {
                None => dense.joint_subset_rows(req.frac, &mut seeded_rng(split_seed(seed, 0))),
                Some(s) => {
                    let len = dense.slice_len(s);
                    let k = ((len as f64 * req.frac).round() as usize).clamp(1, len.max(1));
                    let mut rng = seeded_rng(split_seed(seed, 1));
                    dense.exhaustive_subset_rows(SliceId(s), k, &mut rng)
                }
            };
            let cfg = train_cfg.with_seed(split_seed(seed, 2));
            let model = match warm_models {
                Some(store) => {
                    let key: crate::incremental::WarmKey =
                        (req.target_slice, req.frac.to_bits(), req.rep);
                    let init = store
                        .lock()
                        .expect("warm store poisoned")
                        .get(&key)
                        .cloned();
                    let m = match init {
                        Some(prev) => st_models::train_on_rows_warm(
                            &prev,
                            &dense.train_x,
                            &dense.train_y,
                            &subset.rows,
                            ds.feature_dim,
                            ds.num_classes,
                            spec,
                            &cfg,
                        ),
                        None => st_models::train_on_rows(
                            &dense.train_x,
                            &dense.train_y,
                            &subset.rows,
                            ds.feature_dim,
                            ds.num_classes,
                            spec,
                            &cfg,
                        ),
                    };
                    store
                        .lock()
                        .expect("warm store poisoned")
                        .insert(key, m.clone());
                    m
                }
                None => st_models::train_on_rows(
                    &dense.train_x,
                    &dense.train_y,
                    &subset.rows,
                    ds.feature_dim,
                    ds.num_classes,
                    spec,
                    &cfg,
                ),
            };
            counter.fetch_add(1, Ordering::Relaxed);

            // One trained model scores every slice: pack the weights once
            // and reuse them for all per-slice forwards; the validation
            // matrices come from the shared snapshot instead of per-call
            // gathers, and one activation scratch serves every slice.
            // All three reuses are bit-identical to their per-call twins.
            let packed = model.packed();
            let mut scratch = st_models::EvalScratch::default();
            let mut eval_slice = |s: usize| -> SliceLossMeasurement {
                SliceLossMeasurement {
                    slice: s,
                    n: subset.per_slice[s],
                    loss: st_models::log_loss_packed_scratch(
                        &packed,
                        &dense.val_x[s],
                        &dense.val_y[s],
                        &mut scratch,
                    ),
                }
            };
            match req.target_slice {
                None => (0..n).map(&mut eval_slice).collect(),
                Some(s) => vec![eval_slice(s)],
            }
        };

        schedule(estimator, n, targets, &measure)
    }

    /// The batched estimation plane ([`TunerConfig::batched_plane`]): the
    /// round's requests are grouped into same-shape batches by an RNG-free
    /// shape key (the exact `take` formulas of the dense snapshot's subset
    /// samplers, so every request in a group trains on the same subset
    /// length), each group's models train in lockstep through the batched
    /// GEMM family, and the whole group is evaluated with one
    /// stacked-weight product per validation matrix. Subset sampling, seed
    /// derivation, and loss arithmetic are identical to the sequential
    /// `measure` closure — per request the returned measurements match the
    /// sequential plane bit for bit (`train_on_rows_batched` and
    /// `MultiEval` each carry their own bit-identity contract and tests).
    fn run_estimator_batched(
        &self,
        estimator: &CurveEstimator,
    ) -> (Vec<st_curve::SliceEstimate>, Vec<st_curve::EstimateError>) {
        let n = self.ds.num_slices();
        let ds = &self.ds;
        let dense = self.ds.matrices();
        let spec = &self.config.spec;
        let train_cfg = &self.config.train;
        let counter = &self.trainings;

        let slice_lens: Vec<usize> = (0..n).map(|s| dense.slice_len(s)).collect();
        let total_rows: usize = slice_lens.iter().sum();
        let key = move |req: &MeasureRequest| -> u64 {
            match req.target_slice {
                // Joint subsets: total predicted length, per slice
                // `round(n·frac).clamp(1, n)` for non-empty slices (a zero
                // fraction samples nothing at all).
                None => {
                    if req.frac == 0.0 {
                        return 0;
                    }
                    slice_lens
                        .iter()
                        .filter(|&&l| l > 0)
                        .map(|&l| ((l as f64 * req.frac).round() as usize).clamp(1, l) as u64)
                        .sum()
                }
                // Exhaustive subsets: every other slice rides whole, so the
                // length is determined by (target, take); tag the target in
                // the high bits to keep distinct val-set groups apart.
                Some(s) => {
                    let len = slice_lens[s];
                    let k = ((len as f64 * req.frac).round() as usize).clamp(1, len.max(1));
                    let take = (k.min(len) + total_rows - len) as u64;
                    ((s as u64 + 1) << 40) | take
                }
            }
        };

        let measure = move |group: &[MeasureRequest]| -> Vec<Vec<SliceLossMeasurement>> {
            // Per-request subset sampling with the sequential plane's exact
            // seed streams — grouping must not perturb a single RNG draw.
            let subsets: Vec<st_data::SubsetRows> = group
                .iter()
                .map(|req| match req.target_slice {
                    None => {
                        dense.joint_subset_rows(req.frac, &mut seeded_rng(split_seed(req.seed, 0)))
                    }
                    Some(s) => {
                        let len = dense.slice_len(s);
                        let k = ((len as f64 * req.frac).round() as usize).clamp(1, len.max(1));
                        let mut rng = seeded_rng(split_seed(req.seed, 1));
                        dense.exhaustive_subset_rows(SliceId(s), k, &mut rng)
                    }
                })
                .collect();
            let configs: Vec<TrainConfig> = group
                .iter()
                .map(|req| train_cfg.with_seed(split_seed(req.seed, 2)))
                .collect();
            let row_sets: Vec<&[usize]> = subsets.iter().map(|s| s.rows.as_slice()).collect();
            let models = st_models::train_on_rows_batched(
                &dense.train_x,
                &dense.train_y,
                &row_sets,
                ds.feature_dim,
                ds.num_classes,
                spec,
                &configs,
            );
            counter.fetch_add(group.len(), Ordering::Relaxed);

            // Stacked evaluation: every model in the group scores a slice's
            // validation matrix through one wide product instead of one
            // narrow product each.
            let multi = st_models::MultiEval::new(&models);
            let mut scratch = st_models::MultiEvalScratch::default();
            let mut out: Vec<Vec<SliceLossMeasurement>> = vec![Vec::new(); group.len()];
            let mut eval_slice = |s: usize, out: &mut Vec<Vec<SliceLossMeasurement>>| {
                let losses = multi.losses(&dense.val_x[s], &dense.val_y[s], &mut scratch);
                for (r, &loss) in losses.iter().enumerate() {
                    out[r].push(SliceLossMeasurement {
                        slice: s,
                        n: subsets[r].per_slice[s],
                        loss,
                    });
                }
            };
            match group[0].target_slice {
                // Amortized: each training informs every slice's curve,
                // slices ascending like the sequential closure.
                None => (0..n).for_each(|s| eval_slice(s, &mut out)),
                // Exhaustive: the shape key pins one target per group.
                Some(s) => eval_slice(s, &mut out),
            }
            out
        };

        estimator.estimate_detailed_batched_checked(n, &key, &measure)
    }

    /// The PR-4 estimation data plane, kept as the bit-identity baseline:
    /// every `measure` call clones its subset examples, re-builds each
    /// slice's validation matrix, and re-scans the subset per slice for
    /// `n_in_subset` (see [`TunerConfig::per_call_gather`]). Warm-starting
    /// is a dense-plane feature and is ignored here.
    fn run_estimator_per_call(
        &self,
        estimator: &CurveEstimator,
        targets: Option<&[bool]>,
        bumps: Option<&[u64]>,
        round: u64,
    ) -> (
        Vec<Option<st_curve::SliceEstimate>>,
        Vec<st_curve::EstimateError>,
    ) {
        let n = self.ds.num_slices();
        let ds = &self.ds;
        let spec = &self.config.spec;
        let train_cfg = &self.config.train;
        let counter = &self.trainings;

        let measure = move |req: &MeasureRequest| -> Vec<SliceLossMeasurement> {
            let _nan_guard = st_linalg::fault::arm_nan_loss(req.target_slice, round);
            let seed = bumped_seed(req, bumps);
            let subset = match req.target_slice {
                None => ds.joint_train_subset_seeded(req.frac, seed, 0),
                Some(s) => {
                    let len = ds.slices[s].train.len();
                    let k = ((len as f64 * req.frac).round() as usize).clamp(1, len.max(1));
                    let mut rng = seeded_rng(split_seed(seed, 1));
                    ds.exhaustive_train_subset(SliceId(s), k, &mut rng)
                }
            };
            let model = train_on_examples(
                &subset,
                ds.feature_dim,
                ds.num_classes,
                spec,
                &train_cfg.with_seed(split_seed(seed, 2)),
            );
            counter.fetch_add(1, Ordering::Relaxed);

            let packed = model.packed();
            let eval_slice = |s: usize| -> SliceLossMeasurement {
                let n_in_subset = subset.iter().filter(|e| e.slice.index() == s).count();
                let val = &ds.slices[s].validation;
                let x = st_models::examples_to_matrix(val);
                let y: Vec<usize> = val.iter().map(|e| e.label).collect();
                SliceLossMeasurement {
                    slice: s,
                    n: n_in_subset,
                    loss: st_models::log_loss_packed(&packed, &x, &y),
                }
            };
            match req.target_slice {
                None => (0..n).map(eval_slice).collect(),
                Some(s) => vec![eval_slice(s)],
            }
        };

        schedule(estimator, n, targets, &measure)
    }

    /// One-shot's continuous allocation: solve the convex program for the
    /// given curves and budget (Section 5.1).
    pub fn one_shot_allocation(&self, curves: &[PowerLaw], budget: f64) -> Vec<f64> {
        let sizes: Vec<f64> = self.ds.train_sizes().iter().map(|&s| s as f64).collect();
        let costs = self.ds.costs();
        let problem = st_optim::AcquisitionProblem::new(
            curves.to_vec(),
            sizes,
            costs,
            budget,
            self.config.lambda,
        );
        st_optim::solve_projected(&problem, &self.config.solver)
    }

    /// Copies the source's current per-slice costs into the working
    /// dataset. Section 2.1 allows `C(s)` to grow as data becomes scarcer
    /// but holds it constant within a batch; Algorithm 1 therefore re-reads
    /// costs at the start of every iteration.
    fn refresh_costs(&mut self) {
        for i in 0..self.ds.num_slices() {
            self.ds.slices[i].cost = self.source.cost(SliceId(i));
        }
    }

    /// Runs a full strategy with the given budget and returns the outcome.
    /// The working dataset retains everything acquired.
    ///
    /// # Panics
    /// Panics with a one-line diagnostic when checkpointing fails (see
    /// [`try_run`](Self::try_run) for the non-panicking form).
    pub fn run(&mut self, strategy: Strategy, budget: f64) -> RunResult {
        match self.try_run(strategy, budget) {
            Ok(result) => result,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`run`](Self::run) returning checkpoint failures (unwritable paths,
    /// foreign or newer checkpoint files) as typed errors instead of
    /// panicking.
    ///
    /// # Errors
    /// Returns [`crate::Error::Checkpoint`] when the configured checkpoint
    /// cannot be written, read, or applied.
    pub fn try_run(&mut self, strategy: Strategy, budget: f64) -> Result<RunResult, crate::Error> {
        self.refresh_costs();
        let (_, original) = self.train_and_eval(0);
        let before_sizes = self.ds.train_sizes();

        let (iterations, spent) = match strategy {
            Strategy::Uniform => {
                let d = uniform_allocation(&self.ds.costs(), budget);
                (1, self.acquire_rounded(&d, budget))
            }
            Strategy::WaterFilling => {
                let sizes: Vec<f64> = self.ds.train_sizes().iter().map(|&s| s as f64).collect();
                let d = water_filling_allocation(&sizes, &self.ds.costs(), budget);
                (1, self.acquire_rounded(&d, budget))
            }
            Strategy::Proportional => {
                let sizes: Vec<f64> = self.ds.train_sizes().iter().map(|&s| s as f64).collect();
                let d = crate::strategy::proportional_allocation(&sizes, &self.ds.costs(), budget);
                (1, self.acquire_rounded(&d, budget))
            }
            Strategy::OneShot => {
                let curves = self.estimate_curves(0);
                let d = self.one_shot_allocation(&curves, budget);
                (1, self.acquire_rounded(&d, budget))
            }
            Strategy::Iterative(schedule) => self.run_iterative(schedule, budget)?,
            Strategy::RottingBandit(params) => self.run_bandit(params, budget),
        };

        let (_, report) = self.train_and_eval(1);
        let acquired: Vec<usize> = self
            .ds
            .train_sizes()
            .iter()
            .zip(&before_sizes)
            .map(|(now, before)| now - before)
            .collect();
        let mut warnings = std::mem::take(&mut *self.warnings.lock());
        // Parallel estimation records warnings in executor completion
        // order; reports (and CI greps) need one canonical order, so sort
        // by (round, slice) — the stable sort keeps a slice's drift
        // warning ahead of its same-round quarantine escalation.
        warnings.sort_by_key(|w| match w {
            TuningWarning::DriftDetected { round, slice, .. } => (*round, *slice, 0),
            TuningWarning::EstimationQuarantined { round, slice, .. } => {
                (*round, slice.unwrap_or(usize::MAX), 1)
            }
        });
        Ok(RunResult {
            original,
            report,
            acquired,
            iterations,
            spent,
            trainings: self.trainings(),
            warnings,
        })
    }

    /// Algorithm 1: the iterative loop with imbalance-ratio change limits.
    ///
    /// When [`TunerConfig::checkpoint`] is set, the loop's round state is
    /// serialized after the pre-pass and after every completed round; with
    /// [`TunerConfig::resume`] a saved state is **replayed** — the recorded
    /// integer acquisitions are re-issued against the live source, which
    /// consumes the identical RNG stream and rebuilds the identical dataset
    /// bits — and the loop continues exactly where the saved run stopped.
    /// Estimation is *not* replayed: measurements are pure functions of
    /// their seed-pinned requests, so the resumed rounds re-derive them.
    fn run_iterative(
        &mut self,
        schedule: TSchedule,
        budget: f64,
    ) -> Result<(usize, f64), crate::checkpoint::CheckpointError> {
        use crate::checkpoint as cp;
        let n = self.ds.num_slices();
        let path = self.config.checkpoint.clone();

        let mut remaining = budget;
        let mut total_spent = 0.0;
        let mut t = 1.0;
        let mut iterations = 0usize;
        // Incremental mode: track which slices each acquisition touches so
        // the next estimation re-measures only those (all-dirty initially).
        let mut inc = self
            .config
            .incremental
            .then(|| crate::incremental::IncrementalState::new(n));
        // Drift detection and bounded staleness (see [`crate::drift`]).
        // `None` on stationary configs — every hook below is skipped, so
        // the loop's behavior (and bits) match the detector-free tuner.
        let mut det = crate::drift::DriftDetector::from_config(&self.config, n);
        let mut pre_pass_log: Vec<usize> = Vec::new();
        let mut rounds_log: Vec<Vec<usize>> = Vec::new();

        let saved = match (&path, self.config.resume) {
            (Some(p), true) => cp::load(p)?,
            _ => None,
        };
        if let Some(saved) = saved {
            saved.check_compatible(self.config.seed, budget, n)?;
            // Replay: re-issuing the recorded acquisition counts drives the
            // source through the identical acquire sequence (same RNG
            // draws, same absorbed rows), so dataset and source end up
            // bit-identical to the moment the saved run wrote this file.
            if !saved.pre_pass.is_empty() {
                self.source.note_round(0);
                let _ = self.acquire_counts(&saved.pre_pass);
            }
            for (i, counts) in saved.rounds.iter().enumerate() {
                self.refresh_costs();
                // Replayed draws must land on the same round numbers the
                // original run acquired them at, or a drift plan would
                // poison a different prefix of the rebuilt dataset.
                self.source.note_round(i as u64 + 1);
                let _ = self.acquire_counts(counts);
            }
            remaining = f64::from_bits(saved.remaining_bits);
            total_spent = f64::from_bits(saved.total_spent_bits);
            t = f64::from_bits(saved.t_bits);
            iterations = saved.iterations as usize;
            if let (Some(state), Some(snap)) = (inc.as_mut(), saved.inc.as_ref()) {
                state.restore(snap);
            }
            if let (Some(det), Some(snap)) = (det.as_mut(), saved.drift.as_ref()) {
                det.restore(snap);
            }
            pre_pass_log = saved.pre_pass;
            rounds_log = saved.rounds;
        } else {
            // Steps 3–6: ensure the minimum slice size L.
            let l = self.config.min_slice_size;
            let deficit: Vec<f64> = self
                .ds
                .train_sizes()
                .iter()
                .map(|&s| (l.saturating_sub(s)) as f64)
                .collect();
            if deficit.iter().any(|&d| d > 0.0) {
                self.source.note_round(0);
                let (spent, counts) = self.acquire_logged(&deficit, remaining);
                remaining -= spent;
                total_spent += spent;
                pre_pass_log = counts;
            }
        }

        // Written after the pre-pass (or a replay, where it rewrites the
        // same state) so a crash inside round 1 can already resume.
        if let Some(p) = &path {
            cp::save(
                p,
                &cp::RoundCheckpoint {
                    seed: self.config.seed,
                    budget_bits: budget.to_bits(),
                    num_slices: n as u64,
                    pre_pass: pre_pass_log.clone(),
                    rounds: rounds_log.clone(),
                    remaining_bits: remaining.to_bits(),
                    total_spent_bits: total_spent.to_bits(),
                    t_bits: t.to_bits(),
                    iterations: iterations as u64,
                    inc: inc.as_ref().map(|s| s.snapshot()),
                    drift: det.as_ref().map(|d| d.snapshot()),
                },
            )?;
        }

        // `ir` is always the live dataset's ratio at round start, so a
        // resumed run recomputes it from the replayed dataset bit-exactly.
        let mut ir = self.ds.imbalance_ratio();

        // Step 8: while there is budget to spend. The affordability check
        // re-reads costs every round because `C(s)` may have escalated since
        // the last batch (Section 2.1: costs grow as data becomes scarcer,
        // but are constant within a batch).
        loop {
            // The crash simulation: stop after k completed rounds, leaving
            // the checkpoint for those rounds on disk (tests resume it).
            if let Some(k) = self.config.halt_after_rounds {
                if iterations >= k {
                    break;
                }
            }
            self.refresh_costs();
            let min_cost = self
                .ds
                .costs()
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min);
            if remaining < min_cost || iterations >= self.config.max_iterations {
                break;
            }
            // Step 9: One-shot proposes spending the entire remaining budget.
            // `measured` records which slices this round actually
            // re-measured (the rest splice in memoized estimates), so the
            // drift detector only scores fresh evidence.
            let round = iterations as u64 + 1;
            let (detailed, measured) = match inc.as_mut() {
                None => (self.estimate_curves_detailed(round), vec![true; n]),
                Some(state) => {
                    let measured = if self.config.mode == EstimationMode::Amortized
                        || self.config.incremental_refit_all
                        || !state.has_estimates()
                    {
                        vec![true; n]
                    } else {
                        state.dirty().to_vec()
                    };
                    (self.estimate_curves_incremental(round, state), measured)
                }
            };
            let curves = resolve_fallbacks(detailed.iter().map(|e| e.fit.clone()).collect());

            if let Some(det) = det.as_mut() {
                for flag in det.observe_round(&measured, &detailed) {
                    let resets = det.begin_recovery(flag.slice);
                    self.warnings.lock().push(TuningWarning::DriftDetected {
                        slice: flag.slice,
                        round,
                        score: flag.score,
                    });
                    if resets > self.config.max_drift_resets {
                        // Recovery ladder rung 3: the slice keeps drifting
                        // through its recovery budget — stop buying its
                        // poisoned data (allocation zeroing below) and say
                        // so through the quarantine warning channel.
                        det.quarantine(flag.slice);
                        self.warnings
                            .lock()
                            .push(TuningWarning::EstimationQuarantined {
                                slice: Some(flag.slice),
                                round,
                                attempts: resets,
                                cause: "persistent drift: recovery budget exhausted".to_string(),
                            });
                    } else if let Some(state) = inc.as_mut() {
                        // Rungs 1–2: invalidate the memoized estimate and
                        // bump the slice's measurement seed so next round
                        // refits from fresh post-drift draws.
                        state.force_dirty(flag.slice);
                        state.seed_bumps[flag.slice] = resets as u64;
                    }
                }
            }

            // A drift-quarantined slice's curve is replaced by a flat
            // zero-benefit stand-in before allocation, so the solver routes
            // its share to the clean slices instead of stranding it (zeroing
            // the allocation after the fact would leave budget unspent).
            let alloc_curves: Vec<PowerLaw> = match det.as_ref() {
                None => curves.clone(),
                Some(det) => curves
                    .iter()
                    .enumerate()
                    .map(|(s, c)| {
                        if det.is_quarantined(s) {
                            PowerLaw::new(f64::MIN_POSITIVE, c.a)
                        } else {
                            *c
                        }
                    })
                    .collect(),
            };
            let mut d = self.one_shot_allocation(&alloc_curves, remaining);
            if let Some(det) = det.as_ref() {
                for (s, x) in d.iter_mut().enumerate() {
                    if det.is_quarantined(s) {
                        *x = 0.0;
                    }
                }
            }

            // Steps 10–15: cap the imbalance-ratio change at T.
            let sizes: Vec<f64> = self.ds.train_sizes().iter().map(|&s| s as f64).collect();
            let proposed: Vec<f64> = sizes.iter().zip(&d).map(|(s, x)| s + x).collect();
            let after_ir = imbalance_of(&proposed);
            if (after_ir - ir).abs() > t {
                let target = ir + t * (after_ir - ir).signum();
                let ratio = st_optim::change_ratio(&sizes, &d, target);
                for x in &mut d {
                    *x *= ratio;
                }
            }

            // Step 16: collect the data.
            let before = self.ds.train_sizes();
            self.source.note_round(round);
            let (spent, counts) = self.acquire_logged(&d, remaining);
            if spent <= 0.0 {
                break; // nothing affordable remained
            }
            if let Some(state) = inc.as_mut() {
                state.mark_dirty(&before, &self.ds.train_sizes());
            }
            if let Some(det) = det.as_mut() {
                // Bounded staleness: clean slices whose neighbors' growth
                // crossed the bound are re-measured next round even though
                // their own data never changed (pinned seed, no bump — a
                // plain memo invalidation).
                for s in det.note_growth(&before, &self.ds.train_sizes()) {
                    if let Some(state) = inc.as_mut() {
                        state.force_dirty(s);
                    }
                }
            }
            remaining -= spent;
            total_spent += spent;
            iterations += 1;
            rounds_log.push(counts);

            // Steps 19–20.
            t = schedule.increase(t);
            ir = self.ds.imbalance_ratio();

            if let Some(p) = &path {
                cp::save(
                    p,
                    &cp::RoundCheckpoint {
                        seed: self.config.seed,
                        budget_bits: budget.to_bits(),
                        num_slices: n as u64,
                        pre_pass: pre_pass_log.clone(),
                        rounds: rounds_log.clone(),
                        remaining_bits: remaining.to_bits(),
                        total_spent_bits: total_spent.to_bits(),
                        t_bits: t.to_bits(),
                        iterations: iterations as u64,
                        inc: inc.as_ref().map(|s| s.snapshot()),
                        drift: det.as_ref().map(|d| d.snapshot()),
                    },
                )?;
            }
        }
        Ok((iterations.max(1), total_spent))
    }

    /// The ε-greedy rotting-bandit baseline: each round spends one batch on
    /// a single slice and observes the reward (loss reduction per unit cost)
    /// by retraining. Model-free — no learning curves — so every pull costs
    /// a full training, and exploration wastes budget on saturated arms.
    fn run_bandit(&mut self, params: crate::strategy::BanditParams, budget: f64) -> (usize, f64) {
        use rand::Rng;
        let n = self.ds.num_slices();
        let costs = self.ds.costs();
        let min_cost = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        let mut rng = seeded_rng(split_seed(self.config.seed, 0xBA4D17));

        let (_, mut last) = self.train_and_eval(0x0B0);
        // Optimistic initialization so every arm is tried early.
        let mut reward = vec![f64::INFINITY; n];
        let mut remaining = budget;
        let mut total_spent = 0.0;
        let mut pulls = 0usize;

        while remaining >= min_cost && pulls < self.config.max_iterations * n {
            let arm = if rng.gen::<f64>() < params.epsilon {
                rng.gen_range(0..n)
            } else {
                // Best observed reward; ties to the lower index.
                let mut best = 0;
                for i in 1..n {
                    if reward[i] > reward[best] {
                        best = i;
                    }
                }
                best
            };
            let want = ((params.batch / costs[arm]).floor() as usize)
                .min((remaining / costs[arm]).floor() as usize);
            if want == 0 {
                break;
            }
            let got = self.source.acquire(SliceId(arm), want);
            let spent = got.len() as f64 * costs[arm];
            if got.is_empty() {
                break;
            }
            self.ds.absorb(got);
            remaining -= spent;
            total_spent += spent;
            pulls += 1;

            let (_, now) = self.train_and_eval(0x0B1 + pulls as u64);
            reward[arm] =
                (last.per_slice_losses[arm] - now.per_slice_losses[arm]) / spent.max(1e-9);
            last = now;
        }
        (pulls.max(1), total_spent)
    }

    /// Rounds a continuous allocation to integers within `budget`, acquires
    /// from the source, absorbs the data, and returns the cost actually
    /// charged (sources may under-deliver).
    fn acquire_rounded(&mut self, d: &[f64], budget: f64) -> f64 {
        self.acquire_logged(d, budget).0
    }

    /// [`acquire_rounded`](Self::acquire_rounded) also returning the
    /// rounded integer counts — the exact replay unit the checkpoint
    /// records.
    fn acquire_logged(&mut self, d: &[f64], budget: f64) -> (f64, Vec<usize>) {
        let costs = self.ds.costs();
        let counts = st_optim::round_to_budget(d, &costs, budget);
        let spent = self.acquire_counts(&counts);
        (spent, counts)
    }

    /// Acquires exact per-slice counts: the checkpoint replay primitive,
    /// issuing the same `acquire`/`absorb` sequence a live round does so a
    /// replayed round consumes the identical source RNG stream.
    fn acquire_counts(&mut self, counts: &[usize]) -> f64 {
        let costs = self.ds.costs();
        let mut spent = 0.0;
        for (i, &n) in counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let got = self.source.acquire(SliceId(i), n);
            spent += got.len() as f64 * costs[i];
            self.ds.absorb(got);
        }
        spent
    }
}

/// Imbalance ratio of fractional sizes (Algorithm 1's `GetImbalanceRatio`).
fn imbalance_of(sizes: &[f64]) -> f64 {
    let rounded: Vec<usize> = sizes.iter().map(|&s| s.round().max(0.0) as usize).collect();
    imbalance_ratio_of(&rounded)
}

/// The effective measurement seed for a request under drift-recovery seed
/// bumps: a targeted request whose slice carries a non-zero bump derives a
/// fresh seed from `(request seed, bump)`, decorrelating the post-drift
/// re-measurement from the pinned pre-drift draws. Everything else —
/// no bumps, joint requests, zero bumps — keeps the request seed bit for
/// bit.
fn bumped_seed(req: &MeasureRequest, bumps: Option<&[u64]>) -> u64 {
    match (bumps, req.target_slice) {
        (Some(b), Some(s)) if b[s] != 0 => split_seed(req.seed, 0xD21F7 ^ b[s]),
        _ => req.seed,
    }
}

/// Routes a measure closure through the estimator's full schedule
/// (`targets = None`, every slice estimated) or the partial exhaustive
/// schedule over the flagged slices.
fn schedule(
    estimator: &CurveEstimator,
    num_slices: usize,
    targets: Option<&[bool]>,
    measure: &st_curve::TrainEvalFn<'_>,
) -> (
    Vec<Option<st_curve::SliceEstimate>>,
    Vec<st_curve::EstimateError>,
) {
    match targets {
        None => {
            let (estimates, errors) = estimator.estimate_detailed_checked(num_slices, measure);
            (estimates.into_iter().map(Some).collect(), errors)
        }
        Some(t) => estimator.estimate_detailed_for_checked(num_slices, t, measure),
    }
}

/// Replaces failed fits with the log-mean of the successful ones (or a mild
/// default when nothing fits).
fn resolve_fallbacks(fits: Vec<Result<PowerLaw, FitError>>) -> Vec<PowerLaw> {
    let ok: Vec<PowerLaw> = fits
        .iter()
        .filter_map(|f| f.as_ref().ok())
        .cloned()
        .collect();
    let fallback = if ok.is_empty() {
        PowerLaw::new(1.0, 0.2)
    } else {
        PowerLaw::log_mean(&ok)
    };
    fits.into_iter().map(|f| f.unwrap_or(fallback)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acquire::PoolSource;
    use st_data::families::census;

    fn quick_config() -> TunerConfig {
        let mut cfg = TunerConfig::new(ModelSpec::softmax());
        cfg.train.epochs = 10;
        cfg.fractions = vec![0.3, 0.6, 1.0];
        cfg.repeats = 1;
        cfg.threads = 1;
        cfg
    }

    #[test]
    fn estimate_curves_returns_decreasing_models() {
        let fam = census();
        let ds = SlicedDataset::generate(&fam, &[120; 4], 120, 5);
        let mut src = PoolSource::new(fam, 99);
        let tuner = SliceTuner::new(ds, &mut src, quick_config());
        let curves = tuner.estimate_curves(0);
        assert_eq!(curves.len(), 4);
        for c in &curves {
            assert!(c.b > 0.0 && c.a > 0.0);
            assert!(c.eval(100.0) >= c.eval(1000.0));
        }
        // Amortized: K·R trainings.
        assert_eq!(tuner.trainings(), 3);
    }

    #[test]
    fn estimation_data_plane_matches_per_call_gather() {
        // The matrix-native data plane (cached matrices, row-id subsets,
        // train_on_rows, one-pass subset counts) must reproduce the
        // per-call gather baseline bit for bit, in both schedules.
        let fam = census();
        let run = |per_call: bool, mode: EstimationMode| {
            let ds = SlicedDataset::generate(&fam, &[80, 40, 60, 20], 50, 17);
            let mut src = PoolSource::new(fam.clone(), 171);
            let mut cfg = quick_config().with_seed(9).with_mode(mode);
            cfg.per_call_gather = per_call;
            let tuner = SliceTuner::new(ds, &mut src, cfg);
            tuner.estimate_curves_detailed(3)
        };
        for mode in [EstimationMode::Amortized, EstimationMode::Exhaustive] {
            let dense = run(false, mode);
            let legacy = run(true, mode);
            assert_eq!(dense.len(), legacy.len());
            for (d, l) in dense.iter().zip(&legacy) {
                assert_eq!(d.points.len(), l.points.len(), "{mode:?}");
                for (dp, lp) in d.points.iter().zip(&l.points) {
                    assert_eq!(dp.n.to_bits(), lp.n.to_bits(), "{mode:?} subset count");
                    assert_eq!(dp.loss.to_bits(), lp.loss.to_bits(), "{mode:?} loss");
                }
                let (df, lf) = (d.fit.as_ref().unwrap(), l.fit.as_ref().unwrap());
                assert_eq!(df.a.to_bits(), lf.a.to_bits(), "{mode:?} fit a");
                assert_eq!(df.b.to_bits(), lf.b.to_bits(), "{mode:?} fit b");
            }
        }
    }

    #[test]
    fn batched_plane_matches_sequential_bitwise() {
        // The batched plane is an execution strategy: lockstep-trained
        // groups and stacked evaluation must reproduce the sequential
        // plane's measurements and fits bit for bit, in both schedules and
        // regardless of the sequential plane's estimator thread count.
        let fam = census();
        let run = |batched: bool, mode: EstimationMode, threads: usize| {
            let ds = SlicedDataset::generate(&fam, &[80, 40, 60, 20], 50, 18);
            let mut src = PoolSource::new(fam.clone(), 172);
            let mut cfg = quick_config().with_seed(11).with_mode(mode);
            cfg.repeats = 2; // groups of ≥ 2 engage lockstep training
            cfg.batched_plane = batched;
            cfg.threads = threads;
            let tuner = SliceTuner::new(ds, &mut src, cfg);
            let est = tuner.estimate_curves_detailed(4);
            (est, tuner.trainings())
        };
        for mode in [EstimationMode::Amortized, EstimationMode::Exhaustive] {
            let (batched, tb) = run(true, mode, 1);
            for threads in [1usize, 2] {
                let (seq, ts) = run(false, mode, threads);
                assert_eq!(tb, ts, "{mode:?} training counts");
                assert_eq!(batched.len(), seq.len());
                for (s, (b, q)) in batched.iter().zip(&seq).enumerate() {
                    assert_eq!(b.points.len(), q.points.len(), "{mode:?} slice {s}");
                    for (bp, qp) in b.points.iter().zip(&q.points) {
                        assert_eq!(bp.n.to_bits(), qp.n.to_bits(), "{mode:?} subset count");
                        assert_eq!(bp.loss.to_bits(), qp.loss.to_bits(), "{mode:?} loss");
                    }
                    let (bf, qf) = (b.fit.as_ref().unwrap(), q.fit.as_ref().unwrap());
                    assert_eq!(bf.a.to_bits(), qf.a.to_bits(), "{mode:?} fit a");
                    assert_eq!(bf.b.to_bits(), qf.b.to_bits(), "{mode:?} fit b");
                }
            }
        }
    }

    #[test]
    fn batched_plane_matches_sequential_on_deep_models() {
        // Deep group members route MultiEval through the per-model
        // fallback (no stacked head); the contract is the same.
        let fam = census();
        let run = |batched: bool| {
            let ds = SlicedDataset::generate(&fam, &[60, 30, 45, 25], 40, 19);
            let mut src = PoolSource::new(fam.clone(), 173);
            let mut cfg = quick_config().with_seed(13);
            cfg.spec = ModelSpec::small();
            cfg.repeats = 2;
            cfg.batched_plane = batched;
            let tuner = SliceTuner::new(ds, &mut src, cfg);
            tuner.estimate_curves_detailed(2)
        };
        for (b, q) in run(true).iter().zip(&run(false)) {
            assert_eq!(b.points.len(), q.points.len());
            for (bp, qp) in b.points.iter().zip(&q.points) {
                assert_eq!(bp.loss.to_bits(), qp.loss.to_bits());
            }
        }
    }

    #[test]
    fn uniform_run_acquires_equal_counts() {
        let fam = census();
        let ds = SlicedDataset::generate(&fam, &[50; 4], 80, 6);
        let mut src = PoolSource::new(fam, 100);
        let mut tuner = SliceTuner::new(ds, &mut src, quick_config());
        let result = tuner.run(Strategy::Uniform, 200.0);
        assert_eq!(result.acquired, vec![50; 4]);
        assert_eq!(result.iterations, 1);
        assert!((result.spent - 200.0).abs() < 1e-9);
    }

    #[test]
    fn proportional_preserves_relative_bias() {
        let fam = census();
        let ds = SlicedDataset::generate(&fam, &[20, 40, 60, 80], 60, 30);
        let mut src = PoolSource::new(fam, 130);
        let mut tuner = SliceTuner::new(ds, &mut src, quick_config());
        let result = tuner.run(Strategy::Proportional, 100.0);
        // d_i = 100 · s_i / 200 = s_i / 2.
        assert_eq!(result.acquired, vec![10, 20, 30, 40]);
        let finals = tuner.dataset().train_sizes();
        // Imbalance ratio unchanged: 120/30 == 80/20.
        assert_eq!(finals[3] as f64 / finals[0] as f64, 4.0);
    }

    #[test]
    fn water_filling_levels_unequal_slices() {
        let fam = census();
        let ds = SlicedDataset::generate(&fam, &[20, 60, 100, 140], 80, 7);
        let mut src = PoolSource::new(fam, 101);
        let mut tuner = SliceTuner::new(ds, &mut src, quick_config());
        let result = tuner.run(Strategy::WaterFilling, 200.0);
        // Level = (20+60+100+200)/3 = 126.67 → fills to ~126/127 for the
        // first three, nothing for the largest.
        assert_eq!(result.acquired[3], 0);
        let finals: Vec<usize> = tuner.dataset().train_sizes();
        assert!(finals[0].abs_diff(finals[1]) <= 1, "{finals:?}");
        assert!(finals[1].abs_diff(finals[2]) <= 1, "{finals:?}");
    }

    #[test]
    fn one_shot_spends_entire_budget() {
        let fam = census();
        let ds = SlicedDataset::generate(&fam, &[60; 4], 80, 8);
        let mut src = PoolSource::new(fam, 102);
        let mut tuner = SliceTuner::new(ds, &mut src, quick_config());
        let result = tuner.run(Strategy::OneShot, 120.0);
        assert!(
            (result.spent - 120.0).abs() <= 1.0,
            "spent {}",
            result.spent
        );
        assert_eq!(result.acquired.iter().sum::<usize>(), 120);
    }

    #[test]
    fn iterative_respects_min_slice_size() {
        let fam = census();
        let ds = SlicedDataset::generate(&fam, &[5, 40, 40, 40], 80, 9);
        let mut src = PoolSource::new(fam, 103);
        let mut cfg = quick_config();
        cfg.min_slice_size = 15;
        let mut tuner = SliceTuner::new(ds, &mut src, cfg);
        let _ = tuner.run(Strategy::Iterative(TSchedule::moderate()), 100.0);
        assert!(tuner.dataset().train_sizes().iter().all(|&s| s >= 15));
    }

    #[test]
    fn iterative_uses_more_iterations_when_conservative() {
        let fam = census();
        let run = |schedule: TSchedule| -> usize {
            let ds = SlicedDataset::generate(&fam, &[30, 30, 90, 90], 80, 10);
            let mut src = PoolSource::new(fam.clone(), 104);
            let mut tuner = SliceTuner::new(ds, &mut src, quick_config());
            tuner.run(Strategy::Iterative(schedule), 400.0).iterations
        };
        let cons = run(TSchedule::conservative());
        let aggr = run(TSchedule::aggressive());
        assert!(cons >= aggr, "conservative {cons} vs aggressive {aggr}");
    }

    #[test]
    fn iterative_never_overspends() {
        let fam = census();
        let ds = SlicedDataset::generate(&fam, &[40; 4], 80, 11);
        let mut src = PoolSource::new(fam, 105);
        let mut tuner = SliceTuner::new(ds, &mut src, quick_config());
        let result = tuner.run(Strategy::Iterative(TSchedule::moderate()), 150.0);
        assert!(result.spent <= 150.0 + 1e-9);
        let acquired_cost: f64 = result.acquired.iter().map(|&n| n as f64).sum();
        assert!((acquired_cost - result.spent).abs() < 1e-9, "unit costs");
    }

    #[test]
    fn run_is_deterministic() {
        let fam = census();
        let run = || {
            let ds = SlicedDataset::generate(&fam, &[50; 4], 80, 12);
            let mut src = PoolSource::new(fam.clone(), 106);
            let mut tuner = SliceTuner::new(ds, &mut src, quick_config().with_seed(42));
            tuner.run(Strategy::Iterative(TSchedule::moderate()), 120.0)
        };
        let a = run();
        let b = run();
        assert_eq!(a.acquired, b.acquired);
        assert_eq!(a.report.overall_loss, b.report.overall_loss);
    }

    #[test]
    fn bandit_spends_budget_in_batches() {
        let fam = census();
        let ds = SlicedDataset::generate(&fam, &[40; 4], 60, 21);
        let mut src = PoolSource::new(fam, 121);
        let mut tuner = SliceTuner::new(ds, &mut src, quick_config());
        let params = crate::strategy::BanditParams {
            batch: 40.0,
            epsilon: 0.2,
        };
        let result = tuner.run(Strategy::RottingBandit(params), 200.0);
        assert!(result.spent <= 200.0 + 1e-9);
        assert!(
            result.spent >= 160.0,
            "bandit should spend most of the budget: {}",
            result.spent
        );
        // One pull = one batch of 40 on a single arm.
        assert_eq!(result.iterations, 5);
        // Model-free: one retraining per pull (plus the two evaluations).
        assert!(result.trainings >= 5 + 2);
    }

    #[test]
    fn fallback_curves_fill_failures() {
        let fits = vec![
            Ok(PowerLaw::new(2.0, 0.3)),
            Err(FitError::NotEnoughPoints),
            Ok(PowerLaw::new(2.0, 0.5)),
        ];
        let resolved = resolve_fallbacks(fits);
        assert_eq!(resolved.len(), 3);
        assert!((resolved[1].a - 0.4).abs() < 1e-12, "log-mean of successes");
        let all_fail = resolve_fallbacks(vec![Err(FitError::NotEnoughPoints)]);
        assert_eq!(all_fail[0], PowerLaw::new(1.0, 0.2));
    }

    /// Runs an exhaustive-mode iterative trial with the given incremental
    /// knobs and returns (result, trainings).
    fn iterative_run(incremental: bool, refit_all: bool, warm: bool) -> (RunResult, usize) {
        let fam = census();
        let ds = SlicedDataset::generate(&fam, &[60, 25, 45, 30], 60, 21);
        let mut src = PoolSource::new(fam, 77);
        let mut cfg = quick_config()
            .with_seed(5)
            .with_mode(EstimationMode::Exhaustive);
        cfg.incremental = incremental;
        cfg.incremental_refit_all = refit_all;
        cfg.warm_start = warm;
        cfg.max_iterations = 3;
        let mut tuner = SliceTuner::new(ds, &mut src, cfg);
        let result = tuner.run(Strategy::Iterative(TSchedule::moderate()), 300.0);
        let trainings = tuner.trainings();
        (result, trainings)
    }

    #[test]
    fn incremental_matches_refit_all_bit_for_bit_before_any_reuse() {
        // On a run whose budget is spent in one round there is nothing to
        // reuse yet, so dirty-tracking must reproduce the forced-full-refit
        // run exactly — same acquisitions, same loss bits, same trainings.
        let (skip, skip_trainings) = iterative_run(true, false, false);
        let (full, full_trainings) = iterative_run(true, true, false);
        assert_eq!(skip.acquired, full.acquired);
        assert_eq!(skip.iterations, full.iterations);
        for (a, b) in skip
            .report
            .per_slice_losses
            .iter()
            .zip(&full.report.per_slice_losses)
        {
            assert_eq!(a.to_bits(), b.to_bits(), "final losses must match");
        }
        assert!(
            skip_trainings <= full_trainings,
            "skipping must not add trainings ({skip_trainings} vs {full_trainings})"
        );
    }

    #[test]
    fn incremental_run_is_bit_reproducible() {
        // History-dependent does not mean nondeterministic: the same
        // incremental trial twice must produce identical bits.
        let (a, ta) = iterative_run(true, false, false);
        let (b, tb) = iterative_run(true, false, false);
        assert_eq!(a.acquired, b.acquired);
        assert_eq!(ta, tb);
        for (x, y) in a
            .report
            .per_slice_losses
            .iter()
            .zip(&b.report.per_slice_losses)
        {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn incremental_first_estimation_is_all_dirty_then_clean() {
        let fam = census();
        let ds = SlicedDataset::generate(&fam, &[60; 4], 60, 22);
        let mut src = PoolSource::new(fam, 78);
        let cfg = quick_config()
            .with_seed(6)
            .with_mode(EstimationMode::Exhaustive)
            .with_incremental();
        let tuner = SliceTuner::new(ds, &mut src, cfg);
        let mut state = crate::incremental::IncrementalState::new(4);
        let first = tuner.estimate_curves_incremental(1, &mut state);
        assert_eq!(first.len(), 4);
        assert!(state.has_estimates());
        assert_eq!(state.dirty(), &[false; 4]);
        let t_after_first = tuner.trainings();
        // Nothing dirty: the second round must reuse every estimate and
        // train nothing.
        let second = tuner.estimate_curves_incremental(2, &mut state);
        assert_eq!(tuner.trainings(), t_after_first);
        for (f, s) in first.iter().zip(&second) {
            let (ff, sf) = (f.fit.as_ref().unwrap(), s.fit.as_ref().unwrap());
            assert_eq!(ff.a.to_bits(), sf.a.to_bits());
            assert_eq!(ff.b.to_bits(), sf.b.to_bits());
        }
    }

    #[test]
    fn incremental_reestimates_only_dirty_slices() {
        let fam = census();
        let ds = SlicedDataset::generate(&fam, &[60; 4], 60, 23);
        let mut src = PoolSource::new(fam.clone(), 79);
        let cfg = quick_config()
            .with_seed(7)
            .with_mode(EstimationMode::Exhaustive)
            .with_incremental();
        let tuner = SliceTuner::new(ds, &mut src, cfg);
        let mut state = crate::incremental::IncrementalState::new(4);
        let _ = tuner.estimate_curves_incremental(1, &mut state);
        let t0 = tuner.trainings();
        state.mark_dirty(&[60, 60, 60, 60], &[60, 70, 60, 60]);
        let _ = tuner.estimate_curves_incremental(2, &mut state);
        // Exhaustive schedule: fractions × repeats trainings per slice, and
        // only slice 1 was dirty.
        let per_slice = tuner.config().fractions.len() * tuner.config().repeats;
        assert_eq!(tuner.trainings() - t0, per_slice);
        assert_eq!(state.dirty(), &[false; 4]);
    }

    #[test]
    fn warm_start_run_stays_close_to_cold() {
        // Warm-starting reorders the math (skipped init draws shift the
        // RNG stream), so results are tolerance-comparable, never
        // bit-identical; the run must still complete and land in the same
        // loss regime.
        let (cold, _) = iterative_run(true, false, false);
        let (warm, _) = iterative_run(true, false, true);
        assert_eq!(warm.acquired.len(), cold.acquired.len());
        assert!(warm.report.overall_loss.is_finite());
        assert!(
            (warm.report.overall_loss - cold.report.overall_loss).abs()
                < 0.5 * cold.report.overall_loss.max(0.1),
            "warm overall loss {} strayed from cold {}",
            warm.report.overall_loss,
            cold.report.overall_loss
        );
    }

    #[test]
    fn incremental_amortized_runs_full_schedule() {
        // Amortized estimation measures every slice with one joint
        // training — nothing to skip — so incremental mode still works but
        // re-runs the full schedule each round.
        let fam = census();
        let ds = SlicedDataset::generate(&fam, &[60; 4], 60, 24);
        let mut src = PoolSource::new(fam, 80);
        let cfg = quick_config().with_seed(8).with_incremental();
        let tuner = SliceTuner::new(ds, &mut src, cfg);
        let mut state = crate::incremental::IncrementalState::new(4);
        let first = tuner.estimate_curves_incremental(1, &mut state);
        let t0 = tuner.trainings();
        let _ = tuner.estimate_curves_incremental(2, &mut state);
        assert_eq!(first.len(), 4);
        // K fractions × 1 repeat joint trainings per round, clean or not.
        assert_eq!(tuner.trainings() - t0, t0);
    }
}
