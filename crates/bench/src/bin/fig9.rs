//! Figure 9: how a slice's learning curve drifts as the slice itself grows.
//!
//! We grow one Fashion slice through several sizes; at each size we re-fit
//! the curve from subsets of the *current* data. Curves fitted on small
//! slices deviate most from the large-slice fit — the paper's argument for
//! iterative updates.

use slice_tuner::{PoolSource, SliceTuner};
use st_bench::FamilySetup;
use st_curve::PowerLaw;
use st_data::SlicedDataset;

fn main() {
    // Bench-wide kernel default: `sharded` on multi-core hosts, `simd`
    // on single-core containers; `ST_KERNEL` overrides (see docs/kernels.md).
    st_bench::init_bench_kernel();
    let setup = FamilySetup::fashion();
    let sizes = if st_bench::quick() {
        vec![100usize, 400]
    } else {
        vec![100usize, 400, 1000, 2000]
    };
    let probe = 2000.0; // where we compare predictions

    println!("Figure 9: learning-curve drift as the slice grows (Fashion slice 6 = Shirt)\n");
    let mut fits: Vec<(usize, PowerLaw)> = Vec::new();
    for &n in &sizes {
        // Slice 6 has n examples; the others stay at 300 as context.
        let mut init = vec![300; 10];
        init[6] = n;
        let ds = SlicedDataset::generate(&setup.family, &init, setup.validation, 99);
        let mut src = PoolSource::new(setup.family.clone(), 99);
        let mut cfg = setup.config(99);
        cfg.fractions = (1..=8).map(|i| i as f64 / 8.0).collect();
        let tuner = SliceTuner::new(ds, &mut src, cfg);
        let curve = tuner.estimate_curves(n as u64)[6];
        println!(
            "  fitted from {n:>5} examples: y = {:.3}x^(-{:.3})   predicted loss({probe:.0}) = {:.3}",
            curve.b,
            curve.a,
            curve.eval(probe)
        );
        fits.push((n, curve));
    }

    let reference = fits.last().expect("nonempty").1;
    println!("\ndeviation from the largest-slice fit at n = {probe}:");
    for (n, c) in &fits {
        println!(
            "  from {n:>5}: |Δloss| = {:.3}",
            (c.eval(probe) - reference.eval(probe)).abs()
        );
    }
    println!(
        "\n(paper: curves fitted on smaller slices deviate more — motivates iterative updates)"
    );
}
