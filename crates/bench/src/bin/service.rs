//! Service-level chaos gate: an in-process `st_server` under a combined
//! `ST_FAULT` plan — dropped connections, slow-loris clients, and
//! session-worker panics — driven by N concurrent clients that each
//! register a session and advance it through R acquisition rounds.
//!
//! The gate asserts the crash-only contract end to end:
//!
//! * **zero lost sessions** — every session reaches its target round
//!   despite drops and panics (clients heal by blind idempotent retry);
//! * **zero corrupt sessions** — every checkpoint on disk parses, and no
//!   orphaned `*.tmp` files survive the drain;
//! * **bit-identical resume** — each served session's final checkpoint
//!   document equals, byte for byte, a reference session advanced
//!   uninterrupted in-process with the same seed;
//! * **bounded p99** — a sanity bound on request latency (wall-clock
//!   numbers are reported, the deterministic gates above are the teeth).
//!
//! Emits machine-readable `BENCH_service.json` for the trend reporter.
//!
//! ```text
//! cargo run --release -p st_bench --bin service
//! ```
//!
//! Knobs:
//!
//! - `ST_QUICK=1` — fewer sessions/rounds and shorter trainings;
//! - `ST_FAULT=<plan>` — overrides the built-in chaos plan (specs that
//!   target request ordinals 1..=N hit the registration phase, which is
//!   intentionally not retried — prefer ordinals past the session count);
//! - `ST_SERVICE_JSON` — output path (default `BENCH_service.json`).

use st_bench::{init_bench_kernel, quick, rule};
use st_linalg::fault;
use st_server::{Client, ServerConfig, Session, SessionSpec};
use std::fmt::Write as _;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex};
use std::time::Instant;

const SEED_BASE: u64 = 40;
/// The built-in combined plan: two response drops (ordinals past the
/// registration phase), one slow-loris request, and two session-worker
/// panics on different sessions/rounds.
const FAULTS: &str =
    "conn_drop@5,conn_drop@8,slow_client@5:ms300,session_panic@0:round1,session_panic@1:round2";

fn sessions() -> usize {
    if quick() {
        3
    } else {
        4
    }
}

fn rounds() -> u64 {
    if quick() {
        2
    } else {
        3
    }
}

fn epochs() -> usize {
    if quick() {
        8
    } else {
        12
    }
}

fn register_body(seed: u64) -> String {
    format!(
        "{{\"family\":\"census\",\"seed\":{seed},\"budget\":300,\"sizes\":[80,20,60,25],\
         \"validation\":60,\"epochs\":{},\"max_rounds\":{}}}",
        epochs(),
        rounds()
    )
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let kernel = init_bench_kernel();
    let n = sessions();
    let r = rounds();

    // The env plan wins when present (the CI chaos leg sets one); the
    // built-in combined plan covers local runs.
    let plan_text = match std::env::var("ST_FAULT") {
        Ok(env_plan) => env_plan,
        Err(_) => {
            fault::install(Some(
                fault::parse_plan(FAULTS).unwrap_or_else(|e| panic!("bench fault plan: {e}")),
            ));
            FAULTS.to_string()
        }
    };

    println!(
        "service gate: {n} concurrent sessions x {r} rounds under ST_FAULT={plan_text}, kernel {} {}",
        kernel.name(),
        if quick() { "(quick)" } else { "" }
    );
    rule(72);

    let dir = std::env::temp_dir().join("st_bench_service");
    let _ = std::fs::remove_dir_all(&dir);
    let dir = dir.display().to_string();

    let mut cfg = ServerConfig::new(&dir);
    cfg.deadline_ms = 60_000;
    cfg.max_sessions = n + 2;
    cfg.queue_depth = 16;
    let handle = st_server::start(cfg).unwrap_or_else(|e| panic!("starting server: {e}"));
    let addr = handle.addr();

    // One send-ordinal counter for the whole fleet so `slow_client@<req>`
    // addresses a deterministic point in the combined request stream.
    let counter = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();

    // Register sequentially so session ids map to seeds deterministically
    // (id i <-> SEED_BASE + i) — the bit-identity gate depends on it.
    let register_client = Client::new(addr).with_counter(Arc::clone(&counter));
    for i in 0..n {
        let resp = register_client
            .request("POST", "/sessions", &register_body(SEED_BASE + i as u64))
            .unwrap_or_else(|e| panic!("registering session {i}: {e}"));
        assert_eq!(resp.status, 201, "register {i}: {}", resp.body);
    }

    // N concurrent clients, one per session, advancing round by round.
    let latencies: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let mut threads = Vec::new();
    for i in 0..n {
        let counter = Arc::clone(&counter);
        let latencies = Arc::clone(&latencies);
        threads.push(std::thread::spawn(move || {
            let client = Client::new(addr).with_counter(counter);
            for round in 1..=r {
                let path = format!("/sessions/{i}/advance");
                let body = format!("{{\"to_round\":{round}}}");
                let t = Instant::now();
                let resp = client
                    .request("POST", &path, &body)
                    .unwrap_or_else(|e| panic!("session {i} round {round}: {e}"));
                latencies
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(t.elapsed().as_secs_f64() * 1e3);
                assert_eq!(resp.status, 200, "session {i} round {round}: {}", resp.body);
            }
            // The curve zoo and allocation must be servable post-run.
            for tail in ["/curves", "/allocation"] {
                let resp = client
                    .request("GET", &format!("/sessions/{i}{tail}"), "")
                    .unwrap_or_else(|e| panic!("session {i} {tail}: {e}"));
                assert_eq!(resp.status, 200, "session {i} {tail}: {}", resp.body);
            }
        }));
    }
    for t in threads {
        t.join().expect("client thread");
    }

    // Graceful drain, then the durable-state gates.
    let resp = register_client
        .request("POST", "/shutdown", "")
        .unwrap_or_else(|e| panic!("shutdown: {e}"));
    assert_eq!(resp.status, 202, "shutdown: {}", resp.body);
    let report = handle.wait();
    let total_secs = t0.elapsed().as_secs_f64();

    let mut lost = 0usize;
    let mut corrupt = 0usize;
    let mut identical = 0usize;
    for i in 0..n {
        let path = format!("{dir}/session-{i}.json");
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => {
                lost += 1;
                continue;
            }
        };
        let cp = match slice_tuner::checkpoint::RoundCheckpoint::parse(&text, &path) {
            Ok(cp) => cp,
            Err(e) => {
                eprintln!("session {i}: corrupt checkpoint: {e}");
                corrupt += 1;
                continue;
            }
        };
        if cp.iterations < r {
            eprintln!("session {i}: only {} of {r} rounds", cp.iterations);
            lost += 1;
            continue;
        }
        // Reference: the same session advanced uninterrupted in-process.
        // Ids are offset past the fault plan's targets so no service
        // fault fires; the engine-visible inputs (seed, spec) match.
        let spec = SessionSpec::parse(&register_body(SEED_BASE + i as u64))
            .unwrap_or_else(|e| panic!("reference spec: {e}"));
        let mut reference = Session::new(1000 + i as u64, spec, &dir)
            .unwrap_or_else(|e| panic!("reference session: {e}"));
        for round in 1..=r {
            reference
                .advance(round, 1, 1)
                .unwrap_or_else(|e| panic!("reference session {i} round {round}: {e:?}"));
        }
        let want = std::fs::read_to_string(&reference.checkpoint_path)
            .unwrap_or_else(|e| panic!("reference checkpoint: {e}"));
        if text == want {
            identical += 1;
        } else {
            eprintln!("session {i}: served checkpoint != uninterrupted reference");
        }
    }
    let temps = std::fs::read_dir(&dir)
        .map(|entries| {
            entries
                .flatten()
                .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
                .count()
        })
        .unwrap_or(0);

    let mut lat: Vec<f64> = latencies.lock().unwrap_or_else(|e| e.into_inner()).clone();
    lat.sort_by(|a, b| a.total_cmp(b));
    let p50 = percentile(&lat, 0.50);
    let p99 = percentile(&lat, 0.99);
    let sessions_per_sec = n as f64 / total_secs;

    println!("{:<32} {:>10}", "sessions", n);
    println!("{:<32} {:>10}", "rounds per session", r);
    println!("{:<32} {:>10}", "advance requests measured", lat.len());
    println!("{:<32} {:>10}", "lost sessions", lost);
    println!("{:<32} {:>10}", "corrupt sessions", corrupt);
    println!("{:<32} {:>10}", "bit-identical to reference", identical);
    println!("{:<32} {:>10}", "orphan temps after drain", temps);
    println!("{:<32} {:>10}", "queued jobs drained", report.drained_jobs);
    println!("{:<32} {:>10.2}", "sessions/sec", sessions_per_sec);
    println!("{:<32} {:>10.1}", "p50 advance ms", p50);
    println!("{:<32} {:>10.1}", "p99 advance ms", p99);

    // ---- JSON emission ---------------------------------------------------
    let path =
        std::env::var("ST_SERVICE_JSON").unwrap_or_else(|_| "BENCH_service.json".to_string());
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"service\",");
    let _ = writeln!(json, "  \"schema_version\": 1,");
    let _ = writeln!(json, "  \"kernel\": \"{}\",", kernel.name());
    let _ = writeln!(json, "  \"quick\": {},", quick());
    let _ = writeln!(json, "  \"family\": \"census\",");
    let _ = writeln!(json, "  \"sessions\": {n},");
    let _ = writeln!(json, "  \"rounds\": {r},");
    let _ = writeln!(json, "  \"faults\": \"{plan_text}\",");
    let _ = writeln!(json, "  \"lost_sessions\": {lost},");
    let _ = writeln!(json, "  \"corrupt_sessions\": {corrupt},");
    let _ = writeln!(json, "  \"bit_identical\": {},", identical == n);
    let _ = writeln!(json, "  \"orphan_temps\": {temps},");
    let _ = writeln!(json, "  \"sessions_per_sec\": {sessions_per_sec:.4},");
    let _ = writeln!(json, "  \"p50_ms\": {p50:.2},");
    let _ = writeln!(json, "  \"p99_ms\": {p99:.2},");
    let _ = writeln!(json, "  \"gate_enforced\": true");
    let _ = writeln!(json, "}}");
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("\nwrote {path}");

    // ---- Gates -----------------------------------------------------------
    assert_eq!(lost, 0, "every session must complete all {r} rounds");
    assert_eq!(corrupt, 0, "every checkpoint on disk must parse");
    assert_eq!(
        identical, n,
        "every served session must be bit-identical to its uninterrupted reference"
    );
    assert_eq!(temps, 0, "the drain must leave no orphaned *.tmp files");
    assert!(
        p99.is_finite() && p99 < 120_000.0,
        "p99 advance latency must stay bounded, got {p99:.1} ms"
    );
    println!("gates passed: 0 lost, 0 corrupt, {n}/{n} bit-identical, clean checkpoint dir");
}
