//! Integration: the matrix-native estimation data plane (cached dense
//! snapshots, row-id subsets, `train_on_rows`, fused-bias forwards) must
//! be bit-identical to the per-call gather baseline across the whole
//! stack — single estimations, full strategy runs, and the parallel trial
//! executor — and the snapshot cache must track acquisitions.

use slice_tuner::{
    run_trials_parallel, AggregateResult, PoolSource, SliceTuner, Strategy, TSchedule, TunerConfig,
};
use st_data::{families, SlicedDataset};
use st_models::ModelSpec;

fn quick_config(per_call: bool) -> TunerConfig {
    let mut cfg = TunerConfig::new(ModelSpec::softmax());
    cfg.train.epochs = 8;
    cfg.fractions = vec![0.4, 0.7, 1.0];
    cfg.repeats = 2;
    cfg.threads = 1;
    cfg.per_call_gather = per_call;
    cfg
}

fn assert_bit_identical(a: &AggregateResult, b: &AggregateResult) {
    assert!(
        a.bits_identical_to(b),
        "aggregates diverged:\n{a:?}\nvs\n{b:?}"
    );
}

/// A full iterative strategy run — estimations, acquisitions (which
/// invalidate the snapshot's train half), retrainings, evaluations — must
/// produce the same bits on both data planes.
#[test]
fn full_strategy_run_matches_per_call_gather() {
    let fam = families::census();
    let run = |per_call: bool| {
        let ds = SlicedDataset::generate(&fam, &[40, 60, 25, 50], 60, 5);
        let mut src = PoolSource::new(fam.clone(), 55);
        let mut tuner = SliceTuner::new(ds, &mut src, quick_config(per_call).with_seed(7));
        tuner.run(Strategy::Iterative(TSchedule::moderate()), 150.0)
    };
    let dense = run(false);
    let legacy = run(true);
    assert_eq!(dense.acquired, legacy.acquired);
    assert_eq!(dense.iterations, legacy.iterations);
    assert_eq!(dense.spent.to_bits(), legacy.spent.to_bits());
    for (d, l) in dense
        .report
        .per_slice_losses
        .iter()
        .zip(&legacy.report.per_slice_losses)
    {
        assert_eq!(d.to_bits(), l.to_bits(), "per-slice loss bits diverged");
    }
    assert_eq!(
        dense.report.overall_loss.to_bits(),
        legacy.report.overall_loss.to_bits()
    );
    assert_eq!(
        dense.original.overall_loss.to_bits(),
        legacy.original.overall_loss.to_bits()
    );
}

/// The parallel executor on the dense plane must aggregate bit-identically
/// to the per-call plane at multiple worker counts (the executor itself is
/// already jobs-invariant; this pins the data plane into that contract).
#[test]
fn parallel_trials_match_per_call_gather_at_any_jobs() {
    let fam = families::census();
    let cell = |per_call: bool, jobs: usize| {
        run_trials_parallel(
            &fam,
            &[30; 4],
            40,
            100.0,
            Strategy::OneShot,
            &quick_config(per_call).with_seed(11),
            3,
            jobs,
        )
    };
    let legacy = cell(true, 1);
    for jobs in [1, 4] {
        let dense = cell(false, jobs);
        assert_bit_identical(&dense, &legacy);
    }
}

/// Exhaustive-mode estimation (per-slice subsets) must also match across
/// data planes — it exercises `exhaustive_train_subset_rows` and the
/// single-slice evaluation path.
#[test]
fn exhaustive_estimation_matches_per_call_gather() {
    let fam = families::fashion();
    let run = |per_call: bool| {
        let ds = SlicedDataset::generate(&fam, &[25; 10], 30, 13);
        let mut src = PoolSource::new(fam.clone(), 77);
        let mut cfg = quick_config(per_call)
            .with_seed(3)
            .with_mode(st_curve::EstimationMode::Exhaustive);
        cfg.repeats = 1;
        let tuner = SliceTuner::new(ds, &mut src, cfg);
        tuner.estimate_curves(0)
    };
    let dense = run(false);
    let legacy = run(true);
    for (d, l) in dense.iter().zip(&legacy) {
        assert_eq!(d.a.to_bits(), l.a.to_bits());
        assert_eq!(d.b.to_bits(), l.b.to_bits());
    }
}

/// The snapshot cache must follow the working dataset through an
/// acquisition inside a strategy run: after `run` absorbs new data, a
/// fresh evaluation must reflect the grown training set (i.e. no stale
/// matrices leak into later phases).
#[test]
fn snapshot_tracks_acquisitions_within_a_run() {
    let fam = families::census();
    let ds = SlicedDataset::generate(&fam, &[30; 4], 40, 9);
    let before_rows = ds.matrices().train_x.rows();
    let mut src = PoolSource::new(fam.clone(), 21);
    let mut tuner = SliceTuner::new(ds, &mut src, quick_config(false).with_seed(1));
    let result = tuner.run(Strategy::Uniform, 80.0);
    let after = tuner.dataset().matrices();
    let grown: usize = result.acquired.iter().sum();
    assert_eq!(after.train_x.rows(), before_rows + grown);
    assert_eq!(after.train_y.len(), before_rows + grown);
    // And the snapshot still mirrors the example lists exactly — gathered
    // through the canonical row order, so the check also holds for the
    // append layout incremental mode uses (ST_INCREMENTAL=1).
    let fresh = tuner.dataset().build_matrices();
    let order = after.canonical_row_order();
    assert_eq!(order.len(), fresh.train_x.rows());
    for (logical, &phys) in order.iter().enumerate() {
        assert_eq!(after.train_x.row(phys), fresh.train_x.row(logical));
        assert_eq!(after.train_y[phys], fresh.train_y[logical]);
    }
}
