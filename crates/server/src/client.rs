//! A blocking HTTP client speaking the server's one-request-per-connection
//! dialect, with the retry discipline the crash-only contract expects:
//!
//! * a dropped connection (EOF before any status line — what
//!   `conn_drop` chaos produces) is retried after a short backoff;
//! * `408`/`429`/`500`/`503` are retried, honouring the server's
//!   `Retry-After` backoff hint (capped so chaos tests stay fast);
//! * everything else is returned to the caller as-is.
//!
//! Because every mutating endpoint is idempotent (an advance that
//! already happened serves the checkpointed state), blind retries are
//! safe — that is the point of the crash-only design.
//!
//! The client is also where `slow_client@<req>:ms<M>` chaos lives: the
//! `<req>`-th request *sent through a counter* (shared across a fleet of
//! clients via [`Client::with_counter`]) is trickled onto the wire over
//! `M` milliseconds, exercising the server's total read deadline.

use st_linalg::fault;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The maximum sleep honoured from a `Retry-After` hint; real deployments
/// would honour the full hint, chaos tests must not stall for 30 s.
const MAX_BACKOFF: Duration = Duration::from_millis(500);

#[derive(Debug, Clone)]
pub struct ClientResponse {
    pub status: u16,
    pub retry_after: Option<u64>,
    pub body: String,
}

pub struct Client {
    addr: SocketAddr,
    /// Per-attempt socket timeout.
    pub timeout: Duration,
    /// Total attempts per request (first try included).
    pub attempts: u32,
    counter: Arc<AtomicU64>,
}

impl Client {
    pub fn new(addr: SocketAddr) -> Client {
        Client {
            addr,
            timeout: Duration::from_secs(120),
            attempts: 6,
            counter: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Shares a send-ordinal counter across a fleet of clients so
    /// `slow_client@<req>` addresses the fleet's `<req>`-th request.
    pub fn with_counter(mut self, counter: Arc<AtomicU64>) -> Client {
        self.counter = counter;
        self
    }

    /// One request with retries. Returns the last response (or transport
    /// error) once attempts are exhausted or a non-retryable status
    /// arrives.
    pub fn request(&self, method: &str, path: &str, body: &str) -> Result<ClientResponse, String> {
        let mut last_err = String::new();
        for attempt in 0..self.attempts {
            if attempt > 0 {
                std::thread::sleep(Duration::from_millis(50 * u64::from(attempt)));
            }
            let ordinal = self.counter.fetch_add(1, Ordering::SeqCst) + 1;
            let trickle = fault::slow_client(ordinal);
            match self.once(method, path, body, trickle) {
                Ok(resp) => {
                    let retryable = matches!(resp.status, 408 | 429 | 500 | 503);
                    if !retryable || attempt + 1 == self.attempts {
                        return Ok(resp);
                    }
                    if let Some(secs) = resp.retry_after {
                        std::thread::sleep(Duration::from_secs(secs).min(MAX_BACKOFF));
                    }
                    last_err = format!("status {}", resp.status);
                }
                Err(e) => last_err = e,
            }
        }
        Err(format!(
            "request {method} {path} failed after {} attempts: {last_err}",
            self.attempts
        ))
    }

    fn once(
        &self,
        method: &str,
        path: &str,
        body: &str,
        trickle_ms: Option<u64>,
    ) -> Result<ClientResponse, String> {
        let mut stream = TcpStream::connect_timeout(&self.addr, self.timeout)
            .map_err(|e| format!("connect: {e}"))?;
        stream
            .set_read_timeout(Some(self.timeout))
            .map_err(|e| e.to_string())?;
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: st\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        let wire = [head.as_bytes(), body.as_bytes()].concat();
        match trickle_ms {
            None => stream.write_all(&wire).map_err(|e| format!("write: {e}"))?,
            Some(ms) => {
                // Slow-loris chaos: pace the bytes over ~`ms` total.
                let chunks = 8usize;
                let pause = Duration::from_millis(ms / chunks as u64);
                let step = wire.len().div_ceil(chunks).max(1);
                for chunk in wire.chunks(step) {
                    stream.write_all(chunk).map_err(|e| format!("write: {e}"))?;
                    stream.flush().ok();
                    std::thread::sleep(pause);
                }
            }
        }
        let mut raw = String::new();
        stream
            .read_to_string(&mut raw)
            .map_err(|e| format!("read: {e}"))?;
        if raw.is_empty() {
            // conn_drop chaos (or a crashed worker): EOF with no bytes.
            return Err("connection dropped before a response".to_string());
        }
        parse_response(&raw)
    }
}

fn parse_response(raw: &str) -> Result<ClientResponse, String> {
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or("response has no header terminator")?;
    let status_line = head.lines().next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line '{status_line}'"))?;
    let retry_after = head.lines().find_map(|line| {
        let (name, value) = line.split_once(':')?;
        if name.trim().eq_ignore_ascii_case("retry-after") {
            value.trim().parse().ok()
        } else {
            None
        }
    });
    Ok(ClientResponse {
        status,
        retry_after,
        body: body.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_status_retry_after_and_body() {
        let raw = "HTTP/1.1 429 Too Many Requests\r\nContent-Length: 2\r\nRetry-After: 7\r\n\r\nhi";
        let resp = parse_response(raw).expect("parse");
        assert_eq!(resp.status, 429);
        assert_eq!(resp.retry_after, Some(7));
        assert_eq!(resp.body, "hi");
    }

    #[test]
    fn rejects_garbage_responses() {
        assert!(parse_response("no header end").is_err());
        assert!(parse_response("NOPE\r\n\r\nbody").is_err());
    }
}
