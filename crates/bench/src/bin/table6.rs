//! Table 6: Moderate vs the Uniform and Water-filling baselines under the
//! three initial-size settings (Basic / Bad for Uniform / Bad for Water
//! filling), with λ = 0.1 like the paper.

use slice_tuner::{Setting, Strategy, TSchedule};
use st_bench::{rule, run_cell, trials, FamilySetup};

fn main() {
    // Bench-wide kernel default: `sharded` on multi-core hosts, `simd`
    // on single-core containers; `ST_KERNEL` overrides (see docs/kernels.md).
    st_bench::init_bench_kernel();
    let settings = [
        Setting::Basic,
        Setting::BadForUniform,
        Setting::BadForWaterFilling,
    ];
    let methods = [
        ("Uni", Strategy::Uniform),
        ("WF", Strategy::WaterFilling),
        ("Mod", Strategy::Iterative(TSchedule::moderate())),
    ];
    let trials = trials();

    println!("Table 6: Moderate vs baselines under three settings (λ = 0.1, {trials} trials)\n");
    for setup in FamilySetup::all() {
        // Paper: B = 3K for image datasets, 300 for AdultCensus.
        let budget = if setup.label == "AdultCensus" {
            300.0
        } else {
            3000.0
        };
        let budget = if st_bench::quick() {
            budget / 4.0
        } else {
            budget
        };
        println!("== {} (B = {budget}) ==", setup.label);
        println!(
            "{:<24} {:<5} {:>16} {:>16} {:>9}",
            "Setting", "Alg", "Loss", "Avg EER", "(iters)"
        );
        rule(74);
        for setting in &settings {
            let sizes = setting.initial_sizes(&setup.family, setup.initial, 6);
            for (name, strategy) in &methods {
                let cfg = setup.config(3).with_lambda(0.1);
                let agg = run_cell(
                    &setup.family,
                    &sizes,
                    setup.validation,
                    budget,
                    *strategy,
                    &cfg,
                    trials,
                );
                let iters = if matches!(strategy, Strategy::Iterative(_)) {
                    format!("({:.0})", agg.iterations)
                } else {
                    String::new()
                };
                println!(
                    "{:<24} {:<5} {:>7.3} ± {:<6.3} {:>7.3} ± {:<6.3} {:>9}",
                    setting.name(),
                    name,
                    agg.loss.mean,
                    agg.loss.std,
                    agg.avg_eer.mean,
                    agg.avg_eer.std,
                    iters
                );
            }
        }
        println!();
    }
    println!("(paper shape: Mod ≤ both baselines everywhere; Uniform suffers most in");
    println!(" 'Bad for Uniform'; Water filling suffers most in 'Bad for Water filling')");
}
