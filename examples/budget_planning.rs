//! Budget planning with sensitivity analysis.
//!
//! ```sh
//! cargo run --release --example budget_planning
//! ```
//!
//! Before spending crowdsourcing money, a practitioner wants to know: what
//! is another unit of budget worth, where would it go, and when do returns
//! flatten? This example estimates learning curves once, then interrogates
//! the acquisition program directly — no data is acquired.

use slice_tuner::{PoolSource, SliceTuner, TunerConfig};
use st_data::{families, SlicedDataset};
use st_models::ModelSpec;
use st_optim::{budget_curve, budget_sensitivity, AcquisitionProblem, BarrierOptions};

fn main() {
    // UTKFace analog: 8 face slices with real Table 1 costs.
    let family = families::faces();
    let dataset = SlicedDataset::generate(&family, &[300; 8], 300, 21);
    let mut pool = PoolSource::new(family.clone(), 21);
    let config = TunerConfig::new(ModelSpec::basic()).with_seed(21);
    let tuner = SliceTuner::new(dataset, &mut pool, config);

    println!(
        "estimating learning curves ({} slices)...",
        family.num_slices()
    );
    let curves = tuner.estimate_curves(0);
    for (name, c) in family.slice_names().iter().zip(&curves) {
        println!("  {name:<14} y = {:.3}·x^(-{:.3})", c.b, c.a);
    }

    let sizes: Vec<f64> = tuner
        .dataset()
        .train_sizes()
        .iter()
        .map(|&s| s as f64)
        .collect();
    let problem = AcquisitionProblem::new(curves, sizes, tuner.dataset().costs(), 3000.0, 1.0);

    // Where would the next unit of budget go at B = 3000?
    let report = budget_sensitivity(&problem, &BarrierOptions::default());
    println!("\nat B = 3000:");
    println!(
        "  marginal objective value: {:.6} per budget unit",
        report.marginal_value
    );
    println!(
        "  {:<14} {:>12} {:>14}",
        "slice", "allocation", "next-unit share"
    );
    for (i, name) in family.slice_names().iter().enumerate() {
        println!(
            "  {name:<14} {:>12.0} {:>14.3}",
            report.allocation[i],
            report.allocation_gradient[i] * problem.costs[i]
        );
    }

    // How fast do returns flatten?
    let budgets = [500.0, 1000.0, 2000.0, 4000.0, 8000.0, 16000.0];
    let sweep = budget_curve(&problem, &budgets, &BarrierOptions::default());
    println!("\nobjective vs budget (diminishing returns):");
    let mut prev: Option<(f64, f64)> = None;
    for (b, f) in sweep {
        let rate = prev
            .map(|(pb, pf)| format!("{:+.6}/unit", (f - pf) / (b - pb)))
            .unwrap_or_else(|| "-".into());
        println!("  B = {b:<8.0} objective = {f:.4}   marginal {rate}");
        prev = Some((b, f));
    }
    println!("\n(the marginal column shrinking toward zero is the 'plateau' of Figure 5 —");
    println!(" the point where further acquisition is not worth the crowdsourcing effort)");
}
