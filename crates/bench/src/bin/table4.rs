//! Tables 4 and 5: the λ accuracy–fairness tradeoff with the Moderate
//! method, and the per-slice acquisitions behind the Fashion-MNIST rows.

use slice_tuner::{Strategy, TSchedule};
use st_bench::{fmt_counts, rule, run_cell, trials, FamilySetup};

fn main() {
    // Bench-wide kernel default: `sharded` on multi-core hosts, `simd`
    // on single-core containers; `ST_KERNEL` overrides (see docs/kernels.md).
    st_bench::init_bench_kernel();
    let lambdas = [0.0, 0.1, 1.0, 10.0];
    let trials = trials();

    println!("Table 4: Moderate with varying λ ({trials} trials)");
    println!(
        "{:<14} {:>6} {:>8} {:>10} {:>10}",
        "Dataset", "λ", "Loss", "Avg EER", "Max EER"
    );
    rule(52);

    let mut table5: Vec<(f64, Vec<f64>)> = Vec::new();
    for setup in FamilySetup::all() {
        let sizes = setup.equal_sizes();
        let budget = setup.scaled_budget();
        for &lambda in &lambdas {
            let cfg = setup.config(2).with_lambda(lambda);
            let agg = run_cell(
                &setup.family,
                &sizes,
                setup.validation,
                budget,
                Strategy::Iterative(TSchedule::moderate()),
                &cfg,
                trials,
            );
            println!(
                "{:<14} {:>6} {:>8.3} {:>10.3} {:>10.3}",
                setup.label, lambda, agg.loss.mean, agg.avg_eer.mean, agg.max_eer.mean
            );
            if setup.label == "Fashion-MNIST" {
                table5.push((lambda, agg.acquired_mean.clone()));
            }
        }
        rule(52);
    }

    println!("\nTable 5: Fashion-MNIST acquisitions per slice across λ");
    for (lambda, counts) in &table5 {
        println!("λ = {lambda:<5} {}", fmt_counts(counts));
    }
    println!("\n(paper trend: higher λ lowers avg/max EER, raises loss, and concentrates");
    println!(" acquisition on the high-loss slices)");
}
