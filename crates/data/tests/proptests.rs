//! Property-based tests for the dataset substrate.

use proptest::prelude::*;
use st_data::dataset::imbalance_ratio_of;
use st_data::{DatasetFamily, GaussianSliceModel, LabelCluster, SliceSpec, SlicedDataset};

fn arb_family() -> impl Strategy<Value = DatasetFamily> {
    (2usize..5, 2usize..4).prop_map(|(n_slices, dim)| {
        let slices = (0..n_slices)
            .map(|i| {
                let center: Vec<f64> = (0..dim).map(|d| (i * dim + d) as f64 * 0.5).collect();
                let cluster = LabelCluster::new(i % 2, 1.0, center, 0.5 + i as f64 * 0.1);
                SliceSpec::new(
                    format!("s{i}"),
                    1.0 + i as f64 * 0.25,
                    GaussianSliceModel::new(vec![cluster], 0.05),
                )
            })
            .collect();
        DatasetFamily::new("prop", dim, 2, slices)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generation_sizes_always_honored(
        fam in arb_family(),
        sizes_seed in 0u64..1000,
        val in 1usize..20,
    ) {
        let sizes: Vec<usize> =
            (0..fam.num_slices()).map(|i| 1 + ((sizes_seed as usize + i * 7) % 40)).collect();
        let ds = SlicedDataset::generate(&fam, &sizes, val, sizes_seed);
        prop_assert_eq!(ds.train_sizes(), sizes);
        prop_assert!(ds.slices.iter().all(|s| s.validation.len() == val));
    }

    #[test]
    fn generation_is_pure(fam in arb_family(), seed in 0u64..500) {
        let sizes = vec![10; fam.num_slices()];
        let a = SlicedDataset::generate(&fam, &sizes, 5, seed);
        let b = SlicedDataset::generate(&fam, &sizes, 5, seed);
        prop_assert_eq!(a.all_train(), b.all_train());
    }

    #[test]
    fn imbalance_ratio_at_least_one(sizes in prop::collection::vec(1usize..1000, 1..10)) {
        let ir = imbalance_ratio_of(&sizes);
        prop_assert!(ir >= 1.0);
        // Scaling all sizes leaves the ratio unchanged.
        let doubled: Vec<usize> = sizes.iter().map(|s| s * 2).collect();
        prop_assert!((imbalance_ratio_of(&doubled) - ir).abs() < 1e-9);
    }

    #[test]
    fn joint_subset_is_per_slice_proportional(
        fam in arb_family(),
        frac in 0.1f64..1.0,
        seed in 0u64..200,
    ) {
        let sizes = vec![50; fam.num_slices()];
        let ds = SlicedDataset::generate(&fam, &sizes, 5, seed);
        let sub = ds.joint_train_subset_seeded(frac, seed, 3);
        for i in 0..fam.num_slices() {
            let k = sub.iter().filter(|e| e.slice.index() == i).count();
            let expected = (50.0 * frac).round() as usize;
            prop_assert!(k == expected.clamp(1, 50), "slice {i}: {k} vs {expected}");
        }
    }

    #[test]
    fn absorb_preserves_total_count(
        fam in arb_family(),
        extra in 1usize..30,
        seed in 0u64..200,
    ) {
        let sizes = vec![8; fam.num_slices()];
        let mut ds = SlicedDataset::generate(&fam, &sizes, 4, seed);
        let before = ds.all_train().len();
        let fresh = fam.sample_slice_seeded(st_data::SliceId(0), extra, seed, 99);
        ds.absorb(fresh);
        prop_assert_eq!(ds.all_train().len(), before + extra);
        prop_assert_eq!(ds.train_sizes()[0], 8 + extra);
    }

    #[test]
    fn sampled_features_are_finite(fam in arb_family(), seed in 0u64..200) {
        let ex = fam.sample_slice_seeded(st_data::SliceId(0), 50, seed, 0);
        prop_assert!(ex.iter().all(|e| e.features.iter().all(|f| f.is_finite())));
        prop_assert!(ex.iter().all(|e| e.label < fam.num_classes));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn csv_round_trip_is_lossless(
        rows in prop::collection::vec(
            (prop::collection::vec(-1e6f64..1e6, 3..=3), 0usize..5, 0usize..8),
            0..12,
        ),
    ) {
        let ex: Vec<st_data::Example> = rows
            .into_iter()
            .map(|(f, l, s)| st_data::Example::new(f, l, st_data::SliceId(s)))
            .collect();
        let back = st_data::read_examples(&st_data::write_examples(&ex)).unwrap();
        prop_assert_eq!(ex, back);
    }

    #[test]
    fn hflip_is_involutive_and_shift_composes(
        img in prop::collection::vec(-2.0f64..2.0, 24..=24),
        dy in -2i64..=2,
        dx in -2i64..=2,
    ) {
        // 4x6 image.
        let twice = st_data::augment::hflip(&st_data::augment::hflip(&img, 4, 6), 4, 6);
        prop_assert_eq!(&twice, &img);
        // Shifting there and back only loses what fell off the canvas:
        // surviving pixels match the original.
        let there = st_data::augment::shift(&img, 4, 6, dy, dx);
        let back = st_data::augment::shift(&there, 4, 6, -dy, -dx);
        for y in 0..4i64 {
            for x in 0..6i64 {
                let survived = y + dy >= 0 && y + dy < 4 && x + dx >= 0 && x + dx < 6;
                if survived {
                    prop_assert_eq!(back[(y * 6 + x) as usize], img[(y * 6 + x) as usize]);
                }
            }
        }
    }

    #[test]
    fn stratified_split_partitions_exactly(
        n in 4usize..60,
        frac in 0.0f64..1.0,
        seed in 0u64..100,
    ) {
        let ex: Vec<st_data::Example> = (0..n)
            .map(|i| st_data::Example::new(vec![i as f64], i % 3, st_data::SliceId(0)))
            .collect();
        let mut rng = st_data::seeded_rng(seed);
        let (train, val) = st_data::stratified_split(&ex, frac, &mut rng);
        prop_assert_eq!(train.len() + val.len(), n);
        // No example lost or duplicated.
        let mut ids: Vec<i64> = train.iter().chain(&val).map(|e| e.features[0] as i64).collect();
        ids.sort_unstable();
        let expect: Vec<i64> = (0..n as i64).collect();
        prop_assert_eq!(ids, expect);
    }

    /// The dense-snapshot cache contract: a cached `matrices()` read must
    /// be bit-identical to a from-scratch `build_matrices()` at every
    /// point of a mutate/read sequence — before any acquisition, after an
    /// acquisition step invalidates the (train half of the) cache, and
    /// after an explicit invalidation. Under `ST_NO_MATRIX_CACHE=1` the
    /// same assertions run with reuse disabled, guarding the
    /// rebuild-equals-hit half of the contract.
    #[test]
    fn cached_matrices_bit_identical_to_fresh_gather(
        fam in arb_family(),
        size_a in 1usize..20,
        size_b in 0usize..15,
        val in 1usize..10,
        grow in 1usize..12,
        seed in 0u64..1000,
    ) {
        let n = fam.num_slices();
        let mut sizes = vec![size_a; n];
        sizes[n - 1] = size_b;
        let mut ds = SlicedDataset::generate(&fam, &sizes, val, seed);

        let check = |ds: &SlicedDataset| {
            let cached = ds.matrices();
            let fresh = ds.build_matrices();
            assert_eq!(cached.train_x.as_slice(), fresh.train_x.as_slice());
            assert_eq!(cached.train_y, fresh.train_y);
            assert_eq!(cached.slice_rows, fresh.slice_rows);
            for s in 0..n {
                assert_eq!(cached.val_x[s].as_slice(), fresh.val_x[s].as_slice());
                assert_eq!(cached.val_y[s], fresh.val_y[s]);
            }
        };

        check(&ds);
        // Acquisition invalidates: the rebuilt snapshot must track it.
        ds.absorb(fam.sample_slice_seeded(st_data::SliceId(seed as usize % n), grow, seed, 7));
        check(&ds);
        // A second read is a cache hit (or a rebuild under
        // ST_NO_MATRIX_CACHE=1) — same bits either way.
        check(&ds);
        ds.invalidate_matrices();
        check(&ds);
    }

    /// Row-id subsets must name exactly the examples the cloning subsets
    /// pick (same RNG stream), and the per-slice counts must equal the
    /// per-slice re-scan they replace.
    #[test]
    fn subset_rows_match_cloned_subsets(
        fam in arb_family(),
        size in 1usize..25,
        frac in 0.01f64..1.0,
        seed in 0u64..1000,
    ) {
        let n = fam.num_slices();
        let ds = SlicedDataset::generate(&fam, &vec![size; n], 2, seed);
        let m = ds.matrices();

        let sub = ds.joint_train_subset_seeded(frac, seed, 0);
        let rows = ds.joint_train_subset_rows_seeded(frac, seed, 0);
        prop_assert_eq!(rows.rows.len(), sub.len());
        for (&r, e) in rows.rows.iter().zip(&sub) {
            prop_assert_eq!(m.train_x.row(r), &e.features[..]);
            prop_assert_eq!(m.train_y[r], e.label);
        }
        for s in 0..n {
            let scan = sub.iter().filter(|e| e.slice == st_data::SliceId(s)).count();
            prop_assert_eq!(rows.per_slice[s], scan);
        }

        let k = (size as f64 * frac).ceil() as usize;
        let mut rng1 = st_data::seeded_rng(seed ^ 5);
        let ex_sub = ds.exhaustive_train_subset(st_data::SliceId(0), k, &mut rng1);
        let mut rng2 = st_data::seeded_rng(seed ^ 5);
        let ex_rows = ds.exhaustive_train_subset_rows(st_data::SliceId(0), k, &mut rng2);
        prop_assert_eq!(ex_rows.rows.len(), ex_sub.len());
        for (&r, e) in ex_rows.rows.iter().zip(&ex_sub) {
            prop_assert_eq!(m.train_x.row(r), &e.features[..]);
        }
        prop_assert_eq!(ex_rows.per_slice[0], k.min(size));
    }

    #[test]
    fn k_fold_held_out_sets_partition(
        n in 6usize..40,
        k in 2usize..6,
        seed in 0u64..100,
    ) {
        prop_assume!(k <= n);
        let ex: Vec<st_data::Example> = (0..n)
            .map(|i| st_data::Example::new(vec![i as f64], 0, st_data::SliceId(0)))
            .collect();
        let mut rng = st_data::seeded_rng(seed);
        let folds = st_data::k_fold(&ex, k, &mut rng);
        let mut ids: Vec<i64> = folds
            .iter()
            .flat_map(|f| f.held_out.iter().map(|e| e.features[0] as i64))
            .collect();
        ids.sort_unstable();
        let expect: Vec<i64> = (0..n as i64).collect();
        prop_assert_eq!(ids, expect);
    }

    #[test]
    fn image_samples_have_fixed_shape_and_finite_pixels(
        slice in 0usize..10,
        n in 1usize..20,
        seed in 0u64..50,
    ) {
        let fam = st_data::image_fashion();
        let mut rng = st_data::seeded_rng(seed);
        let ex = fam.sample_slice(st_data::SliceId(slice), n, &mut rng);
        prop_assert_eq!(ex.len(), n);
        for e in &ex {
            prop_assert_eq!(e.dim(), 64);
            prop_assert!(e.features.iter().all(|v| v.is_finite()));
            prop_assert!(e.label < 10);
        }
    }
}

// Drift plans must be a parse/print fixpoint and a pure function of the
// spec: the `ST_DRIFT` grammar round-trips through `Display` exactly
// (Rust's shortest-round-trip f64 printing makes magnitudes survive), and
// `drifted_model` is deterministic, applies an event only to its slice
// from its round onward, and leaves everything else on the stationary
// (allocation-free) path.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn drift_plan_specs_round_trip_through_display(
        events in prop::collection::vec(
            (0usize..3, 0u64..8, 0u64..10, -3.0f64..3.0),
            1..6,
        ),
    ) {
        use st_data::{DriftEvent, DriftKind, DriftPlan};
        let plan = DriftPlan {
            events: events
                .iter()
                .map(|&(k, slice, round, mag)| DriftEvent {
                    kind: [DriftKind::Shift, DriftKind::Label, DriftKind::Scale][k],
                    slice,
                    round,
                    mag,
                })
                .collect(),
        };
        let spec = plan
            .events
            .iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let reparsed = st_data::drift::parse_plan(&spec).expect("own output parses");
        prop_assert_eq!(reparsed, plan);
    }

    #[test]
    fn drifted_model_is_deterministic_and_scoped_to_its_event(
        kind in 0usize..3,
        slice in 0u64..4,
        round in 0u64..6,
        mag in 0.05f64..2.0,
        query_round in 0u64..8,
    ) {
        use st_data::{DriftEvent, DriftKind, DriftPlan};
        let base = GaussianSliceModel::new(
            vec![LabelCluster::new(0, 1.0, vec![0.5, -0.5], 0.7)],
            0.1,
        );
        let plan = DriftPlan {
            events: vec![DriftEvent {
                kind: [DriftKind::Shift, DriftKind::Label, DriftKind::Scale][kind],
                slice,
                round,
                mag,
            }],
        };
        let a = plan.drifted_model(&base, slice as usize, query_round);
        let b = plan.drifted_model(&base, slice as usize, query_round);
        prop_assert_eq!(&a, &b, "drifted_model must be pure");
        if query_round >= round {
            let drifted = a.expect("event round has passed; the model must drift");
            prop_assert_ne!(&drifted, &base, "a nonzero magnitude must change the model");
        } else {
            prop_assert!(a.is_none(), "the event has not fired yet");
        }
        // Other slices never see this event.
        prop_assert!(plan
            .drifted_model(&base, slice as usize + 1, query_round)
            .is_none());
    }
}
