//! Small dense linear solvers.
//!
//! The Levenberg–Marquardt refinement in `st-curve` solves 2×2 / 3×3 normal
//! equations thousands of times per experiment; these routines are exact,
//! allocation-light, and report singularity instead of producing NaNs.

use crate::Matrix;

/// Error from a linear solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// The system matrix is singular (or numerically indistinguishable from
    /// singular) at the given pivot column.
    Singular { pivot: usize },
    /// The matrix is not square or the right-hand side has the wrong length.
    ShapeMismatch,
    /// Cholesky only: the matrix is not positive definite.
    NotPositiveDefinite { pivot: usize },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Singular { pivot } => write!(f, "singular matrix at pivot {pivot}"),
            SolveError::ShapeMismatch => write!(f, "shape mismatch in linear solve"),
            SolveError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix not positive definite at pivot {pivot}")
            }
        }
    }
}

impl std::error::Error for SolveError {}

const PIVOT_TOL: f64 = 1e-12;

/// Solves `A x = b` by Gaussian elimination with partial pivoting.
///
/// `a` is consumed by value because the elimination is performed in place on
/// a copy anyway; pass `a.clone()` if the matrix is still needed.
pub fn gaussian_solve(mut a: Matrix, b: &[f64]) -> Result<Vec<f64>, SolveError> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(SolveError::ShapeMismatch);
    }
    let mut x = b.to_vec();

    for col in 0..n {
        // Partial pivot: pick the largest |entry| in this column.
        let mut pivot_row = col;
        let mut pivot_val = a[(col, col)].abs();
        for r in col + 1..n {
            let v = a[(r, col)].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val < PIVOT_TOL {
            return Err(SolveError::Singular { pivot: col });
        }
        if pivot_row != col {
            for c in 0..n {
                let tmp = a[(col, c)];
                a[(col, c)] = a[(pivot_row, c)];
                a[(pivot_row, c)] = tmp;
            }
            x.swap(col, pivot_row);
        }
        let inv = 1.0 / a[(col, col)];
        // Eliminate below the pivot with contiguous row-slice axpys: split
        // the buffer so the pivot row (head) and the target rows (tail) can
        // be borrowed simultaneously.
        let (head, tail) = a.as_mut_slice().split_at_mut((col + 1) * n);
        let pivot_row = &head[col * n + col + 1..(col + 1) * n];
        for (off, row) in tail.chunks_exact_mut(n).enumerate() {
            let r = col + 1 + off;
            let factor = row[col] * inv;
            if factor == 0.0 {
                continue;
            }
            row[col] = 0.0;
            for (o, &v) in row[col + 1..].iter_mut().zip(pivot_row) {
                *o -= factor * v;
            }
            x[r] -= factor * x[col];
        }
    }

    // Back substitution.
    for col in (0..n).rev() {
        let mut acc = x[col];
        for c in col + 1..n {
            acc -= a[(col, c)] * x[c];
        }
        x[col] = acc / a[(col, col)];
    }
    Ok(x)
}

/// Solves `A x = b` for symmetric positive definite `A` via Cholesky
/// factorization (`A = L Lᵀ`).
pub fn cholesky_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, SolveError> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(SolveError::ShapeMismatch);
    }
    // Factor. The inner reduction streams two row prefixes of `L`
    // (row-major contiguous) instead of walking strided columns; the
    // subtraction order over `k` is unchanged.
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for (&x, &y) in l.row(i)[..j].iter().zip(&l.row(j)[..j]) {
                sum -= x * y;
            }
            if i == j {
                if sum <= PIVOT_TOL {
                    return Err(SolveError::NotPositiveDefinite { pivot: i });
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    // Forward substitution: L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut acc = b[i];
        for k in 0..i {
            acc -= l[(i, k)] * y[k];
        }
        y[i] = acc / l[(i, i)];
    }
    // Back substitution: Lᵀ x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut acc = y[i];
        for k in i + 1..n {
            acc -= l[(k, i)] * x[k];
        }
        x[i] = acc / l[(i, i)];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        crate::vector::linf_norm(&crate::vector::sub(&a.matvec(x), b))
    }

    #[test]
    fn gaussian_solves_identity() {
        let a = Matrix::identity(3);
        let b = vec![1., 2., 3.];
        assert_eq!(gaussian_solve(a, &b).unwrap(), b);
    }

    #[test]
    fn gaussian_solves_general_system() {
        let a = Matrix::from_vec(3, 3, vec![2., 1., -1., -3., -1., 2., -2., 1., 2.]);
        let b = vec![8., -11., -3.];
        let x = gaussian_solve(a.clone(), &b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-10);
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
        assert!((x[2] + 1.0).abs() < 1e-10);
    }

    #[test]
    fn gaussian_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_vec(2, 2, vec![0., 1., 1., 0.]);
        let x = gaussian_solve(a, &[3., 7.]).unwrap();
        assert_eq!(x, vec![7., 3.]);
    }

    #[test]
    fn gaussian_reports_singular() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 2., 4.]);
        assert!(matches!(
            gaussian_solve(a, &[1., 2.]),
            Err(SolveError::Singular { .. })
        ));
    }

    #[test]
    fn gaussian_rejects_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        assert_eq!(gaussian_solve(a, &[1., 2.]), Err(SolveError::ShapeMismatch));
    }

    #[test]
    fn cholesky_matches_gaussian_on_spd() {
        let a = Matrix::from_vec(3, 3, vec![4., 1., 0., 1., 3., 1., 0., 1., 2.]);
        let b = vec![1., 2., 3.];
        let xc = cholesky_solve(&a, &b).unwrap();
        let xg = gaussian_solve(a.clone(), &b).unwrap();
        for (c, g) in xc.iter().zip(&xg) {
            assert!((c - g).abs() < 1e-10);
        }
        assert!(residual(&a, &xc, &b) < 1e-10);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 2., 1.]);
        assert!(matches!(
            cholesky_solve(&a, &[1., 1.]),
            Err(SolveError::NotPositiveDefinite { .. })
        ));
    }
}
