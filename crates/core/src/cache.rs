//! Memoization of repeated learning-curve estimations.
//!
//! Curve estimation is the dominant cost of every Slice Tuner run: each
//! estimate is `K·R` (amortized) or `|S|·K·R` (exhaustive) model trainings.
//! Experiment suites re-estimate identical curves constantly — every
//! strategy that shares a trial seed sees the *same* initial dataset, and
//! sweep binaries (λ sweeps, budget sweeps, schedule comparisons) re-run
//! the same `(dataset, seed)` estimation once per swept value.
//!
//! [`CurveCache`] memoizes full [`SliceEstimate`] vectors behind a
//! [`parking_lot::Mutex`], keyed on the *content fingerprint* of the
//! dataset, a fingerprint of the model spec + training hyperparameters,
//! the estimator's derived seed, and the estimation schedule. Keying on
//! content (which covers every slice's size and examples) means two
//! same-shaped datasets from different trials can never alias, and keying
//! on the model means tuners training different architectures can share a
//! cache safely — a hit is bit-identical to recomputation, so cached runs
//! stay exactly as deterministic as uncached ones.
//!
//! The cache is opt-in: hand one to [`TunerConfig::with_cache`]
//! (`crate::TunerConfig::with_cache`) and share it (via [`Arc`]) across as
//! many tuners, strategies, and threads as useful. Trials with distinct
//! seeds have disjoint keys, so sharing one cache across a whole
//! experiment is always sound.
//!
//! **Incremental estimations bypass this cache.** Under
//! [`TunerConfig::incremental`](crate::TunerConfig), an exhaustive-mode
//! estimation's result is a merge of fresh measurements (dirty slices)
//! and the previous round's carried-over estimates (clean slices) — a
//! function of the whole acquisition history, not of the current dataset
//! content alone. No [`CurveKey`] can name that history, so inserting such
//! a result would poison lookups from non-incremental tuners that share
//! the cache; the tuner's exhaustive incremental path therefore never
//! consults or fills the cache. (Amortized incremental runs delegate to
//! the plain full schedule, whose results are content-keyed as usual and
//! stay cache-safe.)

use parking_lot::Mutex;
use st_curve::{EstimationMode, SliceEstimate};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Cache key: everything the estimation result is a function of.
///
/// `fractions` are stored as raw bits so the key is `Eq + Hash`; the same
/// configuration always produces the same bits. The model architecture and
/// training hyperparameters enter through `model_fingerprint` — without
/// them, two tuners sharing a cache over the same dataset but training
/// different models would silently read each other's fits.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CurveKey {
    /// Content hash of the dataset (`SlicedDataset::fingerprint`).
    pub dataset_fingerprint: u64,
    /// Hash of the model spec + training hyperparameters (see
    /// [`model_fingerprint`]).
    pub model_fingerprint: u64,
    /// The estimator's fully derived seed (master seed × stream).
    pub seed: u64,
    /// Subset fractions, as `f64::to_bits`.
    pub fraction_bits: Vec<u64>,
    /// Curves averaged per slice.
    pub repeats: usize,
    /// `true` for exhaustive scheduling, `false` for amortized.
    pub exhaustive: bool,
}

impl CurveKey {
    /// Assembles a key from estimation inputs.
    pub fn new(
        dataset_fingerprint: u64,
        model_fingerprint: u64,
        seed: u64,
        fractions: &[f64],
        repeats: usize,
        mode: EstimationMode,
    ) -> Self {
        CurveKey {
            dataset_fingerprint,
            model_fingerprint,
            seed,
            fraction_bits: fractions.iter().map(|f| f.to_bits()).collect(),
            repeats,
            exhaustive: mode == EstimationMode::Exhaustive,
        }
    }
}

/// Hashes everything about the trained model an estimation depends on:
/// the architecture and every training hyperparameter.
///
/// `train.seed` is deliberately excluded — the estimator overrides it with
/// a request-derived seed for every measurement, so it cannot influence
/// results and would only cause spurious cache misses.
pub fn model_fingerprint(spec: &st_models::ModelSpec, train: &st_models::TrainConfig) -> u64 {
    const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let seedless = st_models::TrainConfig {
        seed: 0,
        ..train.clone()
    };
    let repr = format!("{spec:?}|{seedless:?}");
    let mut h = OFFSET;
    for b in repr.bytes() {
        h = (h ^ b as u64).wrapping_mul(PRIME);
    }
    h
}

/// A shared, thread-safe memo table for curve estimations.
///
/// Results are stored as `Arc<Vec<SliceEstimate>>` so a hit is a pointer
/// clone, not a deep copy.
#[derive(Default)]
pub struct CurveCache {
    entries: Mutex<HashMap<CurveKey, Arc<Vec<SliceEstimate>>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl CurveCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Convenience: an empty cache behind an [`Arc`], ready to share.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Returns the cached estimate for `key`, or computes it with `compute`
    /// and stores it.
    ///
    /// The lock is *not* held during `compute` (estimations run many model
    /// trainings); two threads racing on the same fresh key may both
    /// compute, and the first insert wins — both receive identical values,
    /// so results never depend on the race.
    pub fn get_or_compute(
        &self,
        key: CurveKey,
        compute: impl FnOnce() -> Vec<SliceEstimate>,
    ) -> Arc<Vec<SliceEstimate>> {
        if let Some(found) = self.entries.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(found);
        }
        let fresh = Arc::new(compute());
        self.misses.fetch_add(1, Ordering::Relaxed);
        Arc::clone(self.entries.lock().entry(key).or_insert(fresh))
    }

    /// Number of lookups answered from the cache.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to compute.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct estimations stored.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        self.entries.lock().clear();
    }
}

impl std::fmt::Debug for CurveCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CurveCache")
            .field("entries", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_curve::PowerLaw;

    fn key(seed: u64) -> CurveKey {
        CurveKey::new(
            0xF00D,
            0xCAFE,
            seed,
            &[0.5, 1.0],
            2,
            EstimationMode::Amortized,
        )
    }

    fn estimate(b: f64) -> Vec<SliceEstimate> {
        vec![SliceEstimate {
            fit: Ok(PowerLaw::new(b, 0.3)),
            repeat_fits: vec![],
            points: vec![],
        }]
    }

    #[test]
    fn second_lookup_hits_without_recompute() {
        let cache = CurveCache::new();
        let mut computes = 0;
        for _ in 0..3 {
            let out = cache.get_or_compute(key(1), || {
                computes += 1;
                estimate(2.0)
            });
            assert_eq!(out[0].fit.as_ref().unwrap().b, 2.0);
        }
        assert_eq!(computes, 1);
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (2, 1, 1));
    }

    #[test]
    fn distinct_keys_do_not_alias() {
        let cache = CurveCache::new();
        let a = cache.get_or_compute(key(1), || estimate(1.0));
        let b = cache.get_or_compute(key(2), || estimate(9.0));
        assert_eq!(a[0].fit.as_ref().unwrap().b, 1.0);
        assert_eq!(b[0].fit.as_ref().unwrap().b, 9.0);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn key_distinguishes_every_component() {
        let base = key(1);
        let mut content = base.clone();
        content.dataset_fingerprint ^= 1;
        let mut model = base.clone();
        model.model_fingerprint ^= 1;
        let mut fracs = base.clone();
        fracs.fraction_bits.pop();
        let mut mode = base.clone();
        mode.exhaustive = !mode.exhaustive;
        for other in [content, model, fracs, mode] {
            assert_ne!(base, other);
        }
    }

    #[test]
    fn model_fingerprint_tracks_spec_and_hypers_but_not_seed() {
        use st_models::{ModelSpec, TrainConfig};
        let base = TrainConfig::default();
        let softmax = model_fingerprint(&ModelSpec::softmax(), &base);
        assert_ne!(
            softmax,
            model_fingerprint(&ModelSpec::deep(), &base),
            "architecture must enter the key"
        );
        assert_ne!(
            softmax,
            model_fingerprint(
                &ModelSpec::softmax(),
                &TrainConfig {
                    epochs: 99,
                    ..base.clone()
                }
            ),
            "training hyperparameters must enter the key"
        );
        assert_eq!(
            softmax,
            model_fingerprint(&ModelSpec::softmax(), &TrainConfig { seed: 123, ..base }),
            "the overridden train seed must not cause misses"
        );
    }

    #[test]
    fn clear_empties_entries() {
        let cache = CurveCache::new();
        let _ = cache.get_or_compute(key(1), || estimate(1.0));
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_same_key_is_consistent() {
        let cache = std::sync::Arc::new(CurveCache::new());
        crossbeam::scope(|s| {
            for _ in 0..8 {
                let cache = std::sync::Arc::clone(&cache);
                s.spawn(move |_| {
                    let out = cache.get_or_compute(key(7), || estimate(4.0));
                    assert_eq!(out[0].fit.as_ref().unwrap().b, 4.0);
                });
            }
        })
        .unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.hits() + cache.misses(), 8);
    }
}
