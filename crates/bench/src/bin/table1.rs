//! Table 1: the collection costs of UTKFace slices, proportional to the
//! average seconds an MTurk task takes.
//!
//! Runs the crowdsourcing simulator for a batch of tasks per slice and
//! derives the cost row from the *observed* mean latencies — the same
//! normalization the paper applies to its measured times.

use slice_tuner::{AcquisitionSource, CrowdConfig, CrowdSimulator};
use st_bench::rule;
use st_data::{families, SliceId};

fn main() {
    // Bench-wide kernel default: `sharded` on multi-core hosts, `simd`
    // on single-core containers; `ST_KERNEL` overrides (see docs/kernels.md).
    st_bench::init_bench_kernel();
    let family = families::faces();
    let mut sim = CrowdSimulator::new(family.clone(), CrowdConfig::utkface(), 1);
    let per_slice = if st_bench::quick() { 100 } else { 500 };
    for i in 0..family.num_slices() {
        let _ = sim.acquire(SliceId(i), per_slice);
    }

    println!("Table 1: collection costs of UTKFace slices");
    println!("(observed over {per_slice} accepted images per slice)\n");
    let header: Vec<String> = family.slice_names().iter().map(|n| shorten(n)).collect();
    println!("{:<14} {}", "", header.join("  "));
    rule(14 + header.len() * 6);
    let means = sim.stats().mean_seconds();
    let row: Vec<String> = means.iter().map(|m| format!("{m:>5.1}")).collect();
    println!("{:<14} {}", "Avg. time (s)", row.join(" "));
    let costs = sim.stats().derived_costs();
    let row: Vec<String> = costs.iter().map(|c| format!("{c:>5.1}")).collect();
    println!("{:<14} {}", "Cost C", row.join(" "));

    println!("\npaper reference:");
    let row: Vec<String> = families::faces::FACE_TASK_SECONDS
        .iter()
        .map(|m| format!("{m:>5.1}"))
        .collect();
    println!("{:<14} {}", "Avg. time (s)", row.join(" "));
    let row: Vec<String> = families::faces::FACE_COSTS
        .iter()
        .map(|c| format!("{c:>5.1}"))
        .collect();
    println!("{:<14} {}", "Cost C", row.join(" "));

    let st = sim.stats();
    println!(
        "\npipeline: {} tasks, {} duplicates removed, {} mistakes filtered, ${:.2} paid",
        st.tasks.iter().sum::<usize>(),
        st.duplicates.iter().sum::<usize>(),
        st.mistakes.iter().sum::<usize>(),
        st.dollars
    );
}

fn shorten(name: &str) -> String {
    // White_Male -> W_M, matching the paper's header.
    name.split('_')
        .map(|p| &p[..1])
        .collect::<Vec<_>>()
        .join("_")
}
