//! Free functions on `&[f64]` vectors.

/// Dot product of two equally-sized slices.
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x`, in place.
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Elementwise difference `a - b` as a new vector.
///
/// # Panics
/// Panics if the lengths differ.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// In-place scalar multiplication.
#[inline]
pub fn scale_in_place(v: &mut [f64], alpha: f64) {
    for x in v {
        *x *= alpha;
    }
}

/// Euclidean norm.
pub fn l2_norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Maximum absolute entry (0 for an empty slice).
pub fn linf_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
}

/// Index of the maximum entry; ties break toward the smaller index.
///
/// # Panics
/// Panics on an empty slice.
pub fn argmax(v: &[f64]) -> usize {
    assert!(!v.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &x) in v.iter().enumerate().skip(1) {
        if x > v[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_orthogonal_is_zero() {
        assert_eq!(dot(&[1., 0.], &[0., 5.]), 0.0);
    }

    #[test]
    fn dot_known_value() {
        assert_eq!(dot(&[1., 2., 3.], &[4., 5., 6.]), 32.0);
    }

    #[test]
    #[should_panic(expected = "dot length mismatch")]
    fn dot_rejects_mismatched_lengths() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn sub_elementwise() {
        assert_eq!(sub(&[3., 2.], &[1., 5.]), vec![2., -3.]);
    }

    #[test]
    fn norms_agree_on_axis_vector() {
        let v = [0.0, -3.0, 0.0];
        assert_eq!(l2_norm(&v), 3.0);
        assert_eq!(linf_norm(&v), 3.0);
    }

    #[test]
    fn argmax_breaks_ties_low() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
        assert_eq!(argmax(&[-2.0]), 0);
    }

    #[test]
    fn linf_of_empty_is_zero() {
        assert_eq!(linf_norm(&[]), 0.0);
    }
}
