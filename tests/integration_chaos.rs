//! Integration: the ST_FAULT chaos suite.
//!
//! Every fault the harness can inject must leave the tuning run *standing*:
//! transient worker panics are retried bit-identically, persistent NaN
//! losses exhaust their retries and quarantine the slice (surfacing a
//! structured warning), and diverging fits fall back to the existing
//! cross-slice fallback curves. A fault plan must never abort a run unless
//! retries are explicitly disabled.
//!
//! Plans are installed in-process via [`st_linalg::fault::install`], which
//! is process-global — every test here holds one lock for its whole body so
//! plans cannot leak between tests.

use slice_tuner::{
    run_trials, run_trials_parallel, try_run_trials_parallel, AggregateResult, Strategy, TSchedule,
    TunerConfig, TuningWarning,
};
use st_curve::EstimationMode;
use st_data::families;
use st_linalg::fault;
use st_models::ModelSpec;
use std::sync::{Mutex, MutexGuard};

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Installs `plan` for the duration of a scope; clears it on drop even if
/// the scope panics, so a failing test cannot poison its neighbours.
struct PlanGuard {
    _serial: MutexGuard<'static, ()>,
}

impl PlanGuard {
    fn install(spec: &str) -> Self {
        let guard = PlanGuard { _serial: serial() };
        fault::install(Some(fault::parse_plan(spec).expect("valid test plan")));
        guard
    }
}

impl Drop for PlanGuard {
    fn drop(&mut self) {
        fault::install(None);
    }
}

fn quick_config() -> TunerConfig {
    let mut cfg = TunerConfig::new(ModelSpec::softmax());
    cfg.train.epochs = 8;
    cfg.fractions = vec![0.4, 0.7, 1.0];
    cfg.repeats = 1;
    cfg.threads = 1;
    cfg.max_iterations = 3;
    cfg
}

fn run_cell(cfg: &TunerConfig, trials: usize, jobs: Option<usize>) -> AggregateResult {
    let fam = families::census();
    let strategy = Strategy::Iterative(TSchedule::moderate());
    match jobs {
        None => run_trials(&fam, &[40; 4], 50, 150.0, strategy, cfg, trials),
        Some(j) => run_trials_parallel(&fam, &[40; 4], 50, 150.0, strategy, cfg, trials, j),
    }
}

fn assert_bit_identical(a: &AggregateResult, b: &AggregateResult) {
    assert!(
        a.bits_identical_to(b),
        "aggregates diverged:\n{a:?}\nvs\n{b:?}"
    );
}

/// A worker panic on the first attempt is retried from the pinned trial
/// seed, so the recovered run is bit-identical to a run that never saw the
/// fault — sequentially and under the parallel executor.
#[test]
fn transient_trial_panic_is_retried_bit_identically() {
    let clean = {
        let _g = serial();
        run_cell(&quick_config(), 2, None)
    };

    let _plan = PlanGuard::install("trial_panic@0");
    let recovered_seq = run_cell(&quick_config(), 2, None);
    assert_bit_identical(&clean, &recovered_seq);

    let recovered_par = run_cell(&quick_config(), 2, Some(4));
    assert_bit_identical(&clean, &recovered_par);
}

/// With retries explicitly disabled, the same panic becomes a *typed*
/// error naming the trial — never an `.expect` abort in the executor.
#[test]
fn trial_panic_with_retries_disabled_is_a_typed_error() {
    let _plan = PlanGuard::install("trial_panic@1");
    let fam = families::census();
    let cfg = quick_config().with_max_retries(0);
    let err = try_run_trials_parallel(
        &fam,
        &[40; 4],
        50,
        150.0,
        Strategy::Iterative(TSchedule::moderate()),
        &cfg,
        2,
        2,
    )
    .expect_err("attempt 0 panics and no retries remain");
    assert_eq!(err.trial, 1);
    assert_eq!(err.attempts, 1);
    assert!(
        err.to_string().contains("trial 1"),
        "diagnostic names the trial: {err}"
    );
}

/// A persistent NaN loss exhausts its retries, quarantines the slice, and
/// the run still completes — with a structured warning in the result.
#[test]
fn persistent_nan_loss_quarantines_the_slice_and_completes() {
    let _plan = PlanGuard::install("nan_loss@slice1:round1");
    let cfg = quick_config().with_mode(EstimationMode::Exhaustive);
    let agg = run_cell(&cfg, 1, None);

    let trial = &agg.trials[0];
    assert!(
        trial.report.overall_loss.is_finite(),
        "the run must complete with a usable report"
    );
    let quarantines: Vec<_> = trial
        .warnings
        .iter()
        .filter(|w| {
            matches!(
                w,
                TuningWarning::EstimationQuarantined {
                    slice: Some(1),
                    round: 1,
                    ..
                }
            )
        })
        .collect();
    assert!(
        !quarantines.is_empty(),
        "slice 1 / round 1 must surface a quarantine warning, got: {:?}",
        trial.warnings
    );
    let TuningWarning::EstimationQuarantined { attempts, .. } = quarantines[0] else {
        unreachable!("the filter above keeps only quarantine warnings");
    };
    assert!(
        *attempts >= 2,
        "retries must be exhausted before quarantine, got {attempts} attempt(s)"
    );
}

/// Universal fit divergence routes every slice through the fallback-curve
/// path; the run completes and allocation stays usable.
#[test]
fn universal_fit_divergence_falls_back_and_completes() {
    let _plan = PlanGuard::install("fit_diverge@1.0");
    let agg = run_cell(&quick_config(), 1, None);
    let trial = &agg.trials[0];
    assert!(trial.report.overall_loss.is_finite());
    assert!(
        trial.report.is_healthy(),
        "fallback curves keep evaluation sane"
    );
    assert!(
        trial.spent > 0.0,
        "allocation still proceeds on fallback curves"
    );
}

/// The kitchen sink: every fault class at once, on the paper's iterative
/// strategy under the parallel executor. The run must complete — retry for
/// the panic, quarantine for the NaN, fallbacks for the fits.
#[test]
fn combined_fault_plan_never_aborts() {
    let _plan = PlanGuard::install("trial_panic@0,nan_loss@slice2:round1,fit_diverge@0.3");
    let cfg = quick_config().with_mode(EstimationMode::Exhaustive);
    let agg = run_cell(&cfg, 2, Some(4));
    assert_eq!(agg.trials.len(), 2);
    for trial in &agg.trials {
        assert!(trial.report.overall_loss.is_finite());
        assert!(trial.iterations >= 1);
    }
}
