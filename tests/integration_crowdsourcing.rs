//! Integration of the crowdsourcing simulator with the full tuner: the
//! paper's UTKFace scenario, where acquisition is lossy (duplicates and
//! wrong-demographic submissions are filtered) and costs differ per slice.

use slice_tuner::{
    AcquisitionSource, CrowdConfig, CrowdSimulator, SliceTuner, Strategy, TSchedule, TunerConfig,
};
use st_data::{families, SliceId, SlicedDataset};
use st_models::ModelSpec;

fn crowd(seed: u64) -> CrowdSimulator {
    CrowdSimulator::new(families::faces(), CrowdConfig::utkface(), seed)
}

fn quick_config(seed: u64) -> TunerConfig {
    let mut cfg = TunerConfig::new(ModelSpec::small()).with_seed(seed);
    cfg.train.epochs = 10;
    cfg.fractions = vec![0.4, 0.7, 1.0];
    cfg.repeats = 1;
    cfg.threads = 1;
    cfg
}

#[test]
fn tuner_runs_against_the_crowd() {
    let fam = families::faces();
    let ds = SlicedDataset::generate(&fam, &[120; 8], 80, 31);
    let mut src = crowd(31);
    let mut tuner = SliceTuner::new(ds, &mut src, quick_config(31));
    let result = tuner.run(Strategy::Iterative(TSchedule::moderate()), 600.0);

    assert!(result.spent > 0.0 && result.spent <= 600.0 + 1e-9);
    assert!(result.acquired.iter().sum::<usize>() > 0);
    // Costs follow Table 1, so the cheapest slice is Black_Male (index 2).
    let stats_costs = src.stats().derived_costs();
    for (i, c) in stats_costs.iter().enumerate() {
        if src.stats().tasks[i] > 50 {
            assert!(
                (c - families::faces::FACE_COSTS[i]).abs() <= 0.3,
                "slice {i}: derived {c} vs table {}",
                families::faces::FACE_COSTS[i]
            );
        }
    }
}

#[test]
fn crowd_charges_only_for_accepted_images() {
    let mut src = crowd(5);
    let got = src.acquire(SliceId(7), 100);
    // Indian_Female costs 1.5 per image: the tuner would be charged
    // len * 1.5, and the simulator delivers exactly what was asked
    // (posting extra tasks to cover filtered submissions).
    assert_eq!(got.len(), 100);
    assert!(src.stats().tasks[7] >= 100);
    assert!((src.cost(SliceId(7)) - 1.5).abs() < 0.06);
}

#[test]
fn crowd_and_pool_reach_similar_loss_for_same_budget() {
    // The paper's point in Section 6.1: Slice Tuner works even when the
    // acquired data comes from a completely different (noisier, costlier)
    // source. Here both sources sample the same family, so final losses
    // should be in the same ballpark.
    let fam = families::faces();
    let budget = 400.0;

    let run_with_crowd = {
        let ds = SlicedDataset::generate(&fam, &[100; 8], 80, 41);
        let mut src = crowd(41);
        let mut tuner = SliceTuner::new(ds, &mut src, quick_config(41));
        tuner.run(Strategy::OneShot, budget)
    };
    let run_with_pool = {
        let ds = SlicedDataset::generate(&fam, &[100; 8], 80, 41);
        let mut src = slice_tuner::PoolSource::new(fam.clone(), 41);
        let mut tuner = SliceTuner::new(ds, &mut src, quick_config(41));
        tuner.run(Strategy::OneShot, budget)
    };

    let diff = (run_with_crowd.report.overall_loss - run_with_pool.report.overall_loss).abs();
    assert!(
        diff < 0.35,
        "crowd {} vs pool {}",
        run_with_crowd.report.overall_loss,
        run_with_pool.report.overall_loss
    );
}

#[test]
fn collection_rounds_are_tracked() {
    let mut src = crowd(9);
    for i in 0..8 {
        let _ = src.acquire(SliceId(i), 10);
    }
    assert_eq!(src.rounds(), 8, "one collection round per acquire call");
    let dollars = src.stats().dollars;
    assert!(
        (dollars - 80.0 * 0.04).abs() < 1e-9,
        "4 cents per accepted image: {dollars}"
    );
}
