//! Integration: the parallel multi-trial executor must aggregate
//! bit-identically at any worker count, with and without the shared
//! curve-estimation cache, and the cache must actually pay for itself in
//! saved model trainings.

use slice_tuner::{
    run_trials, run_trials_parallel, AggregateResult, CurveCache, Strategy, TSchedule, TunerConfig,
};
use st_data::families;
use st_models::ModelSpec;

fn quick_config() -> TunerConfig {
    let mut cfg = TunerConfig::new(ModelSpec::softmax());
    cfg.train.epochs = 8;
    cfg.fractions = vec![0.4, 0.7, 1.0];
    cfg.repeats = 1;
    cfg.threads = 1;
    cfg
}

fn assert_bit_identical(a: &AggregateResult, b: &AggregateResult) {
    assert!(
        a.bits_identical_to(b),
        "aggregates diverged:\n{a:?}\nvs\n{b:?}"
    );
}

/// The headline determinism regression: a Table-6-style repeated-trial run
/// (iterative Moderate schedule, census family) aggregates bit-identically
/// with `--jobs 1` and `--jobs 8`.
#[test]
fn table6_style_run_is_bit_identical_across_jobs() {
    let fam = families::census();
    let run = |jobs: usize| {
        run_trials_parallel(
            &fam,
            &[50; 4],
            60,
            150.0,
            Strategy::Iterative(TSchedule::moderate()),
            &quick_config().with_seed(42),
            4,
            jobs,
        )
    };
    assert_bit_identical(&run(1), &run(8));
}

/// The parallel executor is a drop-in for the sequential runner.
#[test]
fn parallel_executor_matches_sequential_runner() {
    let fam = families::census();
    let seq = run_trials(
        &fam,
        &[40; 4],
        50,
        100.0,
        Strategy::OneShot,
        &quick_config().with_seed(7),
        3,
    );
    let par = run_trials_parallel(
        &fam,
        &[40; 4],
        50,
        100.0,
        Strategy::OneShot,
        &quick_config().with_seed(7),
        3,
        4,
    );
    assert_bit_identical(&seq, &par);
}

/// Sharing one cache across strategies preserves results bit-for-bit and
/// saves the trainings that identical estimations would repeat: the three
/// iterative schedules estimate the same first-iteration curves on the
/// same trial datasets.
#[test]
fn shared_cache_across_schedules_saves_trainings_without_changing_results() {
    let fam = families::census();
    let schedules = [
        TSchedule::conservative(),
        TSchedule::moderate(),
        TSchedule::aggressive(),
    ];
    let run_all = |config: &TunerConfig| -> Vec<AggregateResult> {
        schedules
            .iter()
            .map(|&s| {
                run_trials_parallel(
                    &fam,
                    &[45; 4],
                    50,
                    120.0,
                    Strategy::Iterative(s),
                    config,
                    2,
                    2,
                )
            })
            .collect()
    };

    let plain = run_all(&quick_config().with_seed(5));
    let cache = CurveCache::shared();
    let cached = run_all(&quick_config().with_seed(5).with_cache(cache.clone()));

    for (p, c) in plain.iter().zip(&cached) {
        assert_bit_identical(p, c);
    }
    assert!(
        cache.hits() >= 2 * 2,
        "each later schedule should reuse the first's per-trial initial estimate; hits = {}",
        cache.hits()
    );
    // Saved estimations are visible as fewer trainings on the later runs.
    let plain_trainings: f64 = plain.iter().map(|a| a.trainings).sum();
    let cached_trainings: f64 = cached.iter().map(|a| a.trainings).sum();
    assert!(
        cached_trainings < plain_trainings,
        "cache must save trainings: {cached_trainings} vs {plain_trainings}"
    );
}
